// vadalog_cli — command-line front end for the reasoner.
//
// Usage:
//   vadalog_cli [options] <program-file>
//     --engine=auto|chase|linear|alternating   decision/enumeration engine
//     --search-threads=N                       parallel frontier workers
//                                              for the linear search
//     --no-subsumption                         disable subsumption-based
//                                              state pruning
//     --analyze                                print the fragment analysis
//     --lint                                   print lint diagnostics and
//                                              exit (nonzero on errors)
//     --explain                                print a linear proof tree
//                                              for each certain answer
//     --dot-chase                              dump the chase graph (dot)
//     --data=facts.tsv                         load extra TSV facts
//                                              (predicate\targ1\targ2...)
//     --version                                print the version and exit
//
// The program file uses the surface syntax of ast/parser.h (rules, facts,
// '?(..) :- ..' queries). Every query in the file is answered.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.h"
#include "ast/parser.h"
#include "base/version.h"
#include "chase/chase.h"
#include "chase/chase_graph.h"
#include "storage/homomorphism.h"
#include "storage/io.h"
#include "vadalog/reasoner.h"

using namespace vadalog;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine=auto|chase|linear|alternating] "
               "[--search-threads=N] [--no-subsumption] "
               "[--analyze] [--lint] [--explain] [--dot-chase] "
               "<program-file>\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string data_path;
  bool analyze = false;
  bool lint = false;
  bool explain = false;
  bool dot_chase = false;
  EngineChoice engine = EngineChoice::kAuto;
  uint32_t search_threads = 1;
  bool subsumption = true;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("vadalog_cli %s\n", kVersionString);
      return 0;
    } else if (std::strncmp(arg, "--data=", 7) == 0) {
      data_path = arg + 7;
    } else if (std::strcmp(arg, "--analyze") == 0) {
      analyze = true;
    } else if (std::strcmp(arg, "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(arg, "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(arg, "--dot-chase") == 0) {
      dot_chase = true;
    } else if (std::strncmp(arg, "--search-threads=", 17) == 0) {
      int parsed_threads = std::atoi(arg + 17);
      if (parsed_threads < 1) return Usage(argv[0]);
      search_threads = static_cast<uint32_t>(parsed_threads);
    } else if (std::strcmp(arg, "--no-subsumption") == 0) {
      subsumption = false;
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      const char* value = arg + 9;
      if (std::strcmp(value, "auto") == 0) {
        engine = EngineChoice::kAuto;
      } else if (std::strcmp(value, "chase") == 0) {
        engine = EngineChoice::kChase;
      } else if (std::strcmp(value, "linear") == 0) {
        engine = EngineChoice::kLinearProof;
      } else if (std::strcmp(value, "alternating") == 0) {
        engine = EngineChoice::kAlternatingProof;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Usage(argv[0]);

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  if (lint) {
    // Lint the unnormalized source: the Reasoner's single-head rewrite
    // would invent predicates and drop the source anchors.
    LintResult result = LintSource(buffer.str(), path);
    std::printf("%s", RenderText(result.file).c_str());
    return result.ok() ? 0 : 1;
  }

  ParseResult parsed = ParseProgram(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), parsed.error.c_str());
    return 1;
  }
  if (!data_path.empty()) {
    std::string io_error = LoadFactsTsvFile(data_path, &*parsed.program);
    if (!io_error.empty()) {
      std::fprintf(stderr, "%s: %s\n", data_path.c_str(), io_error.c_str());
      return 1;
    }
  }
  auto reasoner = std::make_unique<Reasoner>(std::move(*parsed.program));

  if (analyze) {
    std::printf("%s\n", reasoner->AnalysisReport().c_str());
  }

  if (dot_chase) {
    ChaseOptions options;
    options.record_provenance = true;
    ChaseResult chase =
        RunChase(reasoner->program(), reasoner->database(), options);
    ChaseGraph graph(chase, reasoner->database());
    std::printf("%s", graph.ToDot(reasoner->program()).c_str());
    return 0;
  }

  ReasonerOptions options;
  options.engine = engine;
  options.proof.num_threads = search_threads;
  options.proof.subsumption = subsumption;
  const auto& queries = reasoner->program().queries();
  if (queries.empty()) {
    std::printf("(no queries in %s)\n", path.c_str());
    return 0;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("query %zu: %s\n", i,
                queries[i].ToString(reasoner->program().symbols()).c_str());
    CertainAnswerSet result = reasoner->AnswerChecked(queries[i], options);
    if (!result.error.empty()) {
      // Scripted callers must be able to tell "unservable program" from
      // "empty answer set": one-line diagnostic on stderr, nonzero exit.
      std::fprintf(stderr, "%s: query %zu: %s\n", path.c_str(), i,
                   result.error.c_str());
      return 1;
    }
    if (!result.complete) {
      std::fprintf(stderr,
                   "%s: query %zu: warning: budget exhausted on %llu "
                   "candidate(s); the answers below are a sound subset\n",
                   path.c_str(), i,
                   static_cast<unsigned long long>(
                       result.budget_exhausted_candidates));
    }
    const std::vector<std::vector<Term>>& answers = result.answers;
    if (answers.empty()) {
      std::printf("  (no certain answers)\n");
    }
    for (const std::vector<Term>& tuple : answers) {
      std::printf("  %s\n", reasoner->TupleToString(tuple).c_str());
      if (explain) {
        std::string proof = reasoner->Explain(queries[i], tuple);
        if (!proof.empty()) {
          std::printf("  proof:\n");
          std::istringstream lines(proof);
          std::string line;
          while (std::getline(lines, line)) {
            std::printf("    %s\n", line.c_str());
          }
        }
      }
    }
  }
  return 0;
}
