#!/usr/bin/env bash
# Runs the bench binaries and emits a BENCH_*.json perf snapshot.
#
# Usage:
#   tools/run_bench.sh                       # all benches -> BENCH_<date>.json
#   tools/run_bench.sh --out BENCH_baseline.json bench_micro bench_rewriting
#
# The JSON records, per bench: exit code, wall-clock ms, and the raw
# report lines (the experiment tables are deterministic apart from the
# timing columns). bench_micro is additionally captured in
# google-benchmark's native JSON so later PRs can diff per-counter.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$PWD"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"

OUT=""
BENCHES=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out) OUT="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,10p' "$0"; exit 0 ;;
    *) BENCHES+=("$1"); shift ;;
  esac
done

EXPLICIT_BENCHES=1
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  EXPLICIT_BENCHES=0
  BENCHES=(bench_micro bench_rewriting bench_pipeline bench_combined
           bench_recursion_profile bench_tiling bench_ablation
           bench_linearize bench_owl2ql bench_search_cache bench_server
           bench_space bench_streaming bench_warded)
fi
if [[ -z "$OUT" ]]; then
  OUT="BENCH_$(date -u +%Y%m%d).json"
fi

# Make sure the bench targets exist and are current. bench_micro is
# skipped by CMake when google-benchmark is unavailable, so in the
# default (no explicit list) mode a missing target is dropped with a
# warning instead of failing the whole snapshot.
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DVADALOG_BUILD_BENCH=ON >/dev/null
AVAILABLE=()
for bench in "${BENCHES[@]}"; do
  if cmake --build "$BUILD_DIR" -j "$(nproc)" --target "$bench" \
      >/dev/null 2>&1; then
    AVAILABLE+=("$bench")
  elif [[ $EXPLICIT_BENCHES -eq 1 ]]; then
    echo "error: target $bench failed to build" >&2
    exit 1
  else
    echo "warning: skipping $bench (target unavailable)" >&2
  fi
done
BENCHES=("${AVAILABLE[@]}")
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  echo "error: no bench targets built" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 1
  fi
  echo ">>> $bench" >&2
  # bench_server dumps its metrics registry next to the timing snapshot
  # (METRICS-shaped JSON; convert with tools/vadalog_metrics < file).
  if [[ "$bench" == "bench_server" ]]; then
    export VADALOG_BENCH_METRICS="${OUT%.json}-metrics.json"
  else
    unset VADALOG_BENCH_METRICS
  fi
  start_ns=$(date +%s%N)
  rc=0
  if [[ "$bench" == "bench_micro" ]]; then
    "$bin" --benchmark_format=json \
      >"$TMP_DIR/$bench.json" 2>"$TMP_DIR/$bench.txt" || rc=$?
  else
    "$bin" >"$TMP_DIR/$bench.txt" 2>&1 || rc=$?
  fi
  end_ns=$(date +%s%N)
  echo "$rc $(( (end_ns - start_ns) / 1000000 ))" >"$TMP_DIR/$bench.meta"
done

python3 - "$OUT" "$TMP_DIR" "${BENCHES[@]}" <<'PYEOF'
import json, pathlib, subprocess, sys

out, tmp_dir, benches = sys.argv[1], pathlib.Path(sys.argv[2]), sys.argv[3:]


def git(*args):
    try:
        return subprocess.run(["git", *args], capture_output=True,
                              text=True).stdout.strip()
    except OSError:
        return ""


snapshot = {
    "schema": "vadalog-bench-v1",
    "commit": git("rev-parse", "--short", "HEAD"),
    "date_utc": subprocess.run(["date", "-u", "+%Y-%m-%dT%H:%M:%SZ"],
                               capture_output=True, text=True).stdout.strip(),
    "benches": {},
}
for bench in benches:
    rc, wall_ms = (tmp_dir / f"{bench}.meta").read_text().split()
    entry = {
        "exit_code": int(rc),
        "wall_ms": int(wall_ms),
        "report": (tmp_dir / f"{bench}.txt").read_text().splitlines(),
    }
    micro = tmp_dir / f"{bench}.json"
    if micro.exists():
        entry["google_benchmark"] = json.loads(micro.read_text())
    snapshot["benches"][bench] = entry

pathlib.Path(out).write_text(json.dumps(snapshot, indent=2) + "\n")
failed = [b for b, e in snapshot["benches"].items() if e["exit_code"] != 0]
print(f"wrote {out} ({len(benches)} benches)", file=sys.stderr)
if failed:
    print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
    sys.exit(1)
PYEOF
