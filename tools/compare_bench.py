#!/usr/bin/env python3
"""Compares a bench snapshot (tools/run_bench.sh JSON) against a baseline.

Usage:
  tools/compare_bench.py --baseline BENCH_baseline.json --candidate BENCH_new.json
      [--threshold-pct 25] [--min-ms 250]

Prints a markdown table (suitable for a GitHub job summary) and exits
non-zero when any bench regressed: wall-clock more than --threshold-pct
slower than the baseline (benches whose baseline wall time is below
--min-ms are reported but never fail: they sit in scheduler-noise
territory), or a non-zero bench exit code.

New benches (absent from the baseline) and removed benches are reported
informationally and do not fail the gate; refresh the committed baseline in
the PR that adds or speeds up a bench.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as handle:
        snapshot = json.load(handle)
    if snapshot.get("schema") != "vadalog-bench-v1":
        sys.exit(f"error: {path}: unexpected schema {snapshot.get('schema')!r}")
    return snapshot


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--threshold-pct", type=float, default=25.0,
                        help="fail when a bench is more than this %% slower")
    parser.add_argument("--min-ms", type=float, default=250.0,
                        help="baseline walls below this never fail the gate")
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    base_benches = baseline["benches"]
    cand_benches = candidate["benches"]

    rows = []
    failures = []
    for name in sorted(set(base_benches) | set(cand_benches)):
        base = base_benches.get(name)
        cand = cand_benches.get(name)
        if cand is None:
            rows.append((name, base["wall_ms"], None, None, "removed"))
            continue
        if cand["exit_code"] != 0:
            rows.append((name, base and base["wall_ms"], cand["wall_ms"],
                         None, "FAILED (exit %d)" % cand["exit_code"]))
            failures.append(f"{name}: exit code {cand['exit_code']}")
            continue
        if base is None:
            rows.append((name, None, cand["wall_ms"], None, "new"))
            continue
        base_ms, cand_ms = base["wall_ms"], cand["wall_ms"]
        delta_pct = ((cand_ms - base_ms) / base_ms * 100.0) if base_ms else 0.0
        if delta_pct > args.threshold_pct and base_ms >= args.min_ms:
            status = "REGRESSED"
            failures.append(
                f"{name}: {base_ms} ms -> {cand_ms} ms (+{delta_pct:.1f}%)")
        elif delta_pct > args.threshold_pct:
            status = "slower (noise range)"
        elif delta_pct < -args.threshold_pct:
            status = "faster"
        else:
            status = "ok"
        rows.append((name, base_ms, cand_ms, delta_pct, status))

    commit_base = baseline.get("commit", "?")
    commit_cand = candidate.get("commit", "?")
    print(f"### Bench regression gate ({commit_base} -> {commit_cand})\n")
    print(f"Threshold: +{args.threshold_pct:.0f}% wall-clock on benches with "
          f"baseline >= {args.min_ms:.0f} ms.\n")
    print("| bench | baseline ms | current ms | delta | status |")
    print("|---|---:|---:|---:|---|")
    for name, base_ms, cand_ms, delta_pct, status in rows:
        base_cell = "-" if base_ms is None else str(base_ms)
        cand_cell = "-" if cand_ms is None else str(cand_ms)
        delta_cell = "-" if delta_pct is None else f"{delta_pct:+.1f}%"
        print(f"| {name} | {base_cell} | {cand_cell} | {delta_cell} "
              f"| {status} |")
    print()

    if failures:
        print("**Regressions:**\n")
        for failure in failures:
            print(f"- {failure}")
        return 1
    print("No regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
