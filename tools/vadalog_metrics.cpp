// vadalog_metrics — Prometheus text-format exporter for vadalogd.
//
// Scrapes the daemon's METRICS command and renders the registry snapshot
// in the Prometheus text exposition format via server/prometheus.h (the
// rendering itself lives there as a library, shared with the tests and
// the fuzz harness; this tool contributes only the socket client and the
// stdin mode). Pipe it from a cron job or wrap it in a
// textfile-collector script; the output is a complete scrape body.
//
// Usage:
//   vadalog_metrics --connect=tcp:HOST:PORT     scrape a live daemon
//   vadalog_metrics --connect=unix:PATH
//   vadalog_metrics < metrics.json              convert a saved METRICS
//                                               response (or its body)
//
// The stdin mode exists so snapshots written by bench runs (see
// VADALOG_BENCH_METRICS in tools/run_bench.sh) and the protocol goldens
// can be converted offline without a running daemon.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "base/version.h"
#include "server/json.h"
#include "server/prometheus.h"

using namespace vadalog;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--connect=tcp:HOST:PORT | --connect=unix:PATH]\n"
               "       %s < metrics.json    (convert a saved METRICS "
               "response)\n",
               argv0, argv0);
  return 2;
}

/// Accepts either a full METRICS response ({"ok":true,"metrics":[...]})
/// or the bare metrics array; rendering is server/prometheus.h.
int ConvertDocument(const std::string& text) {
  std::string out;
  std::string error;
  if (!prometheus::RenderDocumentText(text, &out, &error)) {
    std::fprintf(stderr, "vadalog_metrics: %s\n", error.c_str());
    return 1;
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}

#ifndef _WIN32
/// Dials the endpoint, sends one METRICS request, returns the response
/// line. Minimal blocking client — METRICS is a pure control response,
/// so one line out, one line back.
bool ScrapeOnce(bool use_unix, const std::string& host, uint16_t port,
                const std::string& unix_path, std::string* line,
                std::string* error) {
  int fd = -1;
  if (use_unix) {
    sockaddr_un addr{};
    if (unix_path.size() >= sizeof addr.sun_path) {
      *error = "unix socket path too long";
      return false;
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) != 0) {
      *error = "connect unix:" + unix_path + ": " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return false;
    }
  } else {
    std::string address = host == "localhost" ? "127.0.0.1" : host;
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
      *error = "bad IPv4 address: " + address;
      if (fd >= 0) ::close(fd);
      return false;
    }
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) != 0) {
      *error = "connect tcp:" + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return false;
    }
  }
  const char request[] = "{\"cmd\":\"METRICS\"}\n";
  size_t sent = 0;
  while (sent < sizeof request - 1) {
    ssize_t n = ::send(fd, request + sent, sizeof request - 1 - sent, 0);
    if (n <= 0) {
      *error = "connection lost (send)";
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string buffer;
  while (buffer.find('\n') == std::string::npos) {
    char chunk[65536];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      *error = "connection lost (recv)";
      ::close(fd);
      return false;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  *line = buffer.substr(0, buffer.find('\n'));
  return true;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  bool have_endpoint = false;
  bool use_unix = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string unix_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("vadalog_metrics %s\n", kVersionString);
      return 0;
    } else if (std::strncmp(arg, "--connect=", 10) == 0) {
      std::string spec = arg + 10;
      if (spec.rfind("unix:", 0) == 0) {
        use_unix = true;
        unix_path = spec.substr(5);
      } else if (spec.rfind("tcp:", 0) == 0) {
        std::string rest = spec.substr(4);
        size_t colon = rest.rfind(':');
        if (colon == std::string::npos) return Usage(argv[0]);
        host = rest.substr(0, colon);
        port = static_cast<uint16_t>(std::atoi(rest.c_str() + colon + 1));
        if (port == 0) return Usage(argv[0]);
      } else {
        return Usage(argv[0]);
      }
      have_endpoint = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!have_endpoint) {
    std::stringstream text;
    text << std::cin.rdbuf();
    return ConvertDocument(text.str());
  }

#ifdef _WIN32
  std::fprintf(stderr, "vadalog_metrics --connect requires POSIX sockets\n");
  return 1;
#else
  std::string line;
  std::string error;
  if (!ScrapeOnce(use_unix, host, port, unix_path, &line, &error)) {
    std::fprintf(stderr, "vadalog_metrics: %s\n", error.c_str());
    return 1;
  }
  return ConvertDocument(line);
#endif
}
