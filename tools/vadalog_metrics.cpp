// vadalog_metrics — Prometheus text-format exporter for vadalogd.
//
// Scrapes the daemon's METRICS command and renders the registry snapshot
// in the Prometheus text exposition format (version 0.0.4): one
// `# HELP` / `# TYPE` header per metric family, one sample line per
// label set, histograms expanded into cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. Pipe it from a cron job or wrap it in
// a textfile-collector script; the output is a complete scrape body.
//
// Usage:
//   vadalog_metrics --connect=tcp:HOST:PORT     scrape a live daemon
//   vadalog_metrics --connect=unix:PATH
//   vadalog_metrics < metrics.json              convert a saved METRICS
//                                               response (or its body)
//
// The stdin mode exists so snapshots written by bench runs (see
// VADALOG_BENCH_METRICS in tools/run_bench.sh) and the protocol goldens
// can be converted offline without a running daemon.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "base/version.h"
#include "server/json.h"

using namespace vadalog;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--connect=tcp:HOST:PORT | --connect=unix:PATH]\n"
               "       %s < metrics.json    (convert a saved METRICS "
               "response)\n",
               argv0, argv0);
  return 2;
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders one label set as {k1="v1",k2="v2"}; empty string when there
/// are no labels. `extra` appends one more pair (used for `le`).
std::string RenderLabels(const JsonValue* labels, const std::string& extra) {
  std::string body;
  if (labels != nullptr && labels->is_object()) {
    for (const auto& [key, value] : labels->Members()) {
      if (!body.empty()) body += ",";
      body += key + "=\"" +
              EscapeLabelValue(value.is_string() ? value.AsString()
                                                 : value.Dump()) +
              "\"";
    }
  }
  if (!extra.empty()) {
    if (!body.empty()) body += ",";
    body += extra;
  }
  if (body.empty()) return "";
  return "{" + body + "}";
}

/// Prints a sample value the way Prometheus expects: integral values
/// without a fraction, anything else as shortest double.
std::string RenderNumber(double value) {
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

/// Converts one registry snapshot (the "metrics" array of a METRICS
/// response) to the text exposition format on stdout. The snapshot is
/// sorted by (name, labels), so HELP/TYPE headers are emitted on each
/// name change.
bool RenderPrometheus(const JsonValue& metrics) {
  if (!metrics.is_array()) return false;
  std::string previous_name;
  for (const JsonValue& metric : metrics.Items()) {
    std::string name = metric.GetString("name");
    std::string type = metric.GetString("type");
    if (name.empty()) return false;
    if (name != previous_name) {
      std::string help = metric.GetString("help");
      if (!help.empty()) {
        std::printf("# HELP %s %s\n", name.c_str(), help.c_str());
      }
      std::printf("# TYPE %s %s\n", name.c_str(), type.c_str());
      previous_name = name;
    }
    const JsonValue* labels = metric.Find("labels");
    if (type == "histogram") {
      const JsonValue* bounds = metric.Find("bounds");
      const JsonValue* buckets = metric.Find("buckets");
      if (bounds == nullptr || buckets == nullptr ||
          !bounds->is_array() || !buckets->is_array() ||
          buckets->Items().size() != bounds->Items().size() + 1) {
        return false;
      }
      for (size_t i = 0; i < bounds->Items().size(); ++i) {
        std::printf(
            "%s_bucket%s %s\n", name.c_str(),
            RenderLabels(labels, "le=\"" +
                                     RenderNumber(
                                         bounds->Items()[i].AsNumber()) +
                                     "\"")
                .c_str(),
            RenderNumber(buckets->Items()[i].AsNumber()).c_str());
      }
      std::printf("%s_bucket%s %s\n", name.c_str(),
                  RenderLabels(labels, "le=\"+Inf\"").c_str(),
                  RenderNumber(buckets->Items().back().AsNumber()).c_str());
      std::printf("%s_sum%s %s\n", name.c_str(),
                  RenderLabels(labels, "").c_str(),
                  RenderNumber(metric.Find("sum") != nullptr
                                   ? metric.Find("sum")->AsNumber()
                                   : 0)
                      .c_str());
      std::printf("%s_count%s %s\n", name.c_str(),
                  RenderLabels(labels, "").c_str(),
                  RenderNumber(metric.Find("count") != nullptr
                                   ? metric.Find("count")->AsNumber()
                                   : 0)
                      .c_str());
    } else {
      const JsonValue* value = metric.Find("value");
      std::printf("%s%s %s\n", name.c_str(),
                  RenderLabels(labels, "").c_str(),
                  RenderNumber(value != nullptr ? value->AsNumber() : 0)
                      .c_str());
    }
  }
  return true;
}

/// Accepts either a full METRICS response ({"ok":true,"metrics":[...]})
/// or the bare metrics array.
int ConvertDocument(const std::string& text) {
  std::string error;
  std::optional<JsonValue> parsed = JsonValue::Parse(text, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "vadalog_metrics: parse error: %s\n",
                 error.c_str());
    return 1;
  }
  const JsonValue* metrics =
      parsed->is_array() ? &*parsed : parsed->Find("metrics");
  if (metrics == nullptr || !RenderPrometheus(*metrics)) {
    std::fprintf(stderr, "vadalog_metrics: not a METRICS snapshot\n");
    return 1;
  }
  return 0;
}

#ifndef _WIN32
/// Dials the endpoint, sends one METRICS request, returns the response
/// line. Minimal blocking client — METRICS is a pure control response,
/// so one line out, one line back.
bool ScrapeOnce(bool use_unix, const std::string& host, uint16_t port,
                const std::string& unix_path, std::string* line,
                std::string* error) {
  int fd = -1;
  if (use_unix) {
    sockaddr_un addr{};
    if (unix_path.size() >= sizeof addr.sun_path) {
      *error = "unix socket path too long";
      return false;
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) != 0) {
      *error = "connect unix:" + unix_path + ": " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return false;
    }
  } else {
    std::string address = host == "localhost" ? "127.0.0.1" : host;
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
      *error = "bad IPv4 address: " + address;
      if (fd >= 0) ::close(fd);
      return false;
    }
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) != 0) {
      *error = "connect tcp:" + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return false;
    }
  }
  const char request[] = "{\"cmd\":\"METRICS\"}\n";
  size_t sent = 0;
  while (sent < sizeof request - 1) {
    ssize_t n = ::send(fd, request + sent, sizeof request - 1 - sent, 0);
    if (n <= 0) {
      *error = "connection lost (send)";
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string buffer;
  while (buffer.find('\n') == std::string::npos) {
    char chunk[65536];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      *error = "connection lost (recv)";
      ::close(fd);
      return false;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  *line = buffer.substr(0, buffer.find('\n'));
  return true;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  bool have_endpoint = false;
  bool use_unix = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string unix_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("vadalog_metrics %s\n", kVersionString);
      return 0;
    } else if (std::strncmp(arg, "--connect=", 10) == 0) {
      std::string spec = arg + 10;
      if (spec.rfind("unix:", 0) == 0) {
        use_unix = true;
        unix_path = spec.substr(5);
      } else if (spec.rfind("tcp:", 0) == 0) {
        std::string rest = spec.substr(4);
        size_t colon = rest.rfind(':');
        if (colon == std::string::npos) return Usage(argv[0]);
        host = rest.substr(0, colon);
        port = static_cast<uint16_t>(std::atoi(rest.c_str() + colon + 1));
        if (port == 0) return Usage(argv[0]);
      } else {
        return Usage(argv[0]);
      }
      have_endpoint = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!have_endpoint) {
    std::stringstream text;
    text << std::cin.rdbuf();
    return ConvertDocument(text.str());
  }

#ifdef _WIN32
  std::fprintf(stderr, "vadalog_metrics --connect requires POSIX sockets\n");
  return 1;
#else
  std::string line;
  std::string error;
  if (!ScrapeOnce(use_unix, host, port, unix_path, &line, &error)) {
    std::fprintf(stderr, "vadalog_metrics: %s\n", error.c_str());
    return 1;
  }
  return ConvertDocument(line);
#endif
}
