// vadalog_client — client and end-to-end checker for vadalogd.
//
// Modes:
//
//   * Raw:        pipe newline-delimited JSON requests on stdin, responses
//                 come back on stdout. Binary answer frames are decoded
//                 and re-inlined as "answers" so the output stays
//                 line-oriented JSON regardless of the negotiated
//                 encoding.
//
//       vadalog_client --connect=tcp:127.0.0.1:4333 < requests.ndjson
//
//   * Hello:      probe the server's wire-API: send one HELLO carrying
//                 this client's max_version and encoding preferences,
//                 print the negotiation result, exit 0 iff it succeeded.
//
//       vadalog_client --connect=tcp:127.0.0.1:4333 --hello
//
//   * Round-trip: load a .vada program into a session over the wire, run
//                 every query in it through the protocol — optionally
//                 from many concurrent client connections — and diff the
//                 answers against a direct in-process Reasoner on the
//                 same program. Exit 0 iff every answer set matches.
//                 With --encoding=binary the answers travel as columnar
//                 v2 frames and the decoded cells must match the JSON
//                 rendering bit for bit — the cross-encoding oracle.
//
//       vadalog_client --serve --clients=16 --repeat=4
//           --roundtrip=examples/programs/company_control.vada
//
//                 With --trace every QUERY carries "trace":true and the
//                 response must come back with the full span breakdown
//                 (queue_wait/parse/lock_wait/search/encode/total); one
//                 sample span table is printed. The round trip always
//                 ends with a machine-readable "CLIENT_QUERIES <n>" line
//                 on stdout — the number of served (ok) QUERYs across
//                 all client threads, EBUSY retries excluded — which CI
//                 sums and diffs against the server's METRICS counters.
//
//   * Metrics:    dump the daemon's metrics registry, one metric per
//                 line (counters/gauges as name{labels} = value,
//                 histograms as count and sum):
//
//       vadalog_client --connect=tcp:127.0.0.1:4333 --metrics
//
// --encoding=json|binary sends a HELLO at connect time and fails hard if
// the server negotiates something other than the requested encoding.
// Without the flag no HELLO is sent: the connection speaks the v1
// contract, exactly like an old client.
//
// Endpoints: --connect=tcp:HOST:PORT (HOST is an IPv4 literal or
// "localhost") or --connect=unix:PATH, or --serve to spin up an
// in-process daemon on an ephemeral loopback port and talk to it over a
// real socket — the zero-setup round trip the e2e suite runs.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "base/version.h"
#include "server/server.h"
#include "vadalog/reasoner.h"

using namespace vadalog;

#ifdef _WIN32
int main() {
  std::fprintf(stderr, "vadalog_client requires POSIX sockets\n");
  return 1;
}
#else

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--connect=tcp:HOST:PORT | --connect=unix:PATH | "
               "--serve)\n"
               "          [--encoding=json|binary] [--hello] [--metrics]\n"
               "          [--roundtrip=FILE.vada [--engine=E] [--threads=N] "
               "[--clients=N] "
               "[--repeat=N] [--trace]]\n",
               argv0);
  return 2;
}

/// A blocking protocol connection: line-framed JSON requests out, JSON
/// head lines plus optional binary answer frames back in.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ConnectTcp(const std::string& host, uint16_t port,
                  std::string* error) {
    std::string address = host == "localhost" ? "127.0.0.1" : host;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
      *error = "bad IPv4 address: " + address;
      return false;
    }
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0) {
      *error = "connect tcp:" + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
      return false;
    }
    return true;
  }

  bool ConnectUnix(const std::string& path, std::string* error) {
    sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path) {
      *error = "unix socket path too long";
      return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0) {
      *error = "connect unix:" + path + ": " + std::strerror(errno);
      return false;
    }
    return true;
  }

  /// Sends one request line, reads the JSON head line, and — when the
  /// head announces an answers_frame — reads and decodes the binary
  /// payload that follows it. `answers` is reset to nullopt when the
  /// response carried none.
  bool Transact(const std::string& line, JsonValue* head,
                std::optional<protocol::AnswerTable>* answers,
                std::string* error) {
    answers->reset();
    std::string out = line + "\n";
    size_t sent = 0;
    while (sent < out.size()) {
      ssize_t n =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        *error = "connection lost (send)";
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    std::string head_line;
    if (!ReadLine(&head_line)) {
      *error = "connection lost (recv)";
      return false;
    }
    std::string parse_error;
    std::optional<JsonValue> parsed =
        JsonValue::Parse(head_line, &parse_error);
    if (!parsed.has_value()) {
      *error = "malformed response: " + head_line;
      return false;
    }
    *head = std::move(*parsed);
    const JsonValue* descriptor = head->Find("answers_frame");
    if (descriptor != nullptr) {
      uint64_t bytes = descriptor->GetUint("bytes");
      std::string payload;
      if (!ReadExact(static_cast<size_t>(bytes), &payload)) {
        *error = "connection lost mid-frame";
        return false;
      }
      protocol::AnswerTable table;
      std::string decode_error;
      if (!protocol::DecodeAnswerFrame(payload, &table, &decode_error)) {
        *error = "bad answer frame: " + decode_error;
        return false;
      }
      *answers = std::move(table);
    }
    return true;
  }

  /// Sends one HELLO and verifies the server granted the requested
  /// encoding (the negotiation response lands in `response` either way).
  bool Hello(const std::string& encoding, JsonValue* response,
             std::string* error) {
    std::string request =
        R"({"cmd":"HELLO","max_version":)" +
        std::to_string(protocol::kMaxVersion) + R"(,"encodings":[)" +
        JsonValue::String(encoding).Dump() + "]}";
    std::optional<protocol::AnswerTable> none;
    if (!Transact(request, response, &none, error)) return false;
    if (!response->GetBool("ok")) {
      *error = "HELLO failed: " + response->Dump();
      return false;
    }
    if (response->GetString("encoding") != encoding) {
      *error = "server declined encoding " + encoding + ": " +
               response->Dump();
      return false;
    }
    return true;
  }

 private:
  bool ReadLine(std::string* line) {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      if (!Fill()) return false;
    }
  }

  bool ReadExact(size_t n, std::string* out) {
    while (buffer_.size() < n) {
      if (!Fill()) return false;
    }
    *out = buffer_.substr(0, n);
    buffer_.erase(0, n);
    return true;
  }

  bool Fill() {
    char chunk[65536];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

struct Endpoint {
  bool use_unix = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string unix_path;
  std::string encoding;  // empty = no HELLO, plain v1

  std::unique_ptr<Connection> Dial(std::string* error) const {
    auto connection = std::make_unique<Connection>();
    bool ok = use_unix ? connection->ConnectUnix(unix_path, error)
                       : connection->ConnectTcp(host, port, error);
    if (!ok) return nullptr;
    if (!encoding.empty()) {
      JsonValue response;
      if (!connection->Hello(encoding, &response, error)) return nullptr;
    }
    return connection;
  }
};

std::string EscapeJson(const std::string& s) {
  return JsonValue::String(s).Dump();
}

/// Computes the expected protocol-rendered answer rows for one query by
/// running the in-process Reasoner the same way the session does.
std::vector<std::vector<std::string>> ExpectedAnswers(
    const Reasoner& reasoner, size_t query_index, const std::string& engine) {
  ReasonerOptions options;
  if (engine == "chase") options.engine = EngineChoice::kChase;
  if (engine == "linear") options.engine = EngineChoice::kLinearProof;
  if (engine == "alternating") {
    options.engine = EngineChoice::kAlternatingProof;
  }
  std::vector<std::vector<std::string>> rendered;
  for (const std::vector<Term>& tuple :
       reasoner.Answer(reasoner.program().queries()[query_index], options)) {
    std::vector<std::string> row;
    for (Term t : tuple) {
      row.push_back(reasoner.program().symbols().TermToString(t));
    }
    rendered.push_back(std::move(row));
  }
  return rendered;
}

std::vector<std::vector<std::string>> AnswersFromJson(
    const JsonValue& response) {
  std::vector<std::vector<std::string>> rows;
  const JsonValue* answers = response.Find("answers");
  if (answers == nullptr || !answers->is_array()) return rows;
  for (const JsonValue& row : answers->Items()) {
    std::vector<std::string> tuple;
    for (const JsonValue& cell : row.Items()) {
      tuple.push_back(cell.is_string() ? cell.AsString() : cell.Dump());
    }
    rows.push_back(std::move(tuple));
  }
  return rows;
}

std::vector<std::vector<std::string>> AnswersFromTable(
    const protocol::AnswerTable& table) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.rows());
  for (size_t r = 0; r < table.rows(); ++r) {
    std::vector<std::string> tuple;
    tuple.reserve(table.columns);
    for (size_t c = 0; c < table.columns; ++c) {
      tuple.push_back(table.cells[r * table.columns + c]);
    }
    rows.push_back(std::move(tuple));
  }
  return rows;
}

/// The span keys every traced response must carry, in canonical order
/// (mirrors obs::TraceSpans::SpanList plus the total).
constexpr const char* kSpanKeys[] = {"queue_wait_us", "parse_us",
                                     "lock_wait_us",  "search_us",
                                     "encode_us",     "total_us"};

/// Validates the "trace" object of a traced QUERY response: present,
/// an object, and carrying every span key as a number.
bool CheckTrace(const JsonValue& response, std::string* error) {
  const JsonValue* trace = response.Find("trace");
  if (trace == nullptr || !trace->is_object()) {
    *error = "traced response carried no trace object";
    return false;
  }
  for (const char* key : kSpanKeys) {
    const JsonValue* span = trace->Find(key);
    if (span == nullptr || !span->is_number()) {
      *error = std::string("trace is missing span \"") + key + "\"";
      return false;
    }
  }
  return true;
}

/// One simulated client: its own connection (negotiating the endpoint's
/// encoding), running every query of the session `repeat` times and
/// diffing each answer set — decoded from the binary frame when that is
/// what was negotiated — against the in-process oracle. Every served
/// (ok) QUERY is counted into `served` — EBUSY-rejected attempts are
/// not, which is what makes the total comparable to the server's
/// vadalog_session_queries_total series.
bool RunClientThread(const Endpoint& endpoint, const std::string& session,
                     const std::string& engine, uint32_t threads,
                     size_t num_queries, int repeat, bool trace,
                     std::atomic<uint64_t>* served,
                     const std::vector<std::vector<std::vector<std::string>>>&
                         expected) {
  std::string error;
  std::unique_ptr<Connection> connection = endpoint.Dial(&error);
  if (connection == nullptr) {
    std::fprintf(stderr, "client: %s\n", error.c_str());
    return false;
  }
  for (int r = 0; r < repeat; ++r) {
    for (size_t q = 0; q < num_queries; ++q) {
      std::string request = "{\"cmd\":\"QUERY\",\"session\":" +
                            EscapeJson(session) +
                            ",\"query_index\":" + std::to_string(q) +
                            ",\"engine\":" + EscapeJson(engine);
      if (threads != 0) {
        request += ",\"threads\":" + std::to_string(threads);
      }
      if (trace) request += ",\"trace\":true";
      request += "}";
      while (true) {
        JsonValue response;
        std::optional<protocol::AnswerTable> table;
        if (!connection->Transact(request, &response, &table, &error)) {
          std::fprintf(stderr, "client: %s\n", error.c_str());
          return false;
        }
        if (!response.GetBool("ok")) {
          // Admission-control rejections are part of normal operation
          // under a 16-client burst: honor the retry hint, fail on
          // anything else.
          const JsonValue* detail = response.Find("error");
          if (detail != nullptr &&
              detail->GetString("code") == "EBUSY") {
            continue;
          }
          std::fprintf(stderr, "client: query failed: %s\n",
                       response.Dump().c_str());
          return false;
        }
        served->fetch_add(1, std::memory_order_relaxed);
        if (trace && !CheckTrace(response, &error)) {
          std::fprintf(stderr, "client: %s\n", error.c_str());
          return false;
        }
        // A binary connection must get frames, a JSON one inline rows.
        if (endpoint.encoding == "binary" && !table.has_value()) {
          std::fprintf(
              stderr,
              "client: negotiated binary but got inline answers\n");
          return false;
        }
        std::vector<std::vector<std::string>> got =
            table.has_value() ? AnswersFromTable(*table)
                              : AnswersFromJson(response);
        if (got != expected[q]) {
          std::fprintf(stderr,
                       "client: ANSWER MISMATCH on query %zu:\n  got  %s\n",
                       q, response.Dump().c_str());
          return false;
        }
        break;
      }
    }
  }
  return true;
}

int RunRoundTrip(const Endpoint& endpoint, const std::string& path,
                 const std::string& engine, uint32_t threads, int clients,
                 int repeat, bool trace) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream text;
  text << file.rdbuf();

  std::string parse_error;
  std::unique_ptr<Reasoner> reasoner =
      Reasoner::FromText(text.str(), &parse_error);
  if (reasoner == nullptr) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), parse_error.c_str());
    return 1;
  }
  size_t num_queries = reasoner->program().queries().size();
  if (num_queries == 0) {
    std::fprintf(stderr, "%s has no queries to round-trip\n", path.c_str());
    return 1;
  }
  std::vector<std::vector<std::vector<std::string>>> expected;
  for (size_t q = 0; q < num_queries; ++q) {
    expected.push_back(ExpectedAnswers(*reasoner, q, engine));
  }

  // Load the session over the wire.
  std::string error;
  std::unique_ptr<Connection> connection = endpoint.Dial(&error);
  if (connection == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const std::string session = "roundtrip";
  JsonValue loaded;
  std::optional<protocol::AnswerTable> no_table;
  if (!connection->Transact("{\"cmd\":\"LOAD_PROGRAM\",\"session\":" +
                                EscapeJson(session) +
                                ",\"replace\":true,\"program\":" +
                                EscapeJson(text.str()) + "}",
                            &loaded, &no_table, &error)) {
    std::fprintf(stderr, "LOAD_PROGRAM: %s\n", error.c_str());
    return 1;
  }
  if (!loaded.GetBool("ok")) {
    std::fprintf(stderr, "LOAD_PROGRAM failed: %s\n",
                 loaded.Dump().c_str());
    return 1;
  }

  std::atomic<int> failures{0};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> client_threads;
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&] {
      if (!RunClientThread(endpoint, session, engine, threads,
                           num_queries, repeat, trace, &served, expected)) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : client_threads) t.join();

  // Wrap up with a STATS probe so the e2e run also exercises it.
  JsonValue stats;
  if (connection->Transact("{\"cmd\":\"STATS\",\"session\":" +
                               EscapeJson(session) + "}",
                           &stats, &no_table, &error)) {
    std::fprintf(stderr, "stats: %s\n", stats.Dump().c_str());
  }
  if (trace) {
    // One sample traced query on the control connection so the span
    // breakdown is visible in the run output (and counted in served).
    JsonValue traced;
    std::optional<protocol::AnswerTable> table;
    if (connection->Transact("{\"cmd\":\"QUERY\",\"session\":" +
                                 EscapeJson(session) +
                                 ",\"query_index\":0,\"engine\":" +
                                 EscapeJson(engine) + ",\"trace\":true}",
                             &traced, &table, &error) &&
        traced.GetBool("ok")) {
      served.fetch_add(1, std::memory_order_relaxed);
      if (!CheckTrace(traced, &error)) {
        std::fprintf(stderr, "trace: %s\n", error.c_str());
        return 1;
      }
      const JsonValue* spans = traced.Find("trace");
      std::fprintf(stderr, "trace spans (us):");
      for (const char* key : kSpanKeys) {
        std::fprintf(stderr, " %s=%.0f", key, spans->Find(key)->AsNumber());
      }
      std::fprintf(stderr, "\n");
    }
  }
  // Machine-readable served-QUERY total on stdout: CI sums these across
  // runs and diffs the sum against the server's cumulative
  // vadalog_session_queries_total{session="roundtrip"} series.
  std::printf("CLIENT_QUERIES %llu\n",
              static_cast<unsigned long long>(served.load()));
  std::fflush(stdout);
  if (failures.load() != 0) {
    std::fprintf(stderr, "FAILED: %d/%d clients saw mismatches or errors\n",
                 failures.load(), clients);
    return 1;
  }
  std::fprintf(stderr,
               "OK: %d client(s) x %d repeat(s) x %zu query(ies)%s matched "
               "the in-process reasoner\n",
               clients, repeat, num_queries,
               endpoint.encoding == "binary" ? " (binary frames)" : "");
  return 0;
}

/// --metrics: one METRICS request, pretty-printed one metric per line —
/// counters/gauges as `name{labels} = value`, histograms as their count
/// and sum. The raw JSON is available via the raw mode when needed.
int RunMetrics(const Endpoint& endpoint) {
  std::string error;
  std::unique_ptr<Connection> connection = endpoint.Dial(&error);
  if (connection == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  JsonValue response;
  std::optional<protocol::AnswerTable> no_table;
  if (!connection->Transact("{\"cmd\":\"METRICS\"}", &response, &no_table,
                            &error)) {
    std::fprintf(stderr, "METRICS: %s\n", error.c_str());
    return 1;
  }
  const JsonValue* metrics = response.Find("metrics");
  if (!response.GetBool("ok") || metrics == nullptr ||
      !metrics->is_array()) {
    std::fprintf(stderr, "METRICS failed: %s\n", response.Dump().c_str());
    return 1;
  }
  for (const JsonValue& metric : metrics->Items()) {
    std::string line = metric.GetString("name");
    const JsonValue* labels = metric.Find("labels");
    if (labels != nullptr && !labels->Members().empty()) {
      line += "{";
      bool first = true;
      for (const auto& [key, value] : labels->Members()) {
        if (!first) line += ",";
        first = false;
        line += key + "=" + EscapeJson(value.AsString());
      }
      line += "}";
    }
    if (metric.GetString("type") == "histogram") {
      std::printf("%s count=%llu sum=%llu\n", line.c_str(),
                  static_cast<unsigned long long>(metric.GetUint("count")),
                  static_cast<unsigned long long>(metric.GetUint("sum")));
    } else {
      const JsonValue* value = metric.Find("value");
      std::printf("%s = %.0f\n", line.c_str(),
                  value != nullptr ? value->AsNumber() : 0.0);
    }
  }
  return 0;
}

int RunHello(const Endpoint& endpoint) {
  // Dial without the automatic handshake so a declined encoding is a
  // printable outcome here, not a connect failure.
  Endpoint plain = endpoint;
  plain.encoding.clear();
  std::string error;
  std::unique_ptr<Connection> connection = plain.Dial(&error);
  if (connection == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string prefs = endpoint.encoding.empty()
                          ? "\"binary\",\"json\""
                          : EscapeJson(endpoint.encoding);
  JsonValue response;
  std::optional<protocol::AnswerTable> no_table;
  if (!connection->Transact(R"({"cmd":"HELLO","max_version":)" +
                                std::to_string(protocol::kMaxVersion) +
                                R"(,"encodings":[)" + prefs + "]}",
                            &response, &no_table, &error)) {
    std::fprintf(stderr, "HELLO: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", response.Dump().c_str());
  return response.GetBool("ok") ? 0 : 1;
}

int RunRaw(const Endpoint& endpoint) {
  std::string error;
  std::unique_ptr<Connection> connection = endpoint.Dial(&error);
  if (connection == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    JsonValue response;
    std::optional<protocol::AnswerTable> table;
    if (!connection->Transact(line, &response, &table, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    // Keep stdout line-oriented: a decoded frame is re-inlined exactly
    // the way the JSON encoding would have carried it.
    protocol::Response model(std::move(response));
    model.answers = std::move(table);
    std::printf("%s\n", model.ToJson().Dump().c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Endpoint endpoint;
  bool have_endpoint = false;
  bool serve = false;
  bool hello = false;
  bool metrics = false;
  bool trace = false;
  std::string roundtrip_path;
  std::string engine = "auto";
  uint32_t search_threads = 0;
  int clients = 1;
  int repeat = 1;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("vadalog_client %s (protocol v%d..%d)\n", kVersionString,
                  protocol::kVersion, protocol::kMaxVersion);
      return 0;
    } else if (std::strcmp(arg, "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(arg, "--hello") == 0) {
      hello = true;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace = true;
    } else if (std::strncmp(arg, "--connect=", 10) == 0) {
      std::string spec = arg + 10;
      if (spec.rfind("unix:", 0) == 0) {
        endpoint.use_unix = true;
        endpoint.unix_path = spec.substr(5);
      } else if (spec.rfind("tcp:", 0) == 0) {
        std::string rest = spec.substr(4);
        size_t colon = rest.rfind(':');
        if (colon == std::string::npos) return Usage(argv[0]);
        endpoint.host = rest.substr(0, colon);
        endpoint.port =
            static_cast<uint16_t>(std::atoi(rest.c_str() + colon + 1));
        if (endpoint.port == 0) return Usage(argv[0]);
      } else {
        return Usage(argv[0]);
      }
      have_endpoint = true;
    } else if (std::strncmp(arg, "--encoding=", 11) == 0) {
      endpoint.encoding = arg + 11;
      if (endpoint.encoding != "json" && endpoint.encoding != "binary") {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--roundtrip=", 12) == 0) {
      roundtrip_path = arg + 12;
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      engine = arg + 9;
      if (engine != "auto" && engine != "chase" && engine != "linear" &&
          engine != "alternating") {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      int parsed = std::atoi(arg + 10);
      if (parsed < 0 || parsed > 64) return Usage(argv[0]);
      search_threads = static_cast<uint32_t>(parsed);
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      clients = std::atoi(arg + 10);
      if (clients < 1 || clients > 1024) return Usage(argv[0]);
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      repeat = std::atoi(arg + 9);
      if (repeat < 1) return Usage(argv[0]);
    } else {
      return Usage(argv[0]);
    }
  }
  if (serve == have_endpoint) return Usage(argv[0]);  // exactly one

  std::unique_ptr<Server> server;
  if (serve) {
    // In-process daemon on an ephemeral loopback port; the traffic still
    // crosses real sockets, so this is a faithful round trip.
    ServerConfig config;
    config.tcp_port = 0;
    server = std::make_unique<Server>(config);
    std::string error;
    if (!server->Start(&error)) {
      std::fprintf(stderr, "--serve: %s\n", error.c_str());
      return 1;
    }
    endpoint.port = server->tcp_port();
  }

  int status;
  if (hello) {
    status = RunHello(endpoint);
  } else if (metrics) {
    status = RunMetrics(endpoint);
  } else if (roundtrip_path.empty()) {
    status = RunRaw(endpoint);
  } else {
    status = RunRoundTrip(endpoint, roundtrip_path, engine, search_threads,
                          clients, repeat, trace);
  }
  if (server != nullptr) server->Stop();
  return status;
}

#endif  // _WIN32
