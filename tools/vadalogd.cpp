// vadalogd — the long-lived reasoning daemon. Loads programs once into
// named sessions and answers many queries against them concurrently over
// a negotiated newline-JSON / binary wire protocol (see
// src/server/protocol.h and the README's "Running as a service"
// section). One event-loop thread serves every connection; request
// execution runs on a fixed worker pool.
//
// Usage:
//   vadalogd [options]
//     --config KEY=VALUE      set any server knob (repeatable); the full
//                             key table: --config list
//     --load NAME=FILE        preload FILE into session NAME (repeatable)
//     --print-port            print "PORT <n>" once listening (scripts
//                             use this with --config tcp_port=0)
//     --version
//
// Deprecated spellings (one release of grace, each noted once on
// stderr; they are exact aliases for --config):
//     --tcp-port=N ~ tcp_port, --no-tcp ~ tcp=false, --unix=PATH ~ unix,
//     --workers=N, --search-threads=N ~ search_threads,
//     --max-inflight=N ~ max_inflight,
//     --max-inflight-per-session=N ~ max_inflight_per_session,
//     --cache-bytes=N ~ cache_bytes
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, finish
// in-flight requests, exit 0.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "base/version.h"
#include "obs/log.h"
#include "server/server.h"

using namespace vadalog;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--config KEY=VALUE]... [--load NAME=FILE]...\n"
               "          [--print-port] [--version]\n"
               "       %s --config list    (print the config key table)\n",
               argv0, argv0);
  return 2;
}

#ifndef _WIN32
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  char byte = 1;
  // write(2) is async-signal-safe; the return value is irrelevant (the
  // pipe being full still wakes the reader).
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}
#endif

/// Applies one KEY=VALUE pair to the config; exits with the config
/// layer's own message on error.
bool ApplyConfig(ServerConfig* config, const std::string& pair) {
  size_t eq = pair.find('=');
  if (eq == std::string::npos || eq == 0) {
    obs::LogError("--config wants KEY=VALUE, got \"%s\"", pair.c_str());
    return false;
  }
  std::string error;
  if (!config->Set(std::string_view(pair).substr(0, eq),
                   std::string_view(pair).substr(eq + 1), &error)) {
    obs::LogError("%s", error.c_str());
    return false;
  }
  return true;
}

/// Deprecated flag bridge: one warning per old spelling, then the exact
/// --config equivalent.
bool ApplyDeprecated(ServerConfig* config, const char* flag,
                     const std::string& key, const std::string& value) {
  obs::LogWarn("%s is deprecated; use --config %s=%s", flag, key.c_str(),
               value.c_str());
  std::string error;
  if (!config->Set(key, value, &error)) {
    obs::LogError("%s", error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  config.tcp_port = 4333;
  bool print_port = false;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("vadalogd %s (protocol v%d..%d)\n", kVersionString,
                  protocol::kVersion, protocol::kMaxVersion);
      return 0;
    } else if (std::strcmp(arg, "--config") == 0 && i + 1 < argc) {
      std::string pair = argv[++i];
      if (pair == "list") {
        std::fputs(ServerConfig::DescribeKeys().c_str(), stdout);
        return 0;
      }
      if (!ApplyConfig(&config, pair)) return 2;
    } else if (std::strncmp(arg, "--config=", 9) == 0) {
      std::string pair = arg + 9;
      if (pair == "list") {
        std::fputs(ServerConfig::DescribeKeys().c_str(), stdout);
        return 0;
      }
      if (!ApplyConfig(&config, pair)) return 2;
    } else if (std::strncmp(arg, "--tcp-port=", 11) == 0) {
      if (!ApplyDeprecated(&config, "--tcp-port", "tcp_port", arg + 11)) {
        return 2;
      }
    } else if (std::strcmp(arg, "--no-tcp") == 0) {
      if (!ApplyDeprecated(&config, "--no-tcp", "tcp", "false")) return 2;
    } else if (std::strncmp(arg, "--unix=", 7) == 0) {
      if (!ApplyDeprecated(&config, "--unix", "unix", arg + 7)) return 2;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      if (!ApplyDeprecated(&config, "--workers", "workers", arg + 10)) {
        return 2;
      }
    } else if (std::strncmp(arg, "--search-threads=", 17) == 0) {
      if (!ApplyDeprecated(&config, "--search-threads", "search_threads",
                           arg + 17)) {
        return 2;
      }
    } else if (std::strncmp(arg, "--max-inflight=", 15) == 0) {
      if (!ApplyDeprecated(&config, "--max-inflight", "max_inflight",
                           arg + 15)) {
        return 2;
      }
    } else if (std::strncmp(arg, "--max-inflight-per-session=", 27) == 0) {
      if (!ApplyDeprecated(&config, "--max-inflight-per-session",
                           "max_inflight_per_session", arg + 27)) {
        return 2;
      }
    } else if (std::strncmp(arg, "--cache-bytes=", 14) == 0) {
      if (!ApplyDeprecated(&config, "--cache-bytes", "cache_bytes",
                           arg + 14)) {
        return 2;
      }
    } else if (std::strcmp(arg, "--print-port") == 0) {
      print_port = true;
    } else if (std::strcmp(arg, "--load") == 0 && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return Usage(argv[0]);
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return Usage(argv[0]);
    }
  }

  std::string config_error = config.Validate();
  if (!config_error.empty()) {
    obs::LogError("invalid config: %s", config_error.c_str());
    return 2;
  }

#ifdef _WIN32
  obs::LogError("vadalogd requires POSIX sockets");
  return 1;
#else
  // Handlers go in before anything listens or loads: a supervisor's
  // SIGTERM during a slow --load preload must still shut down
  // gracefully (exit 0, socket files unlinked), not hit the default
  // disposition.
  if (::pipe(g_signal_pipe) != 0) {
    obs::LogError("pipe: %s", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  Server server(config);
  std::string error;
  if (!server.Start(&error)) {
    obs::LogError("%s", error.c_str());
    return 1;
  }

  for (const auto& [name, path] : preloads) {
    std::ifstream file(path);
    if (!file) {
      obs::LogError("cannot open %s", path.c_str());
      return 1;
    }
    std::stringstream text;
    text << file.rdbuf();
    protocol::Request request;
    request.cmd = protocol::Command::kLoadProgram;
    request.session = name;
    request.program = text.str();
    JsonValue response = server.registry().Handle(request).ToJson();
    const JsonValue* ok = response.Find("ok");
    if (ok == nullptr || !ok->AsBool()) {
      obs::LogError("preload %s failed: %s", name.c_str(),
                    response.Dump().c_str());
      return 1;
    }
    obs::LogInfo("loaded session %s from %s", name.c_str(), path.c_str());
  }

  if (print_port) {
    std::printf("PORT %u\n", server.tcp_port());
    std::fflush(stdout);
  }
  std::string endpoints;
  if (config.tcp) {
    endpoints += " on 127.0.0.1:" + std::to_string(server.tcp_port());
  }
  if (!config.unix_path.empty()) {
    endpoints += (endpoints.empty() ? " on unix:" : " and unix:");
    endpoints += config.unix_path;
  }
  obs::LogInfo("listening%s (1 loop + %zu workers)", endpoints.c_str(),
               config.workers);

  // Park until SIGINT/SIGTERM, then shut down gracefully. A signal that
  // arrived during startup is already buffered in the pipe.
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  obs::LogInfo("shutting down");
  server.Stop();
  return 0;
#endif
}
