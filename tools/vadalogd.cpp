// vadalogd — the long-lived reasoning daemon. Loads programs once into
// named sessions and answers many queries against them concurrently over
// a newline-delimited JSON protocol (see src/server/protocol.h and the
// README's "Running as a service" section).
//
// Usage:
//   vadalogd [options]
//     --tcp-port=N            listen on 127.0.0.1:N (default 4333;
//                             0 = ephemeral, see --print-port)
//     --no-tcp                disable the TCP endpoint
//     --unix=PATH             also listen on a Unix-domain socket
//     --workers=N             worker pool size (default 4)
//     --search-threads=N      default parallel-search threads per query
//     --max-inflight=N        global in-flight request cap (default 64)
//     --max-inflight-per-session=N   per-session cap (default 16)
//     --cache-bytes=N         per-session cache eviction threshold
//     --load NAME=FILE        preload FILE into session NAME (repeatable)
//     --print-port            print "PORT <n>" once listening (scripts
//                             use this with --tcp-port=0)
//     --version
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, finish
// in-flight requests, exit 0.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "base/version.h"
#include "server/server.h"

using namespace vadalog;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--tcp-port=N] [--no-tcp] [--unix=PATH] [--workers=N]\n"
      "          [--search-threads=N] [--max-inflight=N]\n"
      "          [--max-inflight-per-session=N] [--cache-bytes=N]\n"
      "          [--load NAME=FILE]... [--print-port]\n",
      argv0);
  return 2;
}

#ifndef _WIN32
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  char byte = 1;
  // write(2) is async-signal-safe; the return value is irrelevant (the
  // pipe being full still wakes the reader).
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}
#endif

bool ParseSize(const char* text, uint64_t* out) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  options.tcp_port = 4333;
  bool print_port = false;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("vadalogd %s (protocol v%d)\n", kVersionString,
                  protocol::kVersion);
      return 0;
    } else if (std::strncmp(arg, "--tcp-port=", 11) == 0) {
      if (!ParseSize(arg + 11, &value) || value > 65535) return Usage(argv[0]);
      options.tcp_port = static_cast<uint16_t>(value);
    } else if (std::strcmp(arg, "--no-tcp") == 0) {
      options.tcp = false;
    } else if (std::strncmp(arg, "--unix=", 7) == 0) {
      options.unix_path = arg + 7;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      if (!ParseSize(arg + 10, &value) || value == 0) return Usage(argv[0]);
      options.workers = static_cast<size_t>(value);
    } else if (std::strncmp(arg, "--search-threads=", 17) == 0) {
      if (!ParseSize(arg + 17, &value) || value == 0) return Usage(argv[0]);
      options.session.search_threads = static_cast<uint32_t>(value);
    } else if (std::strncmp(arg, "--max-inflight=", 15) == 0) {
      if (!ParseSize(arg + 15, &value) || value == 0) return Usage(argv[0]);
      options.max_inflight = static_cast<size_t>(value);
    } else if (std::strncmp(arg, "--max-inflight-per-session=", 27) == 0) {
      if (!ParseSize(arg + 27, &value) || value == 0) return Usage(argv[0]);
      options.max_inflight_per_session = static_cast<size_t>(value);
    } else if (std::strncmp(arg, "--cache-bytes=", 14) == 0) {
      if (!ParseSize(arg + 14, &value)) return Usage(argv[0]);
      options.session.cache_byte_limit = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--print-port") == 0) {
      print_port = true;
    } else if (std::strcmp(arg, "--load") == 0 && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return Usage(argv[0]);
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return Usage(argv[0]);
    }
  }

#ifdef _WIN32
  std::fprintf(stderr, "vadalogd requires POSIX sockets\n");
  return 1;
#else
  // Handlers go in before anything listens or loads: a supervisor's
  // SIGTERM during a slow --load preload must still shut down
  // gracefully (exit 0, socket files unlinked), not hit the default
  // disposition.
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "vadalogd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "vadalogd: %s\n", error.c_str());
    return 1;
  }

  for (const auto& [name, path] : preloads) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "vadalogd: cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream text;
    text << file.rdbuf();
    protocol::Request request;
    request.cmd = protocol::Command::kLoadProgram;
    request.session = name;
    request.program = text.str();
    JsonValue response = server.registry().Handle(request);
    const JsonValue* ok = response.Find("ok");
    if (ok == nullptr || !ok->AsBool()) {
      std::fprintf(stderr, "vadalogd: preload %s failed: %s\n", name.c_str(),
                   response.Dump().c_str());
      return 1;
    }
    std::fprintf(stderr, "vadalogd: loaded session %s from %s\n",
                 name.c_str(), path.c_str());
  }

  if (print_port) {
    std::printf("PORT %u\n", server.tcp_port());
    std::fflush(stdout);
  }
  std::fprintf(stderr, "vadalogd: listening%s%s%s%s\n",
               options.tcp ? (" on 127.0.0.1:" +
                              std::to_string(server.tcp_port()))
                                 .c_str()
                           : "",
               options.unix_path.empty() ? "" : " and unix:",
               options.unix_path.empty() ? "" : options.unix_path.c_str(),
               "");

  // Park until SIGINT/SIGTERM, then shut down gracefully. A signal that
  // arrived during startup is already buffered in the pipe.
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "vadalogd: shutting down\n");
  server.Stop();
  return 0;
#endif
}
