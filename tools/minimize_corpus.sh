#!/usr/bin/env bash
# Minimizes the checked-in fuzz seed corpora with libFuzzer's -merge=1:
# replaces each fuzz/corpus/<name> with the coverage-minimal subset of
# itself. Run after folding a long fuzzing session's findings back in.
#
# usage: tools/minimize_corpus.sh BUILD_DIR [TARGET...]
#
# BUILD_DIR must be a libFuzzer-instrumented build (clang; see
# fuzz/README.md) — the standalone GCC driver cannot merge, and this
# script detects that and refuses rather than silently deleting seeds.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:?usage: tools/minimize_corpus.sh BUILD_DIR [TARGET...]}"
shift || true

declare -A corpus_of=(
  [fuzz_json]=json
  [fuzz_request_line]=request_line
  [fuzz_vdf2_frame]=vdf2
  [fuzz_vadalog_parser]=vadalog
  [fuzz_metrics_snapshot]=metrics
)

targets=("$@")
if [ "${#targets[@]}" -eq 0 ]; then
  targets=("${!corpus_of[@]}")
fi

for target in "${targets[@]}"; do
  corpus="${corpus_of[$target]:?unknown fuzz target: $target}"
  binary="$build/fuzz/$target"
  if [ ! -x "$binary" ]; then
    echo "error: $binary not built" >&2
    exit 1
  fi
  if ! "$binary" -help=1 2>/dev/null | grep -q 'merge'; then
    echo "error: $binary is the standalone driver (no libFuzzer);" \
         "rebuild with clang per fuzz/README.md" >&2
    exit 1
  fi
  src="$repo/fuzz/corpus/$corpus"
  tmp="$(mktemp -d)"
  echo "== $target: merging $src into $tmp"
  "$binary" -merge=1 "$tmp" "$src"
  before=$(find "$src" -type f | wc -l)
  after=$(find "$tmp" -type f | wc -l)
  find "$src" -type f -delete
  cp "$tmp"/* "$src"/ 2>/dev/null || true
  rm -rf "$tmp"
  echo "== $target: $before seeds -> $after"
done
