// vadalog_lint — source-located static diagnostics over Vadalog programs.
//
// Usage:
//   vadalog_lint [--format=text|json|sarif] <program-file>...
//
// Runs the full analysis/lint.h check catalog (wardedness witnesses,
// stratification, dead rules, singletons, fragment notes — see README
// "Static analysis & linting") over each file and renders the combined
// report. Exit status: 0 when no error-severity diagnostic fired, 1 when
// one did (or a file cannot be read), 2 on usage errors. Warnings and
// notes never affect the exit status, so CI can gate on errors alone.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lint.h"

using namespace vadalog;

namespace {

enum class Format { kText, kJson, kSarif };

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--format=text|json|sarif] <program-file>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Format format = Format::kText;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--format=", 9) == 0) {
      const char* value = arg + 9;
      if (std::strcmp(value, "text") == 0) {
        format = Format::kText;
      } else if (std::strcmp(value, "json") == 0) {
        format = Format::kJson;
      } else if (std::strcmp(value, "sarif") == 0) {
        format = Format::kSarif;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) return Usage(argv[0]);

  std::vector<FileDiagnostics> files;
  bool read_failure = false;
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      read_failure = true;
      continue;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    LintResult result = LintSource(buffer.str(), path);
    files.push_back(std::move(result.file));
  }

  size_t errors = 0, warnings = 0, notes = 0;
  for (const FileDiagnostics& file : files) {
    errors += file.CountSeverity(Severity::kError);
    warnings += file.CountSeverity(Severity::kWarning);
    notes += file.CountSeverity(Severity::kNote);
  }

  switch (format) {
    case Format::kText:
      for (const FileDiagnostics& file : files) {
        std::fputs(RenderText(file).c_str(), stdout);
      }
      std::printf("%zu error(s), %zu warning(s), %zu note(s)\n", errors,
                  warnings, notes);
      break;
    case Format::kJson:
      std::fputs(RenderJson(files).c_str(), stdout);
      break;
    case Format::kSarif:
      std::fputs(RenderSarif(files).c_str(), stdout);
      break;
  }
  return (errors > 0 || read_failure) ? 1 : 0;
}
