// OWL 2 QL entailment-regime reasoning (Example 3.3): the warded,
// piece-wise linear TGD encoding of SubClass/Type/Restriction/Inverse
// inference, run over a synthetic ontology.
//
// Build & run:  ./build/examples/owl2ql_reasoning

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/classify.h"
#include "ast/parser.h"
#include "base/rng.h"
#include "engine/certain.h"
#include "engine/search_cache.h"
#include "gen/generators.h"
#include "storage/instance.h"

using namespace vadalog;

int main() {
  // VADALOG_EXAMPLE_SCALE > 1 shrinks the expensive parts so sanitizer/CI
  // runs stay fast (the asan test preset sets it to 10): the exhaustive
  // linear proof search is swapped for chase-based decisions, and the
  // generated-ontology sizes are divided by the scale.
  uint32_t scale = 1;
  if (const char* env = std::getenv("VADALOG_EXAMPLE_SCALE")) {
    int parsed = std::atoi(env);
    if (parsed > 1) scale = static_cast<uint32_t>(parsed);
  }

  Program program = MakeOwl2QlProgram();

  // A small hand-written ontology on top of the Example 3.3 rules.
  std::string facts = R"(
    subclass(professor, faculty).
    subclass(faculty, employee).
    subclass(employee, person).
    restriction(teacher, teaches).
    inverse(teaches, taughtBy).
    restriction(student, taughtBy).
    type(ada, professor).
    type(ada, teacher).
  )";
  std::string error = ParseInto(facts, &program);
  if (!error.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  ProgramClassification c = ClassifyProgram(program);
  std::printf("Example 3.3 rule set: warded=%s, piece-wise linear=%s\n",
              c.warded ? "yes" : "no", c.piecewise_linear ? "yes" : "no");

  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());

  // All inferred types of ada (through the transitive subclass closure and
  // the restriction/inverse round trip).
  ConjunctiveQuery query;
  PredicateId type = program.symbols().FindPredicate("type");
  query.output = {Term::Variable(0)};
  query.atoms = {
      Atom(type, {program.symbols().InternConstant("ada"),
                  Term::Variable(0)})};
  std::printf("\ninferred types of ada (chase engine):\n");
  for (const auto& row : CertainAnswersViaChase(program, db, query)) {
    std::printf("  type(ada, %s)\n",
                program.symbols().ConstantName(row[0]).c_str());
  }

  // Cross-check one decision with the linear proof search. The existential
  // chain  type(ada,teacher) → triple(ada,teaches,z) → (inverse) →
  // triple(z,taughtBy,ada) → type(z,student)  types the *null* z, so the
  // certain answers for ada must NOT include student — but the Boolean
  // query "someone is typed student" is certain.
  Term student = program.symbols().InternConstant("student");
  ConjunctiveQuery someone;
  someone.atoms = {Atom(type, {Term::Variable(0), student})};
  bool ada_student, any_student;
  if (scale > 1) {
    std::vector<std::vector<Term>> ada_types =
        CertainAnswersViaChase(program, db, query);
    ada_student = std::find(ada_types.begin(), ada_types.end(),
                            std::vector<Term>{student}) != ada_types.end();
    any_student = !CertainAnswersViaChase(program, db, someone).empty();
  } else {
    // One memoization cache serves both decisions: the refutation of the
    // first dumps its canonical-state closure, which the second reuses.
    ProofSearchCache cache(program, db);
    ProofSearchOptions search_options;
    search_options.cache = &cache;
    ada_student =
        IsCertainViaLinearSearch(program, db, query, {student}, search_options);
    any_student =
        IsCertainViaLinearSearch(program, db, someone, {}, search_options);
  }
  const char* engine_name = scale > 1 ? "chase" : "proof search";
  std::printf("\nada typed student (%s): %s\n", engine_name,
              ada_student ? "yes" : "no");
  std::printf("someone typed student (%s): %s\n", engine_name,
              any_student ? "yes" : "no");

  // Scale demo on a generated ontology.
  Program big = MakeOwl2QlProgram();
  Rng rng(2026);
  // Each size stays >= 1: the generator draws Rng::Below(size), which
  // requires a positive bound.
  AddOntologyFacts(&big, /*num_classes=*/std::max(200 / scale, 1u),
                   /*num_properties=*/std::max(40 / scale, 1u),
                   /*num_individuals=*/std::max(1000 / scale, 1u), &rng);
  NormalizeToSingleHead(&big, nullptr);
  Instance big_db = DatabaseFromFacts(big.facts());
  ChaseResult chased = RunChase(big, big_db);
  std::printf("\nsynthetic ontology: %zu facts -> %zu chase atoms "
              "(%lu nulls, %lu rounds)\n",
              big_db.size(), chased.instance.size(),
              static_cast<unsigned long>(chased.nulls_created),
              static_cast<unsigned long>(chased.rounds));
  return (!ada_student && any_student) ? 0 : 1;
}
