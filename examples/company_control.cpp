// A knowledge-graph scenario of the kind that motivates Vadalog (Section
// 1): corporate ownership and "person of significant control" reasoning.
// Ownership control is transitive (linear recursion); every controlled
// company must file a controller record (existential); filings propagate
// through control edges (warded recursion over nulls).
//
// The rule set is warded and piece-wise linear, so the reasoner's auto
// engine uses the space-efficient linear proof search of Section 4.3.
//
// Build & run:  ./build/examples/company_control

#include <cstdio>

#include "vadalog/reasoner.h"

int main() {
  const char* text = R"(
    % Direct majority ownership is control; control is transitive through
    % ownership edges (piece-wise linear recursion).
    controls(X, Y) :- owns_majority(X, Y).
    controls(X, Z) :- owns_majority(X, Y), controls(Y, Z).

    % Every controlled company has a significant-control filing by some
    % officer (existential value invention).
    filing(Y, F) :- controls(X, Y).

    % A filing officer of a company extends to companies it controls
    % (recursion over the invented officer: the filing atom is the ward).
    filing(Z, F) :- filing(Y, F), owns_majority(Y, Z).

    owns_majority(alpha_holdings, beta_corp).
    owns_majority(beta_corp, gamma_ltd).
    owns_majority(gamma_ltd, delta_gmbh).
    owns_majority(omega_fund, alpha_holdings).

    ?(Y) :- controls(alpha_holdings, Y).
    ?(X) :- controls(X, delta_gmbh).
    ?() :- filing(delta_gmbh, F).
  )";

  std::string error;
  std::unique_ptr<vadalog::Reasoner> reasoner =
      vadalog::Reasoner::FromText(text, &error);
  if (reasoner == nullptr) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  std::printf("=== analysis ===\n%s\n", reasoner->AnalysisReport().c_str());

  std::printf("=== companies controlled by alpha_holdings ===\n");
  for (const std::string& row : reasoner->AnswerStrings(0)) {
    std::printf("  %s\n", row.c_str());
  }

  std::printf("\n=== ultimate controllers of delta_gmbh ===\n");
  for (const std::string& row : reasoner->AnswerStrings(1)) {
    std::printf("  %s\n", row.c_str());
  }

  std::printf("\n=== delta_gmbh has a control filing? ===\n");
  bool filed = !reasoner->Answer(2).empty();
  std::printf("  %s (officer is an invented null — certain existence, "
              "no certain identity)\n",
              filed ? "yes" : "no");
  return filed ? 0 : 1;
}
