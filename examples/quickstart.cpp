// Quickstart: parse a warded, piece-wise linear program, inspect its
// analysis, and answer a query with the engine picked automatically
// (the Section 4.3 linear proof search for WARD ∩ PWL programs).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "vadalog/reasoner.h"

int main() {
  const char* text = R"(
    % Reachability over an extensional edge relation (linear recursion).
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- edge(X, Y), reach(Y, Z).

    % Every reachable node from a hub gets a service contact (existential).
    contact(X, C) :- reach(hub, X).

    edge(hub, a). edge(a, b). edge(b, c). edge(d, hub).

    ?(X) :- reach(hub, X).
    ?() :- contact(c, C).
  )";

  std::string error;
  std::unique_ptr<vadalog::Reasoner> reasoner =
      vadalog::Reasoner::FromText(text, &error);
  if (reasoner == nullptr) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  std::printf("=== analysis ===\n%s\n",
              reasoner->AnalysisReport().c_str());

  std::printf("=== nodes reachable from hub ===\n");
  for (const std::string& row : reasoner->AnswerStrings(0)) {
    std::printf("  reach(hub, ·) ∋ %s\n", row.c_str());
  }

  // The contact witness is an existential null: the Boolean query is
  // certainly true even though no `contact` fact exists in the database.
  std::printf("\n=== does c have some contact? ===\n");
  bool certain = !reasoner->Answer(1).empty();
  std::printf("  certain: %s (witnessed by a labeled null)\n",
              certain ? "yes" : "no");
  return certain ? 0 : 1;
}
