// The Section 5 undecidability witness: piece-wise linearity WITHOUT
// wardedness (Theorem 5.1). The fixed PWL-but-unwarded TGD set generates
// candidate tilings; a tiling system has a solution iff the Boolean query
// is certain. On unsolvable instances the chase diverges — we can only run
// it to a budget, which is exactly the semi-decidability the theorem
// predicts.
//
// Build & run:  ./build/examples/tiling_undecidability

#include <cstdio>

#include "analysis/fragments.h"
#include "analysis/wardedness.h"
#include "chase/chase.h"
#include "storage/homomorphism.h"
#include "tiling/tiling.h"

using namespace vadalog;

namespace {

void RunSystem(const char* name, const TilingSystem& system) {
  TilingReduction reduction = BuildTilingReduction(system);
  Instance db = DatabaseFromFacts(reduction.program.facts());

  bool direct = SolveTilingDirect(system, 5, 5);

  ChaseOptions options;
  options.isomorphism_termination = false;  // Σ is unwarded!
  options.max_depth = 10;
  options.max_atoms = 100000;
  ChaseResult chase = RunChase(reduction.program, db, options);
  bool certain = !EvaluateQuerySorted(reduction.query, chase.instance).empty();

  std::printf("%-12s direct-solver=%-3s reduction=%-3s chase-atoms=%zu "
              "saturated=%s\n",
              name, direct ? "yes" : "no", certain ? "yes" : "no",
              chase.instance.size(), chase.Saturated() ? "yes" : "no");
}

}  // namespace

int main() {
  TilingReduction probe = BuildTilingReduction(MakeSolvableSystem());
  std::printf("Section 5 reduction: piece-wise linear = %s, warded = %s\n\n",
              IsPiecewiseLinear(probe.program) ? "yes" : "no",
              IsWarded(probe.program) ? "yes" : "no");

  RunSystem("solvable", MakeSolvableSystem());
  RunSystem("unsolvable", MakeUnsolvableSystem());

  // The divergence on the unsolvable system: the instance keeps growing
  // with the depth budget (no fixpoint exists).
  std::printf("\nunsolvable system, chase growth by depth budget:\n");
  TilingReduction reduction = BuildTilingReduction(MakeUnsolvableSystem());
  Instance db = DatabaseFromFacts(reduction.program.facts());
  for (uint32_t depth = 2; depth <= 10; depth += 2) {
    ChaseOptions options;
    options.isomorphism_termination = false;
    options.max_depth = depth;
    ChaseResult chase = RunChase(reduction.program, db, options);
    std::printf("  depth %2u -> %zu atoms\n", depth, chase.instance.size());
  }
  return 0;
}
