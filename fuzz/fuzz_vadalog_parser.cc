// Fuzz target: the Vadalog surface-syntax lexer/parser (ParseProgram) —
// what LOAD_PROGRAM, ADD_FACTS, and the CLI feed with client-supplied
// text. A successful parse is additionally pushed through ParseInto on
// a fresh program (the ADD_FACTS path, which shares a symbol table) so
// both entry points see every input that gets past the lexer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "ast/parser.h"
#include "ast/program.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Pathological inputs (deeply repetitive clause soup) get slow before
  // they get interesting; the wire path has max_line_bytes in front of
  // the parser anyway, so a cap loses no reachable behavior.
  if (size > (64u << 10)) return 0;
  std::string_view text(reinterpret_cast<const char*>(data), size);
  vadalog::ParseResult result = vadalog::ParseProgram(text);
  if (!result.ok()) {
    if (result.error.empty()) __builtin_trap();  // failure without message
    return 0;
  }
  vadalog::Program incremental;
  vadalog::SourceLoc where;
  vadalog::ParseInto(text, &incremental, &where);
  return 0;
}
