// Fuzz target: the v1 request line parser (protocol::ParseRequest) plus
// the response paths a request immediately feeds — HELLO negotiation and
// the error-response encoder. These are the first things untrusted
// socket bytes reach in vadalogd, so they must be total: any line either
// parses into a Request or yields a structured error, never a crash.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace protocol = vadalog::protocol;
  std::string_view line(reinterpret_cast<const char*>(data), size);
  protocol::Error error;
  vadalog::JsonValue id;
  std::optional<protocol::Request> request =
      protocol::ParseRequest(line, &error, &id);
  if (!request.has_value()) {
    // The error path must still render a framed response (one JSON
    // line) with the id echoed — what the server sends for bad input.
    std::string encoded = protocol::EncodeResponse(
        protocol::Response(protocol::ErrorResponse(error, id)),
        protocol::Encoding::kJson);
    if (encoded.empty() || encoded.back() != '\n') __builtin_trap();
    return 0;
  }
  protocol::CommandName(request->cmd);
  if (request->cmd == protocol::Command::kHello) {
    const std::vector<protocol::Encoding> allowed = {
        protocol::Encoding::kJson, protocol::Encoding::kBinary};
    protocol::WireState state;
    protocol::Response response =
        protocol::NegotiateHello(*request, allowed, &state);
    protocol::EncodeResponse(response, state.encoding);
  }
  return 0;
}
