// File-driven driver for the fuzz harnesses on toolchains without the
// libFuzzer runtime (GCC, or clang built without compiler-rt): each
// command-line argument is a seed file or a corpus directory, every
// regular file found is fed to LLVMFuzzerTestOneInput once, and any
// crash/sanitizer abort fails the run. This is what the local ctest
// smoke entries execute; real coverage-guided fuzzing needs the
// libFuzzer build (see fuzz/README.md), where this file is not linked.
//
// Dash-prefixed arguments are ignored so the same ctest command line
// (`fuzz_x -runs=0 corpus/x`) works under both drivers.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // libFuzzer-style flag: not ours
    std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::directory_iterator(path, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "fuzz driver: no such input: %s\n", argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::printf("fuzz driver: ran %zu inputs without crashing\n",
              files.size());
  return 0;
}
