// Fuzz target: JsonValue::Parse — the strict JSON parser every wire
// request and METRICS document flows through. Beyond crash-freedom it
// checks the round-trip property: a successfully parsed value must
// Dump() to text that reparses to the same Dump() (Dump is canonical,
// so one round trip must reach a fixed point).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "server/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  std::string error;
  std::optional<vadalog::JsonValue> value =
      vadalog::JsonValue::Parse(text, &error);
  if (!value.has_value()) return 0;
  std::string dumped = value->Dump();
  std::string reparse_error;
  std::optional<vadalog::JsonValue> reparsed =
      vadalog::JsonValue::Parse(dumped, &reparse_error);
  if (!reparsed.has_value() || reparsed->Dump() != dumped) {
    __builtin_trap();  // canonical dump failed to round-trip
  }
  return 0;
}
