// Fuzz target: the METRICS/STATS snapshot consumption path — JSON text
// in, Prometheus exposition text out (server/prometheus.h). This is the
// whole vadalog_metrics stdin mode on untrusted bytes: saved snapshots
// are converted offline, so the converter must be total over arbitrary
// documents, not just registry-produced ones.

#include <cstddef>
#include <cstdint>
#include <string>

#include "server/prometheus.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  std::string out;
  std::string error;
  if (!vadalog::prometheus::RenderDocumentText(text, &out, &error)) {
    if (error.empty()) __builtin_trap();  // failure without a message
    return 0;
  }
  // Exposition output is line-framed: every sample/header line the
  // renderer emits must end in a newline (an unterminated tail would
  // corrupt a textfile-collector concatenation).
  if (!out.empty() && out.back() != '\n') __builtin_trap();
  return 0;
}
