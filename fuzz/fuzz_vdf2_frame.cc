// Fuzz target: the v2 binary answer-frame decoder
// (protocol::DecodeAnswerFrame). Clients decode frames produced by the
// server, but a client library must also survive a malicious or
// corrupted peer, so the decoder is treated as an untrusted-input
// parser. Checks the inverse property the header promises: any payload
// that decodes must re-encode and decode back to an equal table.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace protocol = vadalog::protocol;
  std::string_view payload(reinterpret_cast<const char*>(data), size);
  protocol::AnswerTable table;
  std::string error;
  if (!protocol::DecodeAnswerFrame(payload, &table, &error)) return 0;
  std::string reencoded = protocol::EncodeAnswerFrame(table);
  protocol::AnswerTable roundtrip;
  if (!protocol::DecodeAnswerFrame(reencoded, &roundtrip, &error) ||
      !(roundtrip == table)) {
    __builtin_trap();  // encode is not the inverse of decode
  }
  return 0;
}
