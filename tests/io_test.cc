// Tests for TSV fact loading/saving.

#include <gtest/gtest.h>

#include <sstream>

#include "ast/parser.h"
#include "chase/chase.h"
#include "storage/io.h"

namespace vadalog {
namespace {

TEST(IoTest, LoadsFacts) {
  std::istringstream input(
      "edge\ta\tb\n"
      "edge\tb\tc\n"
      "# comment\n"
      "\n"
      "node\ta\n");
  Program program;
  std::string error = LoadFactsTsv(input, &program);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(program.facts().size(), 3u);
  Instance db = DatabaseFromFacts(program.facts());
  EXPECT_EQ(db.size(), 3u);
}

TEST(IoTest, RejectsArityClash) {
  std::istringstream input(
      "edge\ta\tb\n"
      "edge\ta\n");
  Program program;
  std::string error = LoadFactsTsv(input, &program);
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("arity"), std::string::npos);
}

TEST(IoTest, RejectsMissingPredicate) {
  std::istringstream input("\ta\tb\n");
  Program program;
  EXPECT_FALSE(LoadFactsTsv(input, &program).empty());
}

TEST(IoTest, ZeroArityFacts) {
  std::istringstream input("flag\n");
  Program program;
  std::string error = LoadFactsTsv(input, &program);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(program.facts().size(), 1u);
  EXPECT_TRUE(program.facts()[0].args.empty());
}

TEST(IoTest, ValuesWithSpacesSurvive) {
  std::istringstream input("person\tAda Lovelace\tLondon\n");
  Program program;
  ASSERT_TRUE(LoadFactsTsv(input, &program).empty());
  EXPECT_EQ(program.symbols().ConstantName(program.facts()[0].args[0]),
            "Ada Lovelace");
}

TEST(IoTest, RoundTripThroughWriter) {
  std::istringstream input(
      "edge\ta\tb\n"
      "node\tc\n");
  Program program;
  ASSERT_TRUE(LoadFactsTsv(input, &program).empty());
  Instance db = DatabaseFromFacts(program.facts());

  std::ostringstream out;
  WriteFactsTsv(db, program.symbols(), out);

  Program reloaded;
  std::istringstream back(out.str());
  ASSERT_TRUE(LoadFactsTsv(back, &reloaded).empty());
  EXPECT_EQ(DatabaseFromFacts(reloaded.facts()).size(), db.size());
}

TEST(IoTest, NullsSkippedUnlessRequested) {
  ParseResult parsed = ParseProgram(R"(
    r(X, Z) :- p(X).
    p(a).
  )");
  ASSERT_TRUE(parsed.ok());
  Instance db = DatabaseFromFacts(parsed.program->facts());
  ChaseResult chase = RunChase(*parsed.program, db);

  std::ostringstream no_nulls;
  WriteFactsTsv(chase.instance, parsed.program->symbols(), no_nulls, false);
  EXPECT_EQ(no_nulls.str().find("_:n"), std::string::npos);

  std::ostringstream with_nulls;
  WriteFactsTsv(chase.instance, parsed.program->symbols(), with_nulls, true);
  EXPECT_NE(with_nulls.str().find("_:n"), std::string::npos);
}

}  // namespace
}  // namespace vadalog
