// Tests for the semi-naive Datalog evaluator and the Section 7
// optimization knobs (join-order bias, strata materialization).

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "datalog/seminaive.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    db = DatabaseFromFacts(program.facts());
  }

  size_t Count(const char* predicate, const Instance& instance) {
    PredicateId p = program.symbols().FindPredicate(predicate);
    const Relation* rel = instance.RelationFor(p);
    return rel == nullptr ? 0 : rel->size();
  }
};

TEST(DatalogTest, TransitiveClosureChain) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, f).
  )");
  DatalogResult result = EvaluateDatalog(s.program, s.db);
  EXPECT_TRUE(result.reached_fixpoint);
  EXPECT_EQ(s.Count("t", result.instance), 10u);  // 4+3+2+1
}

TEST(DatalogTest, SeminaiveAndNaiveAgree) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    s(X) :- t(X, X).
    e(a, b). e(b, c). e(c, a). e(c, d).
  )");
  DatalogOptions naive;
  naive.seminaive = false;
  DatalogResult r1 = EvaluateDatalog(s.program, s.db);
  DatalogResult r2 = EvaluateDatalog(s.program, s.db, naive);
  EXPECT_EQ(s.Count("t", r1.instance), s.Count("t", r2.instance));
  EXPECT_EQ(s.Count("s", r1.instance), s.Count("s", r2.instance));
  EXPECT_EQ(s.Count("s", r1.instance), 3u);  // cycle a→b→c→a
}

TEST(DatalogTest, StratifiedEvaluationOrders) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    u(X, Y) :- t(X, Y).
    u(X, Z) :- u(X, Y), t(Y, Z).
    e(a, b). e(b, c).
  )");
  DatalogResult result = EvaluateDatalog(s.program, s.db);
  EXPECT_EQ(s.Count("t", result.instance), 3u);
  EXPECT_EQ(s.Count("u", result.instance), 3u);
}

TEST(DatalogTest, MaterializeStrataDropsDeadRelations) {
  TestEnv s(R"(
    mid(X, Y) :- e(X, Y).
    top(X) :- mid(X, Y).
    e(a, b). e(b, c).
  )");
  DatalogOptions options;
  options.materialize_strata = true;
  options.preserve = {s.program.symbols().FindPredicate("top")};
  DatalogResult result = EvaluateDatalog(s.program, s.db, options);
  // top is preserved; e and mid are dropped after their last reader.
  EXPECT_EQ(s.Count("top", result.instance), 2u);
  EXPECT_EQ(s.Count("mid", result.instance), 0u);
  EXPECT_EQ(s.Count("e", result.instance), 0u);
}

TEST(DatalogTest, MaterializeStrataPreservesAnswers) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    reach(Y) :- t(a, Y).
    e(a, b). e(b, c). e(c, d).
  )");
  DatalogOptions options;
  options.materialize_strata = true;
  options.preserve = {s.program.symbols().FindPredicate("reach")};
  DatalogResult gc = EvaluateDatalog(s.program, s.db, options);
  DatalogResult plain = EvaluateDatalog(s.program, s.db);
  EXPECT_EQ(s.Count("reach", gc.instance), s.Count("reach", plain.instance));
  EXPECT_LT(gc.instance.size(), plain.instance.size());
}

TEST(DatalogTest, RoundBudgetStopsEarly) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, f). e(f, g).
  )");
  DatalogOptions options;
  options.max_rounds = 2;
  DatalogResult result = EvaluateDatalog(s.program, s.db, options);
  EXPECT_FALSE(result.reached_fixpoint);
  EXPECT_LT(s.Count("t", result.instance), 15u);
}

TEST(DatalogTest, ConstantsInRules) {
  TestEnv s(R"(
    special(X) :- e(a, X).
    e(a, b). e(b, c).
  )");
  DatalogResult result = EvaluateDatalog(s.program, s.db);
  EXPECT_EQ(s.Count("special", result.instance), 1u);
}

TEST(DatalogTest, MutualRecursion) {
  TestEnv s(R"(
    even(X) :- zero(X).
    odd(Y) :- even(X), succ(X, Y).
    even(Y) :- odd(X), succ(X, Y).
    zero(n0).
    succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).
  )");
  DatalogResult result = EvaluateDatalog(s.program, s.db);
  EXPECT_EQ(s.Count("even", result.instance), 3u);  // n0 n2 n4
  EXPECT_EQ(s.Count("odd", result.instance), 2u);   // n1 n3
}

TEST(DatalogTest, RuleApplicationsCounted) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    e(a, b). e(b, c).
  )");
  DatalogResult result = EvaluateDatalog(s.program, s.db);
  EXPECT_EQ(result.rule_applications, 2u);
}

TEST(DatalogTest, SelfJoinBody) {
  TestEnv s(R"(
    tri(X, Y, Z) :- e(X, Y), e(Y, Z), e(X, Z).
    e(a, b). e(b, c). e(a, c).
  )");
  DatalogResult result = EvaluateDatalog(s.program, s.db);
  EXPECT_EQ(s.Count("tri", result.instance), 1u);
}

}  // namespace
}  // namespace vadalog
