// End-to-end integration tests: multi-module scenarios exercised through
// the public facade and cross-checked across engines.

#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/linearize.h"
#include "ast/parser.h"
#include "chase/chase.h"
#include "chase/chase_graph.h"
#include "datalog/seminaive.h"
#include "engine/certain.h"
#include "gen/generators.h"
#include "rewriting/pwl_to_datalog.h"
#include "storage/homomorphism.h"
#include "vadalog/reasoner.h"

namespace vadalog {
namespace {

TEST(IntegrationTest, FullOwl2QlEntailmentRegime) {
  // Example 3.3 with a richer ontology: transitive subclasses, a
  // restriction whose property has an inverse, and the derived typing of
  // invented individuals.
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).

    subclass(sedan, car). subclass(car, vehicle).
    restriction(driver, drives).
    inverse(drives, drivenBy).
    restriction(driven, drivenBy).
    type(car1, sedan).
    type(alice, driver).

    ?(Y) :- type(alice, Y).
    ?(Y) :- type(car1, Y).
    ?() :- triple(alice, drives, V).
  )");
  ASSERT_NE(reasoner, nullptr);
  EXPECT_TRUE(reasoner->classification().warded);
  EXPECT_TRUE(reasoner->classification().piecewise_linear);

  // alice: driver (and nothing else among constants — the thing she
  // drives is a null, typed `driven`, but alice herself is not).
  std::vector<std::string> alice = reasoner->AnswerStrings(0);
  ASSERT_EQ(alice.size(), 1u);
  EXPECT_EQ(alice[0], "(driver)");

  // car1: sedan, car, vehicle via the transitive closure.
  EXPECT_EQ(reasoner->AnswerStrings(1).size(), 3u);

  // alice certainly drives something.
  EXPECT_EQ(reasoner->Answer(2).size(), 1u);
}

TEST(IntegrationTest, AllEnginesOnKnowledgeGraphScenario) {
  const char* text = R"(
    controls(X, Y) :- owns(X, Y).
    controls(X, Z) :- owns(X, Y), controls(Y, Z).
    exposed(X) :- controls(X, Y), sanctioned(Y).
    owns(f1, c1). owns(c1, c2). owns(c2, c3). owns(f2, c3).
    sanctioned(c3).
    ?(X) :- exposed(X).
  )";
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(text);
  ASSERT_NE(reasoner, nullptr);
  ReasonerOptions chase, linear, alternating;
  chase.engine = EngineChoice::kChase;
  linear.engine = EngineChoice::kLinearProof;
  alternating.engine = EngineChoice::kAlternatingProof;
  std::vector<std::vector<Term>> expected = reasoner->Answer(0, chase);
  EXPECT_EQ(expected.size(), 4u);  // f1, c1, c2, f2
  EXPECT_EQ(reasoner->Answer(0, linear), expected);
  EXPECT_EQ(reasoner->Answer(0, alternating), expected);
}

TEST(IntegrationTest, RewriteThenEvaluateOnGeneratedData) {
  // Full pipeline: generate a scenario, rewrite it to PWL Datalog, and
  // compare the Datalog evaluation against the chase on fresh data.
  ScenarioSpec spec;
  spec.shape = RecursionShape::kPiecewiseLinear;
  spec.num_strata = 1;
  spec.rules_per_stratum = 1;
  spec.with_existentials = false;
  spec.seed = 5;
  Program program = GenerateScenario(spec);
  NormalizeToSingleHead(&program, nullptr);
  Rng rng(17);
  AddRandomGraphFacts(&program, "e0", 6, 12, &rng);
  Instance db = DatabaseFromFacts(program.facts());

  std::vector<PredicateId> idb;
  for (PredicateId p : program.IntensionalPredicates()) idb.push_back(p);
  std::sort(idb.begin(), idb.end());
  ConjunctiveQuery query;
  query.output = {Term::Variable(0), Term::Variable(1)};
  query.atoms = {Atom(idb[0], {Term::Variable(0), Term::Variable(1)})};

  RewriteResult rewrite = RewritePwlWardedToDatalog(program, query);
  ASSERT_TRUE(rewrite.datalog.has_value());
  DatalogResult datalog = EvaluateDatalog(*rewrite.datalog, db);
  EXPECT_EQ(EvaluateQuerySorted(rewrite.goal, datalog.instance),
            CertainAnswersViaChase(program, db, query));
}

TEST(IntegrationTest, ProvenanceExplainsChaseAnswer) {
  ParseResult parsed = ParseProgram(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(x, y).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  Instance db = DatabaseFromFacts(program.facts());
  ChaseOptions options;
  options.record_provenance = true;
  ChaseResult chase = RunChase(program, db, options);
  ChaseGraph graph(chase, db);

  Atom target(program.symbols().FindPredicate("t"),
              {program.symbols().InternConstant("a"),
               program.symbols().InternConstant("c")});
  int64_t id = graph.IdOf(target);
  ASSERT_GE(id, 0);
  std::vector<Atom> support = graph.SupportOf(static_cast<size_t>(id));
  // Exactly the two chain edges; the unrelated e(x,y) is not in support.
  EXPECT_EQ(support.size(), 2u);
}

TEST(IntegrationTest, NegationAndRecursionTogether) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    blocked(X, Y) :- node(X), node(Y), not reach(X, Y).
    critical(X) :- node(X), blocked(X, sink).
    edge(a, b). edge(b, sink). edge(z, z).
    node(a). node(b). node(z). node(sink).
    ?(X) :- critical(X).
  )");
  ASSERT_NE(reasoner, nullptr);
  std::vector<std::string> answers = reasoner->AnswerStrings(0);
  // z (self loop only) and sink itself cannot reach sink. Order follows
  // constant internment (sink appears in the facts before z... before
  // node(z)), so compare as a set.
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_TRUE((answers[0] == "(z)" && answers[1] == "(sink)") ||
              (answers[0] == "(sink)" && answers[1] == "(z)"));
}

TEST(IntegrationTest, MultiHeadExistentialSharing) {
  // A multi-head rule shares its invented null across both head atoms;
  // queries joining through the null must see a single witness.
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    assigned(X, W), works(W, dept) :- employee(X).
    employee(emma).
    ?() :- assigned(emma, W), works(W, dept).
    ?() :- assigned(emma, W), works(W2, dept), assigned(emma, W2).
  )");
  ASSERT_NE(reasoner, nullptr);
  EXPECT_EQ(reasoner->Answer(0).size(), 1u);
  EXPECT_EQ(reasoner->Answer(1).size(), 1u);
}

TEST(IntegrationTest, LinearizeAndAnswerEquivalence) {
  Program nonlinear = MakeTransitiveClosureProgram(false);
  Rng rng(23);
  AddRandomGraphFacts(&nonlinear, "e", 12, 24, &rng);
  Program linearized = CloneProgram(nonlinear);
  LinearizeResult transform = LinearizeProgram(&linearized);
  ASSERT_TRUE(transform.now_piecewise);

  Instance db = DatabaseFromFacts(nonlinear.facts());
  ConjunctiveQuery query;
  PredicateId t = nonlinear.symbols().FindPredicate("t");
  query.output = {Term::Variable(0), Term::Variable(1)};
  query.atoms = {Atom(t, {Term::Variable(0), Term::Variable(1)})};
  EXPECT_EQ(CertainAnswersViaChase(nonlinear, db, query),
            CertainAnswersViaChase(linearized, db, query));
}

TEST(IntegrationTest, ScenarioSuiteEndToEnd) {
  // Classify a suite and answer one query per PWL scenario with two
  // engines, asserting agreement — the full pipeline under load.
  std::vector<Program> suite =
      GenerateScenarioSuite(12, SuiteMixture{}, 321);
  size_t checked = 0;
  for (Program& program : suite) {
    ProgramClassification c = ClassifyProgram(program);
    ASSERT_TRUE(c.warded);
    if (!c.piecewise_linear) continue;
    NormalizeToSingleHead(&program, nullptr);
    Rng rng(checked + 1);
    AddRandomGraphFacts(&program, "e0", 4, 6, &rng);
    Instance db = DatabaseFromFacts(program.facts());
    std::vector<PredicateId> idb;
    for (PredicateId p : program.IntensionalPredicates()) {
      if (program.symbols().PredicateArity(p) == 2) idb.push_back(p);
    }
    if (idb.empty()) continue;
    std::sort(idb.begin(), idb.end());
    ConjunctiveQuery query;
    query.output = {Term::Variable(0), Term::Variable(1)};
    query.atoms = {Atom(idb[0], {Term::Variable(0), Term::Variable(1)})};
    EXPECT_EQ(CertainAnswersViaChase(program, db, query),
              CertainAnswersViaSearch(program, db, query))
        << program.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 3u);
}

}  // namespace
}  // namespace vadalog
