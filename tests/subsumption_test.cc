// Tests for the subsumption primitives behind the proof searches' state
// pruning: state-to-state homomorphism (storage/homomorphism), the
// bound-tagged SubsumptionIndex, and the incremental EagerSimplify
// certificate logic.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "base/rng.h"
#include "engine/alternating_search.h"
#include "engine/certain.h"
#include "engine/linear_search.h"
#include "engine/search_cache.h"
#include "engine/state.h"
#include "engine/subsumption.h"
#include "storage/homomorphism.h"
#include "storage/instance.h"

namespace vadalog {
namespace {

Atom A(PredicateId p, std::initializer_list<Term> args) {
  return Atom(p, std::vector<Term>(args));
}

constexpr PredicateId kP = 0;
constexpr PredicateId kQ = 1;

TEST(StateHomomorphismTest, MapsVariablesToAnyTermIdentityOnConstants) {
  Term c0 = Term::Constant(0);
  Term c1 = Term::Constant(1);
  Term x = Term::Variable(0);
  Term y = Term::Variable(1);
  // P(x, y) maps into P(c0, c1).
  EXPECT_TRUE(HasStateHomomorphism({A(kP, {x, y})}, {A(kP, {c0, c1})}));
  // P(c0, y) does not map into P(c1, c1) (constants are rigid) ...
  EXPECT_FALSE(HasStateHomomorphism({A(kP, {c0, y})}, {A(kP, {c1, c1})}));
  // ... but maps into P(c0, c1).
  EXPECT_TRUE(HasStateHomomorphism({A(kP, {c0, y})}, {A(kP, {c0, c1})}));
  // Repeated variable must map consistently: P(x, x) into P(c0, c1) fails.
  EXPECT_FALSE(HasStateHomomorphism({A(kP, {x, x})}, {A(kP, {c0, c1})}));
  EXPECT_TRUE(HasStateHomomorphism({A(kP, {x, x})}, {A(kP, {c1, c1})}));
}

TEST(StateHomomorphismTest, TargetVariablesAreFrozen) {
  Term x = Term::Variable(0);
  Term y = Term::Variable(1);
  // P(x, x) requires both positions equal; the target P(X, Y) has two
  // distinct frozen variables, so there is no homomorphism.
  EXPECT_FALSE(HasStateHomomorphism({A(kP, {x, x})}, {A(kP, {x, y})}));
  // P(x, y) maps onto P(X, X) by sending both variables to X.
  EXPECT_TRUE(HasStateHomomorphism({A(kP, {x, y})}, {A(kP, {x, x})}));
}

TEST(StateHomomorphismTest, MultiAtomConsistencyAcrossAtoms) {
  Term x = Term::Variable(0);
  Term y = Term::Variable(1);
  Term z = Term::Variable(2);
  Term c = Term::Constant(7);
  // {P(x,y), Q(y,c)} into {P(u,v), Q(v,c)}: consistent via x->u, y->v.
  std::vector<Atom> from = {A(kP, {x, y}), A(kQ, {y, c})};
  std::vector<Atom> onto = {A(kP, {Term::Variable(10), Term::Variable(11)}),
                            A(kQ, {Term::Variable(11), c})};
  EXPECT_TRUE(HasStateHomomorphism(from, onto));
  // Break the join: Q(z, c) with z != y still maps (z is independent) ...
  EXPECT_TRUE(
      HasStateHomomorphism({A(kP, {x, y}), A(kQ, {z, c})}, onto));
  // ... but Q(y, c) against a target where the join is broken does not.
  std::vector<Atom> broken = {A(kP, {Term::Variable(10), Term::Variable(11)}),
                              A(kQ, {Term::Variable(12), c})};
  EXPECT_FALSE(HasStateHomomorphism(from, broken));
  // An empty `from` maps trivially; a missing predicate kills the match.
  EXPECT_TRUE(HasStateHomomorphism({}, onto));
  EXPECT_FALSE(HasStateHomomorphism({A(kQ, {x, x})}, {A(kP, {c, c})}));
}

TEST(StateHomomorphismTest, NonInjectiveMapsAllowed) {
  Term x = Term::Variable(0);
  Term y = Term::Variable(1);
  Term u = Term::Variable(5);
  // Two atoms may map onto the same target atom.
  EXPECT_TRUE(HasStateHomomorphism(
      {A(kP, {x, y}), A(kP, {y, x})}, {A(kP, {u, u})}));
}

TEST(SubsumptionIndexTest, FindsRegisteredSubsumerAndRespectsBounds) {
  SubsumptionIndex index;
  CanonicalState general =
      Canonicalize({A(kP, {Term::Constant(3), Term::Variable(0)})});
  EXPECT_EQ(index.FindSubsumer(general, 4, 4), -1);  // empty index
  int64_t id = index.Add(general, /*width=*/4, /*chunk=*/4);
  ASSERT_GE(id, 0);

  CanonicalState specific = Canonicalize(
      {A(kP, {Term::Constant(3), Term::Variable(1)}),
       A(kQ, {Term::Variable(1), Term::Variable(2)})});
  // The general refuted state maps into the more constrained one.
  EXPECT_EQ(index.FindSubsumer(specific, 4, 4), id);
  // A search exploring *more* than the recording bound must not reuse it.
  EXPECT_EQ(index.FindSubsumer(specific, 5, 4), -1);
  EXPECT_EQ(index.FindSubsumer(specific, 4, 5), -1);
  // A search exploring less may.
  EXPECT_EQ(index.FindSubsumer(specific, 3, 2), id);
}

TEST(SubsumptionIndexTest, SameSizeTieBreakIsRegistrationOrder) {
  SubsumptionIndex index;
  // Two hom-equivalent same-size states: {P(x,y), P(z,w)} and
  // {P(x,y), P(x,w)} map into each other.
  CanonicalState first = Canonicalize(
      {A(kP, {Term::Variable(0), Term::Variable(1)}),
       A(kP, {Term::Variable(2), Term::Variable(3)})});
  CanonicalState second = Canonicalize(
      {A(kP, {Term::Variable(0), Term::Variable(1)}),
       A(kP, {Term::Variable(0), Term::Variable(3)})});
  int64_t id_first = index.Add(first, 4, 4);
  int64_t id_second = index.Add(second, 4, 4);
  // With the tie-break at its own id, each state sees only earlier
  // same-size entries: `second` is pruned by `first`, `first` by nobody —
  // never both, which is what keeps pruning acyclic.
  EXPECT_EQ(index.FindSubsumer(second, 4, 4, id_second), id_first);
  EXPECT_EQ(index.FindSubsumer(first, 4, 4, id_first), -1);
}

TEST(SubsumptionIndexTest, SuppressedEntriesStopMatching) {
  SubsumptionIndex index;
  CanonicalState general =
      Canonicalize({A(kP, {Term::Constant(3), Term::Variable(0)})});
  int64_t id = index.Add(general, 4, 4);
  CanonicalState specific = Canonicalize(
      {A(kP, {Term::Constant(3), Term::Variable(1)}),
       A(kQ, {Term::Variable(1), Term::Variable(2)})});
  EXPECT_EQ(index.FindSubsumer(specific, 4, 4), id);
  index.Suppress(id);
  EXPECT_EQ(index.FindSubsumer(specific, 4, 4), -1);
}

TEST(SearchCacheSubsumptionTest, RefutedStatesTransferToSubsumedStates) {
  ParseResult parsed = ParseProgram(R"(
    t(X, Y) :- e(X, Y).
    e(a, b).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  ProofSearchCache cache(program, db);

  PredicateId t = program.symbols().FindPredicate("t");
  PredicateId e = program.symbols().FindPredicate("e");
  Term zz = program.symbols().InternConstant("zz");
  CanonicalState refuted =
      Canonicalize({Atom(t, {zz, Term::Variable(0)})});
  cache.LinearRecordRefuted(refuted, /*width=*/3, /*max_chunk=*/3);

  // A state containing an instance of the refuted state is refuted too.
  CanonicalState superset = Canonicalize(
      {Atom(t, {zz, Term::Variable(0)}),
       Atom(e, {Term::Variable(0), Term::Variable(1)})});
  EXPECT_TRUE(cache.LinearRefutedBySubsumption(superset, 3, 3));
  // But not for a search exploring beyond the recorded bound.
  EXPECT_FALSE(cache.LinearRefutedBySubsumption(superset, 4, 3));
}

TEST(SweepSharedSubsumptionTest, CompletedRefutationsBankAcrossSearches) {
  // A sweep-shared SubsumptionIndex (ProofSearchOptions.shared_refuted)
  // carries refutation subtrees across candidate searches even with no
  // cache at all: candidate 1's completed refutation banks its visited
  // states; candidate 2's search discards subsumed frontier states.
  ParseResult parsed = ParseProgram(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).  e(b, c).  e(c, d).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  PredicateId t = program.symbols().FindPredicate("t");
  Term a = program.symbols().InternConstant("a");
  // t(X, a): nothing reaches a, so every candidate runs a full
  // refutation — and unwinding t(X, a) via e(X, Y), t(Y, a) walks
  // through exactly the states later candidates start from.
  ConjunctiveQuery query;
  query.output = {Term::Variable(0)};
  query.atoms = {Atom(t, {Term::Variable(0), a})};

  SubsumptionIndex bank;
  ProofSearchOptions options;
  options.shared_refuted = &bank;
  ProofSearchResult first = LinearProofSearch(program, db, query, {a},
                                              options);
  EXPECT_FALSE(first.accepted);
  EXPECT_FALSE(first.budget_exhausted);
  EXPECT_GT(bank.size(), 0u);  // the refutation banked its visited states

  ProofSearchResult second = LinearProofSearch(
      program, db, query, {program.symbols().InternConstant("b")}, options);
  EXPECT_FALSE(second.accepted);
  EXPECT_GT(second.sweep_refuted_hits, 0u);
  EXPECT_LT(second.states_visited, first.states_visited);

  // An accepted search must NOT bank (its visited states are not
  // refuted): t(a, X) with answer b is certain.
  SubsumptionIndex accept_bank;
  ProofSearchOptions accept_options;
  accept_options.shared_refuted = &accept_bank;
  ConjunctiveQuery reach;
  reach.output = {Term::Variable(0)};
  reach.atoms = {
      Atom(t, {program.symbols().InternConstant("a"), Term::Variable(0)})};
  ProofSearchResult accepted = LinearProofSearch(
      program, db, reach, {program.symbols().InternConstant("b")},
      accept_options);
  EXPECT_TRUE(accepted.accepted);
  EXPECT_EQ(accept_bank.size(), 0u);
}

TEST(SweepSharedSubsumptionTest, AlternatingSearchSharesOneIndex) {
  ParseResult parsed = ParseProgram(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).  e(b, c).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  PredicateId t = program.symbols().FindPredicate("t");
  Term a = program.symbols().InternConstant("a");
  ConjunctiveQuery query;
  query.output = {Term::Variable(0)};
  query.atoms = {Atom(t, {Term::Variable(0), a})};  // t(X, a): no answers

  SubsumptionIndex bank;
  ProofSearchOptions options;
  options.shared_refuted = &bank;
  AlternatingSearchResult first =
      AlternatingProofSearch(program, db, query, {a}, options);
  EXPECT_FALSE(first.accepted);
  size_t banked = bank.size();
  EXPECT_GT(banked, 0u);  // path-independent refutations registered

  AlternatingSearchResult second = AlternatingProofSearch(
      program, db, query, {program.symbols().InternConstant("b")}, options);
  EXPECT_FALSE(second.accepted);
  EXPECT_GT(second.sweep_refuted_hits + second.subsumed_discarded, 0u);
}

TEST(SweepSharedSubsumptionTest, SweepMatchesUnsharedAnswersExactly) {
  // The sweep in CertainAnswersViaSearchChecked installs the shared bank
  // by default; its answers must be identical to chase enumeration for
  // both engines (exactness of the pruning).
  ParseResult parsed = ParseProgram(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).  e(b, c).  e(c, a).  e(c, d).
    ?(X) :- t(X, d).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  ConjunctiveQuery query = program.queries()[0];
  std::vector<std::vector<Term>> chase =
      CertainAnswersViaChase(program, db, query);
  for (bool alternating : {false, true}) {
    CertainAnswerSet swept = CertainAnswersViaSearchChecked(
        program, db, query, alternating, ProofSearchOptions{});
    EXPECT_TRUE(swept.complete);
    EXPECT_EQ(swept.answers, chase) << "alternating=" << alternating;
  }
}

TEST(IncrementalSimplifyTest, CleanComponentsInheritTheCertificate) {
  ParseResult parsed = ParseProgram("e(a, b).");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  Instance db = DatabaseFromFacts(program.facts());
  PredicateId e = program.symbols().FindPredicate("e");
  Term a = program.symbols().InternConstant("a");

  // e(a, X) maps into the database. Marked dirty it is dropped; marked
  // clean it is kept unchecked — that is the certificate contract (the
  // caller asserts the component was already known non-embeddable).
  {
    std::vector<Atom> atoms = {Atom(e, {a, Term::Variable(0)})};
    std::vector<char> dirty = {1};
    EXPECT_EQ(EagerSimplifyIncremental(&atoms, db, &dirty), 1u);
    EXPECT_TRUE(atoms.empty());
  }
  {
    std::vector<Atom> atoms = {Atom(e, {a, Term::Variable(0)})};
    std::vector<char> dirty = {0};
    EXPECT_EQ(EagerSimplifyIncremental(&atoms, db, &dirty), 0u);
    EXPECT_EQ(atoms.size(), 1u);
  }
}

TEST(IncrementalSimplifyTest, DuplicatesMergeDirtinessBeforeComponents) {
  ParseResult parsed = ParseProgram("e(a, b).");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  Instance db = DatabaseFromFacts(program.facts());
  PredicateId e = program.symbols().FindPredicate("e");
  Term a = program.symbols().InternConstant("a");

  // The duplicate is dirty, the kept first copy clean: the merged atom
  // must count as dirty and the embeddable component must be dropped.
  std::vector<Atom> atoms = {Atom(e, {a, Term::Variable(0)}),
                             Atom(e, {a, Term::Variable(0)})};
  std::vector<char> dirty = {0, 1};
  EXPECT_EQ(EagerSimplifyIncremental(&atoms, db, &dirty), 1u);
  EXPECT_TRUE(atoms.empty());
}

TEST(IncrementalSimplifyTest, AllDirtyMatchesFullSimplifyOnRandomStates) {
  // Randomized equivalence: with every atom dirty, the incremental
  // simplification must agree exactly with the full one (EagerSimplify is
  // the all-dirty wrapper, so this pins the shared path against drift).
  ParseResult parsed = ParseProgram(R"(
    e(a, b). e(b, c). e(c, a). p(a). p(c).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  Instance db = DatabaseFromFacts(program.facts());
  PredicateId e = program.symbols().FindPredicate("e");
  PredicateId p = program.symbols().FindPredicate("p");

  Rng rng(20260728);
  for (int round = 0; round < 200; ++round) {
    std::vector<Atom> atoms;
    size_t n = 1 + rng.Below(6);
    for (size_t i = 0; i < n; ++i) {
      bool binary = rng.Chance(0.6);
      PredicateId predicate = binary ? e : p;
      std::vector<Term> args;
      size_t arity = binary ? 2 : 1;
      for (size_t k = 0; k < arity; ++k) {
        if (rng.Chance(0.4)) {
          args.push_back(program.symbols().InternConstant(
              std::string(1, static_cast<char>('a' + rng.Below(4)))));
        } else {
          args.push_back(Term::Variable(rng.Below(4)));
        }
      }
      atoms.push_back(Atom(predicate, std::move(args)));
    }
    std::vector<Atom> full = atoms;
    std::vector<Atom> incremental = atoms;
    std::vector<char> dirty(atoms.size(), 1);
    size_t removed_full = EagerSimplify(&full, db);
    size_t removed_incremental =
        EagerSimplifyIncremental(&incremental, db, &dirty);
    EXPECT_EQ(removed_full, removed_incremental) << "round " << round;
    EXPECT_EQ(full, incremental) << "round " << round;
  }
}

}  // namespace
}  // namespace vadalog
