// Tests for unification and chunk-based resolution (Definition 4.3),
// including the paper's canonical unsound-step example.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "engine/resolution.h"
#include "engine/unify.h"

namespace vadalog {
namespace {

TEST(UnifierTest, BindsVariableToConstant) {
  Unifier u;
  EXPECT_TRUE(u.Unify(Term::Variable(0), Term::Constant(3)));
  EXPECT_EQ(u.Resolve(Term::Variable(0)), Term::Constant(3));
}

TEST(UnifierTest, RigidClashFails) {
  Unifier u;
  EXPECT_FALSE(u.Unify(Term::Constant(1), Term::Constant(2)));
  EXPECT_FALSE(u.Unify(Term::Constant(1), Term::Null(1)));
}

TEST(UnifierTest, TransitiveChainsResolve) {
  Unifier u;
  EXPECT_TRUE(u.Unify(Term::Variable(0), Term::Variable(1)));
  EXPECT_TRUE(u.Unify(Term::Variable(1), Term::Variable(2)));
  EXPECT_TRUE(u.Unify(Term::Variable(2), Term::Constant(9)));
  EXPECT_EQ(u.Resolve(Term::Variable(0)), Term::Constant(9));
  Substitution subst = u.ToSubstitution();
  EXPECT_EQ(subst.at(Term::Variable(0)), Term::Constant(9));
  EXPECT_EQ(subst.at(Term::Variable(1)), Term::Constant(9));
}

TEST(UnifierTest, ClassOfTracksEquivalence) {
  Unifier u;
  u.Unify(Term::Variable(0), Term::Variable(1));
  u.Unify(Term::Variable(1), Term::Variable(2));
  std::vector<Term> cls = u.ClassOf(Term::Variable(0));
  EXPECT_EQ(cls.size(), 3u);
}

TEST(UnifierTest, AtomUnification) {
  // R(x, a) and R(b, y) unify with x→b, y→a.
  Atom lhs(0, {Term::Variable(0), Term::Constant(10)});
  Atom rhs(0, {Term::Constant(11), Term::Variable(1)});
  std::optional<Substitution> mgu = MostGeneralUnifier(lhs, rhs);
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(mgu->at(Term::Variable(0)), Term::Constant(11));
  EXPECT_EQ(mgu->at(Term::Variable(1)), Term::Constant(10));
}

TEST(UnifierTest, PredicateMismatchFails) {
  Atom lhs(0, {Term::Variable(0)});
  Atom rhs(1, {Term::Variable(1)});
  EXPECT_FALSE(MostGeneralUnifier(lhs, rhs).has_value());
}

struct ResolutionFixture {
  Program program;

  explicit ResolutionFixture(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
  }

  std::vector<Atom> QueryAtoms(const char* query_text) {
    std::string err = ParseInto(query_text, &program);
    EXPECT_TRUE(err.empty()) << err;
    std::vector<Atom> atoms = program.queries().back().atoms;
    return atoms;
  }
};

TEST(ResolutionTest, PaperUnsoundExampleRejected) {
  // Section 4.1: Q(x) ← R(x,y), S(y) must NOT resolve R(x,y) alone with
  // P(x') → ∃y' R(x',y'), because the shared variable y would be lost.
  ResolutionFixture f("r(X2, Y2) :- p(X2).");
  std::vector<Atom> state = f.QueryAtoms("?(X) :- r(X, Y), s(Y).");
  std::vector<Resolvent> resolvents =
      ResolveWithTgd(state, f.program, 0, 100, 4);
  EXPECT_TRUE(resolvents.empty());
}

TEST(ResolutionTest, PaperSoundExampleAccepted) {
  // With σ = P(x') → ∃y' R(x',y'), S(y'), the chunk {R(x,y), S(y)}
  // resolves as a whole. After single-head normalization the same effect
  // is achieved through the auxiliary predicate in two steps; here we
  // verify the single-atom chunk against the normalized aux rules.
  ResolutionFixture f("r(X2, Y2), s(Y2) :- p(X2).");
  std::unordered_set<PredicateId> aux;
  NormalizeToSingleHead(&f.program, &aux);
  std::vector<Atom> state = f.QueryAtoms("?(X) :- r(X, Y), s(Y).");
  // Resolve s(Y) with Aux → s rule, then r with Aux → r rule; after both,
  // the state should consist of Aux atoms only, eventually resolvable to
  // p. Here we check the first step succeeds.
  bool any = false;
  for (size_t i = 0; i < f.program.tgds().size(); ++i) {
    std::vector<Resolvent> rs = ResolveWithTgd(state, f.program, i, 100, 4);
    any = any || !rs.empty();
  }
  EXPECT_TRUE(any);
}

TEST(ResolutionTest, SingleAtomResolution) {
  ResolutionFixture f("t(X2, Z2) :- e(X2, Y2), t(Y2, Z2).");
  std::vector<Atom> state = f.QueryAtoms("?(X) :- t(X, W).");
  std::vector<Resolvent> resolvents =
      ResolveWithTgd(state, f.program, 0, 100, 4);
  ASSERT_EQ(resolvents.size(), 1u);
  EXPECT_EQ(resolvents[0].atoms.size(), 2u);  // e and t
  EXPECT_EQ(resolvents[0].chunk.size(), 1u);
}

TEST(ResolutionTest, ConstantInStatePropagates) {
  ResolutionFixture f("t(X2, Z2) :- e(X2, Y2), t(Y2, Z2).");
  // Freeze the first output to a constant.
  Term a = f.program.symbols().InternConstant("a");
  PredicateId t = f.program.symbols().FindPredicate("t");
  std::vector<Atom> state = {Atom(t, {a, Term::Variable(0)})};
  std::vector<Resolvent> resolvents =
      ResolveWithTgd(state, f.program, 0, 100, 4);
  ASSERT_EQ(resolvents.size(), 1u);
  // The e-atom inherits the constant a in first position.
  bool found = false;
  for (const Atom& atom : resolvents[0].atoms) {
    if (f.program.symbols().PredicateName(atom.predicate) == "e" &&
        atom.args[0] == a) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ResolutionTest, ExistentialCannotMeetConstant) {
  // σ = p(X2) → ∃Z2 r(X2, Z2); query atom r(X, a): γ(Z2) = a violates
  // condition (1) of the chunk unifier.
  ResolutionFixture f("r(X2, Z2) :- p(X2).");
  Term a = f.program.symbols().InternConstant("a");
  PredicateId r = f.program.symbols().FindPredicate("r");
  std::vector<Atom> state = {Atom(r, {Term::Variable(0), a})};
  EXPECT_TRUE(ResolveWithTgd(state, f.program, 0, 100, 4).empty());
}

TEST(ResolutionTest, ExistentialUnifiableWithLocalVariable) {
  // Query atom r(X, Y) with Y occurring nowhere else: resolvable.
  ResolutionFixture f("r(X2, Z2) :- p(X2).");
  PredicateId r = f.program.symbols().FindPredicate("r");
  std::vector<Atom> state = {Atom(r, {Term::Variable(0), Term::Variable(1)})};
  std::vector<Resolvent> resolvents =
      ResolveWithTgd(state, f.program, 0, 100, 4);
  ASSERT_EQ(resolvents.size(), 1u);
  EXPECT_EQ(resolvents[0].atoms.size(), 1u);  // p(X)
}

TEST(ResolutionTest, TwoExistentialsCannotMerge) {
  // σ = p(X2) → ∃Z2 ∃W2 r(Z2, W2); query atom r(U, U) forces the two
  // existentials together — unsound, must be rejected.
  ResolutionFixture f("r(Z2, W2) :- p(X2).");
  PredicateId r = f.program.symbols().FindPredicate("r");
  std::vector<Atom> state = {Atom(r, {Term::Variable(0), Term::Variable(0)})};
  EXPECT_TRUE(ResolveWithTgd(state, f.program, 0, 100, 4).empty());
}

TEST(ResolutionTest, MultiAtomChunkSamePredicate) {
  // Two query atoms over r can unify into one head atom when consistent.
  ResolutionFixture f("r(X2, Z2) :- p(X2).");
  PredicateId r = f.program.symbols().FindPredicate("r");
  std::vector<Atom> state = {
      Atom(r, {Term::Variable(0), Term::Variable(1)}),
      Atom(r, {Term::Variable(0), Term::Variable(2)})};
  std::vector<Resolvent> resolvents =
      ResolveWithTgd(state, f.program, 0, 100, 4);
  // Expected chunks include the pair {atom0, atom1}: the second arguments
  // merge into the existential, both occurring only inside the chunk.
  bool has_pair_chunk = false;
  for (const Resolvent& res : resolvents) {
    if (res.chunk.size() == 2) has_pair_chunk = true;
  }
  EXPECT_TRUE(has_pair_chunk);
}

TEST(ResolutionTest, ResolveAllCoversAllRules) {
  ResolutionFixture f(R"(
    t(X2, Y2) :- e(X2, Y2).
    t(X2, Z2) :- e(X2, Y2), t(Y2, Z2).
  )");
  std::vector<Atom> state = f.QueryAtoms("?(X) :- t(X, W).");
  std::vector<Resolvent> resolvents = ResolveAll(state, f.program, 100, 4);
  EXPECT_EQ(resolvents.size(), 2u);
}

}  // namespace
}  // namespace vadalog
