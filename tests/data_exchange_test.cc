// Tests for the iBench-style data-exchange scenario generator and its
// interaction with the chase and the classifier.

#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "chase/chase.h"
#include "gen/data_exchange.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

TEST(DataExchangeTest, CopyIsPlainDatalog) {
  DataExchangeSpec spec;
  spec.primitives = {MappingPrimitive::kCopy};
  Program program = GenerateDataExchangeScenario(spec);
  ProgramClassification c = ClassifyProgram(program);
  EXPECT_TRUE(c.datalog);
  EXPECT_TRUE(c.warded);
  EXPECT_TRUE(c.piecewise_linear);
  EXPECT_FALSE(c.recursive);
}

TEST(DataExchangeTest, ProjectionInventsValues) {
  DataExchangeSpec spec;
  spec.primitives = {MappingPrimitive::kProjection};
  spec.facts_per_source = 5;
  spec.seed = 3;
  Program program = GenerateDataExchangeScenario(spec);
  EXPECT_TRUE(ClassifyProgram(program).uses_existentials);
  Instance db = DatabaseFromFacts(program.facts());
  ChaseResult chase = RunChase(program, db);
  EXPECT_TRUE(chase.Saturated());
  EXPECT_GT(chase.nulls_created, 0u);
}

TEST(DataExchangeTest, VerticalPartitionSharesKey) {
  DataExchangeSpec spec;
  spec.primitives = {MappingPrimitive::kVerticalPartition};
  spec.facts_per_source = 1;
  Program program = GenerateDataExchangeScenario(spec);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  ChaseResult chase = RunChase(program, db);
  // t0a(x, k) and t0b(k, y, w) share the invented key k.
  PredicateId ta = program.symbols().FindPredicate("t0a");
  PredicateId tb = program.symbols().FindPredicate("t0b");
  const Relation* ra = chase.instance.RelationFor(ta);
  const Relation* rb = chase.instance.RelationFor(tb);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  ASSERT_EQ(ra->size(), 1u);
  ASSERT_EQ(rb->size(), 1u);
  EXPECT_TRUE(ra->TupleAt(0)[1].is_null());
  EXPECT_EQ(ra->TupleAt(0)[1], rb->TupleAt(0)[0]);
}

TEST(DataExchangeTest, FusionMergesSources) {
  DataExchangeSpec spec;
  spec.primitives = {MappingPrimitive::kFusion};
  spec.facts_per_source = 4;
  spec.seed = 9;
  Program program = GenerateDataExchangeScenario(spec);
  Instance db = DatabaseFromFacts(program.facts());
  ChaseResult chase = RunChase(program, db);
  PredicateId t = program.symbols().FindPredicate("t0");
  const Relation* rel = chase.instance.RelationFor(t);
  ASSERT_NE(rel, nullptr);
  // Target holds the union (up to duplicates) of both sources.
  PredicateId sa = program.symbols().FindPredicate("s0a");
  PredicateId sb = program.symbols().FindPredicate("s0b");
  size_t source_count = db.RelationFor(sa)->size() +
                        db.RelationFor(sb)->size();
  EXPECT_LE(rel->size(), source_count);
  EXPECT_GE(rel->size(), db.RelationFor(sa)->size());
}

TEST(DataExchangeTest, GlavJoinNeedsWitness) {
  DataExchangeSpec spec;
  spec.primitives = {MappingPrimitive::kGlavJoin};
  Program program = GenerateDataExchangeScenario(spec);
  SymbolTable& symbols = program.symbols();
  PredicateId sa = symbols.InternPredicate("s0a", 2);
  PredicateId sb = symbols.InternPredicate("s0b", 2);
  Term a = symbols.InternConstant("a"), b = symbols.InternConstant("b"),
       c = symbols.InternConstant("c");
  program.AddFact(Atom(sa, {a, b}));
  program.AddFact(Atom(sb, {b, c}));
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  ChaseResult chase = RunChase(program, db);
  PredicateId t = symbols.FindPredicate("t0");
  const Relation* rel = chase.instance.RelationFor(t);
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->TupleAt(0)[0], a);
  EXPECT_EQ(rel->TupleAt(0)[1], c);
  EXPECT_TRUE(rel->TupleAt(0)[2].is_null());
}

TEST(DataExchangeTest, SuiteIsAllWardedPwl) {
  std::vector<Program> suite = GenerateDataExchangeSuite(40, 777);
  ASSERT_EQ(suite.size(), 40u);
  for (const Program& program : suite) {
    ProgramClassification c = ClassifyProgram(program);
    EXPECT_TRUE(c.warded) << program.ToString();
    EXPECT_TRUE(c.piecewise_linear) << program.ToString();
    EXPECT_FALSE(c.recursive);
  }
}

TEST(DataExchangeTest, DeterministicForSeed) {
  std::vector<Program> a = GenerateDataExchangeSuite(5, 42);
  std::vector<Program> b = GenerateDataExchangeSuite(5, 42);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString());
  }
}

}  // namespace
}  // namespace vadalog
