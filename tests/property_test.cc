// Property-based cross-engine tests: on randomly generated warded
// programs and databases, every engine (chase with termination control,
// linear bounded proof search, alternating search, and — for PWL programs
// — the Datalog rewriting) must compute the same certain answers.
// Parameterized gtest sweeps over generator seeds.

#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "ast/parser.h"
#include "datalog/seminaive.h"
#include "engine/certain.h"
#include "gen/generators.h"
#include "engine/state.h"
#include "pipeline/executor.h"
#include "rewriting/pwl_to_datalog.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

/// Adds random binary facts for every extensional predicate of `program`
/// over a domain of `domain_size` constants.
Instance RandomDatabase(Program* program, uint32_t domain_size,
                        uint64_t facts_per_predicate, Rng* rng) {
  std::vector<Term> domain;
  for (uint32_t i = 0; i < domain_size; ++i) {
    domain.push_back(
        program->symbols().InternConstant("d" + std::to_string(i)));
  }
  Instance db;
  for (PredicateId p : program->ExtensionalPredicates()) {
    uint32_t arity = program->symbols().PredicateArity(p);
    for (uint64_t k = 0; k < facts_per_predicate; ++k) {
      std::vector<Term> args;
      for (uint32_t i = 0; i < arity; ++i) {
        args.push_back(domain[rng->Below(domain.size())]);
      }
      db.Insert(Atom(p, args));
    }
  }
  return db;
}

/// A query ?(X, Y) :- p(X, Y) over a deterministic-chosen binary
/// intensional predicate, or nullopt if none exists.
std::optional<ConjunctiveQuery> BinaryIdbQuery(const Program& program) {
  std::vector<PredicateId> candidates;
  for (PredicateId p : program.IntensionalPredicates()) {
    if (program.symbols().PredicateArity(p) == 2) candidates.push_back(p);
  }
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end());
  ConjunctiveQuery query;
  query.output = {Term::Variable(0), Term::Variable(1)};
  query.atoms = {
      Atom(candidates[0], {Term::Variable(0), Term::Variable(1)})};
  return query;
}

class PwlEngineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PwlEngineEquivalence, AllEnginesAgree) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  ScenarioSpec spec;
  spec.shape = rng.Chance(0.5) ? RecursionShape::kLinear
                               : RecursionShape::kPiecewiseLinear;
  spec.num_strata = 1 + static_cast<uint32_t>(rng.Below(2));
  spec.rules_per_stratum = 1 + static_cast<uint32_t>(rng.Below(2));
  spec.with_existentials = rng.Chance(0.5);
  spec.seed = seed;
  Program program = GenerateScenario(spec);
  NormalizeToSingleHead(&program, nullptr);

  ProgramClassification c = ClassifyProgram(program);
  ASSERT_TRUE(c.warded);
  ASSERT_TRUE(c.piecewise_linear);

  Instance db = RandomDatabase(&program, 4, 5, &rng);
  std::optional<ConjunctiveQuery> query = BinaryIdbQuery(program);
  ASSERT_TRUE(query.has_value());

  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(program, db, *query);
  std::vector<std::vector<Term>> via_linear =
      CertainAnswersViaSearch(program, db, *query, /*use_alternating=*/false);
  std::vector<std::vector<Term>> via_alternating =
      CertainAnswersViaSearch(program, db, *query, /*use_alternating=*/true);

  EXPECT_EQ(via_chase, via_linear) << "seed " << seed << "\n"
                                   << program.ToString();
  EXPECT_EQ(via_chase, via_alternating) << "seed " << seed;

  // Datalog rewriting (Theorem 6.3 (1)).
  RewriteOptions rewrite_options;
  rewrite_options.max_states = 20000;
  RewriteResult rewrite =
      RewritePwlWardedToDatalog(program, *query, rewrite_options);
  if (rewrite.datalog.has_value()) {
    DatalogResult datalog = EvaluateDatalog(*rewrite.datalog, db);
    std::vector<std::vector<Term>> via_rewriting =
        EvaluateQuerySorted(rewrite.goal, datalog.instance);
    EXPECT_EQ(via_chase, via_rewriting) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PwlEngineEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

// Pinned regression seeds — the PODS'19 equal-certain-answers check on
// every run. Policy: any seed that EVER produced a cross-engine
// disagreement gets appended here (never removed), so a fixed bug stays
// fixed. The initial entries are a spread from an offline 1..1000 sweep
// (all green as of the build-bootstrap PR) chosen to cover both scenario
// shapes, both strata counts, and the with/without-existentials split far
// outside the default Range(1, 13) sweep above.
constexpr uint64_t kPinnedPwlSeeds[] = {37,  137, 256, 389, 512,
                                        641, 777, 891, 997};

INSTANTIATE_TEST_SUITE_P(PinnedRegressions, PwlEngineEquivalence,
                         ::testing::ValuesIn(kPinnedPwlSeeds));

class WardedEngineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WardedEngineEquivalence, ChaseAgreesWithAlternating) {
  uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  ScenarioSpec spec;
  spec.shape = rng.Chance(0.5) ? RecursionShape::kLinearizable
                               : RecursionShape::kNonLinear;
  spec.num_strata = 1;
  spec.rules_per_stratum = 1 + static_cast<uint32_t>(rng.Below(2));
  spec.with_existentials = rng.Chance(0.5);
  spec.seed = seed;
  Program program = GenerateScenario(spec);
  NormalizeToSingleHead(&program, nullptr);
  ASSERT_TRUE(ClassifyProgram(program).warded);

  Instance db = RandomDatabase(&program, 4, 4, &rng);
  std::optional<ConjunctiveQuery> query = BinaryIdbQuery(program);
  ASSERT_TRUE(query.has_value());

  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(program, db, *query);
  std::vector<std::vector<Term>> via_alternating =
      CertainAnswersViaSearch(program, db, *query, /*use_alternating=*/true);
  EXPECT_EQ(via_chase, via_alternating)
      << "seed " << seed << "\n" << program.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WardedEngineEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

// Same pin policy as kPinnedPwlSeeds: seeds that ever failed the
// chase-vs-alternating agreement live here forever.
constexpr uint64_t kPinnedWardedSeeds[] = {41, 173, 294, 447, 568,
                                           699, 803, 929};

INSTANTIATE_TEST_SUITE_P(PinnedRegressions, WardedEngineEquivalence,
                         ::testing::ValuesIn(kPinnedWardedSeeds));

// The tentpole's exactness fuzz: subsumption pruning, incremental
// simplification and the parallel frontier must never change a certain
// answer. Every configuration — pruning on/off, one or four threads,
// linear and alternating — is swept against the chase on random warded ∩
// PWL scenarios.
class SearchConfigEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SearchConfigEquivalence, PrunedAndParallelSearchesMatchChase) {
  uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);
  ScenarioSpec spec;
  spec.shape = rng.Chance(0.5) ? RecursionShape::kLinear
                               : RecursionShape::kPiecewiseLinear;
  spec.num_strata = 1 + static_cast<uint32_t>(rng.Below(2));
  spec.rules_per_stratum = 1 + static_cast<uint32_t>(rng.Below(2));
  spec.with_existentials = rng.Chance(0.5);
  spec.seed = seed;
  Program program = GenerateScenario(spec);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = RandomDatabase(&program, 4, 5, &rng);
  std::optional<ConjunctiveQuery> query = BinaryIdbQuery(program);
  ASSERT_TRUE(query.has_value());

  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(program, db, *query);

  struct Config {
    const char* name;
    bool alternating;
    bool subsumption;
    uint32_t threads;
    uint32_t fork_depth = 1;
  };
  constexpr Config kConfigs[] = {
      {"linear/pruned", false, true, 1},
      {"linear/unpruned", false, false, 1},
      {"linear/pruned/4-threads", false, true, 4},
      {"linear/unpruned/4-threads", false, false, 4},
      {"alternating/pruned", true, true, 1},
      {"alternating/unpruned", true, false, 1},
      {"alternating/pruned/4-threads", true, true, 4},
      {"alternating/pruned/fork2/4-threads", true, true, 4, 2},
  };
  for (const Config& config : kConfigs) {
    ProofSearchOptions options;
    options.subsumption = config.subsumption;
    options.num_threads = config.threads;
    options.fork_depth = config.fork_depth;
    CertainAnswerSet result = CertainAnswersViaSearchChecked(
        program, db, *query, config.alternating, options);
    EXPECT_TRUE(result.complete) << config.name << " seed " << seed;
    EXPECT_EQ(via_chase, result.answers)
        << config.name << " seed " << seed << "\n" << program.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchConfigEquivalence,
                         ::testing::Range<uint64_t>(1, 11));

// Pin policy as elsewhere: any seed that ever produces a configuration
// disagreement is appended here and never removed. The initial entries
// are a spread from an offline 1..400 sweep (all green when the pruning
// landed) far outside the default Range(1, 11) above.
constexpr uint64_t kPinnedConfigSeeds[] = {23, 97, 181, 277, 359};

INSTANTIATE_TEST_SUITE_P(PinnedRegressions, SearchConfigEquivalence,
                         ::testing::ValuesIn(kPinnedConfigSeeds));

// Width-interaction fuzz: at artificially tight node widths the searches
// are incomplete by design, but pruning must not change the *verdict* of
// the width-bounded graph search — subsumption discards must simulate
// inside the same bound. Verdicts are compared pairwise per candidate.
class TightWidthPruningEquivalence
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TightWidthPruningEquivalence, PrunedVerdictsMatchUnprunedAtSameWidth) {
  uint64_t seed = GetParam();
  Rng rng(seed * 104729 + 3);
  ScenarioSpec spec;
  spec.shape = rng.Chance(0.5) ? RecursionShape::kLinear
                               : RecursionShape::kPiecewiseLinear;
  spec.num_strata = 1;
  spec.rules_per_stratum = 1 + static_cast<uint32_t>(rng.Below(2));
  spec.with_existentials = rng.Chance(0.5);
  spec.seed = seed;
  Program program = GenerateScenario(spec);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = RandomDatabase(&program, 3, 4, &rng);
  std::optional<ConjunctiveQuery> query = BinaryIdbQuery(program);
  ASSERT_TRUE(query.has_value());

  std::vector<Term> domain;
  for (Term t : db.ActiveDomain()) {
    if (t.is_constant()) domain.push_back(t);
  }
  std::sort(domain.begin(), domain.end());
  for (size_t width : {2u, 3u}) {
    for (Term x : domain) {
      for (Term y : domain) {
        ProofSearchOptions pruned;
        pruned.node_width = width;
        ProofSearchOptions unpruned = pruned;
        unpruned.subsumption = false;
        bool with = LinearProofSearch(program, db, *query, {x, y}, pruned)
                        .accepted;
        bool without =
            LinearProofSearch(program, db, *query, {x, y}, unpruned)
                .accepted;
        EXPECT_EQ(with, without)
            << "seed " << seed << " width " << width << " candidate ("
            << x.index() << ", " << y.index() << ")\n"
            << program.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TightWidthPruningEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

class TcGraphEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(TcGraphEquivalence, LinearAndNonLinearTcAgree) {
  auto [nodes, seed] = GetParam();
  Rng rng(seed);
  Program linear = MakeTransitiveClosureProgram(true);
  Program nonlinear = MakeTransitiveClosureProgram(false);

  // Identical random edge sets in both programs.
  Rng rng1(seed), rng2(seed);
  AddRandomGraphFacts(&linear, "e", nodes, nodes * 2, &rng1);
  AddRandomGraphFacts(&nonlinear, "e", nodes, nodes * 2, &rng2);
  Instance db1 = DatabaseFromFacts(linear.facts());
  Instance db2 = DatabaseFromFacts(nonlinear.facts());

  auto query = [](Program& p) {
    ConjunctiveQuery q;
    q.output = {Term::Variable(0), Term::Variable(1)};
    q.atoms = {Atom(p.symbols().FindPredicate("t"),
                    {Term::Variable(0), Term::Variable(1)})};
    return q;
  };
  std::vector<std::vector<Term>> via_linear_program =
      CertainAnswersViaChase(linear, db1, query(linear));
  std::vector<std::vector<Term>> via_nonlinear_program =
      CertainAnswersViaChase(nonlinear, db2, query(nonlinear));
  // Constant ids are allocated in the same order in both programs, so the
  // term tuples are directly comparable.
  EXPECT_EQ(via_linear_program, via_nonlinear_program)
      << "nodes " << nodes << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TcGraphEquivalence,
    ::testing::Combine(::testing::Values(4u, 6u, 8u),
                       ::testing::Values(1u, 2u, 3u)));


class CanonicalizationInvariance : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CanonicalizationInvariance, RandomIsomorphicStatesCanonicalizeEqual) {
  // Generate a random CQ state, apply a random variable bijection and a
  // random atom shuffle, and assert the canonical forms coincide.
  uint64_t seed = GetParam();
  Rng rng(seed * 1013 + 7);
  size_t num_atoms = 1 + rng.Below(6);
  size_t num_vars = 1 + rng.Below(5);
  std::vector<Atom> atoms;
  for (size_t i = 0; i < num_atoms; ++i) {
    Atom atom;
    atom.predicate = static_cast<PredicateId>(rng.Below(3));
    size_t arity = 1 + rng.Below(3);
    for (size_t j = 0; j < arity; ++j) {
      if (rng.Chance(0.2)) {
        atom.args.push_back(Term::Constant(rng.Below(3)));
      } else {
        atom.args.push_back(Term::Variable(rng.Below(num_vars)));
      }
    }
    atoms.push_back(std::move(atom));
  }
  // NOTE: predicates here are raw ids with inconsistent arities across
  // atoms; canonicalization only looks at shapes, so this is fine.

  // Random bijective renaming of variables (offset + shuffle).
  std::vector<uint64_t> target(num_vars);
  for (size_t i = 0; i < num_vars; ++i) target[i] = 100 + i;
  for (size_t i = num_vars; i-- > 1;) {
    std::swap(target[i], target[rng.Below(i + 1)]);
  }
  std::vector<Atom> renamed = atoms;
  for (Atom& atom : renamed) {
    for (Term& t : atom.args) {
      if (t.is_variable()) t = Term::Variable(target[t.index()]);
    }
  }
  // Random shuffle of atom order.
  for (size_t i = renamed.size(); i-- > 1;) {
    std::swap(renamed[i], renamed[rng.Below(i + 1)]);
  }

  EXPECT_EQ(Canonicalize(atoms), Canonicalize(renamed)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalizationInvariance,
                         ::testing::Range<uint64_t>(1, 41));

class PipelineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineEquivalence, OperatorNetworkMatchesSeminaive) {
  uint64_t seed = GetParam();
  Rng rng(seed * 97 + 11);
  ScenarioSpec spec;
  spec.shape = rng.Chance(0.5) ? RecursionShape::kLinear
                               : RecursionShape::kPiecewiseLinear;
  spec.num_strata = 1 + static_cast<uint32_t>(rng.Below(2));
  spec.rules_per_stratum = 1 + static_cast<uint32_t>(rng.Below(2));
  spec.with_existentials = false;  // the pipeline runs Datalog only
  spec.seed = seed;
  Program program = GenerateScenario(spec);
  Instance db = RandomDatabase(&program, 5, 8, &rng);

  PipelineOptions pipeline_options;
  pipeline_options.materialize_rule_outputs = rng.Chance(0.5);
  pipeline_options.recursive_operand_first = rng.Chance(0.5);
  PipelineResult pipeline = ExecutePipeline(program, db, pipeline_options);
  DatalogResult seminaive = EvaluateDatalog(program, db);
  ASSERT_TRUE(pipeline.reached_fixpoint);
  EXPECT_EQ(pipeline.instance.size(), seminaive.instance.size())
      << "seed " << seed << "\n" << program.ToString();
  for (PredicateId p : seminaive.instance.Predicates()) {
    const Relation* expected = seminaive.instance.RelationFor(p);
    const Relation* actual = pipeline.instance.RelationFor(p);
    ASSERT_NE(actual, nullptr) << "seed " << seed;
    EXPECT_EQ(actual->size(), expected->size()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineEquivalence,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace vadalog
