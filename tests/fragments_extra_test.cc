// Tests for the additional Datalog± fragment checks: LINEAR, GUARDED, and
// STICKY, and their interplay with wardedness / piece-wise linearity.

#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/fragments.h"
#include "ast/parser.h"

namespace vadalog {
namespace {

Program Parse(const char* text) {
  ParseResult result = ParseProgram(text);
  EXPECT_TRUE(result.ok()) << result.error;
  return std::move(*result.program);
}

TEST(LinearTgdsTest, SingleBodyAtomRules) {
  Program linear = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
  )");
  EXPECT_TRUE(IsLinearTgds(linear));

  Program join = Parse("t(X, Z) :- e(X, Y), t(Y, Z).");
  EXPECT_FALSE(IsLinearTgds(join));
}

TEST(LinearTgdsTest, LinearImpliesIntensionallyLinear) {
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
  )");
  EXPECT_TRUE(IsLinearTgds(program));
  EXPECT_TRUE(IsIntensionallyLinear(program));
}

TEST(GuardedTest, GuardContainsAllBodyVariables) {
  Program guarded = Parse(R"(
    s(X, Y) :- r(X, Y, Z), p(X), q(Y).
  )");
  EXPECT_TRUE(IsGuarded(guarded));

  // e(X,Y), e(Y,Z): no single atom holds {X, Y, Z}.
  Program unguarded = Parse("t(X, Z) :- e(X, Y), e(Y, Z).");
  EXPECT_FALSE(IsGuarded(unguarded));
}

TEST(GuardedTest, SingleAtomBodiesAreGuarded) {
  Program program = Parse("p(X) :- q(X, Y).");
  EXPECT_TRUE(IsGuarded(program));
}

TEST(StickyTest, TransitiveClosureIsNotSticky) {
  // The join variable y of T(x,y), T(y,z) → T(x,z) is marked (it does not
  // appear in the head) and occurs twice in the body.
  Program tc = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
  )");
  EXPECT_FALSE(IsSticky(tc));
}

TEST(StickyTest, FullJoinPropagationIsSticky) {
  // The join variable appears in the head, and nothing marks it.
  Program program = Parse(R"(
    s(X, Y, Z) :- r(X, Y), q(Y, Z).
  )");
  EXPECT_TRUE(IsSticky(program));
}

TEST(StickyTest, MarkingPropagatesThroughHeads) {
  // Positive control: the join variable is kept by every head, so nothing
  // ever marks it.
  Program program = Parse(R"(
    s(X, Y, Z) :- r(X, Y), q(Y, Z).
    w(A, B, C) :- s(A, B, C).
  )");
  EXPECT_TRUE(IsSticky(program));

  Program violating = Parse(R"(
    s(Y) :- r(X, Y), p(Y).
    w(X2) :- s(V2), p2(X2).
  )");
  // V2 is marked (base: not in rule 2's head) at position s[1];
  // propagation marks Y in rule 1 (Y sits at head position s[1]); Y
  // occurs twice in rule 1's body → not sticky.
  EXPECT_FALSE(IsSticky(violating));
}

TEST(StickyTest, LinearRulesAreSticky) {
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
  )");
  EXPECT_TRUE(IsSticky(program));
}

TEST(ClassifierTest, NewFlagsExposed) {
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
  )");
  ProgramClassification c = ClassifyProgram(program);
  EXPECT_TRUE(c.linear_tgds);
  EXPECT_TRUE(c.guarded);
  EXPECT_TRUE(c.sticky);
  EXPECT_TRUE(c.warded);
  EXPECT_FALSE(c.uses_negation);
}

TEST(ClassifierTest, WardedButNotGuardedNotSticky) {
  // Example 3.3 is warded ∩ PWL but neither guarded nor sticky — the
  // separation that motivates wardedness as the Vadalog core.
  Program program = Parse(R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
  )");
  ProgramClassification c = ClassifyProgram(program);
  EXPECT_TRUE(c.warded);
  EXPECT_TRUE(c.piecewise_linear);
  EXPECT_FALSE(c.guarded);
  EXPECT_FALSE(c.sticky);
}

}  // namespace
}  // namespace vadalog
