// Tests for the vadalog::Reasoner facade.

#include <gtest/gtest.h>

#include "vadalog/reasoner.h"

namespace vadalog {
namespace {

TEST(ReasonerTest, QuickstartFlow) {
  std::string error;
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )", &error);
  ASSERT_NE(reasoner, nullptr) << error;
  std::vector<std::string> answers = reasoner->AnswerStrings(0);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], "(b)");
  EXPECT_EQ(answers[1], "(c)");
}

TEST(ReasonerTest, ParseErrorReported) {
  std::string error;
  EXPECT_EQ(Reasoner::FromText("p(X) :-", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ReasonerTest, ClassificationExposed) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
    p(a).
  )");
  ASSERT_NE(reasoner, nullptr);
  EXPECT_TRUE(reasoner->classification().warded);
  EXPECT_TRUE(reasoner->classification().piecewise_linear);
  EXPECT_TRUE(reasoner->wardedness().is_warded);
  std::string report = reasoner->AnalysisReport();
  EXPECT_NE(report.find("NLogSpace"), std::string::npos);
}

TEST(ReasonerTest, EnginesAgree) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a).
    ?(X) :- t(b, X).
  )");
  ASSERT_NE(reasoner, nullptr);
  ReasonerOptions chase;
  chase.engine = EngineChoice::kChase;
  ReasonerOptions linear;
  linear.engine = EngineChoice::kLinearProof;
  ReasonerOptions alternating;
  alternating.engine = EngineChoice::kAlternatingProof;
  std::vector<std::vector<Term>> via_chase = reasoner->Answer(0, chase);
  EXPECT_EQ(via_chase, reasoner->Answer(0, linear));
  EXPECT_EQ(via_chase, reasoner->Answer(0, alternating));
  EXPECT_EQ(via_chase.size(), 3u);
}

TEST(ReasonerTest, AutoPicksLinearForPwlWarded) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).
    ?(X) :- t(a, X).
  )");
  ASSERT_NE(reasoner, nullptr);
  // kAuto routes through the linear proof search and stays correct.
  std::vector<std::vector<Term>> answers = reasoner->Answer(0);
  EXPECT_EQ(answers.size(), 1u);
}

TEST(ReasonerTest, IsCertainDecision) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X, Y) :- t(X, Y).
  )");
  ASSERT_NE(reasoner, nullptr);
  // Access constants through a scratch parse on the same reasoner.
  const ConjunctiveQuery& query = reasoner->program().queries()[0];
  SymbolTable& symbols =
      const_cast<Program&>(reasoner->program()).symbols();
  Term a = symbols.InternConstant("a");
  Term c = symbols.InternConstant("c");
  EXPECT_TRUE(reasoner->IsCertain(query, {a, c}));
  EXPECT_FALSE(reasoner->IsCertain(query, {c, a}));
}

TEST(ReasonerTest, AddFactExtendsDatabase) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).
    ?(X) :- t(a, X).
  )");
  ASSERT_NE(reasoner, nullptr);
  EXPECT_EQ(reasoner->Answer(0).size(), 1u);
  SymbolTable& symbols =
      const_cast<Program&>(reasoner->program()).symbols();
  reasoner->AddFact(Atom(symbols.FindPredicate("e"),
                         {symbols.InternConstant("b"),
                          symbols.InternConstant("c")}));
  EXPECT_EQ(reasoner->Answer(0).size(), 2u);
}

TEST(ReasonerTest, MultiHeadProgramNormalized) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    a(X, Z), b(Z) :- c(X).
    c(k).
    ?() :- a(X, Y), b(Y).
  )");
  ASSERT_NE(reasoner, nullptr);
  for (const Tgd& tgd : reasoner->program().tgds()) {
    EXPECT_EQ(tgd.head.size(), 1u);
  }
  // The joint witness (same null in a and b) makes the query certain.
  EXPECT_EQ(reasoner->Answer(0).size(), 1u);
}

TEST(ReasonerTest, OutOfRangeQueryIndex) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText("e(a, b).");
  ASSERT_NE(reasoner, nullptr);
  EXPECT_TRUE(reasoner->Answer(3).empty());
}

}  // namespace
}  // namespace vadalog
