// Tests for stratified negation — the paper's "very mild and easy to
// handle negation" (Section 1.1): parsing, safety, stratification, and
// evaluation semantics.

#include <gtest/gtest.h>

#include "analysis/predicate_graph.h"
#include "ast/parser.h"
#include "chase/chase.h"
#include "datalog/seminaive.h"
#include "storage/homomorphism.h"
#include "vadalog/reasoner.h"

namespace vadalog {
namespace {

TEST(NegationParseTest, ParsesNegatedAtoms) {
  ParseResult result = ParseProgram(R"(
    orphan(X) :- node(X), not parent(X, X).
  )");
  ASSERT_TRUE(result.ok()) << result.error;
  const Tgd& tgd = result.program->tgds()[0];
  EXPECT_EQ(tgd.body.size(), 1u);
  EXPECT_EQ(tgd.negative_body.size(), 1u);
}

TEST(NegationParseTest, PredicateNamedNotStaysPositive) {
  ParseResult result = ParseProgram("p(X) :- not(X).");
  ASSERT_TRUE(result.ok()) << result.error;
  const Tgd& tgd = result.program->tgds()[0];
  EXPECT_EQ(tgd.body.size(), 1u);
  EXPECT_TRUE(tgd.negative_body.empty());
}

TEST(NegationParseTest, RejectsUnsafeNegation) {
  ParseResult result = ParseProgram("p(X) :- q(X), not r(X, Y).");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("unsafe"), std::string::npos);
}

TEST(NegationParseTest, RejectsNegativeOnlyBody) {
  ParseResult result = ParseProgram("p(a2) :- not q(a2).");
  // No positive atom: the rule body must have at least one positive atom.
  EXPECT_FALSE(result.ok());
}

TEST(NegationParseTest, ToStringRoundTrips) {
  const char* text = "orphan(X) :- node(X), not parent(X, X).\n";
  ParseResult first = ParseProgram(text);
  ASSERT_TRUE(first.ok());
  std::string printed = first.program->ToString();
  ParseResult second = ParseProgram(printed);
  ASSERT_TRUE(second.ok()) << second.error << "\n" << printed;
  EXPECT_EQ(second.program->tgds()[0].negative_body.size(), 1u);
}

TEST(NegationStratificationTest, DetectsNegationInCycle) {
  ParseResult result = ParseProgram(R"(
    p(X) :- dom(X), not q(X).
    q(X) :- dom(X), not p(X).
  )");
  ASSERT_TRUE(result.ok());
  PredicateGraph graph(*result.program);
  EXPECT_FALSE(graph.NegationIsStratified());
}

TEST(NegationStratificationTest, AcyclicNegationIsStratified) {
  ParseResult result = ParseProgram(R"(
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).
  )");
  ASSERT_TRUE(result.ok());
  PredicateGraph graph(*result.program);
  EXPECT_TRUE(graph.NegationIsStratified());
}

TEST(NegationEvalTest, UnreachablePairs) {
  ParseResult parsed = ParseProgram(R"(
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).
    edge(a, b). edge(b, c).
    node(a). node(b). node(c).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  Instance db = DatabaseFromFacts(program.facts());
  DatalogResult result = EvaluateDatalog(program, db);
  EXPECT_TRUE(result.reached_fixpoint);
  PredicateId unreachable = program.symbols().FindPredicate("unreachable");
  const Relation* rel = result.instance.RelationFor(unreachable);
  ASSERT_NE(rel, nullptr);
  // 9 pairs - reach = {ab, ac, bc} => 6 unreachable (incl. self pairs).
  EXPECT_EQ(rel->size(), 6u);
}

TEST(NegationEvalTest, RefusesUnstratifiedProgram) {
  ParseResult parsed = ParseProgram(R"(
    p(X) :- dom(X), not q(X).
    q(X) :- dom(X), not p(X).
    dom(a).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  Instance db = DatabaseFromFacts(program.facts());
  DatalogResult result = EvaluateDatalog(program, db);
  EXPECT_FALSE(result.reached_fixpoint);
  EXPECT_EQ(result.instance.size(), 0u);
}

TEST(NegationEvalTest, SemiNaiveAndNaiveAgreeWithNegation) {
  ParseResult parsed = ParseProgram(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), e(Y, Z).
    sink(X) :- node(X), not starts(X).
    starts(X) :- e(X, Y).
    e(a, b). e(b, c).
    node(a). node(b). node(c).
  )");
  ASSERT_TRUE(parsed.ok());
  Program program = std::move(*parsed.program);
  Instance db = DatabaseFromFacts(program.facts());
  DatalogOptions naive;
  naive.seminaive = false;
  DatalogResult r1 = EvaluateDatalog(program, db);
  DatalogResult r2 = EvaluateDatalog(program, db, naive);
  PredicateId sink = program.symbols().FindPredicate("sink");
  ASSERT_NE(r1.instance.RelationFor(sink), nullptr);
  EXPECT_EQ(r1.instance.RelationFor(sink)->size(),
            r2.instance.RelationFor(sink)->size());
  EXPECT_EQ(r1.instance.RelationFor(sink)->size(), 1u);  // only c
}

TEST(NegationEvalTest, ChaseRefusesNegation) {
  ParseResult parsed = ParseProgram(R"(
    p(X) :- q(X), not r(X).
    q(a).
  )");
  ASSERT_TRUE(parsed.ok());
  Instance db = DatabaseFromFacts(parsed.program->facts());
  ChaseResult result = RunChase(*parsed.program, db);
  EXPECT_EQ(result.stop_reason, ChaseStopReason::kUnsupported);
}

TEST(NegationReasonerTest, EndToEnd) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    isolated(X) :- node(X), not touched(X).
    touched(X) :- edge(X, Y).
    touched(Y) :- edge(X, Y).
    edge(a, b).
    node(a). node(b). node(z).
    ?(X) :- isolated(X).
  )");
  ASSERT_NE(reasoner, nullptr);
  EXPECT_TRUE(reasoner->classification().uses_negation);
  std::vector<std::string> answers = reasoner->AnswerStrings(0);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], "(z)");
}

}  // namespace
}  // namespace vadalog
