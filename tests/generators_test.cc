// Tests for the workload generators (graphs, ontologies, iWarded-style
// scenario suites).

#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "ast/parser.h"
#include "gen/generators.h"
#include "storage/instance.h"

namespace vadalog {
namespace {

TEST(GraphGenTest, ChainHasExactEdges) {
  Program program;
  AddChainGraphFacts(&program, "e", 10);
  EXPECT_EQ(program.facts().size(), 9u);
  Instance db = DatabaseFromFacts(program.facts());
  EXPECT_EQ(db.size(), 9u);
}

TEST(GraphGenTest, RandomGraphDeterministicForSeed) {
  Program p1, p2;
  Rng r1(99), r2(99);
  AddRandomGraphFacts(&p1, "e", 50, 200, &r1);
  AddRandomGraphFacts(&p2, "e", 50, 200, &r2);
  ASSERT_EQ(p1.facts().size(), p2.facts().size());
  for (size_t i = 0; i < p1.facts().size(); ++i) {
    EXPECT_EQ(p1.symbols().ConstantName(p1.facts()[i].args[0]),
              p2.symbols().ConstantName(p2.facts()[i].args[0]));
  }
}

TEST(GraphGenTest, TransitiveClosureVariants) {
  EXPECT_TRUE(
      ClassifyProgram(MakeTransitiveClosureProgram(true)).piecewise_linear);
  ProgramClassification nonlinear =
      ClassifyProgram(MakeTransitiveClosureProgram(false));
  EXPECT_FALSE(nonlinear.piecewise_linear);
  EXPECT_TRUE(nonlinear.pwl_after_linearization);
}

TEST(OntologyGenTest, Owl2QlProgramIsWardedPwl) {
  ProgramClassification c = ClassifyProgram(MakeOwl2QlProgram());
  EXPECT_TRUE(c.warded);
  EXPECT_TRUE(c.piecewise_linear);
  EXPECT_TRUE(c.uses_existentials);
}

TEST(OntologyGenTest, FactsCoverAllRelations) {
  Program program = MakeOwl2QlProgram();
  Rng rng(7);
  AddOntologyFacts(&program, 20, 5, 50, &rng);
  Instance db = DatabaseFromFacts(program.facts());
  EXPECT_GT(db.size(), 50u);
  EXPECT_NE(program.symbols().FindPredicate("subclass"), kInvalidPredicate);
  EXPECT_NE(program.symbols().FindPredicate("type"), kInvalidPredicate);
}

TEST(ScenarioGenTest, ShapesClassifyAsIntended) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioSpec spec;
    spec.seed = seed;

    spec.shape = RecursionShape::kLinear;
    ProgramClassification linear = ClassifyProgram(GenerateScenario(spec));
    EXPECT_TRUE(linear.warded) << "seed " << seed;
    EXPECT_TRUE(linear.piecewise_linear) << "seed " << seed;

    spec.shape = RecursionShape::kPiecewiseLinear;
    ProgramClassification pwl = ClassifyProgram(GenerateScenario(spec));
    EXPECT_TRUE(pwl.warded) << "seed " << seed;
    EXPECT_TRUE(pwl.piecewise_linear) << "seed " << seed;

    spec.shape = RecursionShape::kLinearizable;
    ProgramClassification lin = ClassifyProgram(GenerateScenario(spec));
    EXPECT_TRUE(lin.warded) << "seed " << seed;
    EXPECT_FALSE(lin.piecewise_linear) << "seed " << seed;
    EXPECT_TRUE(lin.pwl_after_linearization) << "seed " << seed;

    spec.shape = RecursionShape::kNonLinear;
    ProgramClassification non = ClassifyProgram(GenerateScenario(spec));
    EXPECT_TRUE(non.warded) << "seed " << seed;
    EXPECT_FALSE(non.piecewise_linear) << "seed " << seed;
    EXPECT_FALSE(non.pwl_after_linearization) << "seed " << seed;
  }
}

TEST(ScenarioGenTest, SuiteMixtureRoughlyCalibrated) {
  SuiteMixture mixture;  // defaults ≈ paper profile
  std::vector<Program> suite = GenerateScenarioSuite(200, mixture, 4242);
  ASSERT_EQ(suite.size(), 200u);
  size_t direct = 0, after = 0, non = 0;
  for (const Program& program : suite) {
    ProgramClassification c = ClassifyProgram(program);
    EXPECT_TRUE(c.warded);
    if (c.piecewise_linear) {
      ++direct;
    } else if (c.pwl_after_linearization) {
      ++after;
    } else {
      ++non;
    }
  }
  // ≈55% / 15% / 30% within generous tolerances.
  EXPECT_GT(direct, 80u);
  EXPECT_LT(direct, 140u);
  EXPECT_GT(after, 10u);
  EXPECT_LT(after, 60u);
  EXPECT_GT(non, 30u);
  EXPECT_LT(non, 90u);
}

TEST(ScenarioGenTest, DeterministicForSeed) {
  ScenarioSpec spec;
  spec.shape = RecursionShape::kPiecewiseLinear;
  spec.seed = 77;
  Program a = GenerateScenario(spec);
  Program b = GenerateScenario(spec);
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace vadalog
