// Tests for instances, relations, and homomorphism / CQ evaluation.

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "storage/homomorphism.h"
#include "storage/instance.h"

namespace vadalog {
namespace {

struct Fixture {
  Program program;
  Instance db;
  PredicateId e;
  Term a, b, c;

  Fixture() {
    ParseResult parsed = ParseProgram(R"(
      e(a, b).
      e(b, c).
      e(a, c).
    )");
    program = std::move(*parsed.program);
    db = DatabaseFromFacts(program.facts());
    e = program.symbols().FindPredicate("e");
    a = program.symbols().InternConstant("a");
    b = program.symbols().InternConstant("b");
    c = program.symbols().InternConstant("c");
  }
};

TEST(InstanceTest, InsertDeduplicates) {
  Fixture f;
  EXPECT_EQ(f.db.size(), 3u);
  EXPECT_FALSE(f.db.Insert(Atom(f.e, {f.a, f.b})));
  EXPECT_EQ(f.db.size(), 3u);
  EXPECT_TRUE(f.db.Insert(Atom(f.e, {f.c, f.a})));
  EXPECT_EQ(f.db.size(), 4u);
}

TEST(InstanceTest, ContainsAndRelation) {
  Fixture f;
  EXPECT_TRUE(f.db.Contains(Atom(f.e, {f.a, f.b})));
  EXPECT_FALSE(f.db.Contains(Atom(f.e, {f.b, f.a})));
  const Relation* rel = f.db.RelationFor(f.e);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 3u);
  EXPECT_EQ(rel->arity(), 2u);
}

TEST(InstanceTest, PositionalIndex) {
  Fixture f;
  const Relation* rel = f.db.RelationFor(f.e);
  EXPECT_EQ(rel->RowsWith(0, f.a).size(), 2u);  // e(a,b), e(a,c)
  EXPECT_EQ(rel->RowsWith(1, f.c).size(), 2u);  // e(b,c), e(a,c)
  EXPECT_TRUE(rel->RowsWith(0, f.c).empty());
}

TEST(InstanceTest, ActiveDomainAndAtoms) {
  Fixture f;
  EXPECT_EQ(f.db.ActiveDomain().size(), 3u);
  EXPECT_EQ(f.db.AllAtoms().size(), 3u);
  EXPECT_EQ(f.db.Predicates().size(), 1u);
}

TEST(InstanceTest, NullTrackingAndDrop) {
  Fixture f;
  f.db.Insert(Atom(f.e, {f.a, Term::Null(5)}));
  EXPECT_EQ(f.db.MaxNullIndex(), 6u);
  size_t before = f.db.size();
  f.db.DropRelation(f.e);
  EXPECT_EQ(f.db.size(), before - 4);
  EXPECT_EQ(f.db.RelationFor(f.e), nullptr);
}

TEST(HomomorphismTest, EnumeratesAllMatches) {
  Fixture f;
  // e(X, Y): three homomorphisms.
  std::vector<Atom> pattern = {
      Atom(f.e, {Term::Variable(0), Term::Variable(1)})};
  int count = 0;
  ForEachHomomorphism(pattern, f.db, {}, [&](const Substitution&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 3);
}

TEST(HomomorphismTest, JoinThroughSharedVariable) {
  Fixture f;
  // e(X, Y), e(Y, Z): only a→b→c.
  std::vector<Atom> pattern = {
      Atom(f.e, {Term::Variable(0), Term::Variable(1)}),
      Atom(f.e, {Term::Variable(1), Term::Variable(2)})};
  std::vector<std::vector<Term>> results;
  ForEachHomomorphism(pattern, f.db, {}, [&](const Substitution& h) {
    results.push_back({h.at(Term::Variable(0)), h.at(Term::Variable(1)),
                       h.at(Term::Variable(2))});
    return true;
  });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (std::vector<Term>{f.a, f.b, f.c}));
}

TEST(HomomorphismTest, RepeatedVariableInAtom) {
  Fixture f;
  f.db.Insert(Atom(f.e, {f.b, f.b}));
  std::vector<Atom> pattern = {
      Atom(f.e, {Term::Variable(0), Term::Variable(0)})};
  int count = 0;
  ForEachHomomorphism(pattern, f.db, {}, [&](const Substitution& h) {
    EXPECT_EQ(h.at(Term::Variable(0)), f.b);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(HomomorphismTest, SeedConstrainsMatches) {
  Fixture f;
  std::vector<Atom> pattern = {
      Atom(f.e, {Term::Variable(0), Term::Variable(1)})};
  Substitution seed = {{Term::Variable(0), f.b}};
  int count = 0;
  ForEachHomomorphism(pattern, f.db, seed, [&](const Substitution&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);  // only e(b, c)
}

TEST(HomomorphismTest, EarlyStopRespected) {
  Fixture f;
  std::vector<Atom> pattern = {
      Atom(f.e, {Term::Variable(0), Term::Variable(1)})};
  int count = 0;
  bool completed =
      ForEachHomomorphism(pattern, f.db, {}, [&](const Substitution&) {
        ++count;
        return false;
      });
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(completed);
  EXPECT_TRUE(HasHomomorphism(pattern, f.db));
}

TEST(HomomorphismTest, EmptyPatternHasIdentityMatch) {
  Fixture f;
  EXPECT_TRUE(HasHomomorphism({}, f.db));
}

TEST(HomomorphismTest, MissingPredicateHasNoMatch) {
  Fixture f;
  PredicateId ghost = f.program.symbols().InternPredicate("ghost", 1);
  EXPECT_FALSE(HasHomomorphism({Atom(ghost, {Term::Variable(0)})}, f.db));
}

TEST(QueryEvalTest, OutputProjection) {
  Fixture f;
  ConjunctiveQuery q;
  q.output = {Term::Variable(0)};
  q.atoms = {Atom(f.e, {Term::Variable(0), Term::Variable(1)})};
  std::vector<std::vector<Term>> result = EvaluateQuerySorted(q, f.db);
  // Sources: a (twice, deduplicated) and b.
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0][0], f.a);
  EXPECT_EQ(result[1][0], f.b);
}

TEST(QueryEvalTest, CertainOnlyFiltersNulls) {
  Fixture f;
  f.db.Insert(Atom(f.e, {f.c, Term::Null(0)}));
  ConjunctiveQuery q;
  q.output = {Term::Variable(1)};
  q.atoms = {Atom(f.e, {f.c, Term::Variable(1)})};
  EXPECT_TRUE(EvaluateQuerySorted(q, f.db, /*certain_only=*/true).empty());
  EXPECT_EQ(EvaluateQuerySorted(q, f.db, /*certain_only=*/false).size(), 1u);
}

TEST(QueryEvalTest, BooleanQuery) {
  Fixture f;
  ConjunctiveQuery q;
  q.atoms = {Atom(f.e, {Term::Variable(0), Term::Variable(1)})};
  std::vector<std::vector<Term>> result = EvaluateQuerySorted(q, f.db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0].empty());
}

TEST(QueryEvalTest, ConstantInQueryAtom) {
  Fixture f;
  ConjunctiveQuery q;
  q.output = {Term::Variable(0)};
  q.atoms = {Atom(f.e, {f.a, Term::Variable(0)})};
  std::vector<std::vector<Term>> result = EvaluateQuerySorted(q, f.db);
  ASSERT_EQ(result.size(), 2u);  // b and c
}

}  // namespace
}  // namespace vadalog
