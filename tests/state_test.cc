// Tests for proof-state canonicalization, decomposition into components,
// and eager simplification.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "engine/state.h"

namespace vadalog {
namespace {

Atom MakeAtom(PredicateId p, std::initializer_list<Term> args) {
  return Atom(p, std::vector<Term>(args));
}

TEST(CanonicalizeTest, VariableRenamingInvariance) {
  // {e(X5, X9)} and {e(X0, X1)} canonicalize identically.
  CanonicalState a =
      Canonicalize({MakeAtom(0, {Term::Variable(5), Term::Variable(9)})});
  CanonicalState b =
      Canonicalize({MakeAtom(0, {Term::Variable(0), Term::Variable(1)})});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(CanonicalizeTest, AtomOrderInvariance) {
  std::vector<Atom> forward = {
      MakeAtom(0, {Term::Variable(0), Term::Variable(1)}),
      MakeAtom(1, {Term::Variable(1), Term::Variable(2)})};
  std::vector<Atom> backward = {
      MakeAtom(1, {Term::Variable(7), Term::Variable(3)}),
      MakeAtom(0, {Term::Variable(9), Term::Variable(7)})};
  EXPECT_EQ(Canonicalize(forward), Canonicalize(backward));
}

TEST(CanonicalizeTest, DistinguishesJoinStructure) {
  // e(X,Y), e(Y,Z)  vs  e(X,Y), e(Z,Y): different join shapes.
  std::vector<Atom> chain = {
      MakeAtom(0, {Term::Variable(0), Term::Variable(1)}),
      MakeAtom(0, {Term::Variable(1), Term::Variable(2)})};
  std::vector<Atom> vee = {
      MakeAtom(0, {Term::Variable(0), Term::Variable(1)}),
      MakeAtom(0, {Term::Variable(2), Term::Variable(1)})};
  EXPECT_FALSE(Canonicalize(chain) == Canonicalize(vee));
}

TEST(CanonicalizeTest, ConstantsAreRigid) {
  std::vector<Atom> with_a = {MakeAtom(0, {Term::Constant(1)})};
  std::vector<Atom> with_b = {MakeAtom(0, {Term::Constant(2)})};
  EXPECT_FALSE(Canonicalize(with_a) == Canonicalize(with_b));
}

TEST(CanonicalizeTest, SymmetricStatesMerge) {
  // {e(X,Y), e(Y,X)} under either atom order.
  std::vector<Atom> one = {
      MakeAtom(0, {Term::Variable(0), Term::Variable(1)}),
      MakeAtom(0, {Term::Variable(1), Term::Variable(0)})};
  std::vector<Atom> two = {
      MakeAtom(0, {Term::Variable(1), Term::Variable(0)}),
      MakeAtom(0, {Term::Variable(0), Term::Variable(1)})};
  EXPECT_EQ(Canonicalize(one), Canonicalize(two));
}

TEST(CanonicalizeTest, EmptyState) {
  CanonicalState state = Canonicalize({});
  EXPECT_TRUE(state.atoms.empty());
  EXPECT_TRUE(state.encoding.empty());
}

TEST(CanonicalizeTest, SentinelModeRenamesNulls) {
  std::vector<Atom> one = {MakeAtom(0, {Term::Null(7), Term::Variable(0)})};
  std::vector<Atom> two = {MakeAtom(0, {Term::Null(2), Term::Variable(5)})};
  EXPECT_EQ(CanonicalizeEx(one, true, nullptr),
            CanonicalizeEx(two, true, nullptr));
  // Without renaming, the nulls are rigid and distinct.
  EXPECT_FALSE(Canonicalize(one) == Canonicalize(two));
}

TEST(CanonicalizeTest, SentinelsStayDistinctFromVariables) {
  std::vector<Atom> null_version = {MakeAtom(0, {Term::Null(0)})};
  std::vector<Atom> var_version = {MakeAtom(0, {Term::Variable(0)})};
  EXPECT_FALSE(CanonicalizeEx(null_version, true, nullptr) ==
               CanonicalizeEx(var_version, true, nullptr));
}

TEST(CanonicalizeTest, MappingReportsRenaming) {
  std::unordered_map<Term, Term> mapping;
  CanonicalizeEx({MakeAtom(0, {Term::Variable(8), Term::Null(4)})}, true,
                 &mapping);
  EXPECT_EQ(mapping.at(Term::Variable(8)), Term::Variable(0));
  EXPECT_EQ(mapping.at(Term::Null(4)), Term::Null(0));
}

TEST(SplitComponentsTest, DisjointAtomsSplit) {
  std::vector<std::vector<Atom>> components = SplitComponents(
      {MakeAtom(0, {Term::Variable(0)}), MakeAtom(1, {Term::Variable(1)})});
  EXPECT_EQ(components.size(), 2u);
}

TEST(SplitComponentsTest, SharedVariableConnects) {
  std::vector<std::vector<Atom>> components = SplitComponents(
      {MakeAtom(0, {Term::Variable(0), Term::Variable(1)}),
       MakeAtom(1, {Term::Variable(1)}), MakeAtom(2, {Term::Variable(2)})});
  EXPECT_EQ(components.size(), 2u);
}

TEST(SplitComponentsTest, ConstantsDoNotConnect) {
  std::vector<std::vector<Atom>> components = SplitComponents(
      {MakeAtom(0, {Term::Constant(5), Term::Variable(0)}),
       MakeAtom(1, {Term::Constant(5), Term::Variable(1)})});
  EXPECT_EQ(components.size(), 2u);
}

TEST(SplitComponentsTest, TransitiveConnection) {
  std::vector<std::vector<Atom>> components = SplitComponents(
      {MakeAtom(0, {Term::Variable(0), Term::Variable(1)}),
       MakeAtom(0, {Term::Variable(1), Term::Variable(2)}),
       MakeAtom(0, {Term::Variable(2), Term::Variable(3)})});
  EXPECT_EQ(components.size(), 1u);
}

struct DbFixture {
  Program program;
  Instance db;
  PredicateId e, t;

  DbFixture() {
    ParseResult parsed = ParseProgram("e(a, b). e(b, c).");
    program = std::move(*parsed.program);
    db = DatabaseFromFacts(program.facts());
    e = program.symbols().FindPredicate("e");
    t = program.symbols().InternPredicate("t", 2);
  }
};

TEST(EagerSimplifyTest, RemovesSatisfiableComponents) {
  DbFixture f;
  std::vector<Atom> atoms = {
      MakeAtom(f.e, {Term::Variable(0), Term::Variable(1)}),  // matches db
      MakeAtom(f.t, {Term::Variable(2), Term::Variable(3)})}; // t is empty
  size_t removed = EagerSimplify(&atoms, f.db);
  EXPECT_EQ(removed, 1u);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_EQ(atoms[0].predicate, f.t);
}

TEST(EagerSimplifyTest, KeepsConnectedUnsatisfiedPart) {
  DbFixture f;
  // e(X,Y) joined with t(Y,Z): one component, t unmatched, nothing drops.
  std::vector<Atom> atoms = {
      MakeAtom(f.e, {Term::Variable(0), Term::Variable(1)}),
      MakeAtom(f.t, {Term::Variable(1), Term::Variable(2)})};
  EXPECT_EQ(EagerSimplify(&atoms, f.db), 0u);
  EXPECT_EQ(atoms.size(), 2u);
}

TEST(EagerSimplifyTest, GroundAtomInDatabase) {
  DbFixture f;
  Term a = f.program.symbols().InternConstant("a");
  Term b = f.program.symbols().InternConstant("b");
  std::vector<Atom> atoms = {MakeAtom(f.e, {a, b})};
  EXPECT_EQ(EagerSimplify(&atoms, f.db), 1u);
  EXPECT_TRUE(atoms.empty());
}

TEST(SelectAtomTest, PrefersMoreRigidArguments) {
  DbFixture f;
  Term a = f.program.symbols().InternConstant("a");
  std::vector<Atom> atoms = {
      MakeAtom(f.e, {Term::Variable(0), Term::Variable(1)}),
      MakeAtom(f.e, {a, Term::Variable(2)})};
  EXPECT_EQ(SelectAtom(atoms, f.db), 1u);
}

}  // namespace
}  // namespace vadalog
