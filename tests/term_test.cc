// Unit tests for terms, symbol tables, hashing, and the deterministic RNG.

#include <gtest/gtest.h>

#include <unordered_set>

#include "base/hash.h"
#include "base/memory_tracker.h"
#include "base/rng.h"
#include "base/symbol_table.h"
#include "base/term.h"

namespace vadalog {
namespace {

TEST(TermTest, KindsAreDisjoint) {
  Term c = Term::Constant(7);
  Term n = Term::Null(7);
  Term v = Term::Variable(7);
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(n.is_null());
  EXPECT_TRUE(v.is_variable());
  EXPECT_NE(c, n);
  EXPECT_NE(c, v);
  EXPECT_NE(n, v);
  EXPECT_EQ(c.index(), 7u);
  EXPECT_EQ(n.index(), 7u);
  EXPECT_EQ(v.index(), 7u);
}

TEST(TermTest, RigidityMatchesKind) {
  EXPECT_TRUE(Term::Constant(0).is_rigid());
  EXPECT_TRUE(Term::Null(0).is_rigid());
  EXPECT_FALSE(Term::Variable(0).is_rigid());
}

TEST(TermTest, LargeIndicesRoundTrip) {
  uint64_t big = (uint64_t{1} << 62) - 1;
  EXPECT_EQ(Term::Variable(big).index(), big);
  EXPECT_TRUE(Term::Variable(big).is_variable());
}

TEST(TermTest, HashDistinguishesKinds) {
  std::unordered_set<Term> set;
  for (uint64_t i = 0; i < 100; ++i) {
    set.insert(Term::Constant(i));
    set.insert(Term::Null(i));
    set.insert(Term::Variable(i));
  }
  EXPECT_EQ(set.size(), 300u);
}

TEST(TermTest, OrderingIsStrict) {
  EXPECT_LT(Term::Constant(1), Term::Constant(2));
  // Kind bits dominate: constants < nulls < variables.
  EXPECT_LT(Term::Constant(99), Term::Null(0));
  EXPECT_LT(Term::Null(99), Term::Variable(0));
}

TEST(TermTest, DebugStringShowsKind) {
  EXPECT_EQ(DebugString(Term::Constant(3)), "c3");
  EXPECT_EQ(DebugString(Term::Null(4)), "n4");
  EXPECT_EQ(DebugString(Term::Variable(5)), "X5");
}

TEST(SymbolTableTest, InternConstantIsIdempotent) {
  SymbolTable symbols;
  Term a1 = symbols.InternConstant("alpha");
  Term a2 = symbols.InternConstant("alpha");
  Term b = symbols.InternConstant("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(symbols.ConstantName(a1), "alpha");
  EXPECT_EQ(symbols.num_constants(), 2u);
}

TEST(SymbolTableTest, PredicateArityIsEnforced) {
  SymbolTable symbols;
  PredicateId p = symbols.InternPredicate("edge", 2);
  ASSERT_NE(p, kInvalidPredicate);
  EXPECT_EQ(symbols.InternPredicate("edge", 2), p);
  EXPECT_EQ(symbols.InternPredicate("edge", 3), kInvalidPredicate);
  EXPECT_EQ(symbols.PredicateArity(p), 2u);
  EXPECT_EQ(symbols.PredicateName(p), "edge");
}

TEST(SymbolTableTest, FindPredicateDoesNotCreate) {
  SymbolTable symbols;
  EXPECT_EQ(symbols.FindPredicate("missing"), kInvalidPredicate);
  symbols.InternPredicate("present", 1);
  EXPECT_NE(symbols.FindPredicate("present"), kInvalidPredicate);
}

TEST(SymbolTableTest, FreshPredicatesAreUnique) {
  SymbolTable symbols;
  PredicateId a = symbols.MakeFreshPredicate("Aux", 2);
  PredicateId b = symbols.MakeFreshPredicate("Aux", 2);
  EXPECT_NE(a, b);
  EXPECT_NE(symbols.PredicateName(a), symbols.PredicateName(b));
}

TEST(SymbolTableTest, TermToStringRendersAllKinds) {
  SymbolTable symbols;
  Term c = symbols.InternConstant("alice");
  EXPECT_EQ(symbols.TermToString(c), "alice");
  EXPECT_EQ(symbols.TermToString(Term::Null(2)), "_:n2");
  EXPECT_EQ(symbols.TermToString(Term::Variable(0)), "X0");
}

TEST(HashTest, HashRangeDependsOnOrder) {
  std::vector<uint64_t> a = {1, 2, 3};
  std::vector<uint64_t> b = {3, 2, 1};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

TEST(RngTest, DeterministicForSeed) {
  Rng r1(42), r2(42), r3(43);
  EXPECT_EQ(r1.Next(), r2.Next());
  EXPECT_NE(r1.Next(), r3.Next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
    uint64_t x = rng.Range(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  tracker.Remove(120);
  EXPECT_EQ(tracker.current_bytes(), 30u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Reset();
  EXPECT_EQ(tracker.peak_bytes(), 0u);
}

TEST(MemoryTrackerTest, RssReadersReturnPlausibleValues) {
  // On Linux these should be nonzero for a running process.
  EXPECT_GT(CurrentRssKb(), 0u);
  EXPECT_GE(PeakRssKb(), CurrentRssKb() / 2);
}

}  // namespace
}  // namespace vadalog
