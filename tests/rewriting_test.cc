// Tests for the Lemma 6.4 rewriter: (WARD ∩ PWL, CQ) → piece-wise linear
// Datalog, with answer equivalence (Theorem 6.3 (1)) and the program
// expressive power separation (Lemma 6.7 / Theorem 6.6).

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "ast/parser.h"
#include "datalog/seminaive.h"
#include "engine/certain.h"
#include "rewriting/pwl_to_datalog.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    NormalizeToSingleHead(&program, nullptr);
    db = DatabaseFromFacts(program.facts());
  }
};

/// Evaluates the rewritten Datalog program over the database and returns
/// the sorted goal answers.
std::vector<std::vector<Term>> EvaluateRewriting(const RewriteResult& rewrite,
                                                 const Instance& db) {
  DatalogResult result = EvaluateDatalog(*rewrite.datalog, db);
  return EvaluateQuerySorted(rewrite.goal, result.instance);
}

TEST(RewritingTest, ReachabilityEquivalence) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  RewriteResult rewrite =
      RewritePwlWardedToDatalog(s.program, s.program.queries()[0]);
  ASSERT_TRUE(rewrite.datalog.has_value());
  EXPECT_GT(rewrite.rules_emitted, 0u);
  // The output is piece-wise linear Datalog (Theorem 6.3's target class).
  EXPECT_TRUE(IsDatalog(*rewrite.datalog));
  EXPECT_TRUE(IsPiecewiseLinear(*rewrite.datalog));

  std::vector<std::vector<Term>> via_rewriting =
      EvaluateRewriting(rewrite, s.db);
  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(s.program, s.db, s.program.queries()[0]);
  EXPECT_EQ(via_rewriting, via_chase);
}

TEST(RewritingTest, EquivalenceOnFreshDatabase) {
  // The rewriting is database-independent: evaluate the same rewritten
  // program over a different database.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    ?(X, Y) :- t(X, Y).
  )");
  RewriteResult rewrite =
      RewritePwlWardedToDatalog(s.program, s.program.queries()[0]);
  ASSERT_TRUE(rewrite.datalog.has_value());

  Program data;
  std::string err = ParseInto("e(u, v). e(v, w).", &s.program);
  ASSERT_TRUE(err.empty());
  Instance db2 = DatabaseFromFacts(s.program.facts());
  std::vector<std::vector<Term>> via_rewriting =
      EvaluateRewriting(rewrite, db2);
  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(s.program, db2, s.program.queries()[0]);
  EXPECT_EQ(via_rewriting, via_chase);
  EXPECT_EQ(via_rewriting.size(), 3u);
}

TEST(RewritingTest, ExistentialBooleanQuery) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(a).
    ?() :- r(X, Y).
  )");
  RewriteResult rewrite =
      RewritePwlWardedToDatalog(s.program, s.program.queries()[0]);
  ASSERT_TRUE(rewrite.datalog.has_value());
  std::vector<std::vector<Term>> answers = EvaluateRewriting(rewrite, s.db);
  ASSERT_EQ(answers.size(), 1u);  // true
}

TEST(RewritingTest, ExistentialChainWithPropagation) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
    p(a).
    ?(X) :- p(X).
  )");
  RewriteResult rewrite =
      RewritePwlWardedToDatalog(s.program, s.program.queries()[0]);
  ASSERT_TRUE(rewrite.datalog.has_value());
  std::vector<std::vector<Term>> answers = EvaluateRewriting(rewrite, s.db);
  std::vector<std::vector<Term>> expected =
      CertainAnswersViaChase(s.program, s.db, s.program.queries()[0]);
  EXPECT_EQ(answers, expected);  // just (a)
  EXPECT_EQ(answers.size(), 1u);
}

TEST(RewritingTest, ConstantsInQuery) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  RewriteResult rewrite =
      RewritePwlWardedToDatalog(s.program, s.program.queries()[0]);
  ASSERT_TRUE(rewrite.datalog.has_value());
  std::vector<std::vector<Term>> answers = EvaluateRewriting(rewrite, s.db);
  EXPECT_EQ(answers.size(), 2u);  // b, c
}

TEST(RewritingTest, StateBudgetReported) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    ?(X, Y) :- t(X, Y).
  )");
  RewriteOptions options;
  options.max_states = 1;
  RewriteResult rewrite =
      RewritePwlWardedToDatalog(s.program, s.program.queries()[0], options);
  EXPECT_TRUE(rewrite.budget_exhausted);
  EXPECT_FALSE(rewrite.datalog.has_value());
}

TEST(RewritingTest, ProgramExpressivePowerSeparation) {
  // Lemma 6.7's witness: Σ = {P(x) → ∃y R(x,y)}, D = {P(c)}.
  // q1 = ∃x∃y R(x,y) is certain; q2 = ∃x∃y R(x,y) ∧ P(y) is not.
  // Any Datalog program (null-free) that matches q1 would wrongly also
  // satisfy q2 — showing TGD value invention is not program-expressible.
  TestEnv s(R"(
    r(X, Y) :- p(X).
    p(c).
    ?() :- r(X, Y).
    ?() :- r(X, Y), p(Y).
  )");
  std::vector<std::vector<Term>> q1 =
      CertainAnswersViaChase(s.program, s.db, s.program.queries()[0]);
  std::vector<std::vector<Term>> q2 =
      CertainAnswersViaChase(s.program, s.db, s.program.queries()[1]);
  EXPECT_EQ(q1.size(), 1u);  // certain
  EXPECT_TRUE(q2.empty());   // not certain: the witness is a null
}

TEST(RewritingTest, GoalQueryShapeMatchesOutputArity) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    ?(X, Y) :- t(X, Y).
  )");
  RewriteResult rewrite =
      RewritePwlWardedToDatalog(s.program, s.program.queries()[0]);
  ASSERT_TRUE(rewrite.datalog.has_value());
  EXPECT_EQ(rewrite.goal.output.size(), 2u);
  ASSERT_EQ(rewrite.goal.atoms.size(), 1u);
}

}  // namespace
}  // namespace vadalog
