// Tests for the static analysis: predicate graph, SCCs, levels, affected
// positions, variable marking, wardedness (Definition 3.1), and the
// fragment checks (Definition 4.1 and Section 5).

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "analysis/predicate_graph.h"
#include "analysis/wardedness.h"
#include "ast/parser.h"

namespace vadalog {
namespace {

Program Parse(const char* text) {
  ParseResult result = ParseProgram(text);
  EXPECT_TRUE(result.ok()) << result.error;
  return std::move(*result.program);
}

TEST(PredicateGraphTest, EdgesFollowBodyToHead) {
  Program program = Parse("t(X, Z) :- e(X, Y), t(Y, Z).");
  PredicateGraph graph(program);
  PredicateId e = program.symbols().FindPredicate("e");
  PredicateId t = program.symbols().FindPredicate("t");
  EXPECT_TRUE(graph.HasEdge(e, t));
  EXPECT_TRUE(graph.HasEdge(t, t));
  EXPECT_FALSE(graph.HasEdge(t, e));
}

TEST(PredicateGraphTest, SelfLoopIsMutuallyRecursive) {
  Program program = Parse("t(X, Z) :- e(X, Y), t(Y, Z).");
  PredicateGraph graph(program);
  PredicateId e = program.symbols().FindPredicate("e");
  PredicateId t = program.symbols().FindPredicate("t");
  EXPECT_TRUE(graph.MutuallyRecursive(t, t));
  EXPECT_FALSE(graph.MutuallyRecursive(e, e));
  EXPECT_FALSE(graph.MutuallyRecursive(e, t));
}

TEST(PredicateGraphTest, MutualRecursionAcrossTwoPredicates) {
  Program program = Parse(R"(
    p(X) :- q(X).
    q(X) :- p(X).
    r(X) :- p(X).
  )");
  PredicateGraph graph(program);
  PredicateId p = program.symbols().FindPredicate("p");
  PredicateId q = program.symbols().FindPredicate("q");
  PredicateId r = program.symbols().FindPredicate("r");
  EXPECT_TRUE(graph.MutuallyRecursive(p, q));
  EXPECT_FALSE(graph.MutuallyRecursive(p, r));
  EXPECT_EQ(graph.RecursiveWith(p).size(), 2u);
  EXPECT_TRUE(graph.RecursiveWith(r).empty());
}

TEST(PredicateGraphTest, AcyclicSingletonIsNotRecursive) {
  Program program = Parse("p(X) :- e(X).");
  PredicateGraph graph(program);
  PredicateId p = program.symbols().FindPredicate("p");
  EXPECT_FALSE(graph.MutuallyRecursive(p, p));
}

TEST(PredicateGraphTest, LevelsFollowNonRecursivePredecessors) {
  // e (level 1) → t (level 2, self-recursive) → s (level 3).
  Program program = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    s(X) :- t(X, X).
  )");
  PredicateGraph graph(program);
  PredicateId e = program.symbols().FindPredicate("e");
  PredicateId t = program.symbols().FindPredicate("t");
  PredicateId s = program.symbols().FindPredicate("s");
  EXPECT_EQ(graph.Level(e), 1u);
  EXPECT_EQ(graph.Level(t), 2u);
  EXPECT_EQ(graph.Level(s), 3u);
  EXPECT_EQ(graph.MaxLevel(), 3u);
}

TEST(PredicateGraphTest, MutuallyRecursivePredicatesShareLevel) {
  Program program = Parse(R"(
    p(X) :- e(X).
    p(X) :- q(X).
    q(X) :- p(X).
  )");
  PredicateGraph graph(program);
  EXPECT_EQ(graph.Level(program.symbols().FindPredicate("p")),
            graph.Level(program.symbols().FindPredicate("q")));
}

TEST(PredicateGraphTest, TopologicalOrderSourcesFirst) {
  Program program = Parse(R"(
    b(X) :- a(X).
    c(X) :- b(X).
  )");
  PredicateGraph graph(program);
  const std::vector<int>& topo = graph.TopologicalComponents();
  // a's component must precede b's, which precedes c's.
  PredicateId a = program.symbols().FindPredicate("a");
  PredicateId c = program.symbols().FindPredicate("c");
  size_t pos_a = 0, pos_c = 0;
  for (size_t i = 0; i < topo.size(); ++i) {
    if (topo[i] == graph.ComponentOf(a)) pos_a = i;
    if (topo[i] == graph.ComponentOf(c)) pos_c = i;
  }
  EXPECT_LT(pos_a, pos_c);
}

TEST(AffectedTest, ExistentialPositionsAreAffected) {
  Program program = Parse("r(X, Z) :- p(X).");
  std::unordered_set<Position> affected = AffectedPositions(program);
  PredicateId r = program.symbols().FindPredicate("r");
  EXPECT_EQ(affected.count(MakePosition(r, 1)), 1u);  // r[2] hosts ∃Z
  EXPECT_EQ(affected.count(MakePosition(r, 0)), 0u);
}

TEST(AffectedTest, PropagationThroughFrontier) {
  // The Section 3 example: P(x) → ∃z R(x,z); R(x,y) → P(y).
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
  )");
  std::unordered_set<Position> affected = AffectedPositions(program);
  PredicateId r = program.symbols().FindPredicate("r");
  PredicateId p = program.symbols().FindPredicate("p");
  EXPECT_EQ(affected.count(MakePosition(r, 1)), 1u);
  // y sits only at affected r[2] and is propagated to p[1].
  EXPECT_EQ(affected.count(MakePosition(p, 0)), 1u);
  // ... and back into r[1] through the first rule's frontier x.
  EXPECT_EQ(affected.count(MakePosition(r, 0)), 1u);
}

TEST(AffectedTest, FullProgramHasNoAffectedPositions) {
  Program program = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
  )");
  EXPECT_TRUE(AffectedPositions(program).empty());
}

TEST(MarkingTest, DangerousVariableDetected) {
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
  )");
  std::unordered_set<Position> affected = AffectedPositions(program);
  VariableMarking marking = MarkVariables(program.tgds()[1], affected);
  // In  p(Y) :- r(X, Y):  both X and Y occur only at affected positions;
  // Y is frontier, hence dangerous; X is merely harmful.
  EXPECT_EQ(marking.dangerous.size(), 1u);
  EXPECT_EQ(marking.harmful.size(), 2u);
}

TEST(MarkingTest, HarmlessWhenAnyOccurrenceNonAffected) {
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y), e(Y).
  )");
  std::unordered_set<Position> affected = AffectedPositions(program);
  VariableMarking marking = MarkVariables(program.tgds()[1], affected);
  // Y also occurs at extensional e[1], which is never affected.
  EXPECT_TRUE(marking.dangerous.empty());
}

TEST(WardednessTest, SectionThreeExampleIsWarded) {
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
  )");
  WardednessReport report = CheckWardedness(program);
  EXPECT_TRUE(report.is_warded);
  // Affectedness loops back into p[1] (see AffectedTest.Propagation...),
  // so X is dangerous in the first rule too; each rule's single body atom
  // is its ward.
  EXPECT_EQ(report.ward_index[0], 0);
  EXPECT_EQ(report.ward_index[1], 0);
}

TEST(WardednessTest, Owl2QlExampleIsWarded) {
  // Example 3.3 verbatim.
  Program program = Parse(R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
  )");
  EXPECT_TRUE(IsWarded(program));
}

TEST(WardednessTest, DangerousJoinIsNotWarded) {
  // Two dangerous variables spread over two body atoms: no ward exists.
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p2(X, Y) :- r(X, W), r(Y, W2), q(X, Y).
    q(X, Y) :- p2(X, Y).
    r(X, Z) :- p2(X, Y).
  )");
  // Build affectedness that makes X and Y dangerous in the second rule:
  // here both X and Y flow from affected r-positions into the head.
  WardednessReport report = CheckWardedness(program);
  // Whether or not this exact program is warded depends on affectedness;
  // assert consistency between the verdict and per-rule ward indices.
  for (size_t i = 0; i < report.ward_index.size(); ++i) {
    if (report.ward_index[i] == -2) {
      EXPECT_FALSE(report.is_warded);
    }
  }
}

TEST(WardednessTest, TilingReductionIsNotWarded) {
  // The Section 5 Σ joins harmful row-id variables across Row/Comp atoms.
  Program program = Parse(R"(
    row(Z, Z, X, X) :- tile(X).
    row(X, U, Y, W) :- row(P, X, Y, Z), h(Z, W).
    comp(X, X2) :- row(X, X, Y, Y), row(X2, X2, Y2, Y2), v(Y, Y2).
    comp(Y, Y2) :- row(X, Y, Q, Z), row(X2, Y2, Q2, Z2), comp(X, X2), v(Z, Z2).
    ctiling(X, Y) :- row(P, X, Y, Z), start(Y), right(Z).
    ctiling(Y, Z) :- ctiling(X, W), row(P, Y, Z, W2), comp(X, Y), le(Z), right(W2).
  )");
  EXPECT_FALSE(IsWarded(program));
}

TEST(FragmentsTest, PiecewiseLinearityOfExamples) {
  Program tc_nonlinear = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
  )");
  EXPECT_FALSE(IsPiecewiseLinear(tc_nonlinear));

  Program tc_linear = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
  )");
  EXPECT_TRUE(IsPiecewiseLinear(tc_linear));
}

TEST(FragmentsTest, Owl2QlIsPiecewiseLinearButNotIL) {
  Program program = Parse(R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
  )");
  // Type(x,y), SubClass*(y,z) → Type(x,z) has two intensional body atoms
  // but only one (type) mutually recursive with the head.
  EXPECT_TRUE(IsPiecewiseLinear(program));
  EXPECT_FALSE(IsIntensionallyLinear(program));
}

TEST(FragmentsTest, TilingReductionIsPiecewiseLinear) {
  Program program = Parse(R"(
    row(Z, Z, X, X) :- tile(X).
    row(X, U, Y, W) :- row(P, X, Y, Z), h(Z, W).
    comp(X, X2) :- row(X, X, Y, Y), row(X2, X2, Y2, Y2), v(Y, Y2).
    comp(Y, Y2) :- row(X, Y, Q, Z), row(X2, Y2, Q2, Z2), comp(X, X2), v(Z, Z2).
    ctiling(X, Y) :- row(P, X, Y, Z), start(Y), right(Z).
    ctiling(Y, Z) :- ctiling(X, W), row(P, Y, Z, W2), comp(X, Y), le(Z), right(W2).
  )");
  EXPECT_TRUE(IsPiecewiseLinear(program));
}

TEST(FragmentsTest, DatalogAndLinearDatalog) {
  Program linear = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
  )");
  EXPECT_TRUE(IsDatalog(linear));
  EXPECT_TRUE(IsLinearDatalog(linear));

  Program existential = Parse("r(X, Z) :- p(X).");
  EXPECT_FALSE(IsDatalog(existential));
}

TEST(FragmentsTest, NodeWidthPolynomials) {
  Program program = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    s(X) :- t(X, X).
  )");
  PredicateGraph graph(program);
  // f_WARD∩PWL = (|q|+1) · maxLevel · maxBody = (2+1) · 3 · 2 = 18.
  EXPECT_EQ(NodeWidthBoundPwl(2, program, graph), 18u);
  // f_WARD = 2 · max(|q|, maxBody) = 2 · max(2, 2) = 4.
  EXPECT_EQ(NodeWidthBoundWarded(2, program), 4u);
  EXPECT_EQ(NodeWidthBoundWarded(5, program), 10u);
}

TEST(FragmentsTest, RecursiveBodyAtomCount) {
  Program program = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
  )");
  PredicateGraph graph(program);
  EXPECT_EQ(RecursiveBodyAtomCount(program.tgds()[0], graph), 0u);
  EXPECT_EQ(RecursiveBodyAtomCount(program.tgds()[1], graph), 2u);
}

}  // namespace
}  // namespace vadalog
