// Tests for the Section 5 tiling reduction (Theorem 5.1) and its direct
// ground-truth solver.

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "analysis/wardedness.h"
#include "chase/chase.h"
#include "storage/homomorphism.h"
#include "tiling/tiling.h"

namespace vadalog {
namespace {

TEST(TilingSystemTest, ValidityChecks) {
  TilingSystem ok = MakeSolvableSystem();
  EXPECT_TRUE(ok.Valid());

  TilingSystem overlap = ok;
  overlap.right.push_back(0);  // 0 is already in L
  EXPECT_FALSE(overlap.Valid());

  TilingSystem out_of_range = ok;
  out_of_range.start_tile = 99;
  EXPECT_FALSE(out_of_range.Valid());
}

TEST(DirectSolverTest, SolvableSystemHasTiling) {
  EXPECT_TRUE(SolveTilingDirect(MakeSolvableSystem(), 4, 4));
}

TEST(DirectSolverTest, UnsolvableSystemHasNoTiling) {
  EXPECT_FALSE(SolveTilingDirect(MakeUnsolvableSystem(), 4, 6));
}

TEST(DirectSolverTest, SingleRowTilingNeedsStartEqualsFinish) {
  TilingSystem system;
  system.num_tiles = 2;
  system.left = {0};
  system.right = {1};
  system.horizontal = {{0, 1}};
  system.vertical = {};
  system.start_tile = 0;
  system.finish_tile = 0;  // m = 1: first row is also the last
  EXPECT_TRUE(SolveTilingDirect(system, 3, 3));
  system.finish_tile = 1;  // unreachable: rows never start with 1 ∈ R
  EXPECT_FALSE(SolveTilingDirect(system, 3, 3));
}

TEST(ReductionTest, SigmaIsPwlButNotWarded) {
  TilingReduction reduction = BuildTilingReduction(MakeSolvableSystem());
  EXPECT_TRUE(IsPiecewiseLinear(reduction.program));
  EXPECT_FALSE(IsWarded(reduction.program));
}

TEST(ReductionTest, DatabaseEncodesSystem) {
  TilingSystem system = MakeSolvableSystem();
  TilingReduction reduction = BuildTilingReduction(system);
  Instance db = DatabaseFromFacts(reduction.program.facts());
  PredicateId tile = reduction.program.symbols().FindPredicate("tile");
  const Relation* rel = db.RelationFor(tile);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), system.num_tiles);
}

TEST(ReductionTest, SolvableSystemEntailsQuery) {
  TilingReduction reduction = BuildTilingReduction(MakeSolvableSystem());
  Instance db = DatabaseFromFacts(reduction.program.facts());
  // The chase must run WITHOUT the (warded-only) isomorphism termination:
  // Σ is unwarded, so we bound it by depth instead. The query becomes true
  // at a finite stage (semi-decidability of the 'yes' side).
  ChaseOptions options;
  options.isomorphism_termination = false;
  options.max_depth = 12;
  options.max_atoms = 100000;
  ChaseResult chase = RunChase(reduction.program, db, options);
  EXPECT_FALSE(
      EvaluateQuerySorted(reduction.query, chase.instance).empty());
}

TEST(ReductionTest, UnsolvableSystemNeverEntailsWithinBudget) {
  TilingReduction reduction = BuildTilingReduction(MakeUnsolvableSystem());
  Instance db = DatabaseFromFacts(reduction.program.facts());
  ChaseOptions options;
  options.isomorphism_termination = false;
  options.max_depth = 10;
  options.max_atoms = 100000;
  ChaseResult chase = RunChase(reduction.program, db, options);
  EXPECT_TRUE(EvaluateQuerySorted(reduction.query, chase.instance).empty());
}

TEST(ReductionTest, UnsolvableSystemChaseDiverges) {
  // The unwarded chase keeps producing ever-longer rows: raising the depth
  // budget strictly increases the instance — the undecidability witness.
  TilingReduction reduction = BuildTilingReduction(MakeUnsolvableSystem());
  Instance db = DatabaseFromFacts(reduction.program.facts());
  size_t previous = 0;
  for (uint32_t depth = 2; depth <= 8; depth += 2) {
    ChaseOptions options;
    options.isomorphism_termination = false;
    options.max_depth = depth;
    ChaseResult chase = RunChase(reduction.program, db, options);
    EXPECT_GT(chase.instance.size(), previous);
    previous = chase.instance.size();
  }
}

TEST(ReductionTest, AgreesWithDirectSolverOnRandomSystems) {
  // Randomized cross-check on small systems where both sides are exact
  // within the bounds.
  uint64_t seed = 12345;
  int checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    TilingSystem system;
    system.num_tiles = 3;
    system.left = {0};
    system.right = {1};
    system.start_tile = 0;
    system.finish_tile = static_cast<uint32_t>((seed >> 8) % 3);
    // Sparse random constraint sets (two seed bits per pair) keep both the
    // direct row enumeration and the chase small.
    for (uint32_t x = 0; x < 3; ++x) {
      for (uint32_t y = 0; y < 3; ++y) {
        uint32_t h_bits = (seed >> (2 * (x * 3 + y))) & 3;
        uint32_t v_bits = (seed >> (18 + 2 * (x * 3 + y))) & 3;
        if (h_bits == 3) system.horizontal.push_back({x, y});
        if (v_bits >= 2) system.vertical.push_back({x, y});
      }
    }
    bool direct_small = SolveTilingDirect(system, 3, 3);

    TilingReduction reduction = BuildTilingReduction(system);
    Instance db = DatabaseFromFacts(reduction.program.facts());
    ChaseOptions options;
    options.isomorphism_termination = false;
    // Depth d certifies tilings with width + height ≤ d: enough for every
    // witness the (3,3)-bounded solver can find.
    options.max_depth = 8;
    options.max_atoms = 200000;
    ChaseResult chase = RunChase(reduction.program, db, options);
    bool reduced =
        !EvaluateQuerySorted(reduction.query, chase.instance).empty();
    if (direct_small) {
      // Completeness on 'yes' instances with small witnesses.
      EXPECT_TRUE(reduced) << "trial " << trial;
      ++checked;
    }
    if (reduced) {
      // Soundness: anything the reduction certifies within depth 8 is a
      // real tiling of width, height ≤ 8.
      EXPECT_TRUE(SolveTilingDirect(system, 8, 8)) << "trial " << trial;
    }
  }
  EXPECT_GT(checked, 0);  // at least one solvable instance exercised
}

}  // namespace
}  // namespace vadalog
