// MUST NOT COMPILE under clang -Wthread-safety -Wthread-safety-beta
// -Werror (ctest registers this TU with WILL_FAIL): acquiring two
// ACQUIRED_BEFORE-ordered mutexes in the wrong order — the deadlock
// shape Session's data_mutex_ → cache_mutex_ ordering exists to
// prevent. ACQUIRED_BEFORE checking lives behind -Wthread-safety-beta,
// which is why both the CI thread-safety lane and this harness pass it.

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class TwoLocks {
 public:
  void LockedInOrder() {
    vadalog::base::WriterLock first(&data_mutex_);
    vadalog::base::WriterLock second(&cache_mutex_);
  }

  void LockedInverted() {
    vadalog::base::WriterLock second(&cache_mutex_);
    vadalog::base::WriterLock first(&data_mutex_);  // violation: inversion
  }

 private:
  vadalog::base::SharedMutex data_mutex_ ACQUIRED_BEFORE(cache_mutex_);
  vadalog::base::SharedMutex cache_mutex_;
};

}  // namespace

void TouchOrderInversion() {
  TwoLocks locks;
  locks.LockedInOrder();
  locks.LockedInverted();
}
