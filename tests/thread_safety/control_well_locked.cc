// MUST COMPILE cleanly under clang -Wthread-safety -Wthread-safety-beta
// -Werror: the positive control for the compile-fail harness. It uses
// the same base/mutex.h vocabulary as the three violation TUs —
// GUARDED_BY, REQUIRES_SHARED, ACQUIRED_BEFORE, a role capability —
// with every access correctly locked. If this TU fails, the harness's
// failures are meaningless (the flags or the wrappers are broken, not
// the violations detected).

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class WellLocked {
 public:
  void Bump() {
    vadalog::base::MutexLock lock(&counter_mutex_);
    ++counter_;
  }

  int ReadRow() const REQUIRES_SHARED(data_mutex_) { return row_; }

  int SnapshotOrdered() {
    vadalog::base::ReaderLock data(&data_mutex_);
    int row = ReadRow();
    vadalog::base::WriterLock cache(&cache_mutex_);
    cached_ = row;
    return row;
  }

  void LoopOnlyTouch() {
    vadalog::base::ThreadRoleGuard role(&loop_role_);
    ++loop_state_;
  }

 private:
  vadalog::base::Mutex counter_mutex_;
  int counter_ GUARDED_BY(counter_mutex_) = 0;

  mutable vadalog::base::SharedMutex data_mutex_
      ACQUIRED_BEFORE(cache_mutex_);
  vadalog::base::SharedMutex cache_mutex_;
  int row_ GUARDED_BY(data_mutex_) = 0;
  int cached_ GUARDED_BY(cache_mutex_) = 0;

  vadalog::base::ThreadRole loop_role_;
  int loop_state_ GUARDED_BY(loop_role_) = 0;
};

}  // namespace

int TouchControlWellLocked() {
  WellLocked locked;
  locked.Bump();
  locked.LoopOnlyTouch();
  return locked.SnapshotOrdered();
}
