// MUST NOT COMPILE under clang -Wthread-safety -Werror (ctest registers
// this TU with WILL_FAIL): writing a GUARDED_BY member without holding
// its mutex — the plainest lock-discipline violation the annotations
// exist to reject. If this file ever compiles, the analysis is off and
// the whole machine-checked-discipline guarantee is vacuous.

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    ++value_;  // violation: mutex_ not held
  }

 private:
  vadalog::base::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

void TouchUnguardedAccess() {
  Counter counter;
  counter.Bump();
}
