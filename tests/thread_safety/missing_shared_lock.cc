// MUST NOT COMPILE under clang -Wthread-safety -Werror (ctest registers
// this TU with WILL_FAIL): calling a REQUIRES_SHARED helper without the
// reader lock — the mistake the Session::Explain negation pre-check
// made before the annotation pass flushed it out (it read session data
// with no data lock at all).

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Table {
 public:
  int ReadRow() const REQUIRES_SHARED(mutex_) { return row_; }

  int PeekWithoutLock() const {
    return ReadRow();  // violation: neither shared nor exclusive hold
  }

 private:
  mutable vadalog::base::SharedMutex mutex_;
  int row_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int TouchMissingSharedLock() {
  Table table;
  return table.PeekWithoutLock();
}
