// Tests for the alternating bounded proof search (general warded sets,
// re-establishing Proposition 3.2).

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "engine/alternating_search.h"
#include "engine/certain.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    NormalizeToSingleHead(&program, nullptr);
    db = DatabaseFromFacts(program.facts());
  }

  Term Const(const char* name) {
    return program.symbols().InternConstant(name);
  }
  ConjunctiveQuery Query(size_t index = 0) {
    return program.queries()[index];
  }
};

TEST(AlternatingSearchTest, NonLinearTransitiveClosure) {
  // T(x,y) ∧ T(y,z) → T(x,z) is warded but not PWL: the linear search
  // bound does not apply, the alternating search with f_WARD does.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, f).
    ?(X) :- t(a, X).
  )");
  EXPECT_TRUE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("f")})
          .accepted);
  EXPECT_FALSE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("a")})
          .accepted);
}

TEST(AlternatingSearchTest, AgreesWithChase) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(s.program, s.db, s.Query());
  std::vector<std::vector<Term>> via_search = CertainAnswersViaSearch(
      s.program, s.db, s.Query(), /*use_alternating=*/true);
  EXPECT_EQ(via_chase, via_search);
  EXPECT_EQ(via_search.size(), 9u);
}

TEST(AlternatingSearchTest, ExistentialsWithNonLinearRules) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
    conn(X, Y) :- p(X), p(Y).
    ?() :- conn(X, Y).
  )");
  EXPECT_TRUE(s.db.size() == 0);
  // No facts at all: nothing derivable.
  EXPECT_FALSE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {}).accepted);
  s.db.Insert(Atom(s.program.symbols().FindPredicate("p"), {s.Const("a")}));
  EXPECT_TRUE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {}).accepted);
}

TEST(AlternatingSearchTest, DecompositionAndMemoization) {
  // The query splits into two independent components after freezing.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(x1, y1).
    ?(X, Y) :- t(a, X), t(x1, Y).
  )");
  AlternatingSearchResult result = AlternatingProofSearch(
      s.program, s.db, s.Query(), {s.Const("c"), s.Const("y1")});
  EXPECT_TRUE(result.accepted);
  EXPECT_GT(result.states_expanded, 0u);
}

TEST(AlternatingSearchTest, BudgetExhaustionReported) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ProofSearchOptions options;
  options.max_states = 1;
  AlternatingSearchResult result = AlternatingProofSearch(
      s.program, s.db, s.Query(), {s.Const("zz")}, options);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST(AlternatingSearchTest, CycleInStateGraphTerminates) {
  // p ↔ q mutual recursion with no base case: refutation must terminate
  // via on-path cycle pruning.
  TestEnv s(R"(
    p(X) :- q(X).
    q(X) :- p(X).
    dom(a).
    ?(X) :- p(X).
  )");
  AlternatingSearchResult result =
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("a")});
  EXPECT_FALSE(result.accepted);
}

// Deterministic perf canaries (counter-based, CI-stable): bounds are ~2x
// the counts observed when the pruned search landed (13 expansions for the
// positive decision, 2628 for the refutation).
TEST(AlternatingSearchTest, PerfCanaryNonLinearTcCounts) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, f).
    ?(X) :- t(a, X).
  )");
  AlternatingSearchResult positive =
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("f")});
  EXPECT_TRUE(positive.accepted);
  EXPECT_LE(positive.states_expanded, 30u);
  AlternatingSearchResult negative =
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("a")});
  EXPECT_FALSE(negative.accepted);
  EXPECT_FALSE(negative.budget_exhausted);
  EXPECT_LE(negative.states_expanded, 5000u);
}

TEST(AlternatingSearchTest, SubsumptionPruningPreservesDecisions) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d). e(d, f).
    ?(X, Y) :- t(X, Y).
  )");
  ProofSearchOptions unpruned;
  unpruned.subsumption = false;
  std::vector<Term> constants = {s.Const("a"), s.Const("b"), s.Const("c"),
                                 s.Const("d"), s.Const("f"), s.Const("zz")};
  uint64_t total_discarded = 0;
  for (Term x : constants) {
    for (Term y : constants) {
      AlternatingSearchResult pruned =
          AlternatingProofSearch(s.program, s.db, s.Query(), {x, y});
      AlternatingSearchResult plain = AlternatingProofSearch(
          s.program, s.db, s.Query(), {x, y}, unpruned);
      EXPECT_EQ(pruned.accepted, plain.accepted)
          << x.index() << ", " << y.index();
      total_discarded += pruned.subsumed_discarded;
    }
  }
  EXPECT_GT(total_discarded, 0u);  // the pruning must actually fire
}

TEST(AlternatingSearchTest, MatchesLinearSearchOnPwlPrograms) {
  // On WARD ∩ PWL programs both engines must agree.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<std::vector<Term>> linear =
      CertainAnswersViaSearch(s.program, s.db, s.Query(), false);
  std::vector<std::vector<Term>> alternating =
      CertainAnswersViaSearch(s.program, s.db, s.Query(), true);
  EXPECT_EQ(linear, alternating);
}

}  // namespace
}  // namespace vadalog
