// Tests for the alternating bounded proof search (general warded sets,
// re-establishing Proposition 3.2).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ast/parser.h"
#include "engine/alternating_search.h"
#include "engine/certain.h"
#include "engine/search_cache.h"
#include "engine/subsumption.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    NormalizeToSingleHead(&program, nullptr);
    db = DatabaseFromFacts(program.facts());
  }

  Term Const(const char* name) {
    return program.symbols().InternConstant(name);
  }
  ConjunctiveQuery Query(size_t index = 0) {
    return program.queries()[index];
  }
};

TEST(AlternatingSearchTest, NonLinearTransitiveClosure) {
  // T(x,y) ∧ T(y,z) → T(x,z) is warded but not PWL: the linear search
  // bound does not apply, the alternating search with f_WARD does.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, f).
    ?(X) :- t(a, X).
  )");
  EXPECT_TRUE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("f")})
          .accepted);
  EXPECT_FALSE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("a")})
          .accepted);
}

TEST(AlternatingSearchTest, AgreesWithChase) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(s.program, s.db, s.Query());
  std::vector<std::vector<Term>> via_search = CertainAnswersViaSearch(
      s.program, s.db, s.Query(), /*use_alternating=*/true);
  EXPECT_EQ(via_chase, via_search);
  EXPECT_EQ(via_search.size(), 9u);
}

TEST(AlternatingSearchTest, ExistentialsWithNonLinearRules) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
    conn(X, Y) :- p(X), p(Y).
    ?() :- conn(X, Y).
  )");
  EXPECT_TRUE(s.db.size() == 0);
  // No facts at all: nothing derivable.
  EXPECT_FALSE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {}).accepted);
  s.db.Insert(Atom(s.program.symbols().FindPredicate("p"), {s.Const("a")}));
  EXPECT_TRUE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {}).accepted);
}

TEST(AlternatingSearchTest, DecompositionAndMemoization) {
  // The query splits into two independent components after freezing.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(x1, y1).
    ?(X, Y) :- t(a, X), t(x1, Y).
  )");
  AlternatingSearchResult result = AlternatingProofSearch(
      s.program, s.db, s.Query(), {s.Const("c"), s.Const("y1")});
  EXPECT_TRUE(result.accepted);
  EXPECT_GT(result.states_expanded, 0u);
}

TEST(AlternatingSearchTest, BudgetExhaustionReported) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ProofSearchOptions options;
  options.max_states = 1;
  AlternatingSearchResult result = AlternatingProofSearch(
      s.program, s.db, s.Query(), {s.Const("zz")}, options);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST(AlternatingSearchTest, CycleInStateGraphTerminates) {
  // p ↔ q mutual recursion with no base case: refutation must terminate
  // via on-path cycle pruning.
  TestEnv s(R"(
    p(X) :- q(X).
    q(X) :- p(X).
    dom(a).
    ?(X) :- p(X).
  )");
  AlternatingSearchResult result =
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("a")});
  EXPECT_FALSE(result.accepted);
}

// Deterministic perf canaries (counter-based, CI-stable): bounds are ~2x
// the counts observed when the pruned search landed (13 expansions for the
// positive decision, 2628 for the refutation).
TEST(AlternatingSearchTest, PerfCanaryNonLinearTcCounts) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, f).
    ?(X) :- t(a, X).
  )");
  AlternatingSearchResult positive =
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("f")});
  EXPECT_TRUE(positive.accepted);
  EXPECT_LE(positive.states_expanded, 30u);
  AlternatingSearchResult negative =
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("a")});
  EXPECT_FALSE(negative.accepted);
  EXPECT_FALSE(negative.budget_exhausted);
  EXPECT_LE(negative.states_expanded, 5000u);
}

TEST(AlternatingSearchTest, SubsumptionPruningPreservesDecisions) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d). e(d, f).
    ?(X, Y) :- t(X, Y).
  )");
  ProofSearchOptions unpruned;
  unpruned.subsumption = false;
  std::vector<Term> constants = {s.Const("a"), s.Const("b"), s.Const("c"),
                                 s.Const("d"), s.Const("f"), s.Const("zz")};
  uint64_t total_discarded = 0;
  for (Term x : constants) {
    for (Term y : constants) {
      AlternatingSearchResult pruned =
          AlternatingProofSearch(s.program, s.db, s.Query(), {x, y});
      AlternatingSearchResult plain = AlternatingProofSearch(
          s.program, s.db, s.Query(), {x, y}, unpruned);
      EXPECT_EQ(pruned.accepted, plain.accepted)
          << x.index() << ", " << y.index();
      total_discarded += pruned.subsumed_discarded;
    }
  }
  EXPECT_GT(total_discarded, 0u);  // the pruning must actually fire
}

// The explicit-stack machine must prove goals whose only proof is deeper
// than the former kMaxProveDepth = 2000 recursion guard (which silently
// reported such goals as budget_exhausted) — and do it without leaning on
// the OS stack: tests/CMakeLists.txt re-runs the DeepChain tests under a
// `ulimit -s 1024` (1 MiB) stack to pin that.
struct DeepChain {
  static constexpr uint32_t kNodes = 1500;  // proof depth ~2 frames/node

  Program program;
  Instance db;

  DeepChain() {
    std::string text =
        "t(X, Y) :- e(X, Y).\n"
        "t(X, Z) :- t(X, Y), e(Y, Z).\n"
        "?(X) :- t(a0, X).\n";
    for (uint32_t i = 0; i + 1 < kNodes; ++i) {
      text += "e(a" + std::to_string(i) + ", a" + std::to_string(i + 1) +
              ").\n";
    }
    ParseResult parsed = ParseProgram(text.c_str());
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    NormalizeToSingleHead(&program, nullptr);
    db = DatabaseFromFacts(program.facts());
  }
};

TEST(AlternatingSearchTest, DeepChainProofBeyondFormerRecursionGuard) {
  DeepChain s;
  Term last = s.program.symbols().InternConstant(
      "a" + std::to_string(DeepChain::kNodes - 1));
  AlternatingSearchResult deep = AlternatingProofSearch(
      s.program, s.db, s.program.queries()[0], {last});
  EXPECT_TRUE(deep.accepted);
  EXPECT_FALSE(deep.budget_exhausted);
  // The proof tree really was deeper than the former guard.
  EXPECT_GT(deep.states_expanded, 2000u);
  // Both engines agree on the deep verdict (the program is WARD ∩ PWL).
  ProofSearchResult linear = LinearProofSearch(
      s.program, s.db, s.program.queries()[0], {last});
  EXPECT_TRUE(linear.accepted);
}

TEST(AlternatingSearchTest, DeepChainRefutationAgrees) {
  DeepChain s;
  Term absent = s.program.symbols().InternConstant("zz");
  AlternatingSearchResult alt = AlternatingProofSearch(
      s.program, s.db, s.program.queries()[0], {absent});
  EXPECT_FALSE(alt.accepted);
  EXPECT_FALSE(alt.budget_exhausted);
  ProofSearchResult linear = LinearProofSearch(
      s.program, s.db, s.program.queries()[0], {absent});
  EXPECT_FALSE(linear.accepted);
  EXPECT_FALSE(linear.budget_exhausted);
}

// Budget-exhausted searches must never deposit refutation certificates:
// the branch that hit the cut was not fully explored, so nothing it gave
// up on may later masquerade as refuted in the session cache or the
// sweep-shared bank.
TEST(AlternatingSearchTest, BudgetExhaustedRecordsNoCertificates) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X) :- t(a, X).
  )");
  ProofSearchCache cache(s.program, s.db);
  SubsumptionIndex bank;
  ProofSearchOptions options;
  options.cache = &cache;
  options.shared_refuted = &bank;
  options.max_states = 1;
  AlternatingSearchResult result = AlternatingProofSearch(
      s.program, s.db, s.Query(), {s.Const("zz")}, options);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(cache.alt_refuted_size(), 0u);
  EXPECT_EQ(bank.size(), 0u);
}

// The fork-join parallelization contract, mirroring the linear BFS: on
// untimed searches the verdict AND every counter are bit-identical for
// any thread count, because the fork structure is fixed by fork_depth
// alone and speculative branch results are only accepted when provably
// equal to the sequential fold's run.
TEST(AlternatingSearchTest, CountersBitIdenticalAcrossThreads) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d). e(d, f). e(f, g). e(x1, y1).
    ?(X, Y) :- t(a, X), t(x1, Y).
  )");
  auto run = [&](uint32_t threads, uint32_t fork_depth,
                 uint64_t max_states, const std::vector<Term>& answer) {
    ProofSearchOptions options;
    options.num_threads = threads;
    options.fork_depth = fork_depth;
    options.max_states = max_states;
    return AlternatingProofSearch(s.program, s.db, s.Query(), answer,
                                  options);
  };
  auto expect_identical = [](const AlternatingSearchResult& a,
                             const AlternatingSearchResult& b,
                             const char* what) {
    EXPECT_EQ(a.accepted, b.accepted) << what;
    EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << what;
    EXPECT_EQ(a.states_expanded, b.states_expanded) << what;
    EXPECT_EQ(a.proven_cached, b.proven_cached) << what;
    EXPECT_EQ(a.refuted_cached, b.refuted_cached) << what;
    EXPECT_EQ(a.cache_hits, b.cache_hits) << what;
    EXPECT_EQ(a.subsumed_discarded, b.subsumed_discarded) << what;
    EXPECT_EQ(a.sweep_refuted_hits, b.sweep_refuted_hits) << what;
    EXPECT_EQ(a.peak_state_bytes, b.peak_state_bytes) << what;
    EXPECT_EQ(a.node_width_used, b.node_width_used) << what;
  };
  std::vector<std::vector<Term>> answers = {
      {s.Const("d"), s.Const("y1")},   // provable (AND-split root)
      {s.Const("a"), s.Const("y1")},   // refutable left component
      {s.Const("zz"), s.Const("zz")},  // refutable everywhere
  };
  for (uint32_t fork_depth : {1u, 2u}) {
    for (uint64_t max_states : {uint64_t{0}, uint64_t{40}}) {
      for (const std::vector<Term>& answer : answers) {
        AlternatingSearchResult base =
            run(1, fork_depth, max_states, answer);
        for (uint32_t threads : {2u, 4u}) {
          AlternatingSearchResult r =
              run(threads, fork_depth, max_states, answer);
          expect_identical(base, r,
                           ("fork_depth=" + std::to_string(fork_depth) +
                            " max_states=" + std::to_string(max_states) +
                            " threads=" + std::to_string(threads))
                               .c_str());
        }
      }
    }
  }
}

// fork_depth trades sibling memo sharing for parallelism; it must never
// change a verdict.
TEST(AlternatingSearchTest, ForkDepthAblationPreservesDecisions) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<Term> constants = {s.Const("a"), s.Const("b"), s.Const("c"),
                                 s.Const("d"), s.Const("zz")};
  for (Term x : constants) {
    for (Term y : constants) {
      ProofSearchOptions sequential;
      sequential.fork_depth = 0;
      bool expected =
          AlternatingProofSearch(s.program, s.db, s.Query(), {x, y},
                                 sequential)
              .accepted;
      for (uint32_t fork_depth : {1u, 3u}) {
        ProofSearchOptions forked;
        forked.fork_depth = fork_depth;
        forked.num_threads = 2;
        EXPECT_EQ(AlternatingProofSearch(s.program, s.db, s.Query(), {x, y},
                                         forked)
                      .accepted,
                  expected)
            << x.index() << ", " << y.index() << " fork_depth "
            << fork_depth;
      }
    }
  }
}

TEST(AlternatingSearchTest, MatchesLinearSearchOnPwlPrograms) {
  // On WARD ∩ PWL programs both engines must agree.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<std::vector<Term>> linear =
      CertainAnswersViaSearch(s.program, s.db, s.Query(), false);
  std::vector<std::vector<Term>> alternating =
      CertainAnswersViaSearch(s.program, s.db, s.Query(), true);
  EXPECT_EQ(linear, alternating);
}

}  // namespace
}  // namespace vadalog
