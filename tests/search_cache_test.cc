// Tests for the relevance index (per-predicate TGD buckets, supported
// fixpoint) and the cross-candidate proof-search memoization cache.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "engine/certain.h"
#include "engine/search_cache.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    NormalizeToSingleHead(&program, nullptr);
    db = DatabaseFromFacts(program.facts());
  }

  Term Const(const char* name) {
    return program.symbols().InternConstant(name);
  }
  PredicateId Pred(const char* name) {
    return program.symbols().FindPredicate(name);
  }
  ConjunctiveQuery Query(size_t index = 0) {
    return program.queries()[index];
  }
};

TEST(ProgramIndexTest, TgdsWithHeadBucketsByHeadPredicate) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).
  )");
  ProgramIndex index(s.program, s.db);
  EXPECT_EQ(index.TgdsWithHead(s.Pred("t")).size(), 2u);
  EXPECT_TRUE(index.TgdsWithHead(s.Pred("e")).empty());
  EXPECT_TRUE(index.RuleDerivable(s.Pred("t")));
  EXPECT_FALSE(index.RuleDerivable(s.Pred("e")));
}

TEST(ProgramIndexTest, SupportedIsALeastFixpointNotJustHeadMembership) {
  // p is derived only from q, q only from r, and r has no facts: none of
  // the three is supported although p and q are rule heads.
  TestEnv s(R"(
    p(X) :- q(X).
    q(X) :- r(X).
    dom(a).
  )");
  ProgramIndex index(s.program, s.db);
  EXPECT_FALSE(index.Supported(s.Pred("p")));
  EXPECT_FALSE(index.Supported(s.Pred("q")));
  EXPECT_FALSE(index.Supported(s.Pred("r")));
  EXPECT_TRUE(index.Supported(s.Pred("dom")));
}

TEST(ProgramIndexTest, SupportedPropagatesThroughDerivableChains) {
  TestEnv s(R"(
    p(X) :- q(X).
    q(X) :- r(X).
    r(a).
  )");
  ProgramIndex index(s.program, s.db);
  EXPECT_TRUE(index.Supported(s.Pred("p")));
  EXPECT_TRUE(index.Supported(s.Pred("q")));
  EXPECT_TRUE(index.Supported(s.Pred("r")));
}

TEST(ProgramIndexTest, RecursiveRulesAloneDoNotSupport) {
  // p/q feed each other but never bottom out in the database.
  TestEnv s(R"(
    p(X) :- q(X).
    q(X) :- p(X).
    dom(a).
  )");
  ProgramIndex index(s.program, s.db);
  EXPECT_FALSE(index.Supported(s.Pred("p")));
  EXPECT_FALSE(index.Supported(s.Pred("q")));
}

TEST(ProgramIndexTest, StateIsDeadPrunesUnsupportedAndUnmatchable) {
  TestEnv s(R"(
    p(X) :- q(X).
    e(a, b).
  )");
  ProgramIndex index(s.program, s.db);
  // q is neither in the database nor derivable: dead.
  EXPECT_TRUE(index.StateIsDead(
      {Atom(s.Pred("q"), {Term::Variable(0)})}, s.db));
  // e(zz, X) has no matching row and e is not derivable: dead.
  EXPECT_TRUE(index.StateIsDead(
      {Atom(s.Pred("e"), {s.Const("zz"), Term::Variable(0)})}, s.db));
  // e(a, X) matches a row: alive.
  EXPECT_FALSE(index.StateIsDead(
      {Atom(s.Pred("e"), {s.Const("a"), Term::Variable(0)})}, s.db));
}

TEST(SearchCacheTest, RefutationsTransferAcrossCandidates) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  // Refuting t(a, zz) walks the whole chain: its visited set contains
  // t(b, zz), which is exactly the initial state of the next candidate —
  // the second refutation must come back as an immediate cache hit.
  ProofSearchResult first = LinearProofSearch(
      s.program, s.db, s.Query(), {s.Const("a"), s.Const("zz")}, options);
  EXPECT_FALSE(first.accepted);
  EXPECT_GT(cache.linear_refuted_size(), 0u);
  ProofSearchResult second = LinearProofSearch(
      s.program, s.db, s.Query(), {s.Const("b"), s.Const("zz")}, options);
  EXPECT_FALSE(second.accepted);
  EXPECT_GT(second.cache_hits, 0u);
  EXPECT_LT(second.states_visited, first.states_visited);
}

TEST(SearchCacheTest, CachedAndUncachedLinearDecisionsAgree) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions cached;
  cached.cache = &cache;
  std::vector<Term> constants = {s.Const("a"), s.Const("b"), s.Const("c"),
                                 s.Const("d")};
  for (Term x : constants) {
    for (Term y : constants) {
      bool without =
          LinearProofSearch(s.program, s.db, s.Query(), {x, y}).accepted;
      bool with =
          LinearProofSearch(s.program, s.db, s.Query(), {x, y}, cached)
              .accepted;
      EXPECT_EQ(without, with) << "candidate (" << x.index() << ", "
                               << y.index() << ")";
    }
  }
  EXPECT_GT(cache.stats().lookups, 0u);
  EXPECT_GT(cache.linear_refuted_size(), 0u);
}

TEST(SearchCacheTest, CachedAndUncachedAlternatingDecisionsAgree) {
  // Non-linear TC: exercises the alternating search's shared proven and
  // refuted tables.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions cached;
  cached.cache = &cache;
  std::vector<Term> constants = {s.Const("a"), s.Const("b"), s.Const("c"),
                                 s.Const("d")};
  for (Term x : constants) {
    for (Term y : constants) {
      bool without =
          AlternatingProofSearch(s.program, s.db, s.Query(), {x, y}).accepted;
      bool with =
          AlternatingProofSearch(s.program, s.db, s.Query(), {x, y}, cached)
              .accepted;
      EXPECT_EQ(without, with) << "candidate (" << x.index() << ", "
                               << y.index() << ")";
    }
  }
  EXPECT_GT(cache.alt_proven_size() + cache.alt_refuted_size(), 0u);
}

TEST(SearchCacheTest, EnumerationWithSharedCacheMatchesChase) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(s.program, s.db, s.Query());
  // CertainAnswersViaSearch builds its own shared cache internally.
  std::vector<std::vector<Term>> via_search =
      CertainAnswersViaSearch(s.program, s.db, s.Query());
  EXPECT_EQ(via_chase, via_search);
  // And an externally supplied cache must give the same answers again.
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  std::vector<std::vector<Term>> via_shared = CertainAnswersViaSearch(
      s.program, s.db, s.Query(), /*use_alternating=*/false, options);
  EXPECT_EQ(via_chase, via_shared);
}

TEST(SearchCacheTest, NarrowWidthRefutationsDoNotPoisonWiderSearches) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ProofSearchCache cache(s.program, s.db);
  // Width 1 prunes every resolvent of the recursive rule: the decision
  // comes out refuted, and its states are recorded under width 1.
  ProofSearchOptions narrow;
  narrow.cache = &cache;
  narrow.node_width = 1;
  EXPECT_FALSE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("c")}, narrow)
          .accepted);
  // The same cache must not let those narrow refutations refute the
  // default-width search, which accepts.
  ProofSearchOptions wide;
  wide.cache = &cache;
  EXPECT_TRUE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("c")}, wide)
          .accepted);
}

TEST(SearchCacheTest, BudgetExhaustedSearchesRecordNothing) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X) :- t(a, X).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  options.max_states = 2;
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("zz")}, options);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.budget_exhausted);
  // An aborted refutation is not a refutation certificate.
  EXPECT_EQ(cache.linear_refuted_size(), 0u);
}

TEST(SearchCacheTest, BudgetExhaustedAlternatingRecordsNoRefutations) {
  // The alternating analog of the linear no-poison guarantee: a search
  // that gave up must not leave refutation certificates behind. Proofs
  // found before the budget tripped remain sound and may be recorded.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d). e(d, e). e(e, a).
    ?(X) :- t(a, X).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  options.max_states = 3;
  AlternatingSearchResult result = AlternatingProofSearch(
      s.program, s.db, s.Query(), {s.Const("zz")}, options);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(cache.alt_refuted_size(), 0u);
  // And the poisoned-free cache must not corrupt a later full search.
  ProofSearchOptions full;
  full.cache = &cache;
  EXPECT_TRUE(AlternatingProofSearch(s.program, s.db, s.Query(),
                                     {s.Const("d")}, full)
                  .accepted);
}

TEST(SearchCacheTest, SubsumptionTransfersRefutationsAcrossCandidates) {
  // Candidate t(b, zz)'s whole search is subsumed by states recorded while
  // refuting t(a, zz): with the chain database, every state of the second
  // search contains an instance of an already-refuted one, so the warm
  // search should discard states via cache subsumption even where exact
  // keys differ.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, f).
    ?(X, Y) :- t(X, Y).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  ProofSearchResult cold = LinearProofSearch(
      s.program, s.db, s.Query(), {s.Const("a"), s.Const("zz")}, options);
  EXPECT_FALSE(cold.accepted);
  ProofSearchResult warm = LinearProofSearch(
      s.program, s.db, s.Query(), {s.Const("b"), s.Const("zz")}, options);
  EXPECT_FALSE(warm.accepted);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_LT(warm.states_expanded, cold.states_expanded);
}

TEST(SearchCacheTest, TimeBudgetReportsExhaustion) {
  // A refutation over a cyclic graph visits far too many states for a
  // 0-millisecond deadline; the search must stop and say so.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d). e(d, e). e(e, a).
    ?(X) :- t(a, X).
  )");
  ProofSearchOptions options;
  options.max_millis = 1;
  // Burn the deadline deterministically: the first check happens at the
  // 64th expansion, so a tiny budget on a large refutation must trip.
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("zz")}, options);
  if (!result.budget_exhausted) {
    // The machine finished the whole refutation inside the budget; the
    // result must then be a genuine refutation.
    EXPECT_FALSE(result.accepted);
  } else {
    EXPECT_FALSE(result.accepted);
  }
}

TEST(ProgramIndexTest, AffectedByDeltaIsForwardClosureInPredicateGraph) {
  // Two chains: r -> q -> p and u -> v, plus an isolated fact predicate.
  TestEnv s(R"(
    p(X) :- q(X).
    q(X) :- r(X).
    v(X) :- u(X).
    r(a). u(a). tag(a).
  )");
  ProgramIndex index(s.program, s.db);
  std::vector<char> affected = index.AffectedByDelta({s.Pred("r")});
  EXPECT_TRUE(affected[s.Pred("r")]);
  EXPECT_TRUE(affected[s.Pred("q")]);
  EXPECT_TRUE(affected[s.Pred("p")]);
  EXPECT_FALSE(affected[s.Pred("u")]);
  EXPECT_FALSE(affected[s.Pred("v")]);
  EXPECT_FALSE(affected[s.Pred("tag")]);
  // A sink predicate (no rule body mentions it) affects only itself.
  std::vector<char> sink = index.AffectedByDelta({s.Pred("p")});
  EXPECT_TRUE(sink[s.Pred("p")]);
  EXPECT_FALSE(sink[s.Pred("q")]);
  EXPECT_FALSE(sink[s.Pred("r")]);
  // An empty delta affects nothing.
  std::vector<char> none = index.AffectedByDelta({});
  for (char flag : none) EXPECT_EQ(flag, 0);
}

TEST(SearchCacheTest, DeltaInvalidationKeepsConeDisjointRefutationsWarm) {
  // Two disconnected rule islands. Warming both and then inserting a fact
  // into the f/s island must keep every t/e-island refutation reusable.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    s(X, Y) :- f(X, Y).
    s(X, Z) :- f(X, Y), s(Y, Z).
    e(a, b). e(b, c).
    f(u, v). f(v, w).
    ?(X, Y) :- t(X, Y).
    ?(X, Y) :- s(X, Y).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  ProofSearchResult cold_t = LinearProofSearch(
      s.program, s.db, s.Query(0), {s.Const("a"), s.Const("zz")}, options);
  EXPECT_FALSE(cold_t.accepted);
  ProofSearchResult cold_s = LinearProofSearch(
      s.program, s.db, s.Query(1), {s.Const("u"), s.Const("zz")}, options);
  EXPECT_FALSE(cold_s.accepted);
  size_t warm_entries = cache.linear_refuted_size();
  EXPECT_GT(warm_entries, 0u);

  // Grow the f island: s(u, x) becomes certain.
  s.db.Insert(Atom(s.Pred("f"), {s.Const("w"), s.Const("x")}));
  ProofSearchCache::DeltaInvalidation inv =
      cache.InvalidateForDelta(s.program, s.db, {s.Pred("f")});
  EXPECT_EQ(inv.affected_predicates, 2u);  // f and s, nothing else
  EXPECT_GT(inv.exact_dropped, 0u);
  EXPECT_LT(cache.linear_refuted_size(), warm_entries);
  EXPECT_GT(cache.linear_refuted_size(), 0u);  // t-island entries survive

  // The t island is still warm: the same refutation comes back cheaper.
  ProofSearchResult warm_t = LinearProofSearch(
      s.program, s.db, s.Query(0), {s.Const("a"), s.Const("zz")}, options);
  EXPECT_FALSE(warm_t.accepted);
  EXPECT_GT(warm_t.cache_hits, 0u);
  EXPECT_LT(warm_t.states_visited, cold_t.states_visited);

  // And the invalidated island answers correctly against the grown data:
  // both through the warm cache and compared with an uncached search.
  ProofSearchResult reach = LinearProofSearch(
      s.program, s.db, s.Query(1), {s.Const("u"), s.Const("x")}, options);
  EXPECT_TRUE(reach.accepted);
  EXPECT_TRUE(LinearProofSearch(s.program, s.db, s.Query(1),
                                {s.Const("u"), s.Const("x")})
                  .accepted);
  EXPECT_FALSE(LinearProofSearch(s.program, s.db, s.Query(1),
                                 {s.Const("u"), s.Const("zz")}, options)
                   .accepted);
}

TEST(SearchCacheTest, DeltaInvalidationMakesNewlyCertainCandidatesAccepted) {
  // The bug the invalidation fixes: a refutation recorded before the
  // insertion must not survive to contradict a now-derivable fact.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  EXPECT_FALSE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("d")}, options)
          .accepted);
  EXPECT_GT(cache.linear_refuted_size(), 0u);

  s.db.Insert(Atom(s.Pred("e"), {s.Const("c"), s.Const("d")}));
  cache.InvalidateForDelta(s.program, s.db, {s.Pred("e")});
  // e's cone covers t: every refutation was dropped.
  EXPECT_EQ(cache.linear_refuted_size(), 0u);
  EXPECT_TRUE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("d")}, options)
          .accepted);
  EXPECT_TRUE(
      AlternatingProofSearch(s.program, s.db, s.Query(), {s.Const("d")})
          .accepted);
}

TEST(SearchCacheTest, DeltaInvalidationRefreshesSupportedFixpoint) {
  // Before the insertion r has no facts, so p and q are unsupported and
  // the searches refute instantly via dead-state pruning. The inserted
  // r-fact must re-enter them into the supported fixpoint.
  TestEnv s(R"(
    p(X) :- q(X).
    q(X) :- r(X).
    dom(a).
    ?(X) :- p(X).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  EXPECT_FALSE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("a")}, options)
          .accepted);
  EXPECT_FALSE(cache.index().Supported(s.Pred("p")));

  s.db.Insert(Atom(s.Pred("r"), {s.Const("a")}));
  ProofSearchCache::DeltaInvalidation inv =
      cache.InvalidateForDelta(s.program, s.db, {s.Pred("r")});
  EXPECT_EQ(inv.affected_predicates, 3u);  // r, q, p
  EXPECT_TRUE(cache.index().Supported(s.Pred("p")));
  EXPECT_TRUE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("a")}, options)
          .accepted);
}

TEST(SearchCacheTest, DeltaInvalidationKeepsAllProvenAlternatingEntries) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    tag(q0).
    ?(X, Y) :- t(X, Y).
  )");
  ProofSearchCache cache(s.program, s.db);
  ProofSearchOptions options;
  options.cache = &cache;
  EXPECT_TRUE(AlternatingProofSearch(s.program, s.db, s.Query(),
                                     {s.Const("a"), s.Const("d")}, options)
                  .accepted);
  EXPECT_FALSE(AlternatingProofSearch(s.program, s.db, s.Query(),
                                      {s.Const("d"), s.Const("a")}, options)
                   .accepted);
  size_t proven = cache.alt_proven_size();
  size_t refuted = cache.alt_refuted_size();
  EXPECT_GT(proven, 0u);

  // tag feeds no rule: the delta's cone is {tag} and nothing is dropped.
  s.db.Insert(Atom(s.Pred("tag"), {s.Const("q1")}));
  ProofSearchCache::DeltaInvalidation inv =
      cache.InvalidateForDelta(s.program, s.db, {s.Pred("tag")});
  EXPECT_EQ(inv.affected_predicates, 1u);
  EXPECT_EQ(inv.exact_dropped, 0u);
  EXPECT_EQ(inv.subsumers_dropped, 0u);
  EXPECT_EQ(inv.proven_kept, proven);
  EXPECT_EQ(cache.alt_proven_size(), proven);
  EXPECT_EQ(cache.alt_refuted_size(), refuted);

  // Even when the cone does hit t, proofs are monotone and all survive.
  s.db.Insert(Atom(s.Pred("e"), {s.Const("d"), s.Const("q1")}));
  inv = cache.InvalidateForDelta(s.program, s.db, {s.Pred("e")});
  EXPECT_EQ(inv.proven_kept, proven);
  EXPECT_EQ(cache.alt_proven_size(), proven);
  EXPECT_EQ(cache.alt_refuted_size(), 0u);
  EXPECT_TRUE(AlternatingProofSearch(s.program, s.db, s.Query(),
                                     {s.Const("a"), s.Const("q1")}, options)
                  .accepted);
}

}  // namespace
}  // namespace vadalog
