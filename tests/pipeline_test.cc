// Tests for the streaming operator network (Section 7 (3) architecture):
// individual operators, plan construction, and fixpoint equivalence with
// the semi-naive evaluator.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "datalog/seminaive.h"
#include "pipeline/executor.h"
#include "pipeline/operators.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    db = DatabaseFromFacts(program.facts());
  }

  Atom Pattern(const char* pred, std::vector<Term> args) {
    return Atom(program.symbols().FindPredicate(pred), std::move(args));
  }
  Term Const(const char* name) {
    return program.symbols().InternConstant(name);
  }
};

size_t Drain(Operator* op) {
  op->Open();
  size_t count = 0;
  while (op->Next().has_value()) ++count;
  return count;
}

TEST(OperatorTest, ScanEmitsAllRows) {
  TestEnv s("e(a, b). e(b, c). e(a, c).");
  ScanOperator scan(&s.db,
                    s.Pattern("e", {Term::Variable(0), Term::Variable(1)}));
  EXPECT_EQ(Drain(&scan), 3u);
}

TEST(OperatorTest, ScanFiltersOnRigidPositions) {
  TestEnv s("e(a, b). e(b, c). e(a, c).");
  ScanOperator scan(&s.db,
                    s.Pattern("e", {s.Const("a"), Term::Variable(0)}));
  EXPECT_EQ(Drain(&scan), 2u);
}

TEST(OperatorTest, ScanRepeatedVariable) {
  TestEnv s("e(a, a). e(a, b).");
  ScanOperator scan(&s.db,
                    s.Pattern("e", {Term::Variable(0), Term::Variable(0)}));
  EXPECT_EQ(Drain(&scan), 1u);
}

TEST(OperatorTest, JoinChains) {
  TestEnv s("e(a, b). e(b, c). e(c, d).");
  auto scan = std::make_unique<ScanOperator>(
      &s.db, s.Pattern("e", {Term::Variable(0), Term::Variable(1)}));
  JoinOperator join(std::move(scan), &s.db,
                    s.Pattern("e", {Term::Variable(1), Term::Variable(2)}));
  EXPECT_EQ(Drain(&join), 2u);  // a-b-c, b-c-d
}

TEST(OperatorTest, JoinFullScanWhenUnbound) {
  TestEnv s("e(a, b). f(x).");
  auto scan = std::make_unique<ScanOperator>(
      &s.db, s.Pattern("e", {Term::Variable(0), Term::Variable(1)}));
  // Right pattern shares no variable: cross product via full scan.
  JoinOperator join(std::move(scan), &s.db,
                    s.Pattern("f", {Term::Variable(2)}));
  EXPECT_EQ(Drain(&join), 1u);
}

TEST(OperatorTest, AntiJoinFilters) {
  TestEnv s("node(a). node(b). blocked(a).");
  auto scan = std::make_unique<ScanOperator>(
      &s.db, s.Pattern("node", {Term::Variable(0)}));
  AntiJoinOperator anti(std::move(scan), &s.db,
                        s.Pattern("blocked", {Term::Variable(0)}));
  anti.Open();
  std::optional<Binding> binding = anti.Next();
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->at(Term::Variable(0)), s.Const("b"));
  EXPECT_FALSE(anti.Next().has_value());
}

TEST(OperatorTest, ProjectAndDedup) {
  TestEnv s("e(a, b). e(a, c).");
  auto scan = std::make_unique<ScanOperator>(
      &s.db, s.Pattern("e", {Term::Variable(0), Term::Variable(1)}));
  auto project = std::make_unique<ProjectOperator>(
      std::move(scan), std::vector<Term>{Term::Variable(0)});
  DedupOperator dedup(std::move(project));
  EXPECT_EQ(Drain(&dedup), 1u);  // both rows project to X0 = a
}

TEST(OperatorTest, MaterializeReplays) {
  TestEnv s("e(a, b). e(b, c).");
  auto scan = std::make_unique<ScanOperator>(
      &s.db, s.Pattern("e", {Term::Variable(0), Term::Variable(1)}));
  MaterializeOperator mat(std::move(scan));
  EXPECT_EQ(Drain(&mat), 2u);
  EXPECT_EQ(mat.buffered_rows(), 2u);
  // Replays without re-pulling upstream.
  EXPECT_EQ(Drain(&mat), 2u);
}

TEST(OperatorTest, ExplainPlanRendersTree) {
  TestEnv s("e(a, b).");
  auto scan = std::make_unique<ScanOperator>(
      &s.db, s.Pattern("e", {Term::Variable(0), Term::Variable(1)}));
  auto join = std::make_unique<JoinOperator>(
      std::move(scan), &s.db,
      s.Pattern("e", {Term::Variable(1), Term::Variable(2)}));
  DedupOperator root(std::move(join));
  std::string plan = ExplainPlan(root, s.program.symbols());
  EXPECT_NE(plan.find("Dedup"), std::string::npos);
  EXPECT_NE(plan.find("IndexJoin"), std::string::npos);
  EXPECT_NE(plan.find("Scan"), std::string::npos);
}

TEST(PipelineTest, MatchesSeminaiveOnTc) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d).
  )");
  PipelineResult pipeline = ExecutePipeline(s.program, s.db);
  DatalogResult seminaive = EvaluateDatalog(s.program, s.db);
  EXPECT_TRUE(pipeline.reached_fixpoint);
  EXPECT_EQ(pipeline.instance.size(), seminaive.instance.size());
  PredicateId t = s.program.symbols().FindPredicate("t");
  EXPECT_EQ(pipeline.instance.RelationFor(t)->size(),
            seminaive.instance.RelationFor(t)->size());
}

TEST(PipelineTest, MatchesSeminaiveWithNegation) {
  TestEnv s(R"(
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).
    edge(a, b). edge(b, c).
    node(a). node(b). node(c).
  )");
  PipelineResult pipeline = ExecutePipeline(s.program, s.db);
  DatalogResult seminaive = EvaluateDatalog(s.program, s.db);
  PredicateId unreachable =
      s.program.symbols().FindPredicate("unreachable");
  ASSERT_NE(pipeline.instance.RelationFor(unreachable), nullptr);
  EXPECT_EQ(pipeline.instance.RelationFor(unreachable)->size(),
            seminaive.instance.RelationFor(unreachable)->size());
}

TEST(PipelineTest, RefusesUnstratifiedNegation) {
  TestEnv s(R"(
    p(X) :- dom(X), not q(X).
    q(X) :- dom(X), not p(X).
    dom(a).
  )");
  PipelineResult result = ExecutePipeline(s.program, s.db);
  EXPECT_FALSE(result.stratification_ok);
}

TEST(PipelineTest, SamplePlanShowsRecursiveAnchor) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).
  )");
  PipelineResult result = ExecutePipeline(s.program, s.db);
  // The delta anchor of the recursive rule is the t-atom (Section 7 (2)).
  EXPECT_NE(result.sample_plan.find("DeltaScan[t("), std::string::npos)
      << result.sample_plan;
}

TEST(PipelineTest, MaterializedOutputsSameFixpoint) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
  )");
  PipelineOptions options;
  options.materialize_rule_outputs = true;
  PipelineResult with = ExecutePipeline(s.program, s.db, options);
  PipelineResult without = ExecutePipeline(s.program, s.db);
  EXPECT_EQ(with.instance.size(), without.instance.size());
}

TEST(PipelineTest, AnchorOrderAblation) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, f).
  )");
  PipelineOptions biased;
  PipelineOptions unbiased;
  unbiased.recursive_operand_first = false;
  PipelineResult r1 = ExecutePipeline(s.program, s.db, biased);
  PipelineResult r2 = ExecutePipeline(s.program, s.db, unbiased);
  // Same fixpoint either way; the bias affects only plan shape.
  EXPECT_EQ(r1.instance.size(), r2.instance.size());
}

}  // namespace
}  // namespace vadalog
