// Canary suite: parse, classify, and chase the quickstart program
// end-to-end. Registered first in ctest so a broken build or a regression
// in the core parse→analyze→answer path fails fast, before the
// per-module suites run.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analysis/classify.h"
#include "ast/parser.h"
#include "chase/chase.h"
#include "vadalog/reasoner.h"

namespace vadalog {
namespace {

constexpr const char* kQuickstartProgram = R"(
    % Reachability over an extensional edge relation (linear recursion).
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- edge(X, Y), reach(Y, Z).

    % Every reachable node from a hub gets a service contact (existential).
    contact(X, C) :- reach(hub, X).

    edge(hub, a). edge(a, b). edge(b, c). edge(d, hub).

    ?(X) :- reach(hub, X).
    ?() :- contact(c, C).
)";

TEST(SmokeTest, QuickstartParses) {
  ParseResult parsed = ParseProgram(kQuickstartProgram);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.program->tgds().size(), 3u);
  EXPECT_EQ(parsed.program->facts().size(), 4u);
  EXPECT_EQ(parsed.program->queries().size(), 2u);
}

TEST(SmokeTest, QuickstartClassifiesAsWardedPwl) {
  ParseResult parsed = ParseProgram(kQuickstartProgram);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ProgramClassification cls = ClassifyProgram(*parsed.program);
  EXPECT_TRUE(cls.warded);
  EXPECT_TRUE(cls.piecewise_linear);
  EXPECT_TRUE(cls.uses_existentials);
  EXPECT_TRUE(cls.recursive);
}

TEST(SmokeTest, QuickstartChaseSaturates) {
  ParseResult parsed = ParseProgram(kQuickstartProgram);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  Instance db = DatabaseFromFacts(parsed.program->facts());
  ChaseResult result = RunChase(*parsed.program, db);
  EXPECT_TRUE(result.Saturated());
  // Existential contact heads introduce labeled nulls.
  EXPECT_GT(result.nulls_created, 0u);
  EXPECT_GT(result.instance.size(), db.size());
}

TEST(SmokeTest, QuickstartEndToEndAnswers) {
  std::string error;
  std::unique_ptr<Reasoner> reasoner =
      Reasoner::FromText(kQuickstartProgram, &error);
  ASSERT_NE(reasoner, nullptr) << error;

  // reach(hub, ·) = {a, b, c}.
  std::vector<std::string> rows = reasoner->AnswerStrings(0);
  std::sort(rows.begin(), rows.end());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], "(a)");
  EXPECT_EQ(rows[1], "(b)");
  EXPECT_EQ(rows[2], "(c)");

  // The Boolean contact query is certainly true via a labeled null.
  EXPECT_FALSE(reasoner->Answer(1).empty());
}

}  // namespace
}  // namespace vadalog
