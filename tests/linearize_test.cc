// Tests for the Section 1.2 linearization transform and the whole-program
// classifier used in experiment E4.

#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/fragments.h"
#include "analysis/linearize.h"
#include "ast/parser.h"

namespace vadalog {
namespace {

Program Parse(const char* text) {
  ParseResult result = ParseProgram(text);
  EXPECT_TRUE(result.ok()) << result.error;
  return std::move(*result.program);
}

TEST(LinearizeTest, TransitiveClosureBecomesLinear) {
  Program program = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
  )");
  ASSERT_FALSE(IsPiecewiseLinear(program));
  LinearizeResult result = LinearizeProgram(&program);
  EXPECT_TRUE(result.changed);
  EXPECT_TRUE(result.now_piecewise);
  EXPECT_EQ(result.rules_rewritten, 1u);
  // The rewritten rule is  t(X,Z) :- e(X,Y), t(Y,Z).
  bool found = false;
  for (const Tgd& tgd : program.tgds()) {
    if (tgd.body.size() == 2 &&
        program.symbols().PredicateName(tgd.body[0].predicate) == "e" &&
        program.symbols().PredicateName(tgd.body[1].predicate) == "t") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LinearizeTest, AlreadyLinearProgramUnchanged) {
  Program program = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
  )");
  LinearizeResult result = LinearizeProgram(&program);
  EXPECT_FALSE(result.changed);
  EXPECT_TRUE(result.now_piecewise);
}

TEST(LinearizeTest, NoExitRuleMeansNoRewrite) {
  Program program = Parse("t(X, Z) :- t(X, Y), t(Y, Z).");
  LinearizeResult result = LinearizeProgram(&program);
  EXPECT_FALSE(result.changed);
  EXPECT_FALSE(result.now_piecewise);
}

TEST(LinearizeTest, MutualRecursionPairIsOutOfPattern) {
  Program program = Parse(R"(
    q(X, Y) :- p(X, Y).
    p(X, Y) :- e(X, Y).
    p(X, Z) :- q(X, Y), q(Y, Z).
  )");
  LinearizeResult result = LinearizeProgram(&program);
  // Body predicates (q) differ from the head predicate (p): outside the
  // chain-closure pattern, left untouched.
  EXPECT_FALSE(result.changed);
  EXPECT_FALSE(result.now_piecewise);
}

TEST(LinearizeTest, MultipleExitRulesAllUnfolded) {
  Program program = Parse(R"(
    t(X, Y) :- e1(X, Y).
    t(X, Y) :- e2(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
  )");
  LinearizeResult result = LinearizeProgram(&program);
  EXPECT_TRUE(result.changed);
  EXPECT_TRUE(result.now_piecewise);
  // One rewritten rule per exit rule.
  EXPECT_EQ(program.tgds().size(), 4u);
}

TEST(ClassifyTest, BucketsMatchShapes) {
  Program direct = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
  )");
  EXPECT_EQ(ClassifyProgram(direct).RecursionBucket(), "pwl-direct");

  Program linearizable = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
  )");
  EXPECT_EQ(ClassifyProgram(linearizable).RecursionBucket(),
            "pwl-after-linearization");

  Program nonpwl = Parse(R"(
    q(X, Y) :- p(X, Y).
    p(X, Y) :- e(X, Y).
    p(X, Z) :- q(X, Y), q(Y, Z).
  )");
  EXPECT_EQ(ClassifyProgram(nonpwl).RecursionBucket(), "non-pwl");
}

TEST(ClassifyTest, FlagsAreConsistent) {
  Program program = Parse(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
  )");
  ProgramClassification c = ClassifyProgram(program);
  EXPECT_TRUE(c.warded);
  EXPECT_TRUE(c.piecewise_linear);
  EXPECT_TRUE(c.uses_existentials);
  EXPECT_TRUE(c.recursive);
  EXPECT_FALSE(c.datalog);
}

TEST(ClassifyTest, CloneProgramPreservesIds) {
  Program program = Parse(R"(
    t(X, Y) :- e(X, Y).
    e(a, b).
  )");
  Program copy = CloneProgram(program);
  EXPECT_EQ(copy.tgds().size(), 1u);
  EXPECT_EQ(copy.facts().size(), 1u);
  EXPECT_EQ(copy.symbols().PredicateName(copy.facts()[0].predicate), "e");
  EXPECT_EQ(copy.symbols().ConstantName(copy.facts()[0].args[0]), "a");
}

TEST(ClassifyTest, ClassificationDoesNotMutate) {
  Program program = Parse(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), t(Y, Z).
  )");
  size_t before = program.tgds().size();
  ClassifyProgram(program);
  EXPECT_EQ(program.tgds().size(), before);
  EXPECT_FALSE(IsPiecewiseLinear(program));  // still the non-linear version
}

}  // namespace
}  // namespace vadalog
