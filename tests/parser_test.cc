// Unit tests for the surface-syntax parser, the AST, and single-head
// normalization.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/program.h"

namespace vadalog {
namespace {

TEST(ParserTest, ParsesRuleFactAndQuery) {
  ParseResult result = ParseProgram(R"(
    % transitive closure
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).
    ?(X) :- t(a, X).
  )");
  ASSERT_TRUE(result.ok()) << result.error;
  const Program& program = *result.program;
  EXPECT_EQ(program.tgds().size(), 2u);
  EXPECT_EQ(program.facts().size(), 1u);
  EXPECT_EQ(program.queries().size(), 1u);
  EXPECT_EQ(program.queries()[0].output.size(), 1u);
}

TEST(ParserTest, VariablesAreScopedPerStatement) {
  ParseResult result = ParseProgram(R"(
    p(X) :- q(X).
    r(X) :- s(X).
  )");
  ASSERT_TRUE(result.ok());
  // Both rules use variable index 0 — scopes are independent.
  EXPECT_EQ(result.program->tgds()[0].body[0].args[0], Term::Variable(0));
  EXPECT_EQ(result.program->tgds()[1].body[0].args[0], Term::Variable(0));
}

TEST(ParserTest, WildcardsAreFreshVariables) {
  ParseResult result = ParseProgram("p(X) :- q(_, _), r(X).");
  ASSERT_TRUE(result.ok());
  const Tgd& tgd = result.program->tgds()[0];
  EXPECT_NE(tgd.body[0].args[0], tgd.body[0].args[1]);
}

TEST(ParserTest, UnderscorePrefixedNamesAreVariables) {
  ParseResult result = ParseProgram("p(_Foo) :- q(_Foo).");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.program->tgds()[0].body[0].args[0].is_variable());
}

TEST(ParserTest, QuotedStringsAreConstants) {
  ParseResult result = ParseProgram(R"(p("two words", a).)");
  ASSERT_TRUE(result.ok());
  const Atom& fact = result.program->facts()[0];
  EXPECT_TRUE(fact.IsGround());
  EXPECT_EQ(result.program->symbols().ConstantName(fact.args[0]),
            "two words");
}

TEST(ParserTest, ExistentialVariablesDetected) {
  ParseResult result = ParseProgram("r(X, Z) :- p(X).");
  ASSERT_TRUE(result.ok());
  const Tgd& tgd = result.program->tgds()[0];
  EXPECT_FALSE(tgd.IsFull());
  EXPECT_EQ(tgd.ExistentialVariables().size(), 1u);
  EXPECT_EQ(tgd.Frontier().size(), 1u);
}

TEST(ParserTest, MultiHeadRules) {
  ParseResult result = ParseProgram("a(X), b(X, Y) :- c(X).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.program->tgds()[0].head.size(), 2u);
}

TEST(ParserTest, RejectsNonGroundFact) {
  ParseResult result = ParseProgram("e(a, X).");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("ground"), std::string::npos);
}

TEST(ParserTest, RejectsArityClash) {
  ParseResult result = ParseProgram(R"(
    p(X) :- q(X).
    p(X, Y) :- q(X), q(Y).
  )");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("arity"), std::string::npos);
}

TEST(ParserTest, ReportsLineNumbers) {
  ParseResult result = ParseProgram("p(a).\nq(X) :- .\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 2"), std::string::npos);
}

TEST(ParserTest, RejectsUnterminatedString) {
  ParseResult result = ParseProgram("p(\"oops).");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, BooleanQueryHasEmptyOutput) {
  ParseResult result = ParseProgram("?() :- p(X, Y).");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.program->queries()[0].IsBoolean());
}

TEST(ParserTest, ParseIntoSharesSymbols) {
  ParseResult result = ParseProgram("p(a).");
  ASSERT_TRUE(result.ok());
  Program& program = *result.program;
  std::string err = ParseInto("q(X) :- p(X).", &program);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(program.tgds().size(), 1u);
  // 'p' resolves to the same predicate id in both texts.
  EXPECT_EQ(program.tgds()[0].body[0].predicate,
            program.facts()[0].predicate);
}

TEST(AstTest, FrontierAndExistentials) {
  ParseResult result = ParseProgram("r(X, Z, W) :- p(X, Y), q(Y).");
  ASSERT_TRUE(result.ok());
  const Tgd& tgd = result.program->tgds()[0];
  EXPECT_EQ(tgd.Frontier().size(), 1u);        // X
  EXPECT_EQ(tgd.ExistentialVariables().size(), 2u);  // Z, W
  EXPECT_EQ(tgd.VariableCount(), 4u);
}

TEST(AstTest, VariableOffsetRenamesConsistently) {
  ParseResult result = ParseProgram("r(X, Z) :- p(X, Y).");
  ASSERT_TRUE(result.ok());
  Tgd shifted = result.program->tgds()[0].WithVariableOffset(10);
  EXPECT_EQ(shifted.body[0].args[0], shifted.head[0].args[0]);
  EXPECT_GE(shifted.body[0].args[0].index(), 10u);
}

TEST(AstTest, ProgramPredicateSets) {
  ParseResult result = ParseProgram(R"(
    t(X, Y) :- e(X, Y).
    ?(X) :- t(X, X).
  )");
  ASSERT_TRUE(result.ok());
  const Program& program = *result.program;
  EXPECT_EQ(program.IntensionalPredicates().size(), 1u);
  EXPECT_EQ(program.ExtensionalPredicates().size(), 1u);
  EXPECT_EQ(program.SchemaPredicates().size(), 2u);
  EXPECT_EQ(program.MaxBodySize(), 1u);
}

TEST(NormalizeTest, SplitsMultiAtomHeads) {
  ParseResult result = ParseProgram("a(X, Z), b(Z, W) :- c(X).");
  ASSERT_TRUE(result.ok());
  Program& program = *result.program;
  std::unordered_set<PredicateId> aux;
  size_t rewritten = NormalizeToSingleHead(&program, &aux);
  EXPECT_EQ(rewritten, 1u);
  EXPECT_EQ(aux.size(), 1u);
  EXPECT_EQ(program.tgds().size(), 3u);  // generator + two projections
  for (const Tgd& tgd : program.tgds()) {
    EXPECT_EQ(tgd.head.size(), 1u);
  }
  // Only the generator rule has existentials.
  size_t existential_rules = 0;
  for (const Tgd& tgd : program.tgds()) {
    if (!tgd.IsFull()) ++existential_rules;
  }
  EXPECT_EQ(existential_rules, 1u);
}

TEST(NormalizeTest, SingleHeadRulesUntouched) {
  ParseResult result = ParseProgram("t(X, Z) :- e(X, Y), t(Y, Z).");
  ASSERT_TRUE(result.ok());
  Program& program = *result.program;
  EXPECT_EQ(NormalizeToSingleHead(&program, nullptr), 0u);
  EXPECT_EQ(program.tgds().size(), 1u);
}

TEST(PrinterTest, RoundTripsThroughParser) {
  const char* text = R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).
    ?(X) :- t(a, X).
  )";
  ParseResult first = ParseProgram(text);
  ASSERT_TRUE(first.ok());
  std::string printed = first.program->ToString();
  ParseResult second = ParseProgram(printed);
  ASSERT_TRUE(second.ok()) << second.error << "\n" << printed;
  EXPECT_EQ(second.program->tgds().size(), first.program->tgds().size());
  EXPECT_EQ(second.program->facts().size(), first.program->facts().size());
  EXPECT_EQ(second.program->queries().size(),
            first.program->queries().size());
}

}  // namespace
}  // namespace vadalog
