// Incremental-reasoning tests: a session cache migrated across fact
// insertions by ProofSearchCache::InvalidateForDelta must be
// observationally identical to rebuilding from scratch — for every
// prefix of an interleaved insert/query stream, both engines, any
// thread count — and the symbol table must stay flat under rolled-back
// batches (the ADD_FACTS leak this PR fixes).

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "ast/parser.h"
#include "base/rng.h"
#include "engine/certain.h"
#include "engine/search_cache.h"
#include "gen/generators.h"
#include "server/json.h"
#include "server/session.h"
#include "vadalog/reasoner.h"

namespace vadalog {
namespace {

// Transitive closure plus an isolated `tag` predicate no rule reads:
// tag-insertions exercise the cone-disjoint (zero-invalidation) path,
// edge-insertions the full drop-and-recover path.
// The query is anchored at v0 so each round decides |dom| candidates,
// not |dom|^2 — the property is the same, the suite stays fast.
const char* kLinearTc = R"(
  t(X, Y) :- e(X, Y).
  t(X, Z) :- e(X, Y), t(Y, Z).
  e(v0, v1). tag(v0).
  ?(Y) :- t(v0, Y).
)";
const char* kNonLinearTc = R"(
  t(X, Y) :- e(X, Y).
  t(X, Z) :- t(X, Y), t(Y, Z).
  e(v0, v1). tag(v0).
  ?(Y) :- t(v0, Y).
)";

class IncrementalEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, uint32_t>> {
};

TEST_P(IncrementalEquivalence, WarmDeltaCacheMatchesColdRerunAtEveryPrefix) {
  auto [seed, alternating, threads] = GetParam();
  Rng rng(seed);
  ParseResult parsed = ParseProgram(alternating ? kNonLinearTc : kLinearTc);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  Program program = std::move(*parsed.program);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  ConjunctiveQuery query = program.queries()[0];

  // Alternating refutations of non-linear TC grow steeply with graph
  // size; a 5-node domain keeps those cases exhaustive but quick.
  std::vector<Term> domain;
  for (int i = 0; i < (alternating ? 5 : 6); ++i) {
    domain.push_back(
        program.symbols().InternConstant("v" + std::to_string(i)));
  }
  PredicateId edge = program.symbols().FindPredicate("e");
  PredicateId tag = program.symbols().FindPredicate("tag");

  ProofSearchCache cache(program, db);
  ProofSearchOptions warm;
  warm.cache = &cache;
  warm.num_threads = threads;
  ProofSearchOptions cold;
  cold.num_threads = threads;

  for (int round = 0; round < 6; ++round) {
    // One insertion batch: mostly edges, sometimes a cone-disjoint tag.
    std::vector<Atom> batch;
    if (rng.Chance(0.25)) {
      batch.emplace_back(tag,
                         std::vector<Term>{domain[rng.Below(domain.size())]});
    } else {
      size_t count = 1 + rng.Below(3);
      for (size_t k = 0; k < count; ++k) {
        batch.emplace_back(
            edge, std::vector<Term>{domain[rng.Below(domain.size())],
                                    domain[rng.Below(domain.size())]});
      }
    }
    std::vector<PredicateId> delta;
    for (const Atom& fact : batch) {
      if (db.Insert(fact)) delta.push_back(fact.predicate);
    }
    cache.InvalidateForDelta(program, db, delta);

    // The migrated warm cache must answer exactly like a cold search
    // over the grown database — this is the certainty contract the old
    // nuke-everything behavior enforced by brute force.
    std::vector<std::vector<Term>> with_warm_cache =
        CertainAnswersViaSearch(program, db, query, alternating, warm);
    std::vector<std::vector<Term>> from_cold =
        CertainAnswersViaSearch(program, db, query, alternating, cold);
    EXPECT_EQ(with_warm_cache, from_cold)
        << "round " << round << " seed " << seed << " alternating "
        << alternating << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, IncrementalEquivalence,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}, uint64_t{4}),
                       ::testing::Bool(), ::testing::Values(1u, 4u)));

TEST(IncrementalTest, GeneratedOntologyStreamStaysEquivalent) {
  // A second shape of stream: the OWL 2 QL program with generated
  // ontology facts, then random subclass insertions (which cone-cover
  // most of the schema) — the heavier cousin of the graph case above.
  Program program = MakeOwl2QlProgram();
  Rng rng(7);
  AddOntologyFacts(&program, /*num_classes=*/6, /*num_properties=*/2,
                   /*num_individuals=*/4, &rng);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  PredicateId subclass = program.symbols().FindPredicate("subclass");
  PredicateId type = program.symbols().FindPredicate("type");
  // Anchored like the graph case: which classes is ind0 a member of?
  ConjunctiveQuery query;
  query.output = {Term::Variable(0)};
  query.atoms = {
      Atom(type, {program.symbols().InternConstant("ind0"),
                  Term::Variable(0)})};

  ProofSearchCache cache(program, db);
  ProofSearchOptions warm;
  warm.cache = &cache;
  for (int round = 0; round < 3; ++round) {
    Atom fact(subclass,
              {program.symbols().InternConstant(
                   "c" + std::to_string(rng.Below(6))),
               program.symbols().InternConstant(
                   "c" + std::to_string(rng.Below(6)))});
    std::vector<PredicateId> delta;
    if (db.Insert(fact)) delta.push_back(subclass);
    cache.InvalidateForDelta(program, db, delta);
    std::vector<std::vector<Term>> with_warm_cache = CertainAnswersViaSearch(
        program, db, query, /*use_alternating=*/false, warm);
    std::vector<std::vector<Term>> from_cold = CertainAnswersViaSearch(
        program, db, query, /*use_alternating=*/false);
    EXPECT_EQ(with_warm_cache, from_cold) << "round " << round;
  }
}

TEST(IncrementalTest, SymbolGenerationRollbackReleasesIds) {
  std::unique_ptr<Reasoner> reasoner =
      Reasoner::FromText("e(a, b). t(X, Y) :- e(X, Y).");
  ASSERT_NE(reasoner, nullptr);
  Term existing = reasoner->InternConstant("a");
  SymbolTable::Generation mark = reasoner->MarkSymbolGeneration();
  Term fresh = reasoner->InternConstant("speculative");
  ASSERT_GT(reasoner->MarkSymbolGeneration().constants, mark.constants);
  reasoner->RollbackSymbolGeneration(mark);
  EXPECT_EQ(reasoner->MarkSymbolGeneration().constants, mark.constants);
  // The released id is reusable: the next intern gets the same slot.
  EXPECT_EQ(reasoner->InternConstant("different"), fresh);
  // And existing names still resolve to their original ids.
  EXPECT_EQ(reasoner->InternConstant("a"), existing);
}

TEST(IncrementalTest, RepeatedFailingAddFactsKeepsSymbolTableFlat) {
  // The leak this PR fixes: every rejected batch used to leave its
  // freshly interned names behind forever. Fifty distinct failing
  // batches must not grow the table by a single symbol.
  SessionRegistry registry{SessionOptions{}};
  JsonValue load = JsonValue::Object();
  load.Set("cmd", JsonValue::String("LOAD_PROGRAM"));
  load.Set("session", JsonValue::String("s"));
  load.Set("program", JsonValue::String(kLinearTc));
  ASSERT_TRUE(registry.HandleLine(load.Dump()).GetBool("ok"));
  JsonValue stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  uint64_t symbols = stats.Find("session")->GetUint("symbols");
  ASSERT_GT(symbols, 0u);

  for (int i = 0; i < 50; ++i) {
    JsonValue request = JsonValue::Object();
    request.Set("cmd", JsonValue::String("ADD_FACTS"));
    request.Set("session", JsonValue::String("s"));
    // Fresh names every time, then a clause that sinks the batch.
    request.Set("facts", JsonValue::String(
                             "leak" + std::to_string(i) + "(n" +
                             std::to_string(i) + "). e(unclosed"));
    JsonValue response = registry.HandleLine(request.Dump());
    ASSERT_EQ(response.Find("error")->GetString("code"), "EPARSE");
    stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
    ASSERT_EQ(stats.Find("session")->GetUint("symbols"), symbols)
        << "batch " << i << " leaked symbols";
  }
}

TEST(IncrementalTest, ExplainWithUnknownConstantsDoesNotGrowSymbols) {
  // EXPLAIN against a never-seen constant is decidedly not-certain (the
  // chase introduces no new constants), so the speculative interning of
  // the probe name is rolled back instead of accumulating.
  SessionRegistry registry{SessionOptions{}};
  JsonValue load = JsonValue::Object();
  load.Set("cmd", JsonValue::String("LOAD_PROGRAM"));
  load.Set("session", JsonValue::String("s"));
  load.Set("program", JsonValue::String(
                          "t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z). "
                          "e(a, b). e(b, c). ?(X) :- t(a, X)."));
  ASSERT_TRUE(registry.HandleLine(load.Dump()).GetBool("ok"));
  JsonValue stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  uint64_t symbols = stats.Find("session")->GetUint("symbols");

  for (int i = 0; i < 20; ++i) {
    JsonValue probe = registry.HandleLine(
        R"({"cmd":"EXPLAIN","session":"s","query_index":0,)"
        R"("answer":["probe)" +
        std::to_string(i) + R"("]})");
    ASSERT_TRUE(probe.GetBool("ok")) << probe.Dump();
    EXPECT_FALSE(probe.GetBool("certain", true));
  }
  stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  EXPECT_EQ(stats.Find("session")->GetUint("symbols"), symbols);

  // Known constants still explain normally after all that probing.
  JsonValue proof = registry.HandleLine(
      R"({"cmd":"EXPLAIN","session":"s","query_index":0,"answer":["c"]})");
  ASSERT_TRUE(proof.GetBool("ok")) << proof.Dump();
  EXPECT_TRUE(proof.GetBool("certain"));
}

}  // namespace
}  // namespace vadalog
