// End-to-end tests for the vadalogd socket server: multi-client
// concurrency stress (answers must match a single-threaded Reasoner on
// the same program), admission control, and graceful shutdown. Run under
// the ASan and TSan presets in CI — the concurrency contract of
// Session/SessionRegistry/WorkerPool is exactly what they race.

#include <gtest/gtest.h>

#ifndef _WIN32
#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <csignal>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "vadalog/reasoner.h"

namespace vadalog {
namespace {

#ifndef _WIN32

constexpr const char* kProgram = R"(
  t(X, Y) :- e(X, Y).
  t(X, Z) :- e(X, Y), t(Y, Z).
  path2(X, Z) :- e(X, Y), e(Y, Z).
  e(a, b).  e(b, c).  e(c, d).  e(a, d).
  ?(X) :- t(a, X).
  ?(X, Z) :- path2(X, Z).
)";

/// Minimal blocking protocol client against 127.0.0.1:port. A non-zero
/// `rcvbuf` shrinks SO_RCVBUF before connecting (slow-reader tests).
class TestClient {
 public:
  explicit TestClient(uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ >= 0 && rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ =
        fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool SendLine(const std::string& line) {
    std::string out = line + "\n";
    size_t sent = 0;
    while (sent < out.size()) {
      ssize_t n =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  std::optional<std::string> ReadLine() {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      if (!Fill()) return std::nullopt;
    }
  }

  bool ReadExact(size_t n, std::string* out) {
    while (buffer_.size() < n) {
      if (!Fill()) return false;
    }
    *out = buffer_.substr(0, n);
    buffer_.erase(0, n);
    return true;
  }

  std::optional<JsonValue> RoundTrip(const std::string& line) {
    if (!SendLine(line)) return std::nullopt;
    std::optional<std::string> response = ReadLine();
    if (!response.has_value()) return std::nullopt;
    return JsonValue::Parse(*response, nullptr);
  }

 private:
  bool Fill() {
    char chunk[65536];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
  options.tcp_port = 0;  // ephemeral
  auto server = std::make_unique<Server>(std::move(options));
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

std::string LoadLine(const std::string& session, const std::string& program) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::String("LOAD_PROGRAM"));
  request.Set("session", JsonValue::String(session));
  request.Set("replace", JsonValue::Bool(true));
  request.Set("program", JsonValue::String(program));
  return request.Dump();
}

std::vector<std::vector<std::string>> RowsOf(const JsonValue& response) {
  std::vector<std::vector<std::string>> rows;
  const JsonValue* answers = response.Find("answers");
  if (answers == nullptr) return rows;
  for (const JsonValue& row : answers->Items()) {
    std::vector<std::string> tuple;
    for (const JsonValue& cell : row.Items()) tuple.push_back(cell.AsString());
    rows.push_back(std::move(tuple));
  }
  return rows;
}

/// The single-threaded ground truth the stress clients diff against.
std::vector<std::vector<std::vector<std::string>>> DirectAnswers(
    const std::string& program_text, const std::string& engine) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(program_text);
  EXPECT_NE(reasoner, nullptr);
  ReasonerOptions options;
  if (engine == "linear") options.engine = EngineChoice::kLinearProof;
  if (engine == "alternating") {
    options.engine = EngineChoice::kAlternatingProof;
  }
  std::vector<std::vector<std::vector<std::string>>> all;
  for (size_t q = 0; q < reasoner->program().queries().size(); ++q) {
    std::vector<std::vector<std::string>> rows;
    for (const std::vector<Term>& tuple :
         reasoner->Answer(reasoner->program().queries()[q], options)) {
      std::vector<std::string> row;
      for (Term t : tuple) {
        row.push_back(reasoner->program().symbols().TermToString(t));
      }
      rows.push_back(std::move(row));
    }
    all.push_back(std::move(rows));
  }
  return all;
}

TEST(ServerTest, SixteenConcurrentClientsMatchTheSingleThreadedReasoner) {
  std::unique_ptr<Server> server = StartServer();
  {
    TestClient loader(server->tcp_port());
    ASSERT_TRUE(loader.connected());
    std::optional<JsonValue> loaded =
        loader.RoundTrip(LoadLine("stress", kProgram));
    ASSERT_TRUE(loaded.has_value());
    ASSERT_TRUE(loaded->GetBool("ok")) << loaded->Dump();
  }
  // Mixed engines across clients: chase and linear must agree with the
  // direct Reasoner under the same engine — and with each other.
  const std::vector<std::string> engines = {"auto", "linear"};
  std::vector<std::vector<std::vector<std::vector<std::string>>>> expected;
  for (const std::string& engine : engines) {
    expected.push_back(DirectAnswers(kProgram, engine));
  }

  constexpr int kClients = 16;
  constexpr int kRepeats = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TestClient client(server->tcp_port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      const std::string& engine = engines[static_cast<size_t>(c) %
                                          engines.size()];
      const auto& want = expected[static_cast<size_t>(c) % engines.size()];
      for (int r = 0; r < kRepeats; ++r) {
        for (size_t q = 0; q < want.size(); ++q) {
          while (true) {
            std::optional<JsonValue> response = client.RoundTrip(
                R"({"cmd":"QUERY","session":"stress","query_index":)" +
                std::to_string(q) + R"(,"engine":")" + engine + "\"}");
            if (!response.has_value()) {
              ++failures;
              return;
            }
            if (!response->GetBool("ok")) {
              const JsonValue* detail = response->Find("error");
              if (detail != nullptr &&
                  detail->GetString("code") == "EBUSY") {
                continue;  // admission control said retry
              }
              ++failures;
              return;
            }
            if (RowsOf(*response) != want[q]) ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  TestClient prober(server->tcp_port());
  std::optional<JsonValue> stats =
      prober.RoundTrip(R"({"cmd":"STATS","session":"stress"})");
  ASSERT_TRUE(stats.has_value() && stats->GetBool("ok"));
  EXPECT_GE(stats->Find("session")->GetUint("queries_served"),
            static_cast<uint64_t>(kClients * kRepeats * 2));
  server->Stop();
}

TEST(ServerTest, ConcurrentLoadsQueriesAndUnloadsStayCoherent) {
  // Clients hammer different sessions plus one shared session with
  // LOAD/QUERY/ADD_FACTS/UNLOAD mixes; every response must be a
  // well-formed protocol answer (ok or a structured error), no hangs, no
  // sanitizer reports.
  std::unique_ptr<Server> server = StartServer();
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TestClient client(server->tcp_port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      std::string own = "own" + std::to_string(c);
      for (int r = 0; r < 6; ++r) {
        std::vector<std::string> lines = {
            LoadLine(own, kProgram),
            LoadLine("shared", kProgram),
            R"({"cmd":"QUERY","session":")" + own + R"(","query_index":0})",
            "{\"cmd\":\"ADD_FACTS\",\"session\":\"" + own +
                "\",\"facts\":\"e(d, z" + std::to_string(r) + ").\"}",
            R"({"cmd":"QUERY","session":"shared","query_index":1})",
            R"({"cmd":"STATS"})",
            R"({"cmd":"UNLOAD","session":"shared"})",
        };
        for (const std::string& line : lines) {
          std::optional<JsonValue> response = client.RoundTrip(line);
          if (!response.has_value() || response->Find("ok") == nullptr) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server->Stop();
}

TEST(ServerTest, AdmissionControlRejectsWithEbusy) {
  ServerOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  options.max_inflight_per_session = 1;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  TestClient loader(server->tcp_port());
  ASSERT_TRUE(loader.connected());
  ASSERT_TRUE(loader.RoundTrip(LoadLine("s", kProgram))->GetBool("ok"));

  // Many clients firing one query each at a 1-slot server: every
  // response is either a correct answer or a structured EBUSY.
  constexpr int kClients = 8;
  std::atomic<int> busy{0};
  std::atomic<int> ok{0};
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      TestClient client(server->tcp_port());
      if (!client.connected()) {
        ++bad;
        return;
      }
      std::optional<JsonValue> response = client.RoundTrip(
          R"({"cmd":"QUERY","session":"s","query_index":0})");
      if (!response.has_value()) {
        ++bad;
        return;
      }
      if (response->GetBool("ok")) {
        ++ok;
      } else if (response->Find("error")->GetString("code") == "EBUSY" &&
                 response->GetBool("retry")) {
        ++busy;
      } else {
        ++bad;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(ok.load() + busy.load(), kClients);
  EXPECT_GE(ok.load(), 1);
  // PING bypasses admission even when the server is saturated.
  EXPECT_TRUE(loader.RoundTrip(R"({"cmd":"PING"})")->GetBool("pong"));
  server->Stop();
}

TEST(ServerTest, GracefulShutdownFinishesInFlightWork) {
  std::unique_ptr<Server> server = StartServer();
  TestClient client(server->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.RoundTrip(LoadLine("s", kProgram))->GetBool("ok"));
  std::thread stopper([&] { server->Stop(); });
  // Requests racing the shutdown either complete or see a closed
  // connection — never a hang or a torn response.
  for (int i = 0; i < 50; ++i) {
    std::optional<JsonValue> response = client.RoundTrip(
        R"({"cmd":"QUERY","session":"s","query_index":0})");
    if (!response.has_value()) break;
    EXPECT_NE(response->Find("ok"), nullptr);
  }
  stopper.join();
  EXPECT_FALSE(TestClient(server->tcp_port()).connected());
}

// Unit tests for the connection loop's recv taxonomy: a signal landing
// mid-read is retried inside RecvChunk, and a receive timeout (EAGAIN)
// is reported as kRetry — neither may be conflated with the peer
// closing, or a SIGTERM drain could drop an in-flight request.
TEST(ServerTest, RecvChunkRetriesInterruptedReads) {
  // SIGUSR1 with an empty handler and no SA_RESTART, so a blocked recv
  // really returns EINTR instead of being transparently restarted.
  struct sigaction action{};
  struct sigaction previous{};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  std::atomic<bool> reading{false};
  std::atomic<bool> done{false};
  server_internal::RecvStatus status = server_internal::RecvStatus::kError;
  std::string received;
  std::thread reader([&] {
    char chunk[256];
    size_t n = 0;
    reading.store(true);
    status = server_internal::RecvChunk(pair[0], chunk, sizeof chunk, &n);
    received.assign(chunk, n);
    done.store(true);
  });
  while (!reading.load()) std::this_thread::yield();
  // Pepper the blocked reader with signals; RecvChunk must absorb every
  // EINTR and still deliver the bytes that eventually arrive.
  for (int i = 0; i < 20 && !done.load(); ++i) {
    ::pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(::send(pair[1], "hello", 5, MSG_NOSIGNAL), 5);
  reader.join();
  EXPECT_EQ(status, server_internal::RecvStatus::kData);
  EXPECT_EQ(received, "hello");
  ::close(pair[0]);
  ::close(pair[1]);
  ::sigaction(SIGUSR1, &previous, nullptr);
}

TEST(ServerTest, RecvChunkReportsTimeoutAsRetryNotClose) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  timeval tv{};
  tv.tv_usec = 20 * 1000;  // 20 ms receive timeout
  ASSERT_EQ(::setsockopt(pair[0], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv),
            0);
  char chunk[256];
  size_t n = 0;
  // No data yet: timeout, reported as retry (not closed, not error).
  EXPECT_EQ(server_internal::RecvChunk(pair[0], chunk, sizeof chunk, &n),
            server_internal::RecvStatus::kRetry);
  ASSERT_EQ(::send(pair[1], "ok", 2, MSG_NOSIGNAL), 2);
  EXPECT_EQ(server_internal::RecvChunk(pair[0], chunk, sizeof chunk, &n),
            server_internal::RecvStatus::kData);
  EXPECT_EQ(n, 2u);
  ::close(pair[1]);
  EXPECT_EQ(server_internal::RecvChunk(pair[0], chunk, sizeof chunk, &n),
            server_internal::RecvStatus::kClosed);
  ::close(pair[0]);
}

// End-to-end: with SO_RCVTIMEO armed on accepted sockets, idle pauses
// and mid-request pauses longer than the timeout must not cost the
// connection or the buffered request prefix.
TEST(ServerTest, RecvTimeoutKeepsSlowConnectionsAndPartialRequests) {
  ServerOptions options;
  options.recv_timeout_ms = 20;
  std::unique_ptr<Server> server = StartServer(options);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->tcp_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  auto read_line = [&]() -> std::string {
    std::string line;
    char c;
    while (::recv(fd, &c, 1, 0) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    return line;
  };

  // Idle across several timeout periods, then a whole request.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::string ping = "{\"cmd\":\"PING\"}\n";
  ASSERT_EQ(::send(fd, ping.data(), ping.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(ping.size()));
  std::optional<JsonValue> pong = JsonValue::Parse(read_line(), nullptr);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->GetBool("pong"));

  // A request split around a pause longer than the timeout: the prefix
  // must survive the EAGAIN wake-ups.
  const std::string head = "{\"cmd\":\"PI";
  const std::string tail = "NG\",\"id\":7}\n";
  ASSERT_EQ(::send(fd, head.data(), head.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(head.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::send(fd, tail.data(), tail.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(tail.size()));
  std::optional<JsonValue> split = JsonValue::Parse(read_line(), nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_TRUE(split->GetBool("pong"));
  EXPECT_EQ(split->Find("id")->AsNumber(), 7.0);

  ::close(fd);
  server->Stop();
}

TEST(ServerTest, UnixSocketEndpointServes) {
  ServerOptions options;
  options.tcp = false;
  options.unix_path = "/tmp/vadalogd_test_" + std::to_string(::getpid()) +
                      ".sock";
  auto server = std::make_unique<Server>(options);
  std::string error;
  ASSERT_TRUE(server->Start(&error)) << error;

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.unix_path.c_str(),
               sizeof addr.sun_path - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  std::string line = "{\"cmd\":\"PING\"}\n";
  ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  char buffer[4096];
  ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
  ASSERT_GT(n, 0);
  std::optional<JsonValue> response =
      JsonValue::Parse(std::string(buffer, static_cast<size_t>(n - 1)),
                       nullptr);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->GetBool("pong"));
  ::close(fd);
  server->Stop();
  // The socket file is removed on shutdown.
  EXPECT_NE(::access(options.unix_path.c_str(), F_OK), 0);
}

// --- event-loop architecture tests ---

size_t CountThreads() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

size_t CountOpenFds() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

// The tentpole contract: connections are event-loop state, not threads.
// 256 concurrent idle connections must all be served by the same fixed
// thread complement that served one.
TEST(ServerTest, HundredsOfIdleConnectionsNeedNoExtraThreads) {
  ServerConfig config;
  config.workers = 2;
  std::unique_ptr<Server> server = StartServer(config);
  TestClient first(server->tcp_port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.RoundTrip(R"({"cmd":"PING"})")->GetBool("pong"));
  size_t baseline = CountThreads();
  ASSERT_GT(baseline, 0u);

  constexpr size_t kIdle = 256;
  std::vector<std::unique_ptr<TestClient>> idle;
  for (size_t i = 0; i < kIdle; ++i) {
    idle.push_back(std::make_unique<TestClient>(server->tcp_port()));
    ASSERT_TRUE(idle.back()->connected()) << "connection " << i;
  }
  // Sampled connections across the set still serve requests — they are
  // accepted descriptors, not a backlog illusion — with zero new threads.
  for (size_t i : {size_t{0}, kIdle / 2, kIdle - 1}) {
    std::optional<JsonValue> pong = idle[i]->RoundTrip(R"({"cmd":"PING"})");
    ASSERT_TRUE(pong.has_value()) << "connection " << i;
    EXPECT_TRUE(pong->GetBool("pong"));
  }
  EXPECT_EQ(CountThreads(), baseline);
  EXPECT_GE(server->stats().connections, kIdle + 1);
  server->Stop();
}

// Descriptor exhaustion on accept must evict an idle connection and keep
// accepting, not starve the listener (the classic EMFILE accept spin).
TEST(ServerTest, AcceptUnderEmfileEvictsIdleConnectionsInsteadOfStarving) {
  std::unique_ptr<Server> server = StartServer();
  TestClient sentinel(server->tcp_port());
  ASSERT_TRUE(sentinel.connected());
  ASSERT_TRUE(sentinel.RoundTrip(R"({"cmd":"PING"})")->GetBool("pong"));

  // A few more idle connections to give the eviction policy a pool.
  std::vector<std::unique_ptr<TestClient>> idle;
  for (int i = 0; i < 4; ++i) {
    idle.push_back(std::make_unique<TestClient>(server->tcp_port()));
    ASSERT_TRUE(idle.back()->connected());
    ASSERT_TRUE(idle.back()->RoundTrip(R"({"cmd":"PING"})")->GetBool("pong"));
  }

  // Exhaust the descriptor table, then hand back exactly one slot. The
  // new client's socket() consumes it; the accept on the server side
  // then hits EMFILE and must evict an idle connection to admit it —
  // client and server share this process's table, so nothing else can
  // race for the freed descriptor while we block in recv.
  rlimit old{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old), 0);
  rlimit tight = old;
  tight.rlim_cur = CountOpenFds() + 8;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> burners;
  while (true) {
    int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    burners.push_back(fd);
  }
  ASSERT_FALSE(burners.empty());
  ::close(burners.back());
  burners.pop_back();

  TestClient newest(server->tcp_port());
  ASSERT_TRUE(newest.connected());
  std::optional<JsonValue> pong = newest.RoundTrip(R"({"cmd":"PING"})");
  for (int fd : burners) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old), 0);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->GetBool("pong"));
  EXPECT_GE(server->stats().idle_closed, 1u);
  // The eviction closed the idlest request-free connection: probing the
  // whole pool finds at least one peer-closed socket.
  size_t evicted = 0;
  if (!sentinel.RoundTrip(R"({"cmd":"PING"})").has_value()) ++evicted;
  for (auto& client : idle) {
    if (!client->RoundTrip(R"({"cmd":"PING"})").has_value()) ++evicted;
  }
  EXPECT_GE(evicted, 1u);
  server->Stop();
}

// Head-of-line isolation: one client that stops reading its (large)
// responses parks them in its per-connection out-buffer; every other
// connection keeps getting served while they sit there, and the slow
// client's responses arrive intact once it finally drains.
TEST(ServerTest, SlowReadingClientDoesNotBlockOtherConnections) {
  std::unique_ptr<Server> server = StartServer();
  // Answers big enough to overrun the slow reader's shrunken receive
  // window plus the kernel send buffer, forcing server-side buffering.
  std::string big;
  for (int i = 0; i < 4000; ++i) {
    big += "d(x" + std::to_string(i) + "). ";
  }
  big += "?(X) :- d(X).";
  TestClient loader(server->tcp_port());
  ASSERT_TRUE(loader.connected());
  ASSERT_TRUE(loader.RoundTrip(LoadLine("big", big))->GetBool("ok"));

  TestClient slow(server->tcp_port(), /*rcvbuf=*/1024);
  ASSERT_TRUE(slow.connected());
  constexpr int kPipelined = 8;
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(slow.SendLine(
        R"({"cmd":"QUERY","session":"big","query_index":0,"id":)" +
        std::to_string(i) + "}"));
  }

  // While the slow client's responses back up, a healthy client must
  // make steady progress through the same server.
  TestClient healthy(server->tcp_port());
  ASSERT_TRUE(healthy.connected());
  for (int i = 0; i < 10; ++i) {
    std::optional<JsonValue> response = healthy.RoundTrip(
        R"({"cmd":"QUERY","session":"big","query_index":0})");
    ASSERT_TRUE(response.has_value()) << "round " << i;
    ASSERT_TRUE(response->GetBool("ok")) << response->Dump();
    ASSERT_EQ(response->Find("answers")->Items().size(), 4000u);
  }

  // Now drain the slow connection: all pipelined responses, in order,
  // uncorrupted.
  for (int i = 0; i < kPipelined; ++i) {
    std::optional<std::string> line = slow.ReadLine();
    ASSERT_TRUE(line.has_value()) << "response " << i;
    std::optional<JsonValue> response = JsonValue::Parse(*line, nullptr);
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(response->GetBool("ok"));
    EXPECT_EQ(response->Find("id")->AsNumber(), static_cast<double>(i));
    EXPECT_EQ(response->Find("answers")->Items().size(), 4000u);
  }
  server->Stop();
}

// A client that reads nothing at all is eventually dropped when its
// backlog crosses max_outbuf_bytes — buffering is bounded.
TEST(ServerTest, UnboundedResponseBacklogDropsTheConnection) {
  ServerConfig config;
  config.max_outbuf_bytes = 16 << 10;
  std::unique_ptr<Server> server = StartServer(config);
  std::string big;
  for (int i = 0; i < 20000; ++i) {
    big += "d(x" + std::to_string(i) + "). ";
  }
  big += "?(X) :- d(X).";
  TestClient loader(server->tcp_port());
  ASSERT_TRUE(loader.connected());
  ASSERT_TRUE(loader.RoundTrip(LoadLine("big", big))->GetBool("ok"));

  // The greedy client pipelines queries and never reads. Its tiny
  // receive window plus a full kernel send buffer (tcp autotuning can
  // grow it to tcp_wmem[2], often 4 MiB, so the total backlog here is
  // sized well past that) force responses back into the server's
  // out-buffer, which crosses the 16 KiB cap.
  TestClient greedy(server->tcp_port(), /*rcvbuf=*/1024);
  ASSERT_TRUE(greedy.connected());
  for (int i = 0; i < 32; ++i) {
    if (!greedy.SendLine(
            R"({"cmd":"QUERY","session":"big","query_index":0})")) {
      break;  // already dropped — also a pass
    }
  }
  for (int i = 0; i < 6000 && server->stats().overflow_closed == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server->stats().overflow_closed, 1u);
  if (server->stats().overflow_closed > 0) {
    // The server cut the connection, so reading to EOF terminates.
    std::string sink;
    while (greedy.ReadExact(1, &sink)) {
      sink.clear();
    }
  }
  server->Stop();
}

// The portable poll(2) backend must serve the same contract as epoll;
// the whole protocol flow runs against it.
TEST(ServerTest, PollBackendServesIdentically) {
  ServerConfig config;
  config.poller = "poll";
  std::unique_ptr<Server> server = StartServer(config);
  TestClient client(server->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.RoundTrip(LoadLine("s", kProgram))->GetBool("ok"));
  std::vector<std::vector<std::vector<std::string>>> expected =
      DirectAnswers(kProgram, "auto");
  for (size_t q = 0; q < expected.size(); ++q) {
    std::optional<JsonValue> response = client.RoundTrip(
        R"({"cmd":"QUERY","session":"s","query_index":)" +
        std::to_string(q) + "}");
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(response->GetBool("ok")) << response->Dump();
    EXPECT_EQ(RowsOf(*response), expected[q]);
  }
  std::optional<JsonValue> pong = client.RoundTrip(R"({"cmd":"PING"})");
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->GetBool("pong"));
  server->Stop();
}

// Wire-API v2 over a real socket: HELLO negotiates the binary encoding
// and the answer frame decodes bit-identical to the JSON rendering of
// the same query on a v1 connection.
TEST(ServerTest, BinaryEncodingMatchesJsonAnswersBitForBit) {
  std::unique_ptr<Server> server = StartServer();
  TestClient json_client(server->tcp_port());
  ASSERT_TRUE(json_client.connected());
  ASSERT_TRUE(json_client.RoundTrip(LoadLine("s", kProgram))->GetBool("ok"));
  std::optional<JsonValue> via_json = json_client.RoundTrip(
      R"({"cmd":"QUERY","session":"s","query_index":0})");
  ASSERT_TRUE(via_json.has_value() && via_json->GetBool("ok"));

  TestClient binary_client(server->tcp_port());
  ASSERT_TRUE(binary_client.connected());
  std::optional<JsonValue> hello = binary_client.RoundTrip(
      R"({"cmd":"HELLO","max_version":2,"encodings":["binary"]})");
  ASSERT_TRUE(hello.has_value()) << "HELLO got no response";
  ASSERT_TRUE(hello->GetBool("ok")) << hello->Dump();
  ASSERT_EQ(hello->GetString("encoding"), "binary");
  ASSERT_EQ(hello->GetUint("version"), 2u);

  ASSERT_TRUE(binary_client.SendLine(
      R"({"v":2,"cmd":"QUERY","session":"s","query_index":0})"));
  std::optional<std::string> head_line = binary_client.ReadLine();
  ASSERT_TRUE(head_line.has_value());
  std::optional<JsonValue> head = JsonValue::Parse(*head_line, nullptr);
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(head->GetBool("ok")) << head->Dump();
  EXPECT_EQ(head->Find("answers"), nullptr);
  const JsonValue* descriptor = head->Find("answers_frame");
  ASSERT_NE(descriptor, nullptr);
  std::string payload;
  ASSERT_TRUE(binary_client.ReadExact(
      static_cast<size_t>(descriptor->GetUint("bytes")), &payload));
  protocol::AnswerTable table;
  std::string decode_error;
  ASSERT_TRUE(protocol::DecodeAnswerFrame(payload, &table, &decode_error))
      << decode_error;

  std::vector<std::vector<std::string>> from_frame;
  for (size_t r = 0; r < table.rows(); ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < table.columns; ++c) {
      row.push_back(table.cells[r * table.columns + c]);
    }
    from_frame.push_back(std::move(row));
  }
  EXPECT_EQ(from_frame, RowsOf(*via_json));

  // Control responses stay line-framed JSON even on a binary connection.
  std::optional<JsonValue> pong =
      binary_client.RoundTrip(R"({"v":2,"cmd":"PING"})");
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->GetBool("pong"));
  server->Stop();
}

#endif  // !_WIN32

}  // namespace
}  // namespace vadalog
