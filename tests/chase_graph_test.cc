// Tests for the chase graph and its unraveling (Section 4.2).

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "chase/chase.h"
#include "chase/chase_graph.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;
  ChaseResult chase;

  explicit TestEnv(const char* text, uint32_t max_depth = 0) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    db = DatabaseFromFacts(program.facts());
    ChaseOptions options;
    options.record_provenance = true;
    options.max_depth = max_depth;
    chase = RunChase(program, db, options);
  }

  Atom MakeAtom(const char* pred, std::vector<const char*> constants) {
    std::vector<Term> args;
    for (const char* c : constants) {
      args.push_back(program.symbols().InternConstant(c));
    }
    return Atom(program.symbols().FindPredicate(pred), std::move(args));
  }
};

TEST(ChaseGraphTest, SourcesAreDatabaseFacts) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
  )");
  ChaseGraph graph(s.chase, s.db);
  EXPECT_EQ(graph.num_atoms(), s.chase.instance.size());
  int64_t edge_id = graph.IdOf(s.MakeAtom("e", {"a", "b"}));
  ASSERT_GE(edge_id, 0);
  EXPECT_TRUE(graph.IsSource(static_cast<size_t>(edge_id)));
  int64_t derived_id = graph.IdOf(s.MakeAtom("t", {"a", "b"}));
  ASSERT_GE(derived_id, 0);
  EXPECT_FALSE(graph.IsSource(static_cast<size_t>(derived_id)));
}

TEST(ChaseGraphTest, AncestorsFormDerivation) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
  )");
  ChaseGraph graph(s.chase, s.db);
  int64_t id = graph.IdOf(s.MakeAtom("t", {"a", "d"}));
  ASSERT_GE(id, 0);
  std::vector<Atom> support = graph.SupportOf(static_cast<size_t>(id));
  // t(a,d) needs all three edges.
  EXPECT_EQ(support.size(), 3u);
  for (const Atom& atom : support) {
    EXPECT_EQ(s.program.symbols().PredicateName(atom.predicate), "e");
  }
}

TEST(ChaseGraphTest, DepthsMatchProvenance) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), e(Y, Z).
    e(a, b). e(b, c). e(c, d).
  )");
  ChaseGraph graph(s.chase, s.db);
  int64_t shallow = graph.IdOf(s.MakeAtom("t", {"a", "b"}));
  int64_t deep = graph.IdOf(s.MakeAtom("t", {"a", "d"}));
  ASSERT_GE(shallow, 0);
  ASSERT_GE(deep, 0);
  EXPECT_LT(graph.DepthOf(static_cast<size_t>(shallow)),
            graph.DepthOf(static_cast<size_t>(deep)));
}

TEST(ChaseGraphTest, DotExportContainsNodes) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    e(a, b).
  )");
  ChaseGraph graph(s.chase, s.db);
  std::string dot = graph.ToDot(s.program);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("e(a, b)"), std::string::npos);
  EXPECT_NE(dot.find("t(a, b)"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(UnravelTest, TreeCopiesSharedDerivations) {
  // t(a,c) and t(b,c) share e(b,c); the unraveling duplicates the shared
  // backward path per tree.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
  )");
  ChaseGraph graph(s.chase, s.db);
  std::vector<Atom> theta = {s.MakeAtom("t", {"a", "c"}),
                             s.MakeAtom("t", {"b", "c"})};
  UnravelForest forest =
      UnravelAround(graph, theta, s.chase.instance.MaxNullIndex());
  ASSERT_EQ(forest.roots.size(), 2u);
  // The forest has more nodes than the original sub-DAG (duplication).
  EXPECT_GE(forest.nodes.size(), 5u);
  // Roots carry the Θ atoms.
  EXPECT_EQ(forest.nodes[forest.roots[0]].original, theta[0]);
  EXPECT_EQ(forest.nodes[forest.roots[1]].original, theta[1]);
}

TEST(UnravelTest, NullsAreRenamedApart) {
  // Two P-facts derive isomorphic existential R-atoms whose nulls must be
  // renamed apart between the two trees of the unraveling.
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(a). p(b).
  )");
  ChaseGraph graph(s.chase, s.db);
  PredicateId r = s.program.symbols().FindPredicate("r");
  std::vector<Atom> theta;
  const Relation* rel = s.chase.instance.RelationFor(r);
  ASSERT_NE(rel, nullptr);
  for (size_t row = 0; row < rel->size(); ++row) {
    theta.push_back(Atom(r, rel->TupleAt(row)));
  }
  ASSERT_EQ(theta.size(), 2u);
  UnravelForest forest =
      UnravelAround(graph, theta, s.chase.instance.MaxNullIndex());
  // The copies' nulls differ from each other and from the originals.
  Term null_a = forest.nodes[forest.roots[0]].atom.args[1];
  Term null_b = forest.nodes[forest.roots[1]].atom.args[1];
  EXPECT_TRUE(null_a.is_null());
  EXPECT_TRUE(null_b.is_null());
  EXPECT_NE(null_a, null_b);
  EXPECT_GE(null_a.index(), s.chase.instance.MaxNullIndex());
}

TEST(UnravelTest, LeavesAreDatabaseFacts) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
  )");
  ChaseGraph graph(s.chase, s.db);
  std::vector<Atom> theta = {s.MakeAtom("t", {"a", "c"})};
  UnravelForest forest =
      UnravelAround(graph, theta, s.chase.instance.MaxNullIndex());
  for (const UnravelNode& node : forest.nodes) {
    if (node.children.empty()) {
      EXPECT_TRUE(node.is_database_fact)
          << node.atom.ToString(s.program.symbols());
    }
  }
}

TEST(UnravelTest, MissingAtomIgnored) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    e(a, b).
  )");
  ChaseGraph graph(s.chase, s.db);
  std::vector<Atom> theta = {s.MakeAtom("t", {"b", "a"})};  // not derived
  UnravelForest forest = UnravelAround(graph, theta, 0);
  EXPECT_TRUE(forest.roots.empty());
}

}  // namespace
}  // namespace vadalog
