// LintDriver: every check of the analysis/lint.h catalog fires at the
// right source location with the right witness; the renderers emit
// well-formed JSON/SARIF; and on generated programs the lint driver's
// fragment diagnostics agree with ClassifyProgram (the wardedness and
// PWL witnesses are recomputed independently of the classification bit,
// so agreement is a real property, not a tautology).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/classify.h"
#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "ast/parser.h"
#include "gen/generators.h"
#include "server/json.h"

namespace vadalog {
namespace {

const Diagnostic* FindDiagnostic(const LintResult& result,
                                 const std::string& id) {
  for (const Diagnostic& d : result.file.diagnostics) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

size_t CountDiagnostic(const LintResult& result, const std::string& id) {
  return static_cast<size_t>(
      std::count_if(result.file.diagnostics.begin(),
                    result.file.diagnostics.end(),
                    [&id](const Diagnostic& d) { return d.id == id; }));
}

const std::string* WitnessValue(const Diagnostic& d, const std::string& key) {
  for (const auto& [k, v] : d.witness) {
    if (k == key) return &v;
  }
  return nullptr;
}

// --- source locations from the parser ---

TEST(LintTest, ParserRecordsRuleAtomAndQueryLocations) {
  ParseResult parsed = ParseProgram(
      "t(X, Y) :- e(X, Y).\n"
      "  t(X, Z) :- e(X, Y), t(Y, Z).\n"
      "e(a, b).\n"
      "?(X) :- t(a, X).\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Program& program = *parsed.program;
  ASSERT_EQ(program.tgds().size(), 2u);
  EXPECT_EQ(program.tgds()[0].loc, (SourceLoc{1, 1}));
  EXPECT_EQ(program.tgds()[0].body[0].loc, (SourceLoc{1, 12}));
  EXPECT_EQ(program.tgds()[1].loc, (SourceLoc{2, 3}));
  EXPECT_EQ(program.tgds()[1].body[1].loc, (SourceLoc{2, 23}));
  ASSERT_EQ(program.facts().size(), 1u);
  EXPECT_EQ(program.facts()[0].loc, (SourceLoc{3, 1}));
  ASSERT_EQ(program.queries().size(), 1u);
  EXPECT_EQ(program.queries()[0].loc, (SourceLoc{4, 1}));
  EXPECT_EQ(program.queries()[0].atoms[0].loc, (SourceLoc{4, 9}));
  // Surface names survive into the diagnostics-only side tables.
  ASSERT_NE(program.tgds()[1].var_names, nullptr);
  EXPECT_EQ(VariableName(program.tgds()[1].var_names, Term::Variable(0)),
            "X");
}

TEST(LintTest, ParseErrorsCarryTheFailureLocation) {
  ParseResult parsed = ParseProgram("t(X, Y) :- e(X Y).\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error_loc.line, 1u);
  EXPECT_EQ(parsed.error_loc.column, 16u);
}

// --- V001 / V002: parse stage ---

TEST(LintTest, V001ParseErrorIsLocatedAndFatal) {
  LintResult result = LintSource("p(a).\nq(X :- p(X).\n", "bad.vada");
  ASSERT_EQ(result.file.diagnostics.size(), 1u);
  const Diagnostic& d = result.file.diagnostics[0];
  EXPECT_EQ(d.id, "V001");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.loc.line, 2u);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.classification.has_value());
}

TEST(LintTest, V002ArityOverflowIsItsOwnDiagnostic) {
  std::string program = "p(";
  for (size_t i = 0; i <= kMaxArity; ++i) {  // 65536 arguments: one too many
    if (i > 0) program += ", ";
    program += "a";
  }
  program += ").\n";
  LintResult result = LintSource(program, "wide.vada");
  ASSERT_EQ(result.file.diagnostics.size(), 1u);
  const Diagnostic& d = result.file.diagnostics[0];
  EXPECT_EQ(d.id, "V002");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.loc, (SourceLoc{1, 1}));
  EXPECT_NE(d.message.find("65536"), std::string::npos);
}

TEST(LintTest, SymbolTableRejectsUnpackableArity) {
  SymbolTable symbols;
  EXPECT_EQ(symbols.InternPredicate("wide", kMaxArity + 1),
            kInvalidPredicate);
  EXPECT_NE(symbols.InternPredicate("wide", kMaxArity), kInvalidPredicate);
}

// --- V003: unstratified negation ---

TEST(LintTest, V003ReportsTheNegationCycle) {
  LintResult result = LintSource(
      "p(X) :- e(X).\n"
      "p(X) :- e(X), not q(X).\n"
      "q(X) :- p(X).\n"
      "?(X) :- p(X).\n",
      "unstratified.vada");
  const Diagnostic* d = FindDiagnostic(result, "V003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->loc, (SourceLoc{2, 19}));  // the negated atom
  const std::string* cycle = WitnessValue(*d, "cycle");
  ASSERT_NE(cycle, nullptr);
  EXPECT_EQ(*cycle, "p -> q -[not]-> p");
  EXPECT_FALSE(result.ok());
}

// --- V004: unsupported fragment ---

TEST(LintTest, V004FlagsNegationOutsideDatalogAsWarningOnly) {
  LintResult result = LintSource(
      "p(a).\n"
      "e(a, b).\n"
      "r(X, Z) :- p(X).\n"
      "t(X) :- e(X, Y), not r(X, Y).\n"
      "?(X) :- t(X).\n",
      "unsupported.vada");
  const Diagnostic* d = FindDiagnostic(result, "V004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->loc, (SourceLoc{4, 22}));
  // Deliberately unservable yet shipped as an example: must stay below
  // error severity so `vadalog_lint examples/programs/*` exits 0.
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(FindDiagnostic(result, "V003"), nullptr);  // it IS stratified
}

// --- V101: wardedness witnesses ---

TEST(LintTest, V101ExplainsTheNonWardedRule) {
  LintResult result = LintSource(
      "p(Y) :- t(X, X).\n"
      "q(Y) :- t(X, X).\n"
      "h(X, Y) :- p(X), q(Y).\n",
      "nonwarded.vada");
  ASSERT_EQ(CountDiagnostic(result, "V101"), 1u);
  const Diagnostic* d = FindDiagnostic(result, "V101");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->loc, (SourceLoc{3, 1}));
  EXPECT_NE(d->message.find("'X', 'Y'"), std::string::npos);
  const std::string* x = WitnessValue(*d, "dangerous:X");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(*x, "all body occurrences affected: p[0]");
  const std::string* y = WitnessValue(*d, "dangerous:Y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(*y, "all body occurrences affected: q[0]");
  // Both body atoms fail as wards for the same reason: each misses one
  // of the two dangerous variables.
  EXPECT_EQ(*WitnessValue(*d, "body[0]"), "misses a dangerous variable");
  EXPECT_EQ(*WitnessValue(*d, "body[1]"), "misses a dangerous variable");
  ASSERT_TRUE(result.classification.has_value());
  EXPECT_FALSE(result.classification->warded);
}

TEST(LintTest, V101ReportsTheSharedNonHarmlessVariable) {
  // In rule 3, Z is the only dangerous variable (q[1] is affected through
  // W); the candidate q(Y, Z) contains it but shares the harmful Y (all
  // occurrences affected: p[1], q[0]) with the rest of the body.
  LintResult result = LintSource(
      "p(X, Y) :- s(X).\n"
      "q(Y, W) :- p(X, Y), s(X).\n"
      "h(Z) :- p(X, Y), q(Y, Z), s(X).\n",
      "shared.vada");
  const Diagnostic* d = FindDiagnostic(result, "V101");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->loc.line, 3u);
  bool saw_shares = false;
  for (const auto& [key, value] : d->witness) {
    if (value.find("shares non-harmless") != std::string::npos) {
      saw_shares = true;
      EXPECT_NE(value.find("'Y'"), std::string::npos) << value;
    }
  }
  EXPECT_TRUE(saw_shares);
}

// --- V102: fragment downgrade ---

TEST(LintTest, V102NotesNonLinearRecursionWithTheOffendingRule) {
  LintResult result = LintSource(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Z) :- t(X, Y), t(Y, Z).\n",
      "tc.vada");
  const Diagnostic* d = FindDiagnostic(result, "V102");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(d->loc, (SourceLoc{2, 1}));
  EXPECT_EQ(*WitnessValue(*d, "recursive-body-atoms"), "2");
  ASSERT_TRUE(result.classification.has_value());
  EXPECT_EQ(*WitnessValue(*d, "bucket"),
            result.classification->RecursionBucket());
  EXPECT_TRUE(result.ok());  // notes and warnings never fail the lint
}

// --- V201 / V202: variable hygiene ---

TEST(LintTest, V201FlagsBodySingletonsButNotExistentials) {
  LintResult result = LintSource(
      "control(X, Y) :- owns(X, Y).\n"
      "filing(Y, W) :- control(X, Y).\n",
      "singleton.vada");
  ASSERT_EQ(CountDiagnostic(result, "V201"), 1u);
  const Diagnostic* d = FindDiagnostic(result, "V201");
  EXPECT_EQ(d->loc, (SourceLoc{2, 17}));  // the control(X, Y) body atom
  EXPECT_NE(d->message.find("'X'"), std::string::npos);
  // W is existential (head-only): intentional, never a singleton.
  EXPECT_EQ(d->message.find("'W'"), std::string::npos);
}

TEST(LintTest, V201SkipsWildcardsAndSyntheticRules) {
  LintResult with_wildcard = LintSource(
      "t(X) :- e(X, _).\n", "wildcard.vada");
  EXPECT_EQ(CountDiagnostic(with_wildcard, "V201"), 0u);

  // Synthetic programs carry no variable names; the check stays silent
  // instead of flagging every projection in generated rule sets.
  Program program;
  PredicateId e = program.symbols().InternPredicate("e", 2);
  PredicateId t = program.symbols().InternPredicate("t", 1);
  Tgd tgd;
  tgd.body.push_back(Atom(e, {Term::Variable(0), Term::Variable(1)}));
  tgd.head.push_back(Atom(t, {Term::Variable(0)}));
  program.AddTgd(std::move(tgd));
  LintResult synthetic = LintProgram(program, "<synthetic>");
  EXPECT_EQ(CountDiagnostic(synthetic, "V201"), 0u);
}

TEST(LintTest, V202FlagsUnboundQueryOutputs) {
  LintResult result = LintSource(
      "p(a).\n"
      "?(X, Y) :- p(X).\n",
      "unsafe.vada");
  ASSERT_EQ(CountDiagnostic(result, "V202"), 1u);
  const Diagnostic* d = FindDiagnostic(result, "V202");
  EXPECT_EQ(d->loc, (SourceLoc{2, 1}));
  EXPECT_NE(d->message.find("'Y'"), std::string::npos);
}

// --- V301 / V302: dead predicates ---

TEST(LintTest, V301FlagsWriteOnlyPredicatesOnlyWhenQueriesExist) {
  const char* text =
      "t(X) :- e(X).\n"
      "dead(X) :- e(X).\n"
      "e(a).\n";
  LintResult no_query = LintSource(text, "noquery.vada");
  EXPECT_EQ(CountDiagnostic(no_query, "V301"), 0u);

  LintResult with_query =
      LintSource(std::string(text) + "?(X) :- t(X).\n", "query.vada");
  ASSERT_EQ(CountDiagnostic(with_query, "V301"), 1u);
  const Diagnostic* d = FindDiagnostic(with_query, "V301");
  EXPECT_EQ(d->loc, (SourceLoc{2, 1}));
  EXPECT_NE(d->message.find("dead/1"), std::string::npos);
}

TEST(LintTest, V302FlagsBaselessRecursion) {
  LintResult result = LintSource(
      "p(X) :- q(X).\n"
      "q(X) :- p(X).\n"
      "e(a).\n"
      "?(X) :- p(X), e(X).\n",
      "baseless.vada");
  EXPECT_EQ(CountDiagnostic(result, "V302"), 2u);
  const Diagnostic* d = FindDiagnostic(result, "V302");
  EXPECT_EQ(d->loc, (SourceLoc{1, 1}));
  EXPECT_NE(d->message.find("p/1"), std::string::npos);
  // Extensional predicates without facts in this file are NOT flagged:
  // the daemon may ADD_FACTS them later.
  LintResult edb = LintSource("t(X) :- e(X).\n?(X) :- t(X).\n", "edb.vada");
  EXPECT_EQ(CountDiagnostic(edb, "V302"), 0u);
}

// --- V401 / V402: redundant rules ---

TEST(LintTest, V401CatchesDuplicatesUpToRenaming) {
  LintResult result = LintSource(
      "t(X, Y) :- e(X, Y).\n"
      "t(A, B) :- e(A, B).\n",
      "dup.vada");
  ASSERT_EQ(CountDiagnostic(result, "V401"), 1u);
  const Diagnostic* d = FindDiagnostic(result, "V401");
  EXPECT_EQ(d->loc, (SourceLoc{2, 1}));
  EXPECT_EQ(*WitnessValue(*d, "first-occurrence"), "line 1");
  EXPECT_EQ(CountDiagnostic(result, "V402"), 0u);  // duplicates aren't both
}

TEST(LintTest, V402CatchesStrictSubsumption) {
  LintResult result = LintSource(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Y), s(X, X).\n",
      "subsumed.vada");
  ASSERT_EQ(CountDiagnostic(result, "V402"), 1u);
  const Diagnostic* d = FindDiagnostic(result, "V402");
  EXPECT_EQ(d->loc, (SourceLoc{2, 1}));
  EXPECT_EQ(*WitnessValue(*d, "subsumed-by"), "line 1");

  // Distinct recursion shapes must NOT be collapsed: the linear and the
  // non-linear transitive-closure rules subsume nothing.
  LintResult tc = LintSource(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Z) :- e(X, Y), t(Y, Z).\n",
      "tc.vada");
  EXPECT_EQ(CountDiagnostic(tc, "V402"), 0u);
}

// --- shipped examples stay clean ---

TEST(LintTest, CheckCatalogIsSortedAndComplete) {
  const std::vector<CheckInfo>& catalog = CheckCatalog();
  ASSERT_FALSE(catalog.empty());
  for (size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].id, catalog[i].id);
  }
  EXPECT_NE(FindCheck("V101"), nullptr);
  EXPECT_EQ(FindCheck("V999"), nullptr);
  EXPECT_EQ(FindCheck("V001")->severity, Severity::kError);
  EXPECT_EQ(FindCheck("V102")->severity, Severity::kNote);
}

// --- renderers ---

TEST(LintTest, TextRenderingAnchorsACaretUnderTheColumn) {
  LintResult result = LintSource(
      "t(X, Y) :- e(X, Y).\n"
      "t(A, B) :- e(A, B).\n",
      "dup.vada");
  std::string text = RenderText(result.file);
  EXPECT_NE(text.find("dup.vada:2:1: warning: V401 duplicate-rule"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("    t(A, B) :- e(A, B).\n    ^\n"),
            std::string::npos)
      << text;
}

TEST(LintTest, JsonRenderingIsWellFormedAndCounted) {
  LintResult result = LintSource(
      "p(X) :- e(X), not q(X).\nq(X) :- p(X).\n?(X) :- p(X).\n",
      "bad.vada");
  std::string json = RenderJson({result.file});
  std::string error;
  std::optional<JsonValue> parsed = JsonValue::Parse(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error << "\n" << json;
  EXPECT_EQ(parsed->GetUint("errors"), 1u);  // the V003
  const JsonValue* files = parsed->Find("files");
  ASSERT_NE(files, nullptr);
  ASSERT_EQ(files->Items().size(), 1u);
  const JsonValue& first = files->Items()[0].Find("diagnostics")->Items()[0];
  EXPECT_EQ(first.GetString("id"), "V003");
  EXPECT_EQ(first.GetUint("line"), 1u);
}

TEST(LintTest, SarifRenderingCarriesRulesAndRegions) {
  LintResult result = LintSource("t(X, Y) :- e(X Y).\n", "broken.vada");
  std::string sarif = RenderSarif({result.file});
  std::string error;
  std::optional<JsonValue> parsed = JsonValue::Parse(sarif, &error);
  ASSERT_TRUE(parsed.has_value()) << error << "\n" << sarif;
  EXPECT_EQ(parsed->GetString("version"), "2.1.0");
  const JsonValue& run = parsed->Find("runs")->Items()[0];
  const JsonValue* rules = run.Find("tool")->Find("driver")->Find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->Items().size(), CheckCatalog().size());
  const JsonValue& item = run.Find("results")->Items()[0];
  EXPECT_EQ(item.GetString("ruleId"), "V001");
  EXPECT_EQ(item.GetString("level"), "error");
  const JsonValue& region = *item.Find("locations")
                                 ->Items()[0]
                                 .Find("physicalLocation")
                                 ->Find("region");
  EXPECT_EQ(region.GetUint("startLine"), 1u);
  EXPECT_EQ(region.GetUint("startColumn"), 16u);
}

TEST(LintTest, JsonEscapingCoversControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te\x01" "f"),
            "a\\\"b\\\\c\\nd\\te\\u0001f");
}

// --- agreement with ClassifyProgram on generated programs ---

TEST(LintTest, FragmentDiagnosticsAgreeWithClassifierOnGeneratedPrograms) {
  const RecursionShape shapes[] = {
      RecursionShape::kLinear, RecursionShape::kPiecewiseLinear,
      RecursionShape::kLinearizable, RecursionShape::kNonLinear};
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    ScenarioSpec spec;
    spec.shape = shapes[seed % 4];
    spec.num_strata = 1 + static_cast<uint32_t>(seed % 3);
    spec.with_existentials = (seed % 2) == 0;
    spec.seed = seed;
    Program program = GenerateScenario(spec);
    ProgramClassification cls = ClassifyProgram(program);
    LintResult lint = LintProgram(program, "<generated>");

    bool has_v101 = FindDiagnostic(lint, "V101") != nullptr;
    EXPECT_EQ(has_v101, !cls.warded) << "seed " << seed;
    const Diagnostic* v102 = FindDiagnostic(lint, "V102");
    EXPECT_EQ(v102 != nullptr, cls.warded && !cls.piecewise_linear)
        << "seed " << seed;
    if (v102 != nullptr) {
      const std::string* bucket = WitnessValue(*v102, "bucket");
      ASSERT_NE(bucket, nullptr);
      EXPECT_EQ(*bucket, cls.RecursionBucket()) << "seed " << seed;
    }
    // The generators never emit negation, so the negation checks must
    // stay silent; every reported id must be catalogued with the
    // catalogue's severity.
    EXPECT_EQ(FindDiagnostic(lint, "V003"), nullptr) << "seed " << seed;
    EXPECT_EQ(FindDiagnostic(lint, "V004"), nullptr) << "seed " << seed;
    for (const Diagnostic& d : lint.file.diagnostics) {
      const CheckInfo* info = FindCheck(d.id);
      ASSERT_NE(info, nullptr) << d.id;
      EXPECT_EQ(d.severity, info->severity) << d.id;
    }
  }
}

}  // namespace
}  // namespace vadalog
