// Tests for the bounded linear proof search (Section 4.3) — the paper's
// headline NLogSpace algorithm for CQAns(WARD ∩ PWL).

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "engine/certain.h"
#include "engine/linear_search.h"
#include "vadalog/reasoner.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    NormalizeToSingleHead(&program, nullptr);
    db = DatabaseFromFacts(program.facts());
  }

  Term Const(const char* name) {
    return program.symbols().InternConstant(name);
  }
  ConjunctiveQuery Query(size_t index = 0) {
    return program.queries()[index];
  }
};

TEST(LinearSearchTest, ReachabilityPositive) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X) :- t(a, X).
  )");
  EXPECT_TRUE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("d")}).accepted);
  EXPECT_TRUE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("b")}).accepted);
}

TEST(LinearSearchTest, ReachabilityNegative) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X) :- t(a, X).
  )");
  EXPECT_FALSE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("a")}).accepted);
  ProofSearchResult r =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("zz")});
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(LinearSearchTest, ExistentialWitnessBooleanQuery) {
  // P(x) → ∃z R(x,z): the Boolean query ∃x∃z R(x,z) is certain although
  // no R-fact exists in D.
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(a).
    ?() :- r(X, Y).
  )");
  EXPECT_TRUE(LinearProofSearch(s.program, s.db, s.Query(), {}).accepted);
}

TEST(LinearSearchTest, NullNotACertainAnswer) {
  // The witness z is a null: ?(Y) :- r(a, Y) has no certain (constant)
  // answer.
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(a).
    ?(Y) :- r(a, Y).
  )");
  EXPECT_FALSE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("a")}).accepted);
}

TEST(LinearSearchTest, WardedExistentialCycle) {
  // The Section 3 warded pair; derived P-facts are null-valued, so the
  // only certain P-answer is the database one... plus none propagated.
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
    p(a).
    ?(X) :- p(X).
  )");
  EXPECT_TRUE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("a")}).accepted);
  Term b = s.Const("b");
  EXPECT_FALSE(LinearProofSearch(s.program, s.db, s.Query(), {b}).accepted);
  // Boolean: ∃x∃z r(x,z) and the deeper ∃ chain are certain.
  ConjunctiveQuery boolean_query;
  PredicateId r = s.program.symbols().FindPredicate("r");
  boolean_query.atoms = {Atom(r, {Term::Variable(0), Term::Variable(1)})};
  EXPECT_TRUE(LinearProofSearch(s.program, s.db, boolean_query, {}).accepted);
}

TEST(LinearSearchTest, JoinQueryOverDerivedAtoms) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(b, d).
    ?(X, Y) :- t(a, X), t(X, Y).
  )");
  EXPECT_TRUE(LinearProofSearch(s.program, s.db, s.Query(),
                                {s.Const("b"), s.Const("c")})
                  .accepted);
  EXPECT_FALSE(LinearProofSearch(s.program, s.db, s.Query(),
                                 {s.Const("c"), s.Const("b")})
                   .accepted);
}

TEST(LinearSearchTest, RepeatedOutputVariable) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, a).
    ?(X, X) :- t(X, X).
  )");
  EXPECT_TRUE(LinearProofSearch(s.program, s.db, s.Query(),
                                {s.Const("a"), s.Const("a")})
                  .accepted);
  // Inconsistent candidate for the repeated variable.
  EXPECT_FALSE(LinearProofSearch(s.program, s.db, s.Query(),
                                 {s.Const("a"), s.Const("b")})
                   .accepted);
}

TEST(LinearSearchTest, Owl2QlTypeInference) {
  TestEnv s(R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
    subclass(cat, mammal). subclass(mammal, animal).
    type(tom, cat).
    restriction(hunter, hunts).
    type(tom, hunter).
    ?(Y) :- type(tom, Y).
  )");
  // Transitive subclass inference: tom : cat, mammal, animal.
  EXPECT_TRUE(LinearProofSearch(s.program, s.db, s.Query(),
                                {s.Const("animal")})
                  .accepted);
  // Through restriction + inverse-free round trip: triple(tom, hunts, z)
  // with restriction(hunter, hunts) re-derives type(tom, hunter).
  EXPECT_TRUE(LinearProofSearch(s.program, s.db, s.Query(),
                                {s.Const("hunter")})
                  .accepted);
  EXPECT_FALSE(
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("hunts")})
          .accepted);
}

TEST(LinearSearchTest, AgreesWithChaseOnEnumeration) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(s.program, s.db, s.Query());
  std::vector<std::vector<Term>> via_search =
      CertainAnswersViaSearch(s.program, s.db, s.Query());
  EXPECT_EQ(via_chase, via_search);
  EXPECT_EQ(via_search.size(), 12u);  // 3-cycle closure (9) + edges into d (3)
}

TEST(LinearSearchTest, StateBudgetReported) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ProofSearchOptions options;
  options.max_states = 1;
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("zz")}, options);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST(LinearSearchTest, StatsArePopulated) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("c")});
  EXPECT_TRUE(result.accepted);
  EXPECT_GT(result.node_width_used, 0u);
  EXPECT_GT(result.peak_state_bytes, 0u);
}

// Deterministic perf canaries: the searches count expanded/visited states,
// so exploration-size regressions (a lost pruning rule, a broken canonical
// form) show up as counter jumps long before they show up as wall-clock.
// Bounds are ~2x the counts observed when the pruned search landed
// (7 states for the chain refutation, 8280 for the OWL 2 QL refutation).
TEST(LinearSearchTest, PerfCanaryChainRefutation) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X) :- t(a, X).
  )");
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("zz")});
  EXPECT_FALSE(result.accepted);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_LE(result.states_expanded, 16u);
  EXPECT_LE(result.states_visited, 16u);
}

TEST(LinearSearchTest, PerfCanaryOwl2QlRefutation) {
  TestEnv s(R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
    subclass(cat, mammal). subclass(mammal, animal).
    type(tom, cat).
    restriction(hunter, hunts).
    type(tom, hunter).
    ?(Y) :- type(tom, Y).
  )");
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("hunts")});
  EXPECT_FALSE(result.accepted);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_LE(result.states_expanded, 16000u);
  EXPECT_LE(result.states_visited, 16000u);
}

TEST(LinearSearchTest, SubsumptionPruningPreservesDecisions) {
  TestEnv s(R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
    subclass(cat, mammal). subclass(mammal, animal).
    type(tom, cat).
    restriction(hunter, hunts).
    type(tom, hunter).
    ?(Y) :- type(tom, Y).
  )");
  ProofSearchOptions unpruned;
  unpruned.subsumption = false;
  for (const char* name : {"animal", "hunter", "hunts", "cat", "tom"}) {
    ProofSearchResult with_pruning =
        LinearProofSearch(s.program, s.db, s.Query(), {s.Const(name)});
    ProofSearchResult without =
        LinearProofSearch(s.program, s.db, s.Query(), {s.Const(name)},
                          unpruned);
    EXPECT_EQ(with_pruning.accepted, without.accepted) << name;
    EXPECT_LE(with_pruning.states_expanded, without.states_expanded)
        << name;
  }
  // On this workload the pruning must actually fire.
  ProofSearchResult refutation =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("hunts")});
  EXPECT_GT(refutation.subsumed_discarded, 0u);
}

TEST(LinearSearchTest, ParallelFrontierIsDeterministicAndAgrees) {
  TestEnv s(R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
    subclass(cat, mammal). subclass(mammal, animal).
    type(tom, cat).
    restriction(hunter, hunts).
    type(tom, hunter).
    ?(Y) :- type(tom, Y).
  )");
  // A refutation explores the full space, so every counter must be
  // bit-identical across thread counts (deterministic sharded merge).
  ProofSearchResult single =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("hunts")});
  for (uint32_t threads : {2u, 4u}) {
    ProofSearchOptions options;
    options.num_threads = threads;
    ProofSearchResult parallel = LinearProofSearch(
        s.program, s.db, s.Query(), {s.Const("hunts")}, options);
    EXPECT_FALSE(parallel.accepted);
    EXPECT_EQ(parallel.states_visited, single.states_visited) << threads;
    EXPECT_EQ(parallel.states_expanded, single.states_expanded) << threads;
    EXPECT_EQ(parallel.subsumed_discarded, single.subsumed_discarded)
        << threads;
    EXPECT_EQ(parallel.resolution_edges, single.resolution_edges)
        << threads;
    EXPECT_EQ(parallel.drop_edges, single.drop_edges) << threads;
  }
  // Accepting decisions agree on the verdict (counters may differ — the
  // accept short-circuit is allowed to stop workers early).
  for (const char* name : {"animal", "hunter", "cat"}) {
    ProofSearchOptions options;
    options.num_threads = 4;
    EXPECT_TRUE(LinearProofSearch(s.program, s.db, s.Query(),
                                  {s.Const(name)}, options)
                    .accepted)
        << name;
  }
}

TEST(LinearSearchTest, ParallelSearchHonorsBudgets) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d). e(d, e). e(e, a).
    ?(X) :- t(a, X).
  )");
  ProofSearchOptions options;
  options.num_threads = 4;
  options.max_states = 3;
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.Query(), {s.Const("zz")}, options);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LE(result.states_expanded, 3u);
}

TEST(LinearSearchTest, ParallelEnumerationMatchesChase) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(s.program, s.db, s.Query());
  ProofSearchOptions options;
  options.num_threads = 4;
  EXPECT_EQ(via_chase, CertainAnswersViaSearch(s.program, s.db, s.Query(),
                                               /*use_alternating=*/false,
                                               options));
  options.subsumption = false;
  EXPECT_EQ(via_chase, CertainAnswersViaSearch(s.program, s.db, s.Query(),
                                               /*use_alternating=*/false,
                                               options));
}

TEST(LinearSearchTest, ExplanationSurvivesPruningAndThreads) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
    ?(X) :- t(a, X).
  )");
  for (uint32_t threads : {1u, 4u}) {
    ProofSearchOptions options;
    options.num_threads = threads;
    ProofExplanation explanation;
    ProofSearchResult result = LinearProofSearch(
        s.program, s.db, s.Query(), {s.Const("d")}, options, &explanation);
    ASSERT_TRUE(result.accepted) << threads;
    ASSERT_FALSE(explanation.empty()) << threads;
    EXPECT_EQ(explanation.steps.front().kind, ProofStep::Kind::kStart);
    EXPECT_TRUE(explanation.steps.back().state.empty());
  }
}

TEST(LinearSearchTest, FreezeQueryRejectsMalformedCandidates) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    e(a, b).
    ?(X) :- t(X, X).
  )");
  EXPECT_FALSE(FreezeQuery(s.Query(), {}).has_value());             // arity
  EXPECT_FALSE(FreezeQuery(s.Query(), {Term::Null(0)}).has_value()); // null
  EXPECT_TRUE(FreezeQuery(s.Query(), {s.Const("a")}).has_value());
}

}  // namespace
}  // namespace vadalog
