// Tests for the certain-answer facade's budget soundness: a search that
// gave up (max_states / max_millis) must never pass its rejections off as
// refutations, so CertainAnswersViaSearchChecked reports completeness.

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "engine/certain.h"
#include "engine/search_cache.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    NormalizeToSingleHead(&program, nullptr);
    db = DatabaseFromFacts(program.facts());
  }
  ConjunctiveQuery Query(size_t index = 0) {
    return program.queries()[index];
  }
};

constexpr const char* kChain = R"(
  t(X, Y) :- e(X, Y).
  t(X, Z) :- e(X, Y), t(Y, Z).
  e(a, b). e(b, c). e(c, d).
  ?(X, Y) :- t(X, Y).
)";

TEST(CertainCheckedTest, UnbudgetedSweepIsCompleteAndMatchesChase) {
  TestEnv s(kChain);
  std::vector<std::vector<Term>> via_chase =
      CertainAnswersViaChase(s.program, s.db, s.Query());
  for (bool alternating : {false, true}) {
    CertainAnswerSet checked = CertainAnswersViaSearchChecked(
        s.program, s.db, s.Query(), alternating);
    EXPECT_TRUE(checked.complete);
    EXPECT_EQ(checked.budget_exhausted_candidates, 0u);
    EXPECT_EQ(checked.answers, via_chase);
  }
}

TEST(CertainCheckedTest, StateBudgetExhaustionIsNeverReportedAsDefinitive) {
  TestEnv s(kChain);
  std::vector<std::vector<Term>> full =
      CertainAnswersViaChase(s.program, s.db, s.Query());
  ASSERT_FALSE(full.empty());
  // One expanded state per candidate: every refutation gives up, so the
  // sweep must flag itself incomplete instead of presenting the shrunken
  // answer set as cert(q, D, Σ).
  ProofSearchOptions starved;
  starved.max_states = 1;
  for (bool alternating : {false, true}) {
    CertainAnswerSet checked = CertainAnswersViaSearchChecked(
        s.program, s.db, s.Query(), alternating, starved);
    if (checked.answers != full) {
      EXPECT_FALSE(checked.complete)
          << "a smaller answer set was reported as definitive";
      EXPECT_GT(checked.budget_exhausted_candidates, 0u);
    }
    // Whatever was accepted under the budget must be a real answer.
    for (const std::vector<Term>& row : checked.answers) {
      EXPECT_TRUE(std::find(full.begin(), full.end(), row) != full.end());
    }
  }
}

TEST(CertainCheckedTest, TimeBudgetExhaustionIsNeverReportedAsDefinitive) {
  // The satellite regression: a max_millis=1 run never reports a smaller
  // certain-answer set as definitive. A fast machine may well finish the
  // whole sweep inside the budget — then it must equal the chase exactly;
  // otherwise the incompleteness must be flagged.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, a). e(c, d). e(d, e). e(e, a).
    ?(X, Y) :- t(X, Y).
  )");
  std::vector<std::vector<Term>> full =
      CertainAnswersViaChase(s.program, s.db, s.Query());
  ProofSearchOptions timed;
  timed.max_millis = 1;
  CertainAnswerSet checked =
      CertainAnswersViaSearchChecked(s.program, s.db, s.Query(), false,
                                     timed);
  if (checked.answers != full) {
    EXPECT_FALSE(checked.complete);
    EXPECT_GT(checked.budget_exhausted_candidates, 0u);
  }
}

TEST(CertainCheckedTest, WrapperKeepsAnswersOnly) {
  TestEnv s(kChain);
  EXPECT_EQ(CertainAnswersViaSearch(s.program, s.db, s.Query()),
            CertainAnswersViaSearchChecked(s.program, s.db, s.Query())
                .answers);
}

}  // namespace
}  // namespace vadalog
