// Tests for proof-tree reconstruction (linear proof explanations,
// Definition 4.6) from the linear proof search.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "engine/linear_search.h"
#include "vadalog/reasoner.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    NormalizeToSingleHead(&program, nullptr);
    db = DatabaseFromFacts(program.facts());
  }

  Term Const(const char* name) {
    return program.symbols().InternConstant(name);
  }
};

TEST(ProofTreeTest, ReachabilityProofStructure) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ProofExplanation explanation;
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.program.queries()[0],
                        {s.Const("c")}, {}, &explanation);
  ASSERT_TRUE(result.accepted);
  ASSERT_FALSE(explanation.empty());
  // The proof starts at the frozen query and ends accepting.
  EXPECT_EQ(explanation.steps.front().kind, ProofStep::Kind::kStart);
  EXPECT_TRUE(explanation.steps.back().state.empty());
  // At least one resolution (t is not a database fact).
  bool has_resolution = false;
  for (const ProofStep& step : explanation.steps) {
    if (step.kind == ProofStep::Kind::kResolution) has_resolution = true;
  }
  EXPECT_TRUE(has_resolution);
}

TEST(ProofTreeTest, MatchDropRecordsFact) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ProofExplanation explanation;
  LinearProofSearch(s.program, s.db, s.program.queries()[0], {s.Const("c")},
                    {}, &explanation);
  bool found_match = false;
  for (const ProofStep& step : explanation.steps) {
    if (step.kind == ProofStep::Kind::kMatchDrop) {
      found_match = true;
      // The matched fact must actually be in the database.
      EXPECT_TRUE(s.db.Contains(step.matched_fact))
          << step.matched_fact.ToString(s.program.symbols());
    }
  }
  EXPECT_TRUE(found_match);
}

TEST(ProofTreeTest, RenderedExplanationMentionsRules) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    e(a, b).
    ?() :- t(a, b).
  )");
  ProofExplanation explanation;
  ProofSearchResult result = LinearProofSearch(
      s.program, s.db, s.program.queries()[0], {}, {}, &explanation);
  ASSERT_TRUE(result.accepted);
  std::string rendered = explanation.ToString(s.program);
  EXPECT_NE(rendered.find("resolve"), std::string::npos);
  EXPECT_NE(rendered.find("accept"), std::string::npos);
}

TEST(ProofTreeTest, NoExplanationForNonAnswers) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    e(a, b).
    ?(X) :- t(a, X).
  )");
  ProofExplanation explanation;
  ProofSearchResult result =
      LinearProofSearch(s.program, s.db, s.program.queries()[0],
                        {s.Const("zzz")}, {}, &explanation);
  EXPECT_FALSE(result.accepted);
}

TEST(ProofTreeTest, ExistentialProofUsesResolution) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(a).
    ?() :- r(X, Y).
  )");
  ProofExplanation explanation;
  ProofSearchResult result = LinearProofSearch(
      s.program, s.db, s.program.queries()[0], {}, {}, &explanation);
  ASSERT_TRUE(result.accepted);
  // The proof must resolve r through the existential rule, then match p(a).
  ASSERT_GE(explanation.steps.size(), 2u);
  std::string rendered = explanation.ToString(s.program);
  EXPECT_NE(rendered.find("r(X"), std::string::npos);
}

TEST(ProofTreeTest, ReasonerExplainFacade) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c).
    ?(X) :- t(a, X).
  )");
  ASSERT_NE(reasoner, nullptr);
  const ConjunctiveQuery& query = reasoner->program().queries()[0];
  SymbolTable& symbols = const_cast<Program&>(reasoner->program()).symbols();
  std::string proof =
      reasoner->Explain(query, {symbols.InternConstant("c")});
  EXPECT_FALSE(proof.empty());
  EXPECT_NE(proof.find("accept"), std::string::npos);
  std::string no_proof =
      reasoner->Explain(query, {symbols.InternConstant("a")});
  EXPECT_TRUE(no_proof.empty());
}

TEST(ProofTreeTest, ProofStepCountMatchesChainLength) {
  // Proving reach over a length-n chain needs ~n resolutions + n drops.
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(n0, n1). e(n1, n2). e(n2, n3). e(n3, n4).
    ?() :- t(n0, n4).
  )");
  ProofExplanation explanation;
  ProofSearchResult result = LinearProofSearch(
      s.program, s.db, s.program.queries()[0], {}, {}, &explanation);
  ASSERT_TRUE(result.accepted);
  size_t resolutions = 0;
  for (const ProofStep& step : explanation.steps) {
    if (step.kind == ProofStep::Kind::kResolution) ++resolutions;
  }
  EXPECT_EQ(resolutions, 4u);  // one per chain edge
}

}  // namespace
}  // namespace vadalog
