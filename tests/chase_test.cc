// Tests for the chase engine: fixpoints, existentials, restricted vs
// oblivious modes, the Vadalog isomorphism termination control, budgets,
// and provenance.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "chase/chase.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

struct TestEnv {
  Program program;
  Instance db;

  explicit TestEnv(const char* text) {
    ParseResult parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    program = std::move(*parsed.program);
    db = DatabaseFromFacts(program.facts());
  }
};

TEST(ChaseTest, TransitiveClosureFixpoint) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d).
  )");
  ChaseResult result = RunChase(s.program, s.db);
  EXPECT_TRUE(result.Saturated());
  PredicateId t = s.program.symbols().FindPredicate("t");
  const Relation* rel = result.instance.RelationFor(t);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 6u);  // ab bc cd ac bd ad
  EXPECT_EQ(result.nulls_created, 0u);
}

TEST(ChaseTest, ExistentialCreatesNull) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(a).
  )");
  ChaseResult result = RunChase(s.program, s.db);
  EXPECT_TRUE(result.Saturated());
  EXPECT_EQ(result.nulls_created, 1u);
  PredicateId r = s.program.symbols().FindPredicate("r");
  const Relation* rel = result.instance.RelationFor(r);
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_TRUE(rel->TupleAt(0)[1].is_null());
}

TEST(ChaseTest, RestrictedChaseSkipsSatisfiedHeads) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(a). r(a, b).
  )");
  ChaseResult result = RunChase(s.program, s.db);
  // r(a, b) already satisfies the head for p(a): no null generated.
  EXPECT_EQ(result.nulls_created, 0u);
  EXPECT_GE(result.steps_skipped_satisfied, 1u);
}

TEST(ChaseTest, ObliviousChaseFiresAnyway) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(a). r(a, b).
  )");
  ChaseOptions options;
  options.restricted = false;
  ChaseResult result = RunChase(s.program, s.db, options);
  EXPECT_EQ(result.nulls_created, 1u);
}

TEST(ChaseTest, IsomorphismTerminationStopsInfiniteChase) {
  // P(x) → ∃z R(x,z); R(x,y) → P(y): the plain chase is infinite, the
  // Vadalog termination control stops after one isomorphic generation.
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
    p(a).
  )");
  ChaseResult result = RunChase(s.program, s.db);
  EXPECT_TRUE(result.Saturated());
  EXPECT_GE(result.steps_skipped_isomorphic, 1u);
  EXPECT_LT(result.instance.size(), 10u);
}

TEST(ChaseTest, WithoutTerminationControlBudgetKicksIn) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
    p(a).
  )");
  ChaseOptions options;
  options.isomorphism_termination = false;
  options.max_atoms = 50;
  ChaseResult result = RunChase(s.program, s.db, options);
  EXPECT_FALSE(result.Saturated());
  EXPECT_EQ(result.stop_reason, ChaseStopReason::kAtomBudget);
  EXPECT_GE(result.instance.size(), 50u);
}

TEST(ChaseTest, DepthBudget) {
  TestEnv s(R"(
    r(X, Z) :- p(X).
    p(Y) :- r(X, Y).
    p(a).
  )");
  ChaseOptions options;
  options.isomorphism_termination = false;
  options.max_depth = 4;
  ChaseResult result = RunChase(s.program, s.db, options);
  EXPECT_TRUE(result.Saturated());  // depth cut makes it finite
  EXPECT_GE(result.steps_skipped_depth, 1u);
}

TEST(ChaseTest, StepBudget) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b). e(b, c). e(c, d). e(d, e_).
  )");
  ChaseOptions options;
  options.max_steps = 3;
  ChaseResult result = RunChase(s.program, s.db, options);
  EXPECT_EQ(result.stop_reason, ChaseStopReason::kStepBudget);
  EXPECT_EQ(result.steps_applied, 3u);
}

TEST(ChaseTest, MultiHeadRule) {
  TestEnv s(R"(
    a(X, Z), b(Z) :- c(X).
    c(k).
  )");
  ChaseResult result = RunChase(s.program, s.db);
  PredicateId a = s.program.symbols().FindPredicate("a");
  PredicateId b = s.program.symbols().FindPredicate("b");
  const Relation* ra = result.instance.RelationFor(a);
  const Relation* rb = result.instance.RelationFor(b);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  // The same fresh null links a and b.
  EXPECT_EQ(ra->TupleAt(0)[1], rb->TupleAt(0)[0]);
}

TEST(ChaseTest, ProvenanceRecorded) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    e(a, b).
  )");
  ChaseOptions options;
  options.record_provenance = true;
  ChaseResult result = RunChase(s.program, s.db, options);
  ASSERT_EQ(result.derivations.size(), 1u);
  const ChaseDerivation& d = result.derivations[0];
  EXPECT_EQ(d.tgd_index, 0u);
  EXPECT_EQ(d.depth, 1u);
  ASSERT_EQ(d.parents.size(), 1u);
  EXPECT_EQ(s.program.symbols().PredicateName(d.parents[0].predicate), "e");
}

TEST(ChaseTest, CertainAnswersMatchPropositionTwoOne) {
  // cert(q, D, Σ) = q(chase(D, Σ)) with null filtering.
  TestEnv s(R"(
    r(X, Z) :- p(X).
    q2(Y) :- r(X, Y).
    p(a).
  )");
  ChaseResult result = RunChase(s.program, s.db);
  ConjunctiveQuery query;
  PredicateId q2 = s.program.symbols().FindPredicate("q2");
  query.output = {Term::Variable(0)};
  query.atoms = {Atom(q2, {Term::Variable(0)})};
  // q2 holds only for a null: no certain answers with constants.
  EXPECT_TRUE(EvaluateQuerySorted(query, result.instance).empty());
  // But the Boolean query "∃y q2(y)" is certainly true.
  ConjunctiveQuery boolean_query;
  boolean_query.atoms = query.atoms;
  EXPECT_EQ(EvaluateQuerySorted(boolean_query, result.instance).size(), 1u);
}

TEST(ChaseTest, EmptyProgramIsDatabase) {
  TestEnv s("e(a, b). e(b, c).");
  ChaseResult result = RunChase(s.program, s.db);
  EXPECT_TRUE(result.Saturated());
  EXPECT_EQ(result.instance.size(), 2u);
  EXPECT_EQ(result.steps_applied, 0u);
}

TEST(ChaseTest, DeepChainDepths) {
  TestEnv s(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- t(X, Y), e(Y, Z).
    e(a, b). e(b, c). e(c, d).
  )");
  ChaseOptions options;
  options.record_provenance = true;
  ChaseResult result = RunChase(s.program, s.db, options);
  uint32_t max_depth = 0;
  for (const ChaseDerivation& d : result.derivations) {
    max_depth = std::max(max_depth, d.depth);
  }
  EXPECT_EQ(max_depth, 3u);  // t(a,d) derived at depth 3
}

}  // namespace
}  // namespace vadalog
