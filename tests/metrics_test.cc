// Tests for the vdmetrics observability layer (src/obs/): instrument
// semantics, registry identity and snapshot determinism, the trace span
// plumbing through the request dispatcher, the slow-query log, and —
// the load-bearing property for the CI scrape comparison — EXACT
// counter totals under a 16-thread increment storm (run under TSan by
// the tsan ctest lane).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/json.h"
#include "server/session.h"

namespace vadalog {
namespace {

constexpr const char* kReachProgram =
    "t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z). "
    "e(a, b). e(b, c). ?(X) :- t(a, X).";

std::string LoadLine(const std::string& session) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::String("LOAD_PROGRAM"));
  request.Set("session", JsonValue::String(session));
  request.Set("program", JsonValue::String(kReachProgram));
  return request.Dump();
}

/// Finds one sample by name plus an optional single label constraint.
const obs::Sample* FindSample(const std::vector<obs::Sample>& samples,
                              const std::string& name,
                              const std::string& label_key = "",
                              const std::string& label_value = "") {
  for (const obs::Sample& sample : samples) {
    if (sample.name != name) continue;
    if (label_key.empty()) return &sample;
    for (const auto& [key, value] : sample.labels) {
      if (key == label_key && value == label_value) return &sample;
    }
  }
  return nullptr;
}

// --- instruments ---

TEST(MetricsTest, CounterAddsAndSums) {
  obs::Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

// The registry totals must be EXACT under concurrent increments — the
// CI scrape diffs them against client-side totals, so "close" is a
// failure. 16 threads (the daemon's worker scale) hammer one counter.
TEST(MetricsTest, CounterIsExactUnderConcurrentIncrements) {
  obs::Counter counter;
  constexpr int kThreads = 16;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MetricsTest, GaugeSetsAddsAndGoesNegative) {
  obs::Gauge gauge;
  gauge.Set(10);
  gauge.Add(-15);
  EXPECT_EQ(gauge.Value(), -5);
  gauge.Set(0);
  EXPECT_EQ(gauge.Value(), 0);
}

// Bucket i holds observations <= 2^i; the bounds are inclusive and the
// last bucket is +inf.
TEST(MetricsTest, HistogramBucketBoundariesAreInclusivePowersOfTwo) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(uint64_t{1} << 26),
            obs::kHistogramBuckets - 2);
  EXPECT_EQ(obs::Histogram::BucketIndex((uint64_t{1} << 26) + 1),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(~uint64_t{0}),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketBound(3), 8u);
}

TEST(MetricsTest, HistogramObserveTracksCountSumAndBuckets) {
  obs::Histogram histogram;
  histogram.Observe(1);
  histogram.Observe(2);
  histogram.Observe(1000);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 1003u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(obs::Histogram::BucketIndex(1000)), 1u);
}

// --- registry ---

TEST(MetricsTest, RegistryDedupesByNameAndLabels) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("c", {{"k", "1"}}, "help");
  obs::Counter* same = registry.GetCounter("c", {{"k", "1"}});
  obs::Counter* other = registry.GetCounter("c", {{"k", "2"}});
  EXPECT_EQ(a, same);
  EXPECT_NE(a, other);
  a->Add(5);
  other->Add(7);
  std::vector<obs::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 2u);
  // Sorted by (name, labels): k=1 before k=2.
  EXPECT_EQ(samples[0].value, 5);
  EXPECT_EQ(samples[1].value, 7);
  EXPECT_EQ(samples[0].help, "help");
}

TEST(MetricsTest, SnapshotRendersCumulativeHistogramBuckets) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("h", {}, "a histogram");
  histogram->Observe(1);
  histogram->Observe(1);
  histogram->Observe(3);
  std::vector<obs::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const obs::Sample& sample = samples[0];
  EXPECT_EQ(sample.type, obs::MetricType::kHistogram);
  ASSERT_EQ(sample.buckets.size(), obs::kHistogramBuckets);
  EXPECT_EQ(sample.buckets[0], 2u);  // <= 1
  EXPECT_EQ(sample.buckets[1], 2u);  // <= 2 (cumulative)
  EXPECT_EQ(sample.buckets[2], 3u);  // <= 4
  EXPECT_EQ(sample.buckets.back(), 3u);  // +inf == count
  EXPECT_EQ(sample.count, 3u);
  EXPECT_EQ(sample.sum, 5u);
}

TEST(MetricsTest, EngineCountersFlushNullSafely) {
  // A default EngineCounters (all null) must be a no-op sink — the
  // engines call RecordSearch unconditionally when options.metrics is
  // set, and partial wiring must not crash.
  obs::EngineCounters counters;
  counters.RecordSearch(10, 2, 3, 1, true);
  obs::MetricsRegistry registry;
  obs::EngineCounters wired =
      obs::MakeEngineCounters(&registry, {{"session", "s"}});
  wired.RecordSearch(10, 2, 3, 1, true);
  wired.RecordSearch(5, 0, 0, 0, false);
  std::vector<obs::Sample> samples = registry.Snapshot();
  const obs::Sample* searches =
      FindSample(samples, "vadalog_search_total");
  const obs::Sample* expanded =
      FindSample(samples, "vadalog_search_states_expanded_total");
  const obs::Sample* exhausted =
      FindSample(samples, "vadalog_search_budget_exhausted_total");
  ASSERT_NE(searches, nullptr);
  ASSERT_NE(expanded, nullptr);
  ASSERT_NE(exhausted, nullptr);
  EXPECT_EQ(searches->value, 2);
  EXPECT_EQ(expanded->value, 15);
  EXPECT_EQ(exhausted->value, 1);
}

// --- log level plumbing ---

TEST(MetricsTest, LogLevelNamesRoundTrip) {
  obs::LogLevel level;
  EXPECT_TRUE(obs::LogLevelFromName("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::LogLevelFromName("off", &level));
  EXPECT_FALSE(obs::LogLevelFromName("verbose", &level));
}

// --- dispatcher integration ---

// The decisive concurrency property: N threads driving the dispatcher
// concurrently must leave the registry totals EXACTLY equal to the sum
// of per-thread served counts. This is what lets CI diff a METRICS
// scrape against client-side totals with == instead of >=.
TEST(MetricsTest, RegistryTotalsExactlyMatchPerThreadCounts) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("storm")).GetBool("ok"));
  constexpr int kThreads = 16;
  constexpr int kPerThread = 25;
  std::atomic<uint64_t> client_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &client_total] {
      uint64_t ok = 0;
      for (int i = 0; i < kPerThread; ++i) {
        JsonValue response = registry.HandleLine(
            R"({"cmd":"QUERY","session":"storm","query_index":0})");
        if (response.GetBool("ok")) ++ok;
      }
      client_total.fetch_add(ok);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(client_total.load(), uint64_t{kThreads} * kPerThread);
  std::vector<obs::Sample> samples = registry.metrics()->Snapshot();
  const obs::Sample* queries = FindSample(
      samples, "vadalog_session_queries_total", "session", "storm");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(queries->value), client_total.load());
  // The dispatcher-level total counts the LOAD_PROGRAM too.
  const obs::Sample* requests =
      FindSample(samples, "vadalog_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(requests->value),
            client_total.load() + 1);
  const obs::Sample* latency =
      FindSample(samples, "vadalog_query_us", "session", "storm");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, client_total.load());
}

TEST(MetricsTest, TracedQueryCarriesEverySpan) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("traced")).GetBool("ok"));
  JsonValue response = registry.HandleLine(
      R"({"cmd":"QUERY","session":"traced","query_index":0,"trace":true})");
  ASSERT_TRUE(response.GetBool("ok")) << response.Dump();
  const JsonValue* trace = response.Find("trace");
  ASSERT_NE(trace, nullptr);
  for (const char* key : {"queue_wait_us", "parse_us", "lock_wait_us",
                          "search_us", "encode_us", "total_us"}) {
    const JsonValue* span = trace->Find(key);
    ASSERT_NE(span, nullptr) << key;
    EXPECT_TRUE(span->is_number()) << key;
  }
  // Untraced responses must not pay for the rendering.
  JsonValue plain = registry.HandleLine(
      R"({"cmd":"QUERY","session":"traced","query_index":0})");
  ASSERT_TRUE(plain.GetBool("ok"));
  EXPECT_EQ(plain.Find("trace"), nullptr);
}

TEST(MetricsTest, MetricsCommandDumpsRegistry) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("dump")).GetBool("ok"));
  registry.HandleLine(R"({"cmd":"QUERY","session":"dump","query_index":0})");
  JsonValue response = registry.HandleLine(R"({"cmd":"METRICS"})");
  ASSERT_TRUE(response.GetBool("ok")) << response.Dump();
  const JsonValue* metrics = response.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  bool saw_queries = false;
  for (const JsonValue& metric : metrics->Items()) {
    if (metric.GetString("name") != "vadalog_session_queries_total") {
      continue;
    }
    saw_queries = true;
    EXPECT_EQ(metric.GetString("type"), "counter");
    EXPECT_EQ(metric.GetUint("value"), 1u);
    const JsonValue* labels = metric.Find("labels");
    ASSERT_NE(labels, nullptr);
    EXPECT_EQ(labels->GetString("session"), "dump");
  }
  EXPECT_TRUE(saw_queries);
}

TEST(MetricsTest, SlowQueryLogFiresAtThreshold) {
  std::string path =
      testing::TempDir() + "/vadalog_slow_query_test.jsonl";
  std::remove(path.c_str());
  obs::SlowQueryLog slow_log;
  std::string error;
  ASSERT_TRUE(slow_log.Open(path, &error)) << error;
  SessionOptions options;
  options.slow_log = &slow_log;
  options.slow_query_micros = 1;  // everything is slow
  SessionRegistry registry{options};
  ASSERT_TRUE(registry.HandleLine(LoadLine("slow")).GetBool("ok"));
  ASSERT_TRUE(
      registry
          .HandleLine(R"({"cmd":"QUERY","session":"slow","query_index":0})")
          .GetBool("ok"));
  EXPECT_GE(slow_log.lines_written(), 1u);
  std::ifstream file(path);
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  std::optional<JsonValue> record = JsonValue::Parse(line, &error);
  ASSERT_TRUE(record.has_value()) << error;
  EXPECT_EQ(record->GetString("session"), "slow");
  EXPECT_EQ(record->GetString("cmd"), "QUERY");
  const JsonValue* spans = record->Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_NE(spans->Find("total_us"), nullptr);
  std::remove(path.c_str());
}

TEST(MetricsTest, RenderMetricsSnapshotShapesHistograms) {
  obs::MetricsRegistry registry;
  registry.GetHistogram("h_us", {}, "latency")->Observe(3);
  JsonValue rendered = RenderMetricsSnapshot(registry);
  ASSERT_TRUE(rendered.is_array());
  ASSERT_EQ(rendered.Items().size(), 1u);
  const JsonValue& metric = rendered.Items()[0];
  EXPECT_EQ(metric.GetString("type"), "histogram");
  const JsonValue* bounds = metric.Find("bounds");
  const JsonValue* buckets = metric.Find("buckets");
  ASSERT_NE(bounds, nullptr);
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(bounds->Items().size(), obs::kHistogramBuckets - 1);
  EXPECT_EQ(buckets->Items().size(), obs::kHistogramBuckets);
  EXPECT_EQ(metric.GetUint("count"), 1u);
  EXPECT_EQ(metric.GetUint("sum"), 3u);
}

}  // namespace
}  // namespace vadalog
