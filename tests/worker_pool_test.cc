// Tests for the persistent worker pool: fire-and-forget submission,
// fork-join ParallelInvoke with ticket revocation, the deadlock-freedom
// guarantee when every thread is busy, and the determinism of the
// parallel linear BFS now that it forks onto the pool.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "ast/parser.h"
#include "engine/linear_search.h"
#include "server/worker_pool.h"

namespace vadalog {
namespace {

TEST(WorkerPoolTest, SubmitRunsTasks) {
  WorkerPool pool(4);
  std::atomic<int> counter{0};
  std::mutex mutex;
  std::condition_variable cv;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return counter.load() == kTasks; });
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(WorkerPoolTest, ParallelInvokeCompletesAllWork) {
  WorkerPool pool(3);
  constexpr size_t kItems = 10000;
  std::vector<int> output(kItems, 0);
  std::atomic<size_t> next{0};
  pool.ParallelInvoke(3, [&] {
    size_t i;
    while ((i = next.fetch_add(1)) < kItems) output[i] = 1;
  });
  for (size_t i = 0; i < kItems; ++i) ASSERT_EQ(output[i], 1) << i;
}

TEST(WorkerPoolTest, ParallelInvokeSurvivesASaturatedPool) {
  // Occupy the single pool thread with a long task, then fork: every
  // helper must be revoked and the caller does all the work itself —
  // this must terminate (the old spawn/join design could not deadlock
  // here, so the pool must not regress that).
  WorkerPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  std::atomic<size_t> next{0};
  std::atomic<int> runs{0};
  pool.ParallelInvoke(8, [&] {
    ++runs;
    size_t i;
    while ((i = next.fetch_add(1)) < 1000) {
    }
  });
  EXPECT_GE(next.load(), 1000u);
  EXPECT_GE(runs.load(), 1);  // at least the caller ran
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_one();
}

TEST(WorkerPoolTest, NestedForkFromPoolThreadDoesNotDeadlock) {
  // A request handler running *on* the pool forks the parallel search
  // onto the same pool — the daemon's steady state. With one thread the
  // inner fork's helpers can never be scheduled; revocation must let the
  // inner caller finish alone.
  WorkerPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  size_t inner_total = 0;
  pool.Submit([&] {
    std::atomic<size_t> next{0};
    pool.ParallelInvoke(4, [&] {
      size_t i;
      while ((i = next.fetch_add(1)) < 500) {
      }
    });
    std::lock_guard<std::mutex> lock(mutex);
    inner_total = next.load();
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  EXPECT_GE(inner_total, 500u);
}

TEST(WorkerPoolTest, StatsCountForksAndRevocations) {
  WorkerPool pool(2);
  std::atomic<size_t> next{0};
  pool.ParallelInvoke(2, [&] {
    size_t i;
    while ((i = next.fetch_add(1)) < 64) {
    }
  });
  WorkerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.forks, 1u);
  EXPECT_EQ(stats.fork_helpers + stats.fork_revoked, 2u);
}

/// The parallel search must stay bit-identical across thread counts with
/// the pool plumbed in — the determinism contract the per-level
/// spawn/join version established (a completed refutation's counters
/// are scheduling-independent).
TEST(WorkerPoolTest, PooledSearchIsBitIdenticalAcrossThreadCounts) {
  ParseResult parsed = ParseProgram(R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    e(a, b).  e(b, c).  e(c, d).  e(d, e1).  e(e1, f).
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  Program program = std::move(*parsed.program);
  NormalizeToSingleHead(&program, nullptr);
  Instance db = DatabaseFromFacts(program.facts());
  ConjunctiveQuery query;
  query.output = {Term::Variable(0)};
  query.atoms = {Atom(program.symbols().FindPredicate("t"),
                      {program.symbols().InternConstant("f"),
                       Term::Variable(0)})};
  // t(f, X) has no answers: the search runs a full refutation for any
  // candidate, the regime where every counter must be deterministic.
  std::vector<Term> candidate = {program.symbols().InternConstant("a")};

  ProofSearchResult baseline;
  for (uint32_t threads : {1u, 2u, 4u}) {
    WorkerPool pool(threads);
    ProofSearchOptions options;
    options.num_threads = threads;
    options.pool = &pool;
    ProofSearchResult result =
        LinearProofSearch(program, db, query, candidate, options);
    EXPECT_FALSE(result.accepted);
    if (threads == 1) {
      baseline = result;
      continue;
    }
    EXPECT_EQ(result.states_expanded, baseline.states_expanded) << threads;
    EXPECT_EQ(result.states_visited, baseline.states_visited) << threads;
    EXPECT_EQ(result.resolution_edges, baseline.resolution_edges) << threads;
    EXPECT_EQ(result.drop_edges, baseline.drop_edges) << threads;
    EXPECT_EQ(result.subsumed_discarded, baseline.subsumed_discarded)
        << threads;
    EXPECT_EQ(result.states_retired, baseline.states_retired) << threads;
  }
}

}  // namespace
}  // namespace vadalog
