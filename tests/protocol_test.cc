// Golden tests for the vadalogd wire protocol: the JSON layer, request
// parsing with structured errors, and the SessionRegistry dispatcher
// driven exactly as the socket server drives it (HandleLine), without
// sockets — so the same paths run under ASan/TSan in ctest.

#include <gtest/gtest.h>

#include <string>

#include "server/json.h"
#include "server/protocol.h"
#include "server/session.h"

namespace vadalog {
namespace {

constexpr const char* kReachProgram =
    "t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z). "
    "e(a, b). e(b, c). ?(X) :- t(a, X).";

std::string LoadLine(const std::string& session,
                     const std::string& program = kReachProgram) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::String("LOAD_PROGRAM"));
  request.Set("session", JsonValue::String(session));
  request.Set("program", JsonValue::String(program));
  return request.Dump();
}

// --- JSON layer ---

TEST(JsonTest, ParsesAndDumpsRoundTrip) {
  std::string error;
  std::optional<JsonValue> value = JsonValue::Parse(
      R"({"a":[1,2.5,-3],"b":"x\ny","c":{"d":true,"e":null},"f":false})",
      &error);
  ASSERT_TRUE(value.has_value()) << error;
  std::string dumped = value->Dump();
  std::optional<JsonValue> again = JsonValue::Parse(dumped, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->Dump(), dumped);
  EXPECT_EQ(value->Find("a")->Items().size(), 3u);
  EXPECT_EQ(value->GetString("b"), "x\ny");
  EXPECT_TRUE(value->Find("c")->Find("d")->AsBool());
}

TEST(JsonTest, HandlesEscapesAndSurrogatePairs) {
  std::string error;
  std::optional<JsonValue> value =
      JsonValue::Parse(R"("é€😀\t")", &error);
  ASSERT_TRUE(value.has_value()) << error;
  EXPECT_EQ(value->AsString(), "\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80\t");
  // Dump must escape control characters so the line framing survives.
  EXPECT_EQ(JsonValue::String("a\nb\"c").Dump(), R"("a\nb\"c")");
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "\"bad \\q escape\"", "\"lone \\ud800 surrogate\"",
        "nan", "--1"}) {
    std::string error;
    EXPECT_FALSE(JsonValue::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, RejectsHostileNesting) {
  std::string bomb(1000, '[');
  bomb += std::string(1000, ']');
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(bomb, &error).has_value());
}

TEST(JsonTest, IntegralNumbersDumpWithoutFraction) {
  EXPECT_EQ(JsonValue::Number(uint64_t{42}).Dump(), "42");
  EXPECT_EQ(JsonValue::Number(0.5).Dump(), "0.5");
}

// --- request parsing ---

TEST(ProtocolTest, ParsesQueryRequestWithBudgets) {
  protocol::Error error;
  JsonValue id;
  std::optional<protocol::Request> request = protocol::ParseRequest(
      R"({"v":1,"id":7,"cmd":"QUERY","session":"s","query":"?(X) :- t(a, X).",)"
      R"("engine":"linear","max_states":100,"max_millis":50,"threads":2})",
      &error, &id);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->cmd, protocol::Command::kQuery);
  EXPECT_EQ(request->session, "s");
  EXPECT_EQ(request->engine, "linear");
  EXPECT_EQ(request->max_states, 100u);
  EXPECT_EQ(request->max_millis, 50u);
  EXPECT_EQ(request->threads, 2u);
  EXPECT_EQ(id.AsNumber(), 7.0);
}

// A present-but-malformed budget is a request error (EBADREQ), never a
// silent fall-back to "unlimited" — and never an undefined-behavior cast
// of a negative / huge / fractional double to an unsigned integer.
TEST(ProtocolTest, MalformedBudgetsAreRejectedNotDefaulted) {
  const char* kBad[] = {
      R"({"cmd":"QUERY","session":"s","query_index":0,"max_states":-1})",
      R"({"cmd":"QUERY","session":"s","query_index":0,"max_states":1e300})",
      R"({"cmd":"QUERY","session":"s","query_index":0,"max_states":2.5})",
      R"({"cmd":"QUERY","session":"s","query_index":0,"max_states":"50"})",
      R"({"cmd":"QUERY","session":"s","query_index":0,"max_millis":-3})",
      R"({"cmd":"QUERY","session":"s","query_index":0,"threads":-2})",
      R"({"cmd":"QUERY","session":"s","query_index":0,"threads":0.5})",
      R"({"cmd":"QUERY","session":"s","query_index":0,"threads":5e9})",
      R"({"cmd":"QUERY","session":"s","query_index":-1})",
      R"({"cmd":"QUERY","session":"s","query_index":1e300})",
      R"({"cmd":"QUERY","session":"s","query_index":0.5})",
  };
  for (const char* line : kBad) {
    protocol::Error error;
    JsonValue id;
    EXPECT_FALSE(protocol::ParseRequest(line, &error, &id).has_value())
        << line;
    EXPECT_EQ(error.code, "EBADREQ") << line;
  }
  // Valid and absent budgets still parse (absent = engine defaults).
  protocol::Error error;
  JsonValue id;
  std::optional<protocol::Request> ok = protocol::ParseRequest(
      R"({"cmd":"QUERY","session":"s","query_index":0,"max_states":9e15})",
      &error, &id);
  ASSERT_TRUE(ok.has_value()) << error.message;
  EXPECT_EQ(ok->max_states, 9000000000000000ull);
  std::optional<protocol::Request> absent = protocol::ParseRequest(
      R"({"cmd":"QUERY","session":"s","query_index":0})", &error, &id);
  ASSERT_TRUE(absent.has_value()) << error.message;
  EXPECT_EQ(absent->max_states, 0u);
  EXPECT_EQ(absent->max_millis, 0u);
  EXPECT_EQ(absent->threads, 0u);
}

TEST(ProtocolTest, StructuredErrorsCarryStableCodes) {
  struct Case {
    const char* line;
    const char* code;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"no json at all", "EPROTO"},
           {"[1,2,3]", "EPROTO"},
           {R"({"cmd":"QUERY"})", "EBADREQ"},          // missing session
           {R"({"cmd":"FROBNICATE","session":"s"})", "ECMD"},
           {R"({"v":0,"cmd":"PING"})", "EVERSION"},
           {R"({"v":3,"cmd":"PING"})", "EVERSION"},
           {R"({"cmd":"HELLO","max_version":0})", "EVERSION"},
           {R"({"cmd":"HELLO","max_version":"two"})", "EBADREQ"},
           {R"({"cmd":"HELLO","encodings":"binary"})", "EBADREQ"},
           {R"({"cmd":"LOAD_PROGRAM","session":"s"})", "EBADREQ"},
           {R"({"cmd":"QUERY","session":"s"})", "EBADREQ"},
           {R"({"cmd":"QUERY","session":"s","query_index":0,)"
            R"("engine":"warp"})",
            "EBADREQ"},
           {R"({"cmd":"EXPLAIN","session":"s","query_index":0})", "EBADREQ"},
       }) {
    protocol::Error error;
    JsonValue id;
    EXPECT_FALSE(protocol::ParseRequest(c.line, &error, &id).has_value())
        << c.line;
    EXPECT_EQ(error.code, c.code) << c.line;
    EXPECT_FALSE(error.message.empty());
  }
}

TEST(ProtocolTest, ErrorResponsesEchoTheRequestId) {
  SessionRegistry registry{SessionOptions{}};
  JsonValue response =
      registry.HandleLine(R"({"id":"abc","cmd":"QUERY","session":"gone",)"
                          R"("query_index":0})");
  EXPECT_FALSE(response.GetBool("ok"));
  EXPECT_EQ(response.GetString("id"), "abc");
  EXPECT_EQ(response.Find("error")->GetString("code"), "ENOSESSION");
}

// --- registry dispatch (golden flows) ---

TEST(ProtocolTest, MalformedJsonGetsEprotoResponse) {
  SessionRegistry registry{SessionOptions{}};
  JsonValue response = registry.HandleLine("{not json");
  EXPECT_FALSE(response.GetBool("ok"));
  EXPECT_EQ(response.Find("error")->GetString("code"), "EPROTO");
}

TEST(ProtocolTest, UnknownSessionIsStructured) {
  SessionRegistry registry{SessionOptions{}};
  JsonValue response = registry.HandleLine(
      R"({"cmd":"QUERY","session":"nope","query_index":0})");
  EXPECT_FALSE(response.GetBool("ok"));
  EXPECT_EQ(response.Find("error")->GetString("code"), "ENOSESSION");
}

TEST(ProtocolTest, LoadQueryUnloadLifecycle) {
  SessionRegistry registry{SessionOptions{}};
  JsonValue loaded = registry.HandleLine(LoadLine("s"));
  ASSERT_TRUE(loaded.GetBool("ok")) << loaded.Dump();
  EXPECT_EQ(loaded.GetUint("rules"), 2u);
  EXPECT_EQ(loaded.GetUint("facts"), 2u);
  EXPECT_TRUE(loaded.Find("classification")->GetBool("warded"));

  // Loading again without replace is EEXISTS; with replace it works.
  JsonValue dup = registry.HandleLine(LoadLine("s"));
  EXPECT_EQ(dup.Find("error")->GetString("code"), "EEXISTS");
  JsonValue replaced = registry.HandleLine(
      R"({"cmd":"LOAD_PROGRAM","session":"s","replace":true,"program":)" +
      JsonValue::String(kReachProgram).Dump() + "}");
  EXPECT_TRUE(replaced.GetBool("ok")) << replaced.Dump();

  JsonValue answer = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query_index":0})");
  ASSERT_TRUE(answer.GetBool("ok")) << answer.Dump();
  ASSERT_EQ(answer.Find("answers")->Items().size(), 2u);  // b, c
  EXPECT_TRUE(answer.GetBool("complete"));

  JsonValue unloaded =
      registry.HandleLine(R"({"cmd":"UNLOAD","session":"s"})");
  EXPECT_TRUE(unloaded.GetBool("ok"));
  EXPECT_EQ(registry.session_count(), 0u);
  JsonValue after = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query_index":0})");
  EXPECT_EQ(after.Find("error")->GetString("code"), "ENOSESSION");
}

TEST(ProtocolTest, InlineQueryTextAndAddFacts) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("s")).GetBool("ok"));

  JsonValue before = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query":"?(X) :- t(X, c)."})");
  ASSERT_TRUE(before.GetBool("ok")) << before.Dump();
  EXPECT_EQ(before.Find("answers")->Items().size(), 2u);  // a, b

  JsonValue added = registry.HandleLine(
      R"({"cmd":"ADD_FACTS","session":"s","facts":"e(c, d). e(x, c)."})");
  ASSERT_TRUE(added.GetBool("ok")) << added.Dump();
  EXPECT_EQ(added.GetUint("added"), 2u);

  JsonValue after = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query":"?(X) :- t(X, c)."})");
  ASSERT_TRUE(after.GetBool("ok")) << after.Dump();
  EXPECT_EQ(after.Find("answers")->Items().size(), 3u);  // a, b, x

  // Rules masquerading as facts are rejected atomically.
  JsonValue bad = registry.HandleLine(
      R"({"cmd":"ADD_FACTS","session":"s","facts":"t(X, Y) :- e(Y, X)."})");
  EXPECT_EQ(bad.Find("error")->GetString("code"), "EPARSE");
}

TEST(ProtocolTest, BudgetExhaustedQueryReportsIncomplete) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("s")).GetBool("ok"));
  JsonValue response = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query_index":0,"engine":"linear",)"
      R"("max_states":1})");
  ASSERT_TRUE(response.GetBool("ok")) << response.Dump();
  EXPECT_FALSE(response.GetBool("complete", true));
  EXPECT_GT(response.GetUint("budget_exhausted_candidates"), 0u);
}

TEST(ProtocolTest, ExplainReturnsAProofForCertainAnswersOnly) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("s")).GetBool("ok"));
  JsonValue proof = registry.HandleLine(
      R"({"cmd":"EXPLAIN","session":"s","query_index":0,"answer":["c"]})");
  ASSERT_TRUE(proof.GetBool("ok")) << proof.Dump();
  EXPECT_TRUE(proof.GetBool("certain"));
  EXPECT_NE(proof.GetString("proof"), "");

  JsonValue refuted = registry.HandleLine(
      R"({"cmd":"EXPLAIN","session":"s","query_index":0,"answer":["a"]})");
  ASSERT_TRUE(refuted.GetBool("ok")) << refuted.Dump();
  EXPECT_FALSE(refuted.GetBool("certain", true));

  JsonValue arity = registry.HandleLine(
      R"({"cmd":"EXPLAIN","session":"s","query_index":0,)"
      R"("answer":["a","b"]})");
  EXPECT_EQ(arity.Find("error")->GetString("code"), "EBADREQ");
}

TEST(ProtocolTest, UnsupportedFragmentIsEunsupportedNotEmpty) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry
                  .HandleLine(LoadLine(
                      "s",
                      "p(a). e(a, b). r(X, Z) :- p(X). "
                      "t(X) :- e(X, Y), not r(X, Y). ?(X) :- t(X)."))
                  .GetBool("ok"));
  JsonValue response = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query_index":0})");
  EXPECT_FALSE(response.GetBool("ok"));
  EXPECT_EQ(response.Find("error")->GetString("code"), "EUNSUPPORTED");

  // EXPLAIN must refuse too (the linear search ignores negative bodies
  // — running it would fabricate proofs the evaluator contradicts),
  // even for negation programs QUERY can serve via the Datalog path.
  JsonValue explain = registry.HandleLine(
      R"({"cmd":"EXPLAIN","session":"s","query_index":0,"answer":["a"]})");
  EXPECT_FALSE(explain.GetBool("ok"));
  EXPECT_EQ(explain.Find("error")->GetString("code"), "EUNSUPPORTED");

  SessionRegistry datalog_registry{SessionOptions{}};
  ASSERT_TRUE(datalog_registry
                  .HandleLine(LoadLine("d",
                                       "q(a). r(a). q(b). "
                                       "p(X) :- q(X), not r(X). "
                                       "?(X) :- p(X)."))
                  .GetBool("ok"));
  JsonValue answers = datalog_registry.HandleLine(
      R"({"cmd":"QUERY","session":"d","query_index":0})");
  ASSERT_TRUE(answers.GetBool("ok")) << answers.Dump();
  ASSERT_EQ(answers.Find("answers")->Items().size(), 1u);  // b only
  JsonValue no_proof = datalog_registry.HandleLine(
      R"({"cmd":"EXPLAIN","session":"d","query_index":0,"answer":["b"]})");
  EXPECT_FALSE(no_proof.GetBool("ok"));
  EXPECT_EQ(no_proof.Find("error")->GetString("code"), "EUNSUPPORTED");
}

TEST(ProtocolTest, WarmSessionCacheCarriesAcrossQueriesAndEvicts) {
  SessionOptions options;
  options.cache_byte_limit = 1;  // evict after every warm query
  SessionRegistry capped{options};
  ASSERT_TRUE(capped.HandleLine(LoadLine("s")).GetBool("ok"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        capped
            .HandleLine(R"({"cmd":"QUERY","session":"s","query_index":0,)"
                        R"("engine":"linear"})")
            .GetBool("ok"));
  }
  JsonValue stats =
      capped.HandleLine(R"({"cmd":"STATS","session":"s"})");
  ASSERT_TRUE(stats.GetBool("ok"));
  const JsonValue* session = stats.Find("session");
  EXPECT_EQ(session->GetUint("queries_served"), 3u);
  EXPECT_GE(session->GetUint("cache_evictions"), 2u);
  // Byte-cap evictions are not ADD_FACTS invalidations.
  EXPECT_EQ(session->GetUint("cache_invalidations"), 0u);

  SessionRegistry uncapped{SessionOptions{}};
  ASSERT_TRUE(uncapped.HandleLine(LoadLine("s")).GetBool("ok"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        uncapped
            .HandleLine(R"({"cmd":"QUERY","session":"s","query_index":0,)"
                        R"("engine":"linear"})")
            .GetBool("ok"));
  }
  stats = uncapped.HandleLine(R"({"cmd":"STATS","session":"s"})");
  session = stats.Find("session");
  EXPECT_EQ(session->GetUint("cache_evictions"), 0u);
  EXPECT_EQ(session->GetUint("cache_invalidations"), 0u);
  EXPECT_GT(session->GetUint("cache_bytes"), 0u);
  EXPECT_EQ(session->GetUint("queries_waited"), 0u);  // sequential callers
}

TEST(ProtocolTest, AddFactsFailureIsAllOrNothingIncludingSymbols) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("s")).GetBool("ok"));
  JsonValue stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  const JsonValue* session = stats.Find("session");
  uint64_t facts = session->GetUint("facts");
  uint64_t symbols = session->GetUint("symbols");
  JsonValue before = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query_index":0})");
  ASSERT_TRUE(before.GetBool("ok")) << before.Dump();
  std::string answers = before.Find("answers")->Dump();

  // Well-formed facts followed by a malformed last clause: the whole
  // batch is rejected — database, program, and the fresh names the good
  // prefix interned. Repeating the failure must not grow anything.
  for (int i = 0; i < 3; ++i) {
    JsonValue bad = registry.HandleLine(
        R"({"cmd":"ADD_FACTS","session":"s",)"
        R"("facts":"e(c, d). brandnew(n1, n2). e(oops"})");
    EXPECT_EQ(bad.Find("error")->GetString("code"), "EPARSE");
  }
  stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  session = stats.Find("session");
  EXPECT_EQ(session->GetUint("facts"), facts);
  EXPECT_EQ(session->GetUint("symbols"), symbols);
  EXPECT_EQ(session->GetUint("facts_added"), 0u);
  EXPECT_EQ(session->GetUint("cache_invalidations"), 0u);
  JsonValue after = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query_index":0})");
  ASSERT_TRUE(after.GetBool("ok")) << after.Dump();
  EXPECT_EQ(after.Find("answers")->Dump(), answers);
}

TEST(ProtocolTest, StatsTrackCacheBytesAcrossQueriesAndInvalidation) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("s")).GetBool("ok"));
  JsonValue stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  uint64_t cold = stats.Find("session")->GetUint("cache_bytes");

  ASSERT_TRUE(
      registry
          .HandleLine(R"({"cmd":"QUERY","session":"s","query_index":0,)"
                      R"("engine":"linear"})")
          .GetBool("ok"));
  stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  uint64_t warm = stats.Find("session")->GetUint("cache_bytes");
  EXPECT_GT(warm, cold);

  // e feeds t, so this delta's cone covers every recorded refutation:
  // the invalidation drops them all and the byte figure comes back down
  // (the interned-atom dictionary legitimately remains).
  JsonValue added = registry.HandleLine(
      R"({"cmd":"ADD_FACTS","session":"s","facts":"e(c, q1)."})");
  ASSERT_TRUE(added.GetBool("ok")) << added.Dump();
  EXPECT_EQ(added.GetUint("added"), 1u);
  EXPECT_EQ(added.GetUint("affected_predicates"), 2u);  // e and t
  EXPECT_GT(added.GetUint("cache_entries_invalidated"), 0u);
  stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  const JsonValue* session = stats.Find("session");
  EXPECT_LT(session->GetUint("cache_bytes"), warm);
  EXPECT_EQ(session->GetUint("cache_invalidations"), 1u);
  EXPECT_GT(session->GetUint("cache_invalidated_entries"), 0u);
  EXPECT_EQ(session->GetUint("cache_evictions"), 0u);

  // And the invalidated session answers against the grown graph.
  JsonValue after = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query_index":0,"engine":"linear"})");
  ASSERT_TRUE(after.GetBool("ok")) << after.Dump();
  EXPECT_EQ(after.Find("answers")->Items().size(), 3u);  // b, c, q1
}

TEST(ProtocolTest, ConeDisjointAddFactsInvalidatesNothing) {
  // tag feeds no rule: inserting into it must leave the warm cache
  // entirely intact, and a duplicate-only batch must not even count as
  // an invalidation.
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry
                  .HandleLine(LoadLine(
                      "s",
                      "t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z). "
                      "e(a, b). e(b, c). tag(a). ?(X) :- t(a, X)."))
                  .GetBool("ok"));
  ASSERT_TRUE(
      registry
          .HandleLine(R"({"cmd":"QUERY","session":"s","query_index":0,)"
                      R"("engine":"linear"})")
          .GetBool("ok"));
  JsonValue added = registry.HandleLine(
      R"({"cmd":"ADD_FACTS","session":"s","facts":"tag(b)."})");
  ASSERT_TRUE(added.GetBool("ok")) << added.Dump();
  EXPECT_EQ(added.GetUint("affected_predicates"), 1u);  // tag alone
  EXPECT_EQ(added.GetUint("cache_entries_invalidated"), 0u);

  JsonValue dup = registry.HandleLine(
      R"({"cmd":"ADD_FACTS","session":"s","facts":"tag(b)."})");
  ASSERT_TRUE(dup.GetBool("ok")) << dup.Dump();
  EXPECT_EQ(dup.GetUint("added"), 0u);
  EXPECT_EQ(dup.GetUint("affected_predicates"), 0u);

  JsonValue stats = registry.HandleLine(R"({"cmd":"STATS","session":"s"})");
  const JsonValue* session = stats.Find("session");
  EXPECT_EQ(session->GetUint("cache_invalidations"), 1u);
  EXPECT_EQ(session->GetUint("cache_invalidated_entries"), 0u);
  JsonValue after = registry.HandleLine(
      R"({"cmd":"QUERY","session":"s","query_index":0,"engine":"linear"})");
  ASSERT_TRUE(after.GetBool("ok")) << after.Dump();
  EXPECT_EQ(after.Find("answers")->Items().size(), 2u);  // b, c
}

// --- wire-API v2: HELLO negotiation and the binary answer frame ---

protocol::Response Hello(const std::string& line, protocol::WireState* state,
                         const std::vector<protocol::Encoding>& allowed = {
                             protocol::Encoding::kJson,
                             protocol::Encoding::kBinary}) {
  protocol::Error error;
  JsonValue id;
  std::optional<protocol::Request> request =
      protocol::ParseRequest(line, &error, &id);
  EXPECT_TRUE(request.has_value()) << line << ": " << error.message;
  return protocol::NegotiateHello(*request, allowed, state);
}

TEST(ProtocolTest, BothWireVersionsAreAccepted) {
  for (const char* line :
       {R"({"v":1,"cmd":"PING"})", R"({"v":2,"cmd":"PING"})"}) {
    protocol::Error error;
    JsonValue id;
    EXPECT_TRUE(protocol::ParseRequest(line, &error, &id).has_value())
        << line << ": " << error.message;
  }
}

TEST(ProtocolTest, HelloNegotiatesVersionAndEncoding) {
  // Full v2 + binary handshake.
  protocol::WireState state;
  protocol::Response response = Hello(
      R"({"cmd":"HELLO","max_version":2,"encodings":["binary","json"]})",
      &state);
  EXPECT_TRUE(response.body.GetBool("ok"));
  EXPECT_EQ(response.body.GetUint("version"), 2u);
  EXPECT_EQ(response.body.GetUint("max_version"), 2u);
  EXPECT_EQ(response.body.GetString("encoding"), "binary");
  EXPECT_EQ(state.version, 2);
  EXPECT_EQ(state.encoding, protocol::Encoding::kBinary);

  // Unknown encoding names are skipped, not errors: the first name the
  // server knows wins.
  state = protocol::WireState{};
  response = Hello(
      R"({"cmd":"HELLO","max_version":2,"encodings":["zstd","json"]})",
      &state);
  EXPECT_EQ(response.body.GetString("encoding"), "json");
  EXPECT_EQ(state.encoding, protocol::Encoding::kJson);

  // No usable intersection falls back to JSON.
  state = protocol::WireState{};
  response = Hello(
      R"({"cmd":"HELLO","max_version":2,"encodings":["zstd"]})", &state);
  EXPECT_EQ(state.encoding, protocol::Encoding::kJson);

  // A client future-proofed beyond the server clamps down to the
  // server's maximum rather than failing.
  state = protocol::WireState{};
  response = Hello(R"({"cmd":"HELLO","max_version":99})", &state);
  EXPECT_EQ(response.body.GetUint("version"),
            static_cast<uint64_t>(protocol::kMaxVersion));
}

TEST(ProtocolTest, BinaryEncodingNeedsVersionTwo) {
  // A v1-pinned client keeps the v1 contract: binary is refused even
  // when explicitly preferred and allowed.
  protocol::WireState state;
  protocol::Response response = Hello(
      R"({"cmd":"HELLO","max_version":1,"encodings":["binary"]})", &state);
  EXPECT_EQ(state.version, 1);
  EXPECT_EQ(response.body.GetString("encoding"), "json");
  EXPECT_EQ(state.encoding, protocol::Encoding::kJson);
}

TEST(ProtocolTest, HelloHonorsServerAllowlist) {
  // encodings=json in the server config keeps every connection on JSON
  // no matter what clients prefer; the offer list tells them so.
  protocol::WireState state;
  protocol::Response response = Hello(
      R"({"cmd":"HELLO","max_version":2,"encodings":["binary","json"]})",
      &state, {protocol::Encoding::kJson});
  EXPECT_EQ(state.encoding, protocol::Encoding::kJson);
  const JsonValue* offered = response.body.Find("encodings");
  ASSERT_NE(offered, nullptr);
  ASSERT_EQ(offered->Items().size(), 1u);
  EXPECT_EQ(offered->Items()[0].AsString(), "json");
}

TEST(ProtocolTest, HelloWorksThroughTheRegistryDispatcher) {
  SessionRegistry registry{SessionOptions{}};
  JsonValue response = registry.HandleLine(
      R"({"cmd":"HELLO","id":9,"max_version":2,"encodings":["binary"]})");
  EXPECT_TRUE(response.GetBool("ok")) << response.Dump();
  EXPECT_EQ(response.GetUint("version"), 2u);
  EXPECT_EQ(response.GetUint("id"), 9u);
}

TEST(ProtocolTest, AnswerFrameRoundTripsExactly) {
  protocol::AnswerTable table;
  table.columns = 2;
  table.row_count = 3;
  table.cells = {"a", "bb", "", "d\"\n\x01", "λ→", "f"};
  std::string payload = protocol::EncodeAnswerFrame(table);
  protocol::AnswerTable decoded;
  std::string error;
  ASSERT_TRUE(protocol::DecodeAnswerFrame(payload, &decoded, &error))
      << error;
  EXPECT_EQ(decoded, table);
}

TEST(ProtocolTest, AnswerFrameKeepsBooleanCertaintyDistinct) {
  // Zero columns, one row ("certain") and zero rows ("not certain") are
  // different answers; the frame must not quotient them away.
  protocol::AnswerTable certain;
  certain.columns = 0;
  certain.row_count = 1;
  protocol::AnswerTable refuted;
  refuted.columns = 0;
  refuted.row_count = 0;
  std::string certain_payload = protocol::EncodeAnswerFrame(certain);
  std::string refuted_payload = protocol::EncodeAnswerFrame(refuted);
  EXPECT_NE(certain_payload, refuted_payload);
  protocol::AnswerTable decoded;
  std::string error;
  ASSERT_TRUE(
      protocol::DecodeAnswerFrame(certain_payload, &decoded, &error));
  EXPECT_EQ(decoded.rows(), 1u);
  ASSERT_TRUE(
      protocol::DecodeAnswerFrame(refuted_payload, &decoded, &error));
  EXPECT_EQ(decoded.rows(), 0u);
}

TEST(ProtocolTest, AnswerFrameRejectsMalformedPayloads) {
  protocol::AnswerTable table;
  table.columns = 1;
  table.row_count = 2;
  table.cells = {"xy", "z"};
  std::string good = protocol::EncodeAnswerFrame(table);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  std::string truncated = good.substr(0, good.size() - 1);
  std::string trailing = good + "!";
  std::string short_header = good.substr(0, 11);
  // rows=0xffffffff, cols=1 in a 12-byte frame: the plausibility bound
  // must refuse before allocating anything rows-sized.
  std::string hostile("VDF2\xff\xff\xff\xff\x01\x00\x00\x00", 12);

  for (const std::string& bad :
       {bad_magic, truncated, trailing, short_header, hostile,
        std::string()}) {
    protocol::AnswerTable decoded;
    std::string error;
    EXPECT_FALSE(protocol::DecodeAnswerFrame(bad, &decoded, &error));
    EXPECT_FALSE(error.empty());
  }
}

TEST(ProtocolTest, EncodeResponseFramesAnswersPerEncoding) {
  protocol::Response response = protocol::OkResponse(JsonValue());
  protocol::AnswerTable table;
  table.columns = 1;
  table.row_count = 2;
  table.cells = {"b", "c"};
  response.answers = table;

  // JSON: one line, rows inlined.
  std::string json_wire =
      protocol::EncodeResponse(response, protocol::Encoding::kJson);
  ASSERT_EQ(json_wire.back(), '\n');
  std::string parse_error;
  std::optional<JsonValue> json_head = JsonValue::Parse(
      std::string_view(json_wire).substr(0, json_wire.size() - 1),
      &parse_error);
  ASSERT_TRUE(json_head.has_value()) << parse_error;
  EXPECT_EQ(json_head->Find("answers")->Items().size(), 2u);
  EXPECT_EQ(json_head->Find("answers_frame"), nullptr);

  // Binary: a head line announcing the frame, then the exact payload.
  std::string wire =
      protocol::EncodeResponse(response, protocol::Encoding::kBinary);
  size_t newline = wire.find('\n');
  ASSERT_NE(newline, std::string::npos);
  std::optional<JsonValue> head = JsonValue::Parse(
      std::string_view(wire).substr(0, newline), &parse_error);
  ASSERT_TRUE(head.has_value()) << parse_error;
  EXPECT_EQ(head->Find("answers"), nullptr);
  const JsonValue* descriptor = head->Find("answers_frame");
  ASSERT_NE(descriptor, nullptr);
  EXPECT_EQ(descriptor->GetUint("rows"), 2u);
  EXPECT_EQ(descriptor->GetUint("cols"), 1u);
  std::string_view payload = std::string_view(wire).substr(newline + 1);
  EXPECT_EQ(descriptor->GetUint("bytes"), payload.size());
  protocol::AnswerTable decoded;
  std::string decode_error;
  ASSERT_TRUE(protocol::DecodeAnswerFrame(payload, &decoded, &decode_error))
      << decode_error;
  EXPECT_EQ(decoded, table);

  // Responses without a table stay pure JSON lines on every encoding.
  protocol::Response plain = protocol::OkResponse(JsonValue());
  std::string control =
      protocol::EncodeResponse(plain, protocol::Encoding::kBinary);
  EXPECT_EQ(control.find('\n'), control.size() - 1);
}

// --- ANALYZE: source-located lint diagnostics over the wire ---

TEST(ProtocolTest, AnalyzeReportsDiagnosticsAndClassification) {
  SessionRegistry registry{SessionOptions{}};
  // Line 2 yields two warnings in document order: filing/2 is write-only
  // (V301, anchored at the rule head) and X is a body singleton (V201,
  // anchored at the t(X, Y) atom). The existential W keeps the program
  // outside plain Datalog without costing wardedness.
  ASSERT_TRUE(registry
                  .HandleLine(LoadLine("s",
                                       "t(X, Y) :- e(X, Y).\n"
                                       "filing(Y, W) :- t(X, Y).\n"
                                       "e(a, b).\n"
                                       "?(X) :- t(a, X).\n"))
                  .GetBool("ok"));
  JsonValue response =
      registry.HandleLine(R"({"id":7,"cmd":"ANALYZE","session":"s"})");
  ASSERT_TRUE(response.GetBool("ok")) << response.Dump();
  EXPECT_EQ(response.GetUint("errors"), 0u);
  EXPECT_EQ(response.GetUint("warnings"), 2u);
  EXPECT_EQ(response.GetUint("notes"), 0u);
  const JsonValue* diagnostics = response.Find("diagnostics");
  ASSERT_NE(diagnostics, nullptr);
  ASSERT_EQ(diagnostics->Items().size(), 2u);
  const JsonValue& unused = diagnostics->Items()[0];
  EXPECT_EQ(unused.GetString("id"), "V301");
  EXPECT_EQ(unused.GetUint("line"), 2u);
  EXPECT_EQ(unused.GetUint("column"), 1u);
  const JsonValue& d = diagnostics->Items()[1];
  EXPECT_EQ(d.GetString("id"), "V201");
  EXPECT_EQ(d.GetString("severity"), "warning");
  EXPECT_EQ(d.GetUint("line"), 2u);
  EXPECT_EQ(d.GetUint("column"), 17u);
  ASSERT_NE(d.Find("witness"), nullptr);
  const JsonValue* classification = response.Find("classification");
  ASSERT_NE(classification, nullptr);
  EXPECT_TRUE(classification->GetBool("warded"));
  EXPECT_TRUE(classification->GetBool("piecewise_linear"));
  EXPECT_FALSE(classification->GetBool("datalog"));
  EXPECT_FALSE(classification->GetBool("uses_negation"));
  EXPECT_FALSE(classification->GetString("recursion_bucket").empty());

  // A clean program analyzes to an empty diagnostics array, not an error.
  ASSERT_TRUE(registry.HandleLine(LoadLine("clean")).GetBool("ok"));
  JsonValue clean =
      registry.HandleLine(R"({"cmd":"ANALYZE","session":"clean"})");
  ASSERT_TRUE(clean.GetBool("ok")) << clean.Dump();
  EXPECT_EQ(clean.Find("diagnostics")->Items().size(), 0u);
  EXPECT_EQ(clean.GetUint("errors"), 0u);
}

TEST(ProtocolTest, AnalyzeRequiresAKnownSession) {
  SessionRegistry registry{SessionOptions{}};
  JsonValue missing =
      registry.HandleLine(R"({"cmd":"ANALYZE","session":"gone"})");
  EXPECT_FALSE(missing.GetBool("ok"));
  EXPECT_EQ(missing.Find("error")->GetString("code"), "ENOSESSION");
  JsonValue no_session = registry.HandleLine(R"({"cmd":"ANALYZE"})");
  EXPECT_FALSE(no_session.GetBool("ok"));
}

TEST(ProtocolTest, AnalyzeRendersIdenticallyUnderBothEncodings) {
  // ANALYZE is a pure control-plane response (no answer table), so the
  // v2 binary encoding must produce the same single JSON line as v1.
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("s")).GetBool("ok"));
  protocol::Error error;
  JsonValue id;
  std::optional<protocol::Request> request = protocol::ParseRequest(
      R"({"v":2,"cmd":"ANALYZE","session":"s"})", &error, &id);
  ASSERT_TRUE(request.has_value()) << error.message;
  protocol::Response response = registry.Handle(*request);
  EXPECT_FALSE(response.answers.has_value());
  std::string json =
      protocol::EncodeResponse(response, protocol::Encoding::kJson);
  std::string binary =
      protocol::EncodeResponse(response, protocol::Encoding::kBinary);
  EXPECT_EQ(json, binary);
  EXPECT_EQ(json.find('\n'), json.size() - 1);
  std::string parse_error;
  std::optional<JsonValue> head = JsonValue::Parse(
      std::string_view(json).substr(0, json.size() - 1), &parse_error);
  ASSERT_TRUE(head.has_value()) << parse_error;
  EXPECT_TRUE(head->GetBool("ok"));
  EXPECT_NE(head->Find("diagnostics"), nullptr);
}

TEST(ProtocolTest, StatsAndPing) {
  SessionRegistry registry{SessionOptions{}};
  JsonValue pong = registry.HandleLine(R"({"cmd":"PING"})");
  EXPECT_TRUE(pong.GetBool("ok"));
  EXPECT_TRUE(pong.GetBool("pong"));
  ASSERT_TRUE(registry.HandleLine(LoadLine("s1")).GetBool("ok"));
  ASSERT_TRUE(registry.HandleLine(LoadLine("s2")).GetBool("ok"));
  JsonValue stats = registry.HandleLine(R"({"cmd":"STATS"})");
  ASSERT_TRUE(stats.GetBool("ok"));
  EXPECT_EQ(stats.Find("server")->GetUint("sessions"), 2u);
  EXPECT_EQ(stats.Find("sessions")->Items().size(), 2u);
  // STATS reports process uptime and the negotiated-encoding tallies.
  const JsonValue* server = stats.Find("server");
  EXPECT_NE(server->Find("uptime_ms"), nullptr);
  const JsonValue* negotiated = server->Find("encoding_negotiated");
  ASSERT_NE(negotiated, nullptr);
  EXPECT_EQ(negotiated->GetUint("json"), 0u);
  EXPECT_EQ(negotiated->GetUint("binary"), 0u);
}

// --- METRICS and per-request tracing ---

TEST(ProtocolTest, ParsesMetricsCommand) {
  protocol::Error error;
  JsonValue id;
  std::optional<protocol::Request> request =
      protocol::ParseRequest(R"({"cmd":"METRICS"})", &error, &id);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->cmd, protocol::Command::kMetrics);
  EXPECT_EQ(protocol::CommandName(request->cmd), std::string("METRICS"));
}

TEST(ProtocolTest, TraceFlagParsesStrictly) {
  protocol::Error error;
  JsonValue id;
  std::optional<protocol::Request> request = protocol::ParseRequest(
      R"({"cmd":"QUERY","session":"s","query_index":0,"trace":true})",
      &error, &id);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_TRUE(request->trace);
  request = protocol::ParseRequest(
      R"({"cmd":"QUERY","session":"s","query_index":0})", &error, &id);
  ASSERT_TRUE(request.has_value());
  EXPECT_FALSE(request->trace);
  // A non-boolean trace is a request error, not a silent default.
  EXPECT_FALSE(
      protocol::ParseRequest(
          R"({"cmd":"QUERY","session":"s","query_index":0,"trace":1})",
          &error, &id)
          .has_value());
  EXPECT_EQ(error.code, "EBADREQ");
}

TEST(ProtocolTest, TracedQueryCarriesIdenticalSpansUnderBothEncodings) {
  // The trace rides in the response BODY, so the v1 inline head and the
  // v2 frame-announcing head must carry byte-identical span objects.
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("s")).GetBool("ok"));
  protocol::Error error;
  JsonValue id;
  std::optional<protocol::Request> request = protocol::ParseRequest(
      R"({"v":2,"cmd":"QUERY","session":"s","query_index":0,"trace":true})",
      &error, &id);
  ASSERT_TRUE(request.has_value()) << error.message;
  protocol::Response response = registry.Handle(*request);
  ASSERT_TRUE(response.answers.has_value());
  std::string json =
      protocol::EncodeResponse(response, protocol::Encoding::kJson);
  std::string binary =
      protocol::EncodeResponse(response, protocol::Encoding::kBinary);
  std::string parse_error;
  std::optional<JsonValue> json_head = JsonValue::Parse(
      std::string_view(json).substr(0, json.find('\n')), &parse_error);
  ASSERT_TRUE(json_head.has_value()) << parse_error;
  std::optional<JsonValue> binary_head = JsonValue::Parse(
      std::string_view(binary).substr(0, binary.find('\n')), &parse_error);
  ASSERT_TRUE(binary_head.has_value()) << parse_error;
  const JsonValue* json_trace = json_head->Find("trace");
  const JsonValue* binary_trace = binary_head->Find("trace");
  ASSERT_NE(json_trace, nullptr);
  ASSERT_NE(binary_trace, nullptr);
  EXPECT_EQ(json_trace->Dump(), binary_trace->Dump());
  for (const char* key : {"queue_wait_us", "parse_us", "lock_wait_us",
                          "search_us", "encode_us", "total_us"}) {
    EXPECT_NE(json_trace->Find(key), nullptr) << key;
  }
}

TEST(ProtocolTest, MetricsCommandRendersIdenticallyUnderBothEncodings) {
  SessionRegistry registry{SessionOptions{}};
  ASSERT_TRUE(registry.HandleLine(LoadLine("s")).GetBool("ok"));
  protocol::Error error;
  JsonValue id;
  std::optional<protocol::Request> request =
      protocol::ParseRequest(R"({"v":2,"cmd":"METRICS"})", &error, &id);
  ASSERT_TRUE(request.has_value()) << error.message;
  protocol::Response response = registry.Handle(*request);
  EXPECT_FALSE(response.answers.has_value());
  std::string json =
      protocol::EncodeResponse(response, protocol::Encoding::kJson);
  std::string binary =
      protocol::EncodeResponse(response, protocol::Encoding::kBinary);
  EXPECT_EQ(json, binary);
  std::string parse_error;
  std::optional<JsonValue> head = JsonValue::Parse(
      std::string_view(json).substr(0, json.size() - 1), &parse_error);
  ASSERT_TRUE(head.has_value()) << parse_error;
  EXPECT_TRUE(head->GetBool("ok"));
  ASSERT_NE(head->Find("metrics"), nullptr);
  EXPECT_TRUE(head->Find("metrics")->is_array());
}

}  // namespace
}  // namespace vadalog
