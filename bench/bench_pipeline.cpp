// Supplement to E10/E11 (Section 7 (2),(3)): the operator-network
// executor vs the semi-naive evaluator, and the effect of the two plan
// knobs. The architecture of Section 7 is a streaming network of operator
// nodes; this bench confirms the executable model reaches the same
// fixpoints at comparable cost and shows the plan it builds.

#include "ast/parser.h"
#include "bench_util.h"
#include "datalog/seminaive.h"
#include "gen/generators.h"
#include "pipeline/executor.h"
#include "storage/homomorphism.h"

using namespace vadalog;
using namespace vadalog::bench;

int main() {
  Banner("E10/E11 supplement / Section 7 architecture",
         "streaming operator network vs semi-naive evaluation: same "
         "fixpoint, comparable cost; plan knobs shown");

  Row("%8s | %10s %10s | %10s %10s | %6s", "nodes", "semi-ms", "atoms",
      "pipe-ms", "atoms", "same");
  for (uint32_t nodes : {50u, 100u, 200u, 400u}) {
    Program program = MakeTransitiveClosureProgram(/*linear=*/true);
    Rng rng(nodes * 13);
    AddRandomGraphFacts(&program, "e", nodes, nodes * 2, &rng);
    Instance db = DatabaseFromFacts(program.facts());

    Timer semi_timer;
    DatalogResult semi = EvaluateDatalog(program, db);
    double semi_ms = semi_timer.Ms();

    Timer pipe_timer;
    PipelineResult pipe = ExecutePipeline(program, db);
    double pipe_ms = pipe_timer.Ms();

    Row("%8u | %10.2f %10zu | %10.2f %10zu | %6s", nodes, semi_ms,
        semi.instance.size(), pipe_ms, pipe.instance.size(),
        semi.instance.size() == pipe.instance.size() ? "yes" : "NO");
  }

  // Show the constructed plan of the recursive rule (the Section 7 (2)
  // bias: the delta scan anchors the mutually recursive operand).
  Program program = MakeTransitiveClosureProgram(/*linear=*/true);
  AddChainGraphFacts(&program, "e", 4);
  Instance db = DatabaseFromFacts(program.facts());
  PipelineResult result = ExecutePipeline(program, db);
  Row("%s", "");
  Row("%s", "recursive rule plan (delta round):");
  Row("%s", result.sample_plan.c_str());

  // Materialization-node ablation on the same workload.
  Row("%8s | %12s | %12s", "nodes", "stream-ms", "materialize-ms");
  for (uint32_t nodes : {100u, 200u}) {
    Program p2 = MakeTransitiveClosureProgram(/*linear=*/true);
    Rng rng(nodes * 29);
    AddRandomGraphFacts(&p2, "e", nodes, nodes * 2, &rng);
    Instance db2 = DatabaseFromFacts(p2.facts());
    Timer stream_timer;
    ExecutePipeline(p2, db2);
    double stream_ms = stream_timer.Ms();
    PipelineOptions mat;
    mat.materialize_rule_outputs = true;
    Timer mat_timer;
    ExecutePipeline(p2, db2, mat);
    Row("%8u | %12.2f | %12.2f", nodes, stream_ms, mat_timer.Ms());
  }
  return 0;
}
