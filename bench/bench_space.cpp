// Experiment E1 (Theorem 4.2, data complexity): the space-efficient core.
//
// CQAns(WARD ∩ PWL) is NLogSpace in data complexity. The decision
// algorithm keeps one CQ of bounded node-width whose constants index into
// dom(D) — a work tape of O(width · log |D|) bits — whereas the chase
// materializes Θ(|D|) atoms before answering. We sweep the database size
// on a reachability workload and report:
//   * search peak state bytes  — the single-CQ work tape (NL analog):
//     should stay flat (grows only with log |D| via constant ids);
//   * search visited bytes     — the cost of determinizing NL into PTime;
//   * chase instance bytes     — Θ(|D|) materialization.
// Expected shape: chase bytes grow linearly; peak state bytes are ~flat;
// the proof search wins by an ever-growing factor.

#include <cstdint>

#include "ast/parser.h"
#include "bench_util.h"
#include "chase/chase.h"
#include "engine/linear_search.h"
#include "gen/generators.h"
#include "storage/instance.h"

using namespace vadalog;
using namespace vadalog::bench;

namespace {

void SweepChain() {
  Row("%s", "-- chain graph, decision query: reach(v0, v_last)?");
  Row("%10s %14s %14s %14s %10s", "|D|", "state-peak", "visited",
      "chase-bytes", "factor");
  for (uint32_t nodes : {64u, 128u, 256u, 512u, 1024u}) {
    Program program = MakeTransitiveClosureProgram(true);
    AddChainGraphFacts(&program, "e", nodes);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());

    // Decision: is the last node reachable from the first?
    ConjunctiveQuery query;
    PredicateId t = program.symbols().FindPredicate("t");
    Term v0 = program.symbols().InternConstant("v0");
    query.output = {Term::Variable(0)};
    query.atoms = {Atom(t, {v0, Term::Variable(0)})};
    Term target = program.symbols().InternConstant(
        "v" + std::to_string(nodes - 1));

    ProofSearchResult search =
        LinearProofSearch(program, db, query, {target});
    ChaseResult chase = RunChase(program, db);
    size_t chase_bytes = chase.instance.ApproximateBytes();
    double factor = search.peak_state_bytes == 0
                        ? 0.0
                        : static_cast<double>(chase_bytes) /
                              static_cast<double>(search.peak_state_bytes);
    Row("%10u %14s %14s %14s %9.0fx", nodes - 1,
        HumanBytes(search.peak_state_bytes).c_str(),
        HumanBytes(search.visited_bytes).c_str(),
        HumanBytes(chase_bytes).c_str(), factor);
    if (!search.accepted) Row("  !! search failed to accept");
  }
}

void SweepRandom() {
  Row("%s", "");
  Row("%s", "-- random graph (avg degree 2), decision query");
  Row("%10s %14s %14s %14s %10s", "|D|", "state-peak", "visited",
      "chase-bytes", "factor");
  for (uint32_t nodes : {100u, 200u, 400u, 600u}) {
    Program program = MakeTransitiveClosureProgram(true);
    Rng rng(nodes);
    AddRandomGraphFacts(&program, "e", nodes, nodes * 2, &rng);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());

    ConjunctiveQuery query;
    PredicateId t = program.symbols().FindPredicate("t");
    Term v0 = program.symbols().InternConstant("v0");
    query.output = {Term::Variable(0)};
    query.atoms = {Atom(t, {v0, Term::Variable(0)})};
    Term target = program.symbols().InternConstant("v1");

    ProofSearchResult search =
        LinearProofSearch(program, db, query, {target});
    ChaseResult chase = RunChase(program, db);
    size_t chase_bytes = chase.instance.ApproximateBytes();
    double factor = search.peak_state_bytes == 0
                        ? 0.0
                        : static_cast<double>(chase_bytes) /
                              static_cast<double>(search.peak_state_bytes);
    Row("%10u %14s %14s %14s %9.0fx", nodes * 2,
        HumanBytes(search.peak_state_bytes).c_str(),
        HumanBytes(search.visited_bytes).c_str(),
        HumanBytes(chase_bytes).c_str(), factor);
  }
}

}  // namespace

int main() {
  Banner("E1 / Theorem 4.2 (data complexity)",
         "WARD∩PWL decision via linear proof search is space-efficient: "
         "per-state memory ~O(log |D|) vs Θ(|D|) chase materialization");
  SweepChain();
  SweepRandom();
  return 0;
}
