// Experiment E2 (Theorem 4.2, combined complexity): PSpace for WARD ∩ PWL
// vs ExpTime for general WARD. The resource the theorems bound is *space*:
// the PSpace algorithm keeps one polynomial-size CQ, the ExpTime one
// explores alternating trees over the same bounded states. We sweep the
// program size (strata of a recursion hierarchy) with a fixed database and
// an unsatisfiable goal (forcing exhaustive search on both sides), and
// report the node-width bound, the peak single-state bytes (the work
// tape), the number of distinct states (time-side cost), and wall time:
//   * PWL hierarchy + linear search — work tape grows polynomially;
//   * non-PWL hierarchy + alternating search — state growth is markedly
//     steeper (the ExpTime shape).

#include <cstdint>
#include <string>

#include "ast/parser.h"
#include "bench_util.h"
#include "engine/alternating_search.h"
#include "engine/linear_search.h"
#include "storage/instance.h"

using namespace vadalog;
using namespace vadalog::bench;

namespace {

Program MakeHierarchy(uint32_t depth, bool piecewise) {
  std::string text = R"(
    p0(X, Y) :- e(X, Y).
    p0(X, Z) :- e(X, Y), p0(Y, Z).
  )";
  for (uint32_t i = 1; i < depth; ++i) {
    std::string p = "p" + std::to_string(i);
    std::string q = "p" + std::to_string(i - 1);
    text += p + "(X, Y) :- " + q + "(X, Y).\n";
    if (piecewise) {
      text += p + "(X, Z) :- " + p + "(X, Y), " + q + "(Y, Z).\n";
    } else {
      text += p + "(X, Z) :- " + p + "(X, Y), " + p + "(Y, Z).\n";
    }
  }
  ParseResult parsed = ParseProgram(text);
  return std::move(*parsed.program);
}

void AddChain(Program* program, int length) {
  std::string facts;
  for (int i = 0; i < length; ++i) {
    facts += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").\n";
  }
  ParseInto(facts, program);
}

}  // namespace

int main() {
  Banner("E2 / Theorem 4.2 (combined complexity)",
         "program-size sweep, unsatisfiable goal: PSpace-shaped linear "
         "search (polynomial work tape) vs ExpTime-shaped alternating "
         "search on the non-PWL variant");

  Row("%s", "-- WARD ∩ PWL hierarchy, linear proof search");
  Row("%8s %6s %8s %12s %12s %10s", "strata", "rules", "width",
      "state-peak", "states", "ms");
  for (uint32_t depth : {1u, 2u, 3u, 4u, 5u}) {
    Program program = MakeHierarchy(depth, /*piecewise=*/true);
    AddChain(&program, 8);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());
    ConjunctiveQuery query;
    PredicateId top = program.symbols().FindPredicate(
        "p" + std::to_string(depth - 1));
    // Unreachable: the chain never returns to its source.
    Term n5 = program.symbols().InternConstant("n5");
    Term n0 = program.symbols().InternConstant("n0");
    query.output = {Term::Variable(0)};
    query.atoms = {Atom(top, {n5, Term::Variable(0)})};

    Timer timer;
    ProofSearchOptions options;
    options.max_states = 2000000;
    ProofSearchResult result =
        LinearProofSearch(program, db, query, {n0}, options);
    Row("%8u %6zu %8zu %12s %12lu %10.2f%s", depth, program.tgds().size(),
        result.node_width_used, HumanBytes(result.peak_state_bytes).c_str(),
        static_cast<unsigned long>(result.states_visited), timer.Ms(),
        result.budget_exhausted ? " (budget)" : "");
    if (result.accepted) Row("  !! unsatisfiable goal accepted");
  }

  Row("%s", "");
  Row("%s", "-- WARD non-PWL hierarchy, alternating proof search");
  Row("%8s %6s %8s %12s %12s %10s", "strata", "rules", "width",
      "state-peak", "states", "ms");
  for (uint32_t depth : {1u, 2u, 3u, 4u, 5u}) {
    Program program = MakeHierarchy(depth, /*piecewise=*/false);
    AddChain(&program, 8);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());
    ConjunctiveQuery query;
    PredicateId top = program.symbols().FindPredicate(
        "p" + std::to_string(depth - 1));
    Term n5 = program.symbols().InternConstant("n5");
    Term n0 = program.symbols().InternConstant("n0");
    query.output = {Term::Variable(0)};
    query.atoms = {Atom(top, {n5, Term::Variable(0)})};

    Timer timer;
    ProofSearchOptions options;
    options.max_states = 2000000;
    AlternatingSearchResult result =
        AlternatingProofSearch(program, db, query, {n0}, options);
    Row("%8u %6zu %8zu %12s %12lu %10.2f%s", depth, program.tgds().size(),
        result.node_width_used, HumanBytes(result.peak_state_bytes).c_str(),
        static_cast<unsigned long>(result.states_expanded), timer.Ms(),
        result.budget_exhausted ? " (budget)" : "");
    if (result.accepted) Row("  !! unsatisfiable goal accepted");
  }
  return 0;
}
