// Shared helpers for the experiment harnesses: wall-clock timing and
// aligned table printing in the style of the paper's claims. Each bench
// binary reproduces one experiment of DESIGN.md §3 and prints the series
// the claim predicts (who wins, by what factor, where the shapes diverge).

#ifndef VADALOG_BENCH_BENCH_UTIL_H_
#define VADALOG_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace vadalog::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints a header box for an experiment.
inline void Banner(const char* experiment_id, const char* claim) {
  std::printf(
      "\n================================================================\n");
  std::printf("%s\n", experiment_id);
  std::printf("claim: %s\n", claim);
  std::printf(
      "================================================================\n");
}

/// Aligned row printing: Row("%-10s %12zu ...", ...).
inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

/// Pretty byte counts.
inline std::string HumanBytes(size_t bytes) {
  char buffer[32];
  if (bytes >= 10 * 1024 * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.1fMiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10 * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.1fKiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%zuB", bytes);
  }
  return buffer;
}

}  // namespace vadalog::bench

#endif  // VADALOG_BENCH_BENCH_UTIL_H_
