// Experiment E8 (Example 3.3 / Section 3): OWL 2 QL entailment-regime
// reasoning with the warded ∩ PWL rule set, scaled over synthetic
// ontologies. Reports chase materialization cost, positive decision-query
// latency via the linear proof search (sampled from chased entailments),
// and budgeted negative decisions. Expected shape: the chase grows with
// the ontology; positive decisions stay near-constant and agree with the
// chase; negative decisions expose the NL→PTime determinization cost and
// are reported honestly against a state budget.

#include <cstdint>

#include "bench_util.h"
#include "chase/chase.h"
#include "engine/alternating_search.h"
#include "engine/linear_search.h"
#include "engine/search_cache.h"
#include "gen/generators.h"
#include "storage/homomorphism.h"

using namespace vadalog;
using namespace vadalog::bench;

int main() {
  Banner("E8 / Example 3.3",
         "OWL 2 QL TGDs (warded, piece-wise linear): chase materialization "
         "vs per-query linear proof search");

  Row("%8s %8s | %9s %8s | %9s %6s | %9s %10s %8s", "classes", "indivs",
      "chase-ms", "atoms", "pos-ms", "agree", "neg-ms", "neg-result",
      "discards");
  for (uint32_t scale : {1u, 2u, 4u, 8u}) {
    uint32_t classes = 25 * scale;
    uint32_t individuals = 100 * scale;
    Program program = MakeOwl2QlProgram();
    Rng rng(scale * 101);
    AddOntologyFacts(&program, classes, 5 * scale, individuals, &rng);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());

    Timer chase_timer;
    ChaseResult chase = RunChase(program, db);
    double chase_ms = chase_timer.Ms();

    PredicateId type = program.symbols().FindPredicate("type");
    ConjunctiveQuery query;
    query.output = {Term::Variable(0), Term::Variable(1)};
    query.atoms = {Atom(type, {Term::Variable(0), Term::Variable(1)})};

    // All decisions against one database share one memoization cache (the
    // realistic shape for repeated entailment checks).
    ProofSearchCache cache(program, db);
    ProofSearchOptions search_options;
    search_options.cache = &cache;

    // Positive decisions: sample entailed constant-only type facts from
    // the chase and re-verify each with the proof search.
    const Relation* types = chase.instance.RelationFor(type);
    bool agree = true;
    double positive_ms = 0.0;
    int positives = 0;
    for (size_t row = 0; row < types->size() && positives < 10; ++row) {
      const std::vector<Term>& tuple = types->TupleAt(row);
      if (!tuple[0].is_constant() || !tuple[1].is_constant()) continue;
      ++positives;
      Timer t;
      ProofSearchResult search = LinearProofSearch(
          program, db, query, {tuple[0], tuple[1]}, search_options);
      positive_ms += t.Ms();
      if (!search.accepted) agree = false;
    }

    // One negative decision with a state budget: the exhaustive
    // refutation is where the deterministic BFS pays for simulating NL.
    Term ind = program.symbols().InternConstant("ind0");
    Term cls = program.symbols().InternConstant("class1");
    ProofSearchOptions neg_options;
    neg_options.max_states = 50000;
    neg_options.cache = &cache;
    Timer neg_timer;
    ProofSearchResult neg =
        LinearProofSearch(program, db, query, {ind, cls}, neg_options);
    double neg_ms = neg_timer.Ms();
    const char* neg_result =
        neg.accepted ? "entailed"
                     : (neg.budget_exhausted ? "budget" : "refuted");

    Row("%8u %8u | %9.2f %8zu | %9.3f %6s | %9.2f %10s %8llu", classes,
        individuals, chase_ms, chase.instance.size(),
        positives > 0 ? positive_ms / positives : 0.0,
        agree ? "yes" : "NO", neg_ms, neg_result,
        static_cast<unsigned long long>(neg.subsumed_discarded));
    Row("      retired %llu  subsumption-checks %llu  visited %llu",
        static_cast<unsigned long long>(neg.states_retired),
        static_cast<unsigned long long>(neg.subsumption_checks),
        static_cast<unsigned long long>(neg.states_visited));
  }

  // The same budgeted negative decision on the explicit-stack alternating
  // engine (scale 1 only — the AND/OR realization pays the ExpTime shape
  // on this ontology): fork_depth × threads ablation, counters must be
  // identical across thread counts and the verdict must match the linear
  // engine's.
  {
    Program program = MakeOwl2QlProgram();
    Rng rng(101);
    AddOntologyFacts(&program, 25, 5, 100, &rng);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());
    PredicateId type = program.symbols().FindPredicate("type");
    ConjunctiveQuery query;
    query.output = {Term::Variable(0), Term::Variable(1)};
    query.atoms = {Atom(type, {Term::Variable(0), Term::Variable(1)})};
    Term ind = program.symbols().InternConstant("ind0");
    Term cls = program.symbols().InternConstant("class1");

    Row("");
    Row("%-30s %9s %9s %10s", "alternating negative (scale 1)", "ms",
        "states", "result");
    for (uint32_t fork_depth : {1u, 2u}) {
      for (uint32_t threads : {1u, 4u}) {
        ProofSearchCache cache(program, db);
        ProofSearchOptions options;
        options.max_states = 50000;
        options.cache = &cache;
        options.fork_depth = fork_depth;
        options.num_threads = threads;
        Timer t;
        AlternatingSearchResult r =
            AlternatingProofSearch(program, db, query, {ind, cls}, options);
        char label[64];
        std::snprintf(label, sizeof label, "fork_depth=%u, %u thread%s",
                      fork_depth, threads, threads == 1 ? "" : "s");
        Row("%-30s %9.2f %9llu %10s", label, t.Ms(),
            static_cast<unsigned long long>(r.states_expanded),
            r.accepted ? "entailed"
                       : (r.budget_exhausted ? "budget" : "refuted"));
      }
    }
  }
  return 0;
}
