// Experiment E12 (Section 4.3 realization): relevance-pruned, memoized
// proof search. Measures (1) the OWL 2 QL example's expensive refutation
// cold vs warm against one shared ProofSearchCache, (2) certain-answer
// enumeration with the shared cache vs per-candidate fresh searches, and
// (3) the alternating search cold vs warm. Expected shape: warm decisions
// collapse to near-zero states (the refutation closure transfers across
// candidates), enumeration with sharing beats per-candidate re-search, and
// all cached decisions agree with the chase engine.

#include <cstdint>

#include "ast/parser.h"
#include "bench_util.h"
#include "engine/certain.h"
#include "engine/search_cache.h"
#include "gen/generators.h"
#include "storage/instance.h"

using namespace vadalog;
using namespace vadalog::bench;

namespace {

Program MiniOntology() {
  Program program;
  std::string text = R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
    subclass(cat, mammal). subclass(mammal, animal).
    type(tom, cat).
    restriction(hunter, hunts).
    type(tom, hunter).
  )";
  std::string error = ParseInto(text, &program);
  if (!error.empty()) std::fprintf(stderr, "%s\n", error.c_str());
  NormalizeToSingleHead(&program, nullptr);
  return program;
}

}  // namespace

int main() {
  Banner("E12 / Section 4.3 optimization",
         "relevance-pruned, memoized linear proof search: cold vs warm "
         "decisions and shared-cache enumeration over one (program, D)");

  // -- (1) The owl2ql_reasoning example's decisions, shared cache.
  {
    Program program = MakeOwl2QlProgram();
    std::string facts = R"(
      subclass(professor, faculty).
      subclass(faculty, employee).
      subclass(employee, person).
      restriction(teacher, teaches).
      inverse(teaches, taughtBy).
      restriction(student, taughtBy).
      type(ada, professor).
      type(ada, teacher).
    )";
    ParseInto(facts, &program);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());

    PredicateId type = program.symbols().FindPredicate("type");
    Term ada = program.symbols().InternConstant("ada");
    Term student = program.symbols().InternConstant("student");
    ConjunctiveQuery ada_types;
    ada_types.output = {Term::Variable(0)};
    ada_types.atoms = {Atom(type, {ada, Term::Variable(0)})};
    ConjunctiveQuery someone_student;
    someone_student.atoms = {Atom(type, {Term::Variable(0), student})};

    ProofSearchCache cache(program, db);
    ProofSearchOptions options;
    options.cache = &cache;

    Row("%-28s %10s %10s %12s %8s", "decision (8-fact D)", "ms", "states",
        "cache-hits", "result");
    auto report = [&](const char* label, const ConjunctiveQuery& q,
                      const std::vector<Term>& answer) {
      Timer t;
      ProofSearchResult r = LinearProofSearch(program, db, q, answer, options);
      Row("%-28s %10.2f %10llu %12llu %8s", label, t.Ms(),
          static_cast<unsigned long long>(r.states_visited),
          static_cast<unsigned long long>(r.cache_hits),
          r.accepted ? "entailed" : "refuted");
    };
    report("refute ada:student (cold)", ada_types, {student});
    report("refute ada:student (warm)", ada_types, {student});
    report("accept someone:student", someone_student, {});
    Row("cache: %zu refuted states, %zu interned atoms, %s",
        cache.linear_refuted_size(), cache.interned_atoms(),
        HumanBytes(cache.ApproximateBytes()).c_str());
  }

  // -- (2) Enumeration: shared cache vs per-candidate fresh searches.
  {
    Program program = MiniOntology();
    Instance db = DatabaseFromFacts(program.facts());
    PredicateId type = program.symbols().FindPredicate("type");
    ConjunctiveQuery query;
    query.output = {Term::Variable(0)};
    query.atoms = {
        Atom(type, {program.symbols().InternConstant("tom"),
                    Term::Variable(0)})};

    std::vector<std::vector<Term>> via_chase =
        CertainAnswersViaChase(program, db, query);

    Timer shared_timer;
    std::vector<std::vector<Term>> shared =
        CertainAnswersViaSearch(program, db, query);
    double shared_ms = shared_timer.Ms();

    // Per-candidate fresh caches: every refutation re-pays its closure.
    double fresh_ms = 0.0;
    bool fresh_agrees = true;
    {
      std::vector<Term> domain;
      for (Term t : db.ActiveDomain()) {
        if (t.is_constant()) domain.push_back(t);
      }
      Timer t;
      for (Term c : domain) {
        bool accepted =
            IsCertainViaLinearSearch(program, db, query, {c});
        bool expected = false;
        for (const std::vector<Term>& row : shared) {
          expected = expected || row[0] == c;
        }
        fresh_agrees = fresh_agrees && accepted == expected;
      }
      fresh_ms = t.Ms();
    }

    Row("");
    Row("%-34s %10s %10s %6s", "enumeration (mini ontology)", "ms",
        "answers", "agree");
    Row("%-34s %10.2f %10zu %6s", "shared cache (ViaSearch)", shared_ms,
        shared.size(), shared == via_chase ? "yes" : "NO");
    Row("%-34s %10.2f %10s %6s", "fresh search per candidate", fresh_ms, "-",
        fresh_agrees ? "yes" : "NO");
  }

  // -- (2b) Subsumption ablation + parallel frontier on the expensive
  // owl2ql refutation: pruning is the state-space lever, threads the
  // wall-clock lever (thread gains require actual cores; the counters
  // must be identical regardless).
  {
    Program program = MakeOwl2QlProgram();
    std::string facts = R"(
      subclass(professor, faculty).
      subclass(faculty, employee).
      subclass(employee, person).
      restriction(teacher, teaches).
      inverse(teaches, taughtBy).
      restriction(student, taughtBy).
      type(ada, professor).
      type(ada, teacher).
    )";
    ParseInto(facts, &program);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());
    PredicateId type = program.symbols().FindPredicate("type");
    Term ada = program.symbols().InternConstant("ada");
    Term student = program.symbols().InternConstant("student");
    ConjunctiveQuery ada_types;
    ada_types.output = {Term::Variable(0)};
    ada_types.atoms = {Atom(type, {ada, Term::Variable(0)})};

    Row("");
    Row("%-28s %10s %10s %10s %10s", "refutation ablation", "ms", "visited",
        "discarded", "threads");
    struct Config {
      const char* label;
      bool subsumption;
      uint32_t threads;
    };
    constexpr Config kConfigs[] = {
        {"no pruning, 1 thread", false, 1},
        {"subsumption, 1 thread", true, 1},
        {"subsumption, 4 threads", true, 4},
    };
    for (const Config& config : kConfigs) {
      ProofSearchOptions options;
      options.subsumption = config.subsumption;
      options.num_threads = config.threads;
      Timer t;
      ProofSearchResult r =
          LinearProofSearch(program, db, ada_types, {student}, options);
      Row("%-28s %10.2f %10llu %10llu %10u", config.label, t.Ms(),
          static_cast<unsigned long long>(r.states_visited),
          static_cast<unsigned long long>(r.subsumed_discarded),
          config.threads);
      if (r.accepted) Row("  !! expected a refutation");
    }
  }

  // -- (3) Alternating search, cold vs warm proven/refuted tables.
  {
    Program program;
    std::string text = R"(
      t(X, Y) :- e(X, Y).
      t(X, Z) :- t(X, Y), t(Y, Z).
    )";
    ParseInto(text, &program);
    for (uint32_t i = 0; i + 1 < 14; ++i) {
      std::string a = "v" + std::to_string(i);
      std::string b = "v" + std::to_string(i + 1);
      ParseInto("e(" + a + ", " + b + ").", &program);
    }
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());
    PredicateId t_pred = program.symbols().FindPredicate("t");
    ConjunctiveQuery query;
    query.output = {Term::Variable(0)};
    query.atoms = {Atom(t_pred, {program.symbols().InternConstant("v0"),
                                 Term::Variable(0)})};
    Term absent = program.symbols().InternConstant("zz");

    ProofSearchCache cache(program, db);
    ProofSearchOptions options;
    options.cache = &cache;
    Row("");
    Row("%-28s %10s %10s %12s %8s", "alternating (14-node TC)", "ms",
        "states", "cache-hits", "result");
    for (const char* label : {"refute t(v0, zz) (cold)",
                              "refute t(v0, zz) (warm)"}) {
      Timer timer;
      AlternatingSearchResult r =
          AlternatingProofSearch(program, db, query, {absent}, options);
      Row("%-28s %10.2f %10llu %12llu %8s", label, timer.Ms(),
          static_cast<unsigned long long>(r.states_expanded),
          static_cast<unsigned long long>(r.cache_hits),
          r.accepted ? "entailed" : "refuted");
    }

    // -- (3b) Explicit-stack alternating ablation: fork_depth widens the
    // prefix of the AND/OR tree whose children run as isolated branch
    // tasks (the parallel unit), at the price of sibling memo sharing —
    // states may grow with fork_depth but must be identical across
    // thread counts (the determinism contract), and every verdict must
    // match. Cold caches per row so rows are comparable.
    Row("");
    Row("%-28s %10s %10s %12s %8s", "alternating fork ablation", "ms",
        "states", "refuted", "result");
    for (uint32_t fork_depth : {0u, 1u, 2u}) {
      for (uint32_t threads : {1u, 4u}) {
        ProofSearchCache fresh(program, db);
        ProofSearchOptions ablation;
        ablation.cache = &fresh;
        ablation.fork_depth = fork_depth;
        ablation.num_threads = threads;
        Timer timer;
        AlternatingSearchResult r = AlternatingProofSearch(
            program, db, query, {absent}, ablation);
        char label[64];
        std::snprintf(label, sizeof label, "fork_depth=%u, %u thread%s",
                      fork_depth, threads, threads == 1 ? "" : "s");
        Row("%-28s %10.2f %10llu %12llu %8s", label, timer.Ms(),
            static_cast<unsigned long long>(r.states_expanded),
            static_cast<unsigned long long>(r.refuted_cached),
            r.accepted ? "ENTAILED?!" : "refuted");
      }
    }
  }
  return 0;
}
