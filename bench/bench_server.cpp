// Experiment E13: vadalogd daemon throughput. Measures (1) warm-session
// protocol queries against the OWL 2 QL example vs cold one-shot runs
// that re-parse the program and rebuild the caches per query (what the
// CLI does), and (2) queries/sec through the socket server at 1, 4 and
// 16 simulated clients, cold (first pass, empty session cache) vs warm
// (steady state). Expected shape: the warm session amortizes parsing,
// classification and the ProofSearchCache across queries, so warm
// per-query latency collapses versus the cold one-shot path; client
// scaling on a single core mostly measures multiplexing overhead, on
// multi-core it should scale until the worker pool saturates.
//
// Self-checking: every protocol answer is diffed against a direct
// in-process Reasoner; any mismatch fails the bench (nonzero exit).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "bench_util.h"
#include "server/server.h"
#include "vadalog/reasoner.h"

using namespace vadalog;
using namespace vadalog::bench;

#ifdef _WIN32
int main() {
  std::fprintf(stderr, "bench_server requires POSIX sockets\n");
  return 0;
}
#else

namespace {

// The Example 3.3 OWL 2 QL encoding over the hand-written ontology of
// examples/owl2ql_reasoning.cpp; the query is the example's headline
// "all inferred types of ada".
constexpr const char* kOwl2QlProgram = R"(
  subclassStar(X, Y) :- subclass(X, Y).
  subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
  type(X, Z) :- type(X, Y), subclassStar(Y, Z).
  triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
  triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
  type(X, W) :- triple(X, Y, Z), restriction(W, Y).

  subclass(professor, faculty).
  subclass(faculty, employee).
  subclass(employee, person).
  restriction(teacher, teaches).
  inverse(teaches, taughtBy).
  restriction(student, taughtBy).
  type(ada, professor).
  type(ada, teacher).

  ?(X) :- type(ada, X).
)";

class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ =
        fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  std::optional<JsonValue> RoundTrip(const std::string& line) {
    std::string out = line + "\n";
    size_t sent = 0;
    while (sent < out.size()) {
      ssize_t n =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return std::nullopt;
      sent += static_cast<size_t>(n);
    }
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return JsonValue::Parse(response, nullptr);
      }
      char chunk[65536];
      ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::vector<std::vector<std::string>> ExpectedRows(const std::string& engine) {
  std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(kOwl2QlProgram);
  ReasonerOptions options;
  if (engine == "linear") options.engine = EngineChoice::kLinearProof;
  std::vector<std::vector<std::string>> rows;
  for (const std::vector<Term>& tuple :
       reasoner->Answer(reasoner->program().queries()[0], options)) {
    std::vector<std::string> row;
    for (Term t : tuple) {
      row.push_back(reasoner->program().symbols().TermToString(t));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<std::string>> RowsOf(const JsonValue& response) {
  std::vector<std::vector<std::string>> rows;
  const JsonValue* answers = response.Find("answers");
  if (answers == nullptr) return rows;
  for (const JsonValue& row : answers->Items()) {
    std::vector<std::string> tuple;
    for (const JsonValue& cell : row.Items()) tuple.push_back(cell.AsString());
    rows.push_back(std::move(tuple));
  }
  return rows;
}

const char* kQueryLine =
    "{\"cmd\":\"QUERY\",\"session\":\"owl\",\"query_index\":0,"
    "\"engine\":\"linear\"}";

bool LoadSession(BenchClient* client) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::String("LOAD_PROGRAM"));
  request.Set("session", JsonValue::String("owl"));
  request.Set("replace", JsonValue::Bool(true));
  request.Set("program", JsonValue::String(kOwl2QlProgram));
  std::optional<JsonValue> response = client->RoundTrip(request.Dump());
  return response.has_value() && response->GetBool("ok");
}

}  // namespace

int main() {
  Banner("E13 / vadalogd",
         "sessions amortize parse+classify+ProofSearchCache across "
         "queries: warm protocol queries beat cold one-shot runs; "
         "queries/sec at 1/4/16 clients");

  const std::vector<std::vector<std::string>> expected =
      ExpectedRows("linear");
  int failures = 0;

  // --- cold one-shot baseline: what each CLI invocation pays -----------
  constexpr int kColdRuns = 5;
  Timer cold_timer;
  for (int i = 0; i < kColdRuns; ++i) {
    std::unique_ptr<Reasoner> reasoner = Reasoner::FromText(kOwl2QlProgram);
    ReasonerOptions options;
    options.engine = EngineChoice::kLinearProof;
    std::vector<std::vector<Term>> answers =
        reasoner->Answer(reasoner->program().queries()[0], options);
    if (answers.size() != expected.size()) ++failures;
  }
  double cold_ms = cold_timer.Ms() / kColdRuns;

  ServerOptions options;
  options.tcp_port = 0;
  options.workers = 4;
  Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "bench_server: %s\n", error.c_str());
    return 1;
  }

  // --- warm session: one load, repeated protocol queries ---------------
  double first_query_ms = 0.0;
  double warm_ms = 0.0;
  {
    BenchClient client(server.tcp_port());
    if (!client.connected() || !LoadSession(&client)) {
      std::fprintf(stderr, "bench_server: load failed\n");
      return 1;
    }
    Timer first;
    std::optional<JsonValue> response = client.RoundTrip(kQueryLine);
    first_query_ms = first.Ms();
    if (!response.has_value() || RowsOf(*response) != expected) ++failures;

    constexpr int kWarmRuns = 20;
    Timer warm;
    for (int i = 0; i < kWarmRuns; ++i) {
      response = client.RoundTrip(kQueryLine);
      if (!response.has_value() || RowsOf(*response) != expected) {
        ++failures;
      }
    }
    warm_ms = warm.Ms() / kWarmRuns;
  }

  std::printf("\nOWL 2 QL example, engine=linear (answers: %zu types)\n",
              expected.size());
  Row("%-44s %10.2f ms/query", "cold one-shot (parse+classify+search)",
      cold_ms);
  Row("%-44s %10.2f ms/query", "warm session, first query (fills cache)",
      first_query_ms);
  Row("%-44s %10.2f ms/query", "warm session, steady state", warm_ms);
  Row("%-44s %10.1fx", "warm speedup over cold one-shot",
      warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);

  // --- throughput at 1 / 4 / 16 clients, cold vs warm cache ------------
  std::printf("\nthroughput over the socket server (queries/sec)\n");
  Row("%-10s %14s %14s", "clients", "cold cache", "warm cache");
  for (int clients : {1, 4, 16}) {
    double rates[2] = {0.0, 0.0};
    for (int pass = 0; pass < 2; ++pass) {
      // pass 0: session replaced right before, caches empty (cold);
      // pass 1: same session retained, caches hot (warm).
      if (pass == 0) {
        BenchClient loader(server.tcp_port());
        if (!loader.connected() || !LoadSession(&loader)) {
          std::fprintf(stderr, "bench_server: reload failed\n");
          return 1;
        }
      }
      const int queries_per_client = pass == 0 ? 4 : 16;
      std::atomic<int> bad{0};
      Timer timer;
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          BenchClient client(server.tcp_port());
          if (!client.connected()) {
            ++bad;
            return;
          }
          for (int q = 0; q < queries_per_client; ++q) {
            std::optional<JsonValue> response =
                client.RoundTrip(kQueryLine);
            if (!response.has_value() || !response->GetBool("ok") ||
                RowsOf(*response) != expected) {
              ++bad;
              return;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      double seconds = timer.Ms() / 1000.0;
      failures += bad.load();
      rates[pass] =
          seconds > 0.0 ? clients * queries_per_client / seconds : 0.0;
    }
    Row("%-10d %14.1f %14.1f", clients, rates[0], rates[1]);
  }

  Server::Stats stats = server.stats();
  std::printf("\nserver: %llu connections, %llu requests, "
              "%llu+%llu admission rejections\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.rejected_global),
              static_cast<unsigned long long>(stats.rejected_session));

  // CI uploads the full registry snapshot alongside the timing numbers
  // (tools/run_bench.sh exports VADALOG_BENCH_METRICS); the JSON is the
  // same shape METRICS returns, so vadalog_metrics converts it offline.
  if (const char* metrics_path = std::getenv("VADALOG_BENCH_METRICS")) {
    JsonValue snapshot = JsonValue::Object();
    snapshot.Set("metrics", RenderMetricsSnapshot(server.metrics()));
    std::ofstream out(metrics_path);
    out << snapshot.Dump() << "\n";
    std::printf("metrics snapshot written to %s\n", metrics_path);
  }
  server.Stop();

  if (failures != 0) {
    std::fprintf(stderr, "bench_server: %d answer mismatches/failures\n",
                 failures);
    return 1;
  }
  std::printf("\nall protocol answers matched the in-process reasoner\n");
  return 0;
}

#endif  // _WIN32
