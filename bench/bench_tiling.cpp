// Experiment E6 (Theorem 5.1): piece-wise linearity without wardedness is
// undecidable. The Section 5 reduction is PWL but unwarded; on solvable
// tiling systems the chase certifies the query at a finite stage, on
// unsolvable ones it diverges (instance grows without bound as the depth
// budget rises). We print both behaviors plus agreement with the direct
// solver on a batch of random systems.

#include <cstdint>

#include "analysis/fragments.h"
#include "analysis/wardedness.h"
#include "bench_util.h"
#include "chase/chase.h"
#include "storage/homomorphism.h"
#include "tiling/tiling.h"

using namespace vadalog;
using namespace vadalog::bench;

namespace {

bool RunReduction(const TilingSystem& system, uint32_t depth, size_t* atoms,
                  double* ms) {
  TilingReduction reduction = BuildTilingReduction(system);
  Instance db = DatabaseFromFacts(reduction.program.facts());
  ChaseOptions options;
  options.isomorphism_termination = false;  // unwarded Σ
  options.max_depth = depth;
  options.max_atoms = 300000;
  Timer timer;
  ChaseResult chase = RunChase(reduction.program, db, options);
  *ms = timer.Ms();
  *atoms = chase.instance.size();
  return !EvaluateQuerySorted(reduction.query, chase.instance).empty();
}

}  // namespace

int main() {
  Banner("E6 / Theorem 5.1",
         "the Section 5 reduction (PWL, unwarded): solvable systems accept "
         "at a finite chase stage; unsolvable ones diverge");

  TilingReduction probe = BuildTilingReduction(MakeSolvableSystem());
  Row("reduction Σ: piece-wise linear = %s, warded = %s",
      IsPiecewiseLinear(probe.program) ? "yes" : "no",
      IsWarded(probe.program) ? "yes" : "no");

  Row("%s", "");
  Row("%-12s %6s %10s %10s %8s", "system", "depth", "atoms", "ms",
      "certain");
  for (uint32_t depth : {4u, 6u, 8u, 10u, 12u}) {
    size_t atoms;
    double ms;
    bool certain = RunReduction(MakeSolvableSystem(), depth, &atoms, &ms);
    Row("%-12s %6u %10zu %10.2f %8s", "solvable", depth, atoms, ms,
        certain ? "yes" : "no");
  }
  for (uint32_t depth : {4u, 6u, 8u, 10u, 12u}) {
    size_t atoms;
    double ms;
    bool certain = RunReduction(MakeUnsolvableSystem(), depth, &atoms, &ms);
    Row("%-12s %6u %10zu %10.2f %8s", "unsolvable", depth, atoms, ms,
        certain ? "yes" : "no");
  }

  // Random-system agreement batch (bounded horizon on both sides).
  Row("%s", "");
  uint64_t seed = 2026;
  size_t agreements = 0, solvable_count = 0, trials = 20;
  for (size_t trial = 0; trial < trials; ++trial) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    TilingSystem system;
    system.num_tiles = 3;
    system.left = {0};
    system.right = {1};
    system.start_tile = 0;
    // Half the trials use finish = start, which admits single-row
    // tilings and keeps a healthy solvable fraction in the batch.
    system.finish_tile =
        trial % 2 == 0 ? 0 : static_cast<uint32_t>((seed >> 40) % 3);
    for (uint32_t x = 0; x < 3; ++x) {
      for (uint32_t y = 0; y < 3; ++y) {
        if (((seed >> (2 * (x * 3 + y))) & 3) == 3) {
          system.horizontal.push_back({x, y});
        }
        if (((seed >> (18 + 2 * (x * 3 + y))) & 3) >= 2) {
          system.vertical.push_back({x, y});
        }
      }
    }
    bool direct = SolveTilingDirect(system, 3, 3);
    size_t atoms;
    double ms;
    bool reduced = RunReduction(system, 8, &atoms, &ms);
    if (direct) ++solvable_count;
    if (direct == reduced || (!direct && reduced)) {
      // Completeness side must hold; a 'reduced' on wider witnesses than
      // the small direct bound is still sound.
      ++agreements;
    }
  }
  Row("random systems: %zu/%zu consistent with the direct solver "
      "(%zu solvable within 3x3)",
      agreements, trials, solvable_count);
  return 0;
}
