// Experiment E4 (Section 1.2): the recursion-usage profile. The paper
// reports that ≈70% of the analyzed TGD-sets use piece-wise linear
// recursion — ≈55% directly, ≈15% after the standard elimination of
// unnecessary non-linear recursion. We run the classifier + linearizer
// over an iWarded-style synthetic suite calibrated to that corpus profile
// (see DESIGN.md §2 for the substitution note) and print the same rows.

#include <cstdio>

#include "analysis/classify.h"
#include "bench_util.h"
#include "gen/data_exchange.h"
#include "gen/generators.h"

using namespace vadalog;
using namespace vadalog::bench;

int main() {
  Banner("E4 / Section 1.2",
         "~70% of warded TGD-sets are piece-wise linear "
         "(~55% directly, ~15% after linearization)");

  constexpr size_t kScenarios = 200;
  SuiteMixture mixture;  // calibrated defaults
  std::vector<Program> suite = GenerateScenarioSuite(kScenarios, mixture, 97);

  size_t direct = 0, after = 0, non = 0, warded = 0, existential = 0;
  for (const Program& program : suite) {
    ProgramClassification c = ClassifyProgram(program);
    if (c.warded) ++warded;
    if (c.uses_existentials) ++existential;
    if (c.piecewise_linear) {
      ++direct;
    } else if (c.pwl_after_linearization) {
      ++after;
    } else {
      ++non;
    }
  }

  auto pct = [](size_t n) {
    return 100.0 * static_cast<double>(n) / kScenarios;
  };
  Row("%-34s %8s %8s", "bucket", "count", "share");
  Row("%-34s %8zu %7.1f%%", "directly piece-wise linear", direct,
      pct(direct));
  Row("%-34s %8zu %7.1f%%", "PWL after linearization", after, pct(after));
  Row("%-34s %8zu %7.1f%%", "PWL total (paper: ~70%)", direct + after,
      pct(direct + after));
  Row("%-34s %8zu %7.1f%%", "non piece-wise linear", non, pct(non));
  Row("%-34s %8zu %7.1f%%", "warded (paper: all corpora)", warded,
      pct(warded));
  Row("%-34s %8zu %7.1f%%", "using existentials", existential,
      pct(existential));

  // The data-exchange corpora the paper also analyzed (ChaseBench/iBench
  // mapping primitives) are non-recursive ST-TGDs and therefore fall into
  // the fragment trivially — reported separately so they do not skew the
  // recursion-usage profile above.
  std::vector<Program> exchange = GenerateDataExchangeSuite(100, 1234);
  size_t de_warded = 0, de_pwl = 0, de_existential = 0;
  for (const Program& program : exchange) {
    ProgramClassification c = ClassifyProgram(program);
    if (c.warded) ++de_warded;
    if (c.piecewise_linear) ++de_pwl;
    if (c.uses_existentials) ++de_existential;
  }
  Row("%s", "");
  Row("%-34s %8s %8s", "data-exchange corpus (n=100)", "count", "share");
  Row("%-34s %8zu %7.1f%%", "warded", de_warded,
      static_cast<double>(de_warded));
  Row("%-34s %8zu %7.1f%%", "piece-wise linear", de_pwl,
      static_cast<double>(de_pwl));
  Row("%-34s %8zu %7.1f%%", "using existentials", de_existential,
      static_cast<double>(de_existential));
  return warded == kScenarios && de_warded == exchange.size() ? 0 : 1;
}
