// Google-benchmark microbenchmarks for the engine primitives: term
// interning, homomorphism matching, state canonicalization, chunk
// resolution, and single chase rounds. These calibrate the constants
// behind the experiment harnesses.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "chase/chase.h"
#include "engine/resolution.h"
#include "engine/state.h"
#include "gen/generators.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

void BM_InternConstant(benchmark::State& state) {
  SymbolTable symbols;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        symbols.InternConstant("constant" + std::to_string(i++ % 4096)));
  }
}
BENCHMARK(BM_InternConstant);

void BM_HomomorphismJoin(benchmark::State& state) {
  Program program;
  Rng rng(1);
  AddRandomGraphFacts(&program, "e", static_cast<uint32_t>(state.range(0)),
                      state.range(0) * 3, &rng);
  Instance db = DatabaseFromFacts(program.facts());
  PredicateId e = program.symbols().FindPredicate("e");
  std::vector<Atom> pattern = {
      Atom(e, {Term::Variable(0), Term::Variable(1)}),
      Atom(e, {Term::Variable(1), Term::Variable(2)})};
  for (auto _ : state) {
    size_t count = 0;
    ForEachHomomorphism(pattern, db, {}, [&count](const Substitution&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_HomomorphismJoin)->Arg(100)->Arg(1000);

void BM_Canonicalize(benchmark::State& state) {
  // A chain state of `range` atoms with fresh variables.
  std::vector<Atom> atoms;
  for (int64_t i = 0; i < state.range(0); ++i) {
    atoms.push_back(Atom(0, {Term::Variable(static_cast<uint64_t>(i)),
                             Term::Variable(static_cast<uint64_t>(i + 1))}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Canonicalize(atoms));
  }
}
BENCHMARK(BM_Canonicalize)->Arg(4)->Arg(16);

void BM_ChunkResolution(benchmark::State& state) {
  ParseResult parsed = ParseProgram(R"(
    t(X, Z) :- e(X, Y), t(Y, Z).
    t(X, Y) :- e(X, Y).
  )");
  Program program = std::move(*parsed.program);
  PredicateId t = program.symbols().FindPredicate("t");
  std::vector<Atom> proof_state = {
      Atom(t, {Term::Variable(0), Term::Variable(1)}),
      Atom(t, {Term::Variable(1), Term::Variable(2)})};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResolveAll(proof_state, program, 100, 4));
  }
}
BENCHMARK(BM_ChunkResolution);

void BM_ChaseTransitiveClosure(benchmark::State& state) {
  Program program = MakeTransitiveClosureProgram(/*linear=*/true);
  Rng rng(7);
  AddRandomGraphFacts(&program, "e", static_cast<uint32_t>(state.range(0)),
                      state.range(0) * 2, &rng);
  Instance db = DatabaseFromFacts(program.facts());
  for (auto _ : state) {
    ChaseResult result = RunChase(program, db);
    benchmark::DoNotOptimize(result.instance.size());
  }
}
BENCHMARK(BM_ChaseTransitiveClosure)->Arg(50)->Arg(150);

}  // namespace
}  // namespace vadalog

BENCHMARK_MAIN();
