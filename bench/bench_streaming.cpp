// Streaming sessions: interleaved ADD_FACTS / QUERY against vadalogd's
// dispatcher. Measures what delta maintenance buys: a session whose
// cache is migrated by InvalidateForDelta serves warm queries through a
// stream of cone-disjoint insertions, where the old behavior (and the
// rebuild baseline simulated here with a 1-byte cache cap) pays a full
// cold search per round. Expected shape: warm per-query latency stays
// flat and ≥10x below the rebuild baseline; cone-hitting insertions
// drop entries but stay correct.
//
// Self-checking: every protocol answer is diffed against an in-process
// Reasoner oracle, the warm session must report zero entries dropped on
// the cone-disjoint stream, and the ≥10x retention ratio is asserted
// (nonzero exit on any violation).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "gen/generators.h"
#include "server/json.h"
#include "server/session.h"
#include "vadalog/reasoner.h"

using namespace vadalog;
using namespace vadalog::bench;

namespace {

constexpr const char* kOwl2QlRules = R"(
  subclassStar(X, Y) :- subclass(X, Y).
  subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
  type(X, Z) :- type(X, Y), subclassStar(Y, Z).
  triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
  triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
  type(X, W) :- triple(X, Y, Z), restriction(W, Y).
)";

// Renders a generated ontology back to surface syntax so the protocol
// session and the in-process oracle load the identical program.
std::string ProgramText() {
  Program seed = MakeOwl2QlProgram();
  Rng rng(42);
  AddOntologyFacts(&seed, /*num_classes=*/12, /*num_properties=*/3,
                   /*num_individuals=*/6, &rng);
  std::string text = kOwl2QlRules;
  for (const Atom& fact : seed.facts()) {
    text += seed.symbols().PredicateName(fact.predicate);
    text += "(";
    for (size_t i = 0; i < fact.args.size(); ++i) {
      if (i > 0) text += ", ";
      text += seed.symbols().TermToString(fact.args[i]);
    }
    text += ").\n";
  }
  text += "?(X) :- type(ind0, X).\n";
  return text;
}

std::vector<std::string> RowsOf(const JsonValue& response) {
  std::vector<std::string> rows;
  const JsonValue* answers = response.Find("answers");
  if (answers == nullptr) return rows;
  for (const JsonValue& row : answers->Items()) {
    std::string tuple;
    for (const JsonValue& cell : row.Items()) {
      if (!tuple.empty()) tuple += ",";
      tuple += cell.AsString();
    }
    rows.push_back(std::move(tuple));
  }
  return rows;
}

std::vector<std::string> OracleRows(const Reasoner& oracle) {
  ReasonerOptions options;
  options.engine = EngineChoice::kLinearProof;
  std::vector<std::string> rows;
  for (const std::vector<Term>& tuple :
       oracle.Answer(oracle.program().queries()[0], options)) {
    std::string rendered;
    for (Term t : tuple) {
      if (!rendered.empty()) rendered += ",";
      rendered += oracle.program().symbols().TermToString(t);
    }
    rows.push_back(std::move(rendered));
  }
  return rows;
}

JsonValue Line(SessionRegistry* registry, const std::string& cmd,
               const std::string& payload_key, const std::string& payload) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::String(cmd));
  request.Set("session", JsonValue::String("stream"));
  if (!payload_key.empty()) {
    request.Set(payload_key, JsonValue::String(payload));
  }
  if (cmd == "QUERY") {
    request.Set("query_index", JsonValue::Number(uint64_t{0}));
    request.Set("engine", JsonValue::String("linear"));
  }
  return registry->HandleLine(request.Dump());
}

}  // namespace

int main() {
  Banner("streaming sessions / delta-maintained caches",
         "ADD_FACTS keeps cone-disjoint cache state warm: interleaved "
         "insert+query streams run at warm-query latency, >=10x under "
         "the rebuild-per-round baseline, with bit-identical answers");

  const std::string program_text = ProgramText();
  std::unique_ptr<Reasoner> oracle = Reasoner::FromText(program_text);
  if (oracle == nullptr) {
    std::fprintf(stderr, "bench_streaming: oracle parse failed\n");
    return 1;
  }
  int failures = 0;
  constexpr int kRounds = 6;

  // --- delta-maintained session: cone-disjoint insert+query stream ----
  // The cap is raised well above the stream's working set so the only
  // cache transitions measured are the delta invalidations themselves.
  SessionOptions warm_options;
  warm_options.cache_byte_limit = 256ull << 20;
  SessionRegistry warm_registry{warm_options};
  if (!Line(&warm_registry, "LOAD_PROGRAM", "program", program_text)
           .GetBool("ok")) {
    std::fprintf(stderr, "bench_streaming: load failed\n");
    return 1;
  }
  Timer fill_timer;
  JsonValue first = Line(&warm_registry, "QUERY", "", "");
  double fill_ms = fill_timer.Ms();
  std::vector<std::string> expected = OracleRows(*oracle);
  if (!first.GetBool("ok") || RowsOf(first) != expected) ++failures;

  double warm_ms = 0.0;
  uint64_t warm_dropped = 0;
  for (int round = 0; round < kRounds; ++round) {
    // `note` appears in no rule body: its cone is itself, nothing drops.
    JsonValue added =
        Line(&warm_registry, "ADD_FACTS", "facts",
             "note(n" + std::to_string(round) + ").");
    if (!added.GetBool("ok")) ++failures;
    warm_dropped += added.GetUint("cache_entries_invalidated");
    Timer timer;
    JsonValue answer = Line(&warm_registry, "QUERY", "", "");
    warm_ms += timer.Ms();
    if (!answer.GetBool("ok") || RowsOf(answer) != expected) ++failures;
  }
  warm_ms /= kRounds;

  // --- rebuild baseline: identical stream, cache cold every round -----
  // A 1-byte cap evicts the whole cache after each use — exactly the
  // old nuke-on-ADD_FACTS behavior, minus the parse the CLI would pay.
  SessionOptions rebuild_options;
  rebuild_options.cache_byte_limit = 1;
  SessionRegistry rebuild_registry{rebuild_options};
  if (!Line(&rebuild_registry, "LOAD_PROGRAM", "program", program_text)
           .GetBool("ok")) {
    std::fprintf(stderr, "bench_streaming: baseline load failed\n");
    return 1;
  }
  Line(&rebuild_registry, "QUERY", "", "");  // parity with the warm-up
  double rebuild_ms = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    JsonValue added =
        Line(&rebuild_registry, "ADD_FACTS", "facts",
             "note(n" + std::to_string(round) + ").");
    if (!added.GetBool("ok")) ++failures;
    Timer timer;
    JsonValue answer = Line(&rebuild_registry, "QUERY", "", "");
    rebuild_ms += timer.Ms();
    if (!answer.GetBool("ok") || RowsOf(answer) != expected) ++failures;
  }
  rebuild_ms /= kRounds;

  std::printf("\ncone-disjoint stream (%d rounds of note(k) + query, "
              "%zu answers)\n",
              kRounds, expected.size());
  Row("%-44s %10.2f ms", "first query (fills the cache)", fill_ms);
  Row("%-44s %10.2f ms/query", "delta-maintained session", warm_ms);
  Row("%-44s %10.2f ms/query", "rebuild-per-round baseline", rebuild_ms);
  double retention = warm_ms > 0.0 ? rebuild_ms / warm_ms : 0.0;
  Row("%-44s %10.1fx", "warm retention ratio", retention);
  Row("%-44s %10llu", "entries dropped across the stream",
      static_cast<unsigned long long>(warm_dropped));

  if (warm_dropped != 0) {
    std::fprintf(stderr,
                 "bench_streaming: cone-disjoint stream dropped %llu "
                 "entries (expected 0)\n",
                 static_cast<unsigned long long>(warm_dropped));
    ++failures;
  }
  if (retention < 10.0) {
    std::fprintf(stderr,
                 "bench_streaming: retention ratio %.1fx below the 10x "
                 "floor\n",
                 retention);
    ++failures;
  }

  // --- cone-hitting stream: subclass edges invalidate and recover -----
  double hit_ms = 0.0;
  uint64_t hit_dropped = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::string fact = "subclass(class" + std::to_string(round + 1) +
                       ", class0).";
    JsonValue added = Line(&warm_registry, "ADD_FACTS", "facts", fact);
    if (!added.GetBool("ok")) ++failures;
    hit_dropped += added.GetUint("cache_entries_invalidated");
    if (!oracle->AddFactsText(fact).empty()) ++failures;
    Timer timer;
    JsonValue answer = Line(&warm_registry, "QUERY", "", "");
    hit_ms += timer.Ms();
    if (!answer.GetBool("ok") || RowsOf(answer) != OracleRows(*oracle)) {
      ++failures;
    }
  }
  hit_ms /= kRounds;

  std::printf("\ncone-hitting stream (%d rounds of subclass(+edge) + "
              "query)\n",
              kRounds);
  Row("%-44s %10.2f ms/query", "delta-maintained session", hit_ms);
  Row("%-44s %10llu", "entries dropped across the stream",
      static_cast<unsigned long long>(hit_dropped));

  JsonValue stats =
      warm_registry.HandleLine(R"({"cmd":"STATS","session":"stream"})");
  const JsonValue* session = stats.Find("session");
  if (session != nullptr) {
    Row("%-44s %10llu", "cache_invalidations",
        static_cast<unsigned long long>(
            session->GetUint("cache_invalidations")));
    Row("%-44s %10s", "cache_bytes",
        HumanBytes(session->GetUint("cache_bytes")).c_str());
    if (session->GetUint("cache_evictions") != 0) {
      std::fprintf(stderr, "bench_streaming: unexpected byte-cap "
                           "evictions in the warm session\n");
      ++failures;
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "bench_streaming: %d failures\n", failures);
    return 1;
  }
  std::printf("\nall protocol answers matched the in-process oracle\n");
  return 0;
}
