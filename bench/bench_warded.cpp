// Experiment E3 (Proposition 3.2 / Theorem 4.9): general warded programs.
// Non-PWL warded CQ answering is PTime in data complexity; the chase and
// the alternating bounded-width proof search must agree, with the chase
// scaling polynomially in |D| and the decision search profiting from
// memoized bounded-width states.

#include <cstdint>

#include "ast/parser.h"
#include "bench_util.h"
#include "chase/chase.h"
#include "engine/alternating_search.h"
#include "engine/certain.h"
#include "gen/generators.h"
#include "storage/homomorphism.h"

using namespace vadalog;
using namespace vadalog::bench;

int main() {
  Banner("E3 / Proposition 3.2 (warded, non-PWL)",
         "chase (PTime materialization) and alternating bounded-width "
         "search agree on non-linear TC; both scale polynomially");

  Row("%8s %10s %10s %12s %12s %8s", "nodes", "chase-ms", "atoms",
      "alt-ms", "alt-states", "agree");
  for (uint32_t nodes : {20u, 40u, 80u, 160u}) {
    Program program = MakeTransitiveClosureProgram(/*linear=*/false);
    Rng rng(nodes * 17);
    AddRandomGraphFacts(&program, "e", nodes, nodes * 2, &rng);
    NormalizeToSingleHead(&program, nullptr);
    Instance db = DatabaseFromFacts(program.facts());

    Timer chase_timer;
    ChaseResult chase = RunChase(program, db);
    double chase_ms = chase_timer.Ms();

    // Decision queries for a sample of pairs; compare both engines.
    PredicateId t = program.symbols().FindPredicate("t");
    ConjunctiveQuery query;
    query.output = {Term::Variable(0), Term::Variable(1)};
    query.atoms = {Atom(t, {Term::Variable(0), Term::Variable(1)})};

    bool agree = true;
    double alt_ms = 0.0;
    uint64_t alt_states = 0;
    uint32_t undecided = 0;
    for (uint32_t trial = 0; trial < 10; ++trial) {
      Term from = program.symbols().InternConstant(
          "v" + std::to_string(rng.Below(nodes)));
      Term to = program.symbols().InternConstant(
          "v" + std::to_string(rng.Below(nodes)));
      Atom probe(t, {from, to});
      bool via_chase = chase.instance.Contains(probe);
      Timer alt_timer;
      ProofSearchOptions options;
      options.max_states = 200000;  // cap exhaustive refutations
      AlternatingSearchResult alt =
          AlternatingProofSearch(program, db, query, {from, to}, options);
      alt_ms += alt_timer.Ms();
      alt_states += alt.states_expanded;
      if (alt.budget_exhausted) {
        ++undecided;
      } else if (alt.accepted != via_chase) {
        agree = false;
      }
    }

    Row("%8u %10.2f %10zu %12.2f %12lu %8s (%u undecided)", nodes, chase_ms,
        chase.instance.size(), alt_ms,
        static_cast<unsigned long>(alt_states), agree ? "yes" : "NO",
        undecided);
  }
  return 0;
}
