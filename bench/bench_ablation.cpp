// Experiments E9–E11 (Section 7): ablations of the three Vadalog system
// optimizations for piece-wise linear warded sets.
//
//  E9  termination control: the isomorphism guide structure stops the
//      warded ∃-recursion immediately; without it the chase must be
//      stopped by brute budgets after generating far more atoms.
//  E10 join-order bias: delta-driven semi-naive evaluation (recursive
//      operand anchored) vs naive re-evaluation.
//  E11 materialization at strata boundaries: dropping relations no later
//      stratum reads trades a recomputation guarantee for memory.

#include <cstdint>
#include <string>

#include "ast/parser.h"
#include "bench_util.h"
#include "chase/chase.h"
#include "datalog/seminaive.h"
#include "gen/generators.h"
#include "storage/homomorphism.h"

using namespace vadalog;
using namespace vadalog::bench;

namespace {

void TerminationControl() {
  Banner("E9 / Section 7 (1)",
         "isomorphism-based termination control bounds the warded chase; "
         "ablation: off = atom budget required, many more atoms");
  Row("%8s | %10s %10s | %12s %12s", "facts", "on-atoms", "on-ms",
      "off-atoms", "off-ms");
  for (uint32_t facts : {10u, 30u, 100u, 300u}) {
    std::string text = R"(
      r(X, Z) :- p(X).
      p(Y) :- r(X, Y).
    )";
    for (uint32_t i = 0; i < facts; ++i) {
      text += "p(c" + std::to_string(i) + ").\n";
    }
    ParseResult parsed = ParseProgram(text);
    Program program = std::move(*parsed.program);
    Instance db = DatabaseFromFacts(program.facts());

    Timer on_timer;
    ChaseResult on = RunChase(program, db);
    double on_ms = on_timer.Ms();

    ChaseOptions off_options;
    off_options.isomorphism_termination = false;
    off_options.max_atoms = facts * 40;  // brute budget stands in
    Timer off_timer;
    ChaseResult off = RunChase(program, db, off_options);
    double off_ms = off_timer.Ms();

    Row("%8u | %10zu %10.2f | %12zu %12.2f", facts, on.instance.size(),
        on_ms, off.instance.size(), off_ms);
  }
}

void JoinOrderBias() {
  Banner("E10 / Section 7 (2)",
         "join ordering biased to the mutually recursive operand "
         "(delta-anchored semi-naive) vs unbiased naive re-evaluation");
  Row("%8s | %10s %12s | %10s %12s | %8s", "nodes", "semi-ms",
      "semi-apps", "naive-ms", "naive-apps", "speedup");
  for (uint32_t nodes : {50u, 100u, 200u, 400u}) {
    Program program = MakeTransitiveClosureProgram(/*linear=*/true);
    Rng rng(nodes * 3);
    AddRandomGraphFacts(&program, "e", nodes, nodes * 2, &rng);
    Instance db = DatabaseFromFacts(program.facts());

    Timer semi_timer;
    DatalogResult semi = EvaluateDatalog(program, db);
    double semi_ms = semi_timer.Ms();

    DatalogOptions naive_options;
    naive_options.seminaive = false;
    Timer naive_timer;
    DatalogResult naive = EvaluateDatalog(program, db, naive_options);
    double naive_ms = naive_timer.Ms();

    Row("%8u | %10.2f %12lu | %10.2f %12lu | %7.1fx", nodes, semi_ms,
        static_cast<unsigned long>(semi.rule_applications), naive_ms,
        static_cast<unsigned long>(naive.rule_applications),
        semi_ms > 0 ? naive_ms / semi_ms : 0.0);
    if (semi.instance.size() != naive.instance.size()) {
      Row("  !! ablation changed the fixpoint");
    }
  }
}

void StrataMaterialization() {
  Banner("E11 / Section 7 (3)",
         "materialization nodes at PWL strata boundaries: pinned "
         "intermediate results allow dropping upstream state (less "
         "memory), at the price of losing the dropped relations");
  Row("%8s | %12s %12s | %12s %12s", "nodes", "plain-peak", "final-atoms",
      "mat-peak", "final-atoms");
  const char* rules = R"(
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    pair(X, Y) :- t(X, Y).
    pair(X, Z) :- pair(X, Y), t(Y, Z).
    top(X) :- pair(X, X).
  )";
  for (uint32_t nodes : {30u, 60u, 120u, 240u}) {
    ParseResult parsed = ParseProgram(rules);
    Program program = std::move(*parsed.program);
    Rng rng(nodes * 7);
    AddRandomGraphFacts(&program, "e", nodes, nodes * 2, &rng);
    Instance db = DatabaseFromFacts(program.facts());

    DatalogResult plain = EvaluateDatalog(program, db);

    DatalogOptions mat;
    mat.materialize_strata = true;
    mat.preserve = {program.symbols().FindPredicate("top")};
    DatalogResult gc = EvaluateDatalog(program, db, mat);

    Row("%8u | %12s %12zu | %12s %12zu", nodes,
        HumanBytes(plain.peak_instance_bytes).c_str(), plain.instance.size(),
        HumanBytes(gc.peak_instance_bytes).c_str(), gc.instance.size());
    PredicateId top = program.symbols().FindPredicate("top");
    const Relation* plain_top = plain.instance.RelationFor(top);
    const Relation* gc_top = gc.instance.RelationFor(top);
    size_t a = plain_top == nullptr ? 0 : plain_top->size();
    size_t b = gc_top == nullptr ? 0 : gc_top->size();
    if (a != b) Row("  !! ablation changed the query result");
  }
}

}  // namespace

int main() {
  TerminationControl();
  JoinOrderBias();
  StrataMaterialization();
  return 0;
}
