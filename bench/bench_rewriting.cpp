// Experiment E7 (Theorem 6.3 (1)): (WARD ∩ PWL, CQ) =cep PWL-Datalog.
// The Lemma 6.4 rewriter compiles a PWL-warded query into piece-wise
// linear Datalog; we report rewriting cost (states explored, rules
// emitted) and verify answer equivalence against the chase across
// databases of growing size. Expected shape: the rewriting is database-
// independent (one-time cost); evaluation matches the chase everywhere.

#include <cstdint>

#include "analysis/classify.h"
#include "analysis/fragments.h"
#include "ast/parser.h"
#include "bench_util.h"
#include "datalog/seminaive.h"
#include "engine/certain.h"
#include "gen/generators.h"
#include "rewriting/pwl_to_datalog.h"
#include "storage/homomorphism.h"

using namespace vadalog;
using namespace vadalog::bench;

int main() {
  Banner("E7 / Theorem 6.3 (1)",
         "WARD∩PWL queries compile to equivalent piece-wise linear "
         "Datalog; one-time rewrite, database-independent");

  struct Spec {
    const char* name;
    const char* rules;
    const char* query;
  };
  const Spec specs[] = {
      {"reachability",
       "t(X, Y) :- e(X, Y).\n t(X, Z) :- e(X, Y), t(Y, Z).",
       "?(X, Y) :- t(X, Y)."},
      {"warded-exists",
       "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).\n p(X) :- e(X, Y).",
       "?(X) :- p(X)."},
      {"subclass-star",
       "s(X, Y) :- e(X, Y).\n s(X, Z) :- s(X, Y), e(Y, Z).",
       "?(X, Y) :- s(X, Y)."},
  };
  // The Theorem 4.8 width bound is worst-case; the exhaustive
  // database-independent exploration is exponential in it. Capping the
  // width at an empirically sufficient value is validated by the
  // equivalence column.
  const size_t width_cap[] = {0, 0, 4};

  Row("%-14s %10s %10s %10s | %8s %10s %10s %6s", "program", "rw-ms",
      "states", "rules", "nodes", "dlog-ms", "chase-ms", "same");
  for (size_t spec_index = 0; spec_index < 3; ++spec_index) {
    const Spec& spec = specs[spec_index];
    ParseResult parsed = ParseProgram(spec.rules);
    Program program = std::move(*parsed.program);
    std::string err = ParseInto(spec.query, &program);
    if (!err.empty()) return 1;
    NormalizeToSingleHead(&program, nullptr);
    ConjunctiveQuery query = program.queries()[0];

    Timer rewrite_timer;
    RewriteOptions options;
    options.max_states = 200000;
    options.node_width = width_cap[spec_index];
    RewriteResult rewrite = RewritePwlWardedToDatalog(program, query, options);
    double rewrite_ms = rewrite_timer.Ms();
    if (!rewrite.datalog.has_value()) {
      Row("%-14s rewriting exhausted its budget", spec.name);
      continue;
    }
    if (!IsPiecewiseLinear(*rewrite.datalog) || !IsDatalog(*rewrite.datalog)) {
      Row("%-14s !! output not PWL Datalog", spec.name);
      continue;
    }

    for (uint32_t nodes : {20u, 60u, 120u}) {
      Program data = CloneProgram(program);
      Rng rng(nodes + 5);
      AddRandomGraphFacts(&data, "e", nodes, nodes * 2, &rng);
      Instance db = DatabaseFromFacts(data.facts());

      Timer datalog_timer;
      DatalogResult datalog = EvaluateDatalog(*rewrite.datalog, db);
      std::vector<std::vector<Term>> via_rewriting =
          EvaluateQuerySorted(rewrite.goal, datalog.instance);
      double datalog_ms = datalog_timer.Ms();

      Timer chase_timer;
      std::vector<std::vector<Term>> via_chase =
          CertainAnswersViaChase(program, db, query);
      double chase_ms = chase_timer.Ms();

      Row("%-14s %10.2f %10lu %10lu | %8u %10.2f %10.2f %6s", spec.name,
          rewrite_ms, static_cast<unsigned long>(rewrite.states_explored),
          static_cast<unsigned long>(rewrite.rules_emitted), nodes,
          datalog_ms, chase_ms, via_rewriting == via_chase ? "yes" : "NO");
    }
  }
  return 0;
}
