// Experiment E5 (Section 1.2): the linearization rewrite. The non-linear
// transitive closure  T(x,y),T(y,z) → T(x,z)  and its linearized form
// E(x,y),T(y,z) → T(x,z)  compute the same relation; the linear form
// fires far fewer redundant triggers under semi-naive evaluation. We
// report derivation counts, rounds, and time for both on the same graphs.
// Expected shape: same answers; linear wins on trigger volume and time,
// increasingly so on denser graphs.

#include <cstdint>

#include "analysis/linearize.h"
#include "bench_util.h"
#include "datalog/seminaive.h"
#include "gen/generators.h"
#include "storage/homomorphism.h"

using namespace vadalog;
using namespace vadalog::bench;

int main() {
  Banner("E5 / Section 1.2 (linearization)",
         "non-linear TC vs auto-linearized TC: same answers, fewer "
         "semi-naive derivations and less time for the linear form");

  Row("%8s %8s | %10s %10s | %10s %10s | %6s", "nodes", "edges",
      "nl-ms", "nl-apps", "lin-ms", "lin-apps", "same");
  for (uint32_t nodes : {50u, 100u, 200u, 400u}) {
    uint64_t edges = nodes * 3;
    Program nonlinear = MakeTransitiveClosureProgram(/*linear=*/false);
    Rng rng1(nodes);
    AddRandomGraphFacts(&nonlinear, "e", nodes, edges, &rng1);

    // The Section 1.2 elimination procedure, applied automatically.
    Program linearized = MakeTransitiveClosureProgram(/*linear=*/false);
    Rng rng2(nodes);
    AddRandomGraphFacts(&linearized, "e", nodes, edges, &rng2);
    LinearizeResult transform = LinearizeProgram(&linearized);
    if (!transform.now_piecewise) {
      Row("linearization failed unexpectedly");
      return 1;
    }

    Instance db1 = DatabaseFromFacts(nonlinear.facts());
    Instance db2 = DatabaseFromFacts(linearized.facts());

    Timer nl_timer;
    DatalogResult nl = EvaluateDatalog(nonlinear, db1);
    double nl_ms = nl_timer.Ms();

    Timer lin_timer;
    DatalogResult lin = EvaluateDatalog(linearized, db2);
    double lin_ms = lin_timer.Ms();

    PredicateId t1 = nonlinear.symbols().FindPredicate("t");
    PredicateId t2 = linearized.symbols().FindPredicate("t");
    const Relation* r1 = nl.instance.RelationFor(t1);
    const Relation* r2 = lin.instance.RelationFor(t2);
    bool same = (r1 == nullptr ? 0 : r1->size()) ==
                (r2 == nullptr ? 0 : r2->size());

    Row("%8u %8lu | %10.2f %10lu | %10.2f %10lu | %6s", nodes,
        static_cast<unsigned long>(edges), nl_ms,
        static_cast<unsigned long>(nl.rule_applications), lin_ms,
        static_cast<unsigned long>(lin.rule_applications),
        same ? "yes" : "NO");
  }
  return 0;
}
