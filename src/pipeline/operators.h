// A streaming operator network, mirroring the Vadalog system architecture
// sketched in Section 7 (3): "the Vadalog system builds from the plan
// constructed by the optimizer a network of operator nodes. This allows
// streaming of data through such a system. [...] the system may decide to
// insert materialization nodes at the boundaries of these strata."
//
// This module provides a pull-based (Volcano-style) operator tree over
// instances: scans, index-nested-loop joins, selections, projections to a
// rule head, deduplication, and an explicit materialization operator. The
// plan builder compiles one Datalog rule body into an operator tree whose
// join order anchors the mutually recursive operand first (the Section
// 7 (2) bias), and the executor runs stratified fixpoints by re-pulling
// the network per round with delta anchoring.

#ifndef VADALOG_PIPELINE_OPERATORS_H_
#define VADALOG_PIPELINE_OPERATORS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/atom.h"
#include "ast/program.h"
#include "ast/rule.h"
#include "storage/instance.h"

namespace vadalog {

/// A streamed row: the current variable binding, represented as a flat
/// substitution. Operators extend and filter it as it flows upward.
using Binding = Substitution;

/// Pull-based operator interface. Open() resets the stream; Next()
/// produces the next binding or nullopt at end of stream.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual void Open() = 0;
  virtual std::optional<Binding> Next() = 0;

  /// One-line plan description (for ExplainPlan).
  virtual std::string Describe(const SymbolTable& symbols) const = 0;

  /// Plan children (for ExplainPlan rendering).
  virtual std::vector<const Operator*> Children() const { return {}; }
};

/// Scans a relation, matching the tuple against an atom pattern (binding
/// the pattern's variables; rigid positions filter).
class ScanOperator : public Operator {
 public:
  ScanOperator(const Instance* instance, Atom pattern);

  void Open() override;
  std::optional<Binding> Next() override;
  std::string Describe(const SymbolTable& symbols) const override;

 private:
  const Instance* instance_;
  Atom pattern_;
  size_t row_ = 0;
};

/// Scans a fixed vector of atoms (the delta of a semi-naive round).
class DeltaScanOperator : public Operator {
 public:
  DeltaScanOperator(const std::vector<Atom>* delta, Atom pattern);

  void Open() override;
  std::optional<Binding> Next() override;
  std::string Describe(const SymbolTable& symbols) const override;

 private:
  const std::vector<Atom>* delta_;
  Atom pattern_;
  size_t index_ = 0;
};

/// Index nested-loop join: for each left binding, probes the right atom
/// pattern against the instance through the most selective bound position.
class JoinOperator : public Operator {
 public:
  JoinOperator(std::unique_ptr<Operator> left, const Instance* instance,
               Atom right_pattern);

  void Open() override;
  std::optional<Binding> Next() override;
  std::string Describe(const SymbolTable& symbols) const override;
  std::vector<const Operator*> Children() const override {
    return {left_.get()};
  }

 private:
  bool AdvanceLeft();

  std::unique_ptr<Operator> left_;
  const Instance* instance_;
  Atom pattern_;
  std::optional<Binding> current_left_;
  std::vector<uint32_t> probe_rows_;  // candidate row ids for current left
  size_t probe_index_ = 0;
  bool scan_all_ = false;             // no bound position: full scan
  size_t scan_row_ = 0;
};

/// Anti-join for stratified negation: passes a binding iff the negated
/// pattern (ground under the binding) is absent from the instance.
class AntiJoinOperator : public Operator {
 public:
  AntiJoinOperator(std::unique_ptr<Operator> input, const Instance* instance,
                   Atom negated_pattern);

  void Open() override;
  std::optional<Binding> Next() override;
  std::string Describe(const SymbolTable& symbols) const override;
  std::vector<const Operator*> Children() const override {
    return {input_.get()};
  }

 private:
  std::unique_ptr<Operator> input_;
  const Instance* instance_;
  Atom pattern_;
};

/// Narrows each binding to the given variable set (typically the head
/// variables); the executor instantiates the head atom from the narrowed
/// binding.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(std::unique_ptr<Operator> input,
                  std::vector<Term> variables);

  void Open() override;
  std::optional<Binding> Next() override;
  std::string Describe(const SymbolTable& symbols) const override;
  std::vector<const Operator*> Children() const override {
    return {input_.get()};
  }

 private:
  std::unique_ptr<Operator> input_;
  std::vector<Term> variables_;
};

/// Deduplicates bindings (on the narrowed variable set).
class DedupOperator : public Operator {
 public:
  explicit DedupOperator(std::unique_ptr<Operator> input);

  void Open() override;
  std::optional<Binding> Next() override;
  std::string Describe(const SymbolTable& symbols) const override;
  std::vector<const Operator*> Children() const override {
    return {input_.get()};
  }

 private:
  std::unique_ptr<Operator> input_;
  std::set<std::vector<Term>> seen_;
  std::vector<Term> key_order_;
};

/// A materialization node (Section 7 (3)): drains its input eagerly at
/// Open() into a buffer and replays it. Decouples upstream operator state
/// from downstream consumption — the strata-boundary trade-off.
class MaterializeOperator : public Operator {
 public:
  explicit MaterializeOperator(std::unique_ptr<Operator> input);

  void Open() override;
  std::optional<Binding> Next() override;
  std::string Describe(const SymbolTable& symbols) const override;
  std::vector<const Operator*> Children() const override {
    return {input_.get()};
  }

  size_t buffered_rows() const { return buffer_.size(); }

 private:
  std::unique_ptr<Operator> input_;
  std::vector<Binding> buffer_;
  size_t replay_ = 0;
  bool drained_ = false;
};

/// Renders an operator tree, one node per line, indented.
std::string ExplainPlan(const Operator& root, const SymbolTable& symbols);

}  // namespace vadalog

#endif  // VADALOG_PIPELINE_OPERATORS_H_
