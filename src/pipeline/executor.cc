#include "pipeline/executor.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "analysis/predicate_graph.h"
#include "pipeline/operators.h"

namespace vadalog {
namespace {

/// Head variables of a rule, deduplicated, deterministic order.
std::vector<Term> HeadVariables(const Tgd& rule) {
  std::vector<Term> variables;
  for (Term t : rule.head[0].args) {
    if (t.is_variable() &&
        std::find(variables.begin(), variables.end(), t) == variables.end()) {
      variables.push_back(t);
    }
  }
  return variables;
}

/// Builds the operator tree for one rule: anchor scan (delta or full),
/// index joins for the remaining positive atoms in body order, anti-joins
/// for the negated atoms, projection to the head variables, dedup, and an
/// optional materialization root.
std::unique_ptr<Operator> BuildRulePlan(const Tgd& rule,
                                        const Instance* instance,
                                        const std::vector<Atom>* delta,
                                        size_t anchor,
                                        const PipelineOptions& options) {
  std::unique_ptr<Operator> plan;
  if (delta != nullptr) {
    plan = std::make_unique<DeltaScanOperator>(delta, rule.body[anchor]);
  } else {
    plan = std::make_unique<ScanOperator>(instance, rule.body[anchor]);
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i == anchor) continue;
    plan = std::make_unique<JoinOperator>(std::move(plan), instance,
                                          rule.body[i]);
  }
  for (const Atom& negated : rule.negative_body) {
    plan = std::make_unique<AntiJoinOperator>(std::move(plan), instance,
                                              negated);
  }
  plan = std::make_unique<ProjectOperator>(std::move(plan),
                                           HeadVariables(rule));
  plan = std::make_unique<DedupOperator>(std::move(plan));
  if (options.materialize_rule_outputs) {
    plan = std::make_unique<MaterializeOperator>(std::move(plan));
  }
  return plan;
}

/// Drains a plan and instantiates the rule head per emitted binding.
void DrainPlan(Operator* plan, const Tgd& rule, std::vector<Atom>* out) {
  plan->Open();
  for (;;) {
    std::optional<Binding> binding = plan->Next();
    if (!binding.has_value()) break;
    out->push_back(ApplySubstitution(*binding, rule.head[0]));
  }
}

}  // namespace

PipelineResult ExecutePipeline(const Program& program,
                               const Instance& database,
                               const PipelineOptions& options) {
  PipelineResult result;
  Instance& instance = result.instance;

  PredicateGraph graph(program);
  if (!graph.NegationIsStratified()) {
    result.stratification_ok = false;
    result.reached_fixpoint = false;
    return result;
  }
  for (const Atom& fact : database.AllAtoms()) instance.Insert(fact);

  const std::vector<int>& topo = graph.TopologicalComponents();
  std::unordered_map<int, size_t> stratum_of_component;
  for (size_t i = 0; i < topo.size(); ++i) stratum_of_component[topo[i]] = i;
  std::vector<std::vector<size_t>> rules_by_stratum(topo.size());
  for (size_t r = 0; r < program.tgds().size(); ++r) {
    const Tgd& rule = program.tgds()[r];
    assert(rule.IsDatalogRule() &&
           "ExecutePipeline requires full single-head rules");
    rules_by_stratum[stratum_of_component.at(
                         graph.ComponentOf(rule.head[0].predicate))]
        .push_back(r);
  }

  // Anchor order per rule: recursive operands first when requested.
  auto anchor_order = [&](const Tgd& rule) {
    std::vector<size_t> order(rule.body.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (options.recursive_operand_first) {
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        bool ra = graph.MutuallyRecursive(rule.body[a].predicate,
                                          rule.head[0].predicate);
        bool rb = graph.MutuallyRecursive(rule.body[b].predicate,
                                          rule.head[0].predicate);
        return ra > rb;
      });
    }
    return order;
  };

  // Capture a sample plan from the first recursive rule.
  for (size_t r = 0; r < program.tgds().size() && result.sample_plan.empty();
       ++r) {
    const Tgd& rule = program.tgds()[r];
    for (const Atom& body : rule.body) {
      if (graph.MutuallyRecursive(body.predicate, rule.head[0].predicate)) {
        std::vector<Atom> empty_delta;
        std::unique_ptr<Operator> plan = BuildRulePlan(
            rule, &instance, &empty_delta, anchor_order(rule)[0], options);
        result.sample_plan = ExplainPlan(*plan, program.symbols());
        break;
      }
    }
  }

  for (const std::vector<size_t>& rules : rules_by_stratum) {
    if (rules.empty()) continue;

    // Seed round: full scans.
    std::vector<Atom> produced;
    for (size_t r : rules) {
      const Tgd& rule = program.tgds()[r];
      std::unique_ptr<Operator> plan =
          BuildRulePlan(rule, &instance, nullptr, 0, options);
      DrainPlan(plan.get(), rule, &produced);
    }
    std::vector<Atom> delta;
    for (Atom& atom : produced) {
      if (instance.Insert(atom)) {
        ++result.derived;
        delta.push_back(std::move(atom));
      }
    }
    ++result.rounds;

    // Delta rounds.
    while (!delta.empty()) {
      if (options.max_rounds != 0 && result.rounds >= options.max_rounds) {
        result.reached_fixpoint = false;
        break;
      }
      std::vector<Atom> round_output;
      for (size_t r : rules) {
        const Tgd& rule = program.tgds()[r];
        for (size_t anchor : anchor_order(rule)) {
          std::unique_ptr<Operator> plan =
              BuildRulePlan(rule, &instance, &delta, anchor, options);
          DrainPlan(plan.get(), rule, &round_output);
        }
      }
      std::vector<Atom> next_delta;
      for (Atom& atom : round_output) {
        if (instance.Insert(atom)) {
          ++result.derived;
          next_delta.push_back(std::move(atom));
        }
      }
      ++result.rounds;
      delta = std::move(next_delta);
    }
  }

  return result;
}

}  // namespace vadalog
