#include "pipeline/operators.h"

#include <algorithm>

namespace vadalog {
namespace {

/// Attempts to extend `binding` so that `pattern` maps onto `tuple`.
/// Returns nullopt on mismatch; otherwise the extended binding.
std::optional<Binding> MatchTuple(const Atom& pattern,
                                  const std::vector<Term>& tuple,
                                  const Binding& binding) {
  Binding extended = binding;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    Term t = ApplySubstitution(extended, pattern.args[i]);
    if (t.is_rigid()) {
      if (t != tuple[i]) return std::nullopt;
    } else {
      extended.emplace(t, tuple[i]);
    }
  }
  return extended;
}

}  // namespace

// ---------------------------------------------------------------- Scan --

ScanOperator::ScanOperator(const Instance* instance, Atom pattern)
    : instance_(instance), pattern_(std::move(pattern)) {}

void ScanOperator::Open() { row_ = 0; }

std::optional<Binding> ScanOperator::Next() {
  const Relation* rel = instance_->RelationFor(pattern_.predicate);
  if (rel == nullptr) return std::nullopt;
  while (row_ < rel->size()) {
    std::optional<Binding> match =
        MatchTuple(pattern_, rel->TupleAt(row_++), {});
    if (match.has_value()) return match;
  }
  return std::nullopt;
}

std::string ScanOperator::Describe(const SymbolTable& symbols) const {
  return "Scan[" + pattern_.ToString(symbols) + "]";
}

// ----------------------------------------------------------- DeltaScan --

DeltaScanOperator::DeltaScanOperator(const std::vector<Atom>* delta,
                                     Atom pattern)
    : delta_(delta), pattern_(std::move(pattern)) {}

void DeltaScanOperator::Open() { index_ = 0; }

std::optional<Binding> DeltaScanOperator::Next() {
  while (index_ < delta_->size()) {
    const Atom& atom = (*delta_)[index_++];
    if (atom.predicate != pattern_.predicate) continue;
    std::optional<Binding> match = MatchTuple(pattern_, atom.args, {});
    if (match.has_value()) return match;
  }
  return std::nullopt;
}

std::string DeltaScanOperator::Describe(const SymbolTable& symbols) const {
  return "DeltaScan[" + pattern_.ToString(symbols) + "]";
}

// ---------------------------------------------------------------- Join --

JoinOperator::JoinOperator(std::unique_ptr<Operator> left,
                           const Instance* instance, Atom right_pattern)
    : left_(std::move(left)),
      instance_(instance),
      pattern_(std::move(right_pattern)) {}

void JoinOperator::Open() {
  left_->Open();
  current_left_.reset();
  probe_rows_.clear();
  probe_index_ = 0;
  scan_all_ = false;
  scan_row_ = 0;
}

bool JoinOperator::AdvanceLeft() {
  current_left_ = left_->Next();
  if (!current_left_.has_value()) return false;
  probe_rows_.clear();
  probe_index_ = 0;
  scan_all_ = false;
  scan_row_ = 0;

  const Relation* rel = instance_->RelationFor(pattern_.predicate);
  if (rel == nullptr) return true;  // no probe candidates: skip this left

  // Most selective bound position under the current left binding.
  int best_position = -1;
  size_t best_count = ~size_t{0};
  for (size_t i = 0; i < pattern_.args.size(); ++i) {
    Term t = ApplySubstitution(*current_left_, pattern_.args[i]);
    if (!t.is_rigid()) continue;
    size_t count = rel->RowsWith(static_cast<uint32_t>(i), t).size();
    if (count < best_count) {
      best_count = count;
      best_position = static_cast<int>(i);
    }
  }
  if (best_position < 0) {
    scan_all_ = true;
  } else {
    Term key = ApplySubstitution(
        *current_left_, pattern_.args[static_cast<size_t>(best_position)]);
    probe_rows_ = rel->RowsWith(static_cast<uint32_t>(best_position), key);
  }
  return true;
}

std::optional<Binding> JoinOperator::Next() {
  const Relation* rel = instance_->RelationFor(pattern_.predicate);
  for (;;) {
    if (!current_left_.has_value()) {
      if (!AdvanceLeft()) return std::nullopt;
      continue;
    }
    if (rel == nullptr) {
      current_left_.reset();
      continue;
    }
    if (scan_all_) {
      while (scan_row_ < rel->size()) {
        std::optional<Binding> match = MatchTuple(
            pattern_, rel->TupleAt(scan_row_++), *current_left_);
        if (match.has_value()) return match;
      }
    } else {
      while (probe_index_ < probe_rows_.size()) {
        std::optional<Binding> match = MatchTuple(
            pattern_, rel->TupleAt(probe_rows_[probe_index_++]),
            *current_left_);
        if (match.has_value()) return match;
      }
    }
    current_left_.reset();
  }
}

std::string JoinOperator::Describe(const SymbolTable& symbols) const {
  return "IndexJoin[" + pattern_.ToString(symbols) + "]";
}

// ------------------------------------------------------------ AntiJoin --

AntiJoinOperator::AntiJoinOperator(std::unique_ptr<Operator> input,
                                   const Instance* instance,
                                   Atom negated_pattern)
    : input_(std::move(input)),
      instance_(instance),
      pattern_(std::move(negated_pattern)) {}

void AntiJoinOperator::Open() { input_->Open(); }

std::optional<Binding> AntiJoinOperator::Next() {
  for (;;) {
    std::optional<Binding> binding = input_->Next();
    if (!binding.has_value()) return std::nullopt;
    Atom ground = ApplySubstitution(*binding, pattern_);
    if (!instance_->Contains(ground)) return binding;
  }
}

std::string AntiJoinOperator::Describe(const SymbolTable& symbols) const {
  return "AntiJoin[not " + pattern_.ToString(symbols) + "]";
}

// ------------------------------------------------------------- Project --

ProjectOperator::ProjectOperator(std::unique_ptr<Operator> input,
                                 std::vector<Term> variables)
    : input_(std::move(input)), variables_(std::move(variables)) {}

void ProjectOperator::Open() { input_->Open(); }

std::optional<Binding> ProjectOperator::Next() {
  std::optional<Binding> binding = input_->Next();
  if (!binding.has_value()) return std::nullopt;
  Binding narrowed;
  for (Term v : variables_) {
    auto it = binding->find(v);
    if (it != binding->end()) narrowed.emplace(v, it->second);
  }
  return narrowed;
}

std::string ProjectOperator::Describe(const SymbolTable& symbols) const {
  std::string out = "Project[";
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.TermToString(variables_[i]);
  }
  return out + "]";
}

// --------------------------------------------------------------- Dedup --

DedupOperator::DedupOperator(std::unique_ptr<Operator> input)
    : input_(std::move(input)) {}

void DedupOperator::Open() {
  input_->Open();
  seen_.clear();
  key_order_.clear();
}

std::optional<Binding> DedupOperator::Next() {
  for (;;) {
    std::optional<Binding> binding = input_->Next();
    if (!binding.has_value()) return std::nullopt;
    if (key_order_.empty()) {
      for (const auto& [var, value] : *binding) key_order_.push_back(var);
      std::sort(key_order_.begin(), key_order_.end());
    }
    std::vector<Term> key;
    key.reserve(key_order_.size());
    for (Term v : key_order_) key.push_back(ApplySubstitution(*binding, v));
    if (seen_.insert(std::move(key)).second) return binding;
  }
}

std::string DedupOperator::Describe(const SymbolTable&) const {
  return "Dedup";
}

// --------------------------------------------------------- Materialize --

MaterializeOperator::MaterializeOperator(std::unique_ptr<Operator> input)
    : input_(std::move(input)) {}

void MaterializeOperator::Open() {
  if (!drained_) {
    input_->Open();
    for (;;) {
      std::optional<Binding> binding = input_->Next();
      if (!binding.has_value()) break;
      buffer_.push_back(std::move(*binding));
    }
    drained_ = true;
  }
  replay_ = 0;
}

std::optional<Binding> MaterializeOperator::Next() {
  if (replay_ >= buffer_.size()) return std::nullopt;
  return buffer_[replay_++];
}

std::string MaterializeOperator::Describe(const SymbolTable&) const {
  return "Materialize[" + std::to_string(buffer_.size()) + " rows]";
}

// --------------------------------------------------------------- Plans --

namespace {

void Render(const Operator& node, const SymbolTable& symbols, int depth,
            std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.Describe(symbols));
  out->push_back('\n');
  for (const Operator* child : node.Children()) {
    Render(*child, symbols, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const Operator& root, const SymbolTable& symbols) {
  std::string out;
  Render(root, symbols, 0, &out);
  return out;
}

}  // namespace vadalog
