// Stratified fixpoint execution over operator networks: the pipeline
// counterpart of datalog/seminaive.h, built from the Section 7 (3)
// operator nodes. One plan per rule; delta anchoring implements the
// Section 7 (2) join-order bias (the mutually recursive operand drives
// the join); optional materialization nodes cap each rule's root.
//
// Answers must coincide with EvaluateDatalog — asserted by the pipeline
// tests — making this an executable model of the Vadalog architecture
// rather than an alternative semantics.

#ifndef VADALOG_PIPELINE_EXECUTOR_H_
#define VADALOG_PIPELINE_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "ast/program.h"
#include "storage/instance.h"

namespace vadalog {

struct PipelineOptions {
  /// Insert a materialization node at the root of every rule plan
  /// (Section 7 (3)): each round's results are pinned before insertion.
  bool materialize_rule_outputs = false;

  /// Anchor delta scans on body atoms whose predicate is mutually
  /// recursive with the head first (Section 7 (2)). When false, anchors
  /// are tried in body order.
  bool recursive_operand_first = true;

  /// 0 = unlimited.
  uint64_t max_rounds = 0;
};

struct PipelineResult {
  Instance instance;
  uint64_t rounds = 0;
  uint64_t derived = 0;
  bool reached_fixpoint = true;
  bool stratification_ok = true;
  /// The rendered operator network of the first recursive rule (empty if
  /// none) — exposed for inspection and tests.
  std::string sample_plan;
};

/// Runs the stratified pipeline over a Datalog program (FULL1, optional
/// stratified negation).
PipelineResult ExecutePipeline(const Program& program,
                               const Instance& database,
                               const PipelineOptions& options = {});

}  // namespace vadalog

#endif  // VADALOG_PIPELINE_EXECUTOR_H_
