#include "gen/data_exchange.h"

#include <cassert>
#include <string>

#include "ast/parser.h"

namespace vadalog {
namespace {

/// Emits the rules of one mapping primitive with relation-name prefix i.
std::string PrimitiveRules(MappingPrimitive primitive, uint32_t i) {
  std::string s = "s" + std::to_string(i);
  std::string t = "t" + std::to_string(i);
  switch (primitive) {
    case MappingPrimitive::kCopy:
      return t + "(X, Y) :- " + s + "(X, Y).\n";
    case MappingPrimitive::kProjection:
      // Drop the second source attribute, invent a completion value.
      return t + "(X, Z) :- " + s + "(X, Y).\n";
    case MappingPrimitive::kVerticalPartition:
      // Split a ternary source across two targets joined by an invented
      // key (the same null in both heads).
      return t + "a(X, K), " + t + "b(K, Y, W) :- " + s + "(X, Y, W).\n";
    case MappingPrimitive::kFusion:
      return t + "(X, Y) :- " + s + "a(X, Y).\n" +
             t + "(X, Y) :- " + s + "b(X, Y).\n";
    case MappingPrimitive::kGlavJoin:
      return t + "(X, Z, W) :- " + s + "a(X, Y), " + s + "b(Y, Z).\n";
  }
  return "";
}

/// Source relations (name, arity) read by a primitive with prefix i.
std::vector<std::pair<std::string, uint32_t>> PrimitiveSources(
    MappingPrimitive primitive, uint32_t i) {
  std::string s = "s" + std::to_string(i);
  switch (primitive) {
    case MappingPrimitive::kCopy:
    case MappingPrimitive::kProjection:
      return {{s, 2}};
    case MappingPrimitive::kVerticalPartition:
      return {{s, 3}};
    case MappingPrimitive::kFusion:
      return {{s + "a", 2}, {s + "b", 2}};
    case MappingPrimitive::kGlavJoin:
      return {{s + "a", 2}, {s + "b", 2}};
  }
  return {};
}

}  // namespace

Program GenerateDataExchangeScenario(const DataExchangeSpec& spec) {
  std::string text;
  for (uint32_t i = 0; i < spec.primitives.size(); ++i) {
    text += PrimitiveRules(spec.primitives[i], i);
  }
  ParseResult parsed = ParseProgram(text);
  assert(parsed.ok());
  Program program = std::move(*parsed.program);

  if (spec.facts_per_source > 0) {
    Rng rng(spec.seed);
    SymbolTable& symbols = program.symbols();
    for (uint32_t i = 0; i < spec.primitives.size(); ++i) {
      for (auto& [name, arity] : PrimitiveSources(spec.primitives[i], i)) {
        PredicateId pred = symbols.InternPredicate(name, arity);
        for (uint64_t k = 0; k < spec.facts_per_source; ++k) {
          std::vector<Term> args;
          for (uint32_t a = 0; a < arity; ++a) {
            args.push_back(symbols.InternConstant(
                "d" + std::to_string(rng.Below(spec.domain_size))));
          }
          program.AddFact(Atom(pred, std::move(args)));
        }
      }
    }
  }
  return program;
}

std::vector<Program> GenerateDataExchangeSuite(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Program> suite;
  suite.reserve(count);
  constexpr MappingPrimitive kAll[] = {
      MappingPrimitive::kCopy, MappingPrimitive::kProjection,
      MappingPrimitive::kVerticalPartition, MappingPrimitive::kFusion,
      MappingPrimitive::kGlavJoin};
  for (size_t i = 0; i < count; ++i) {
    DataExchangeSpec spec;
    size_t primitives = 1 + rng.Below(4);
    for (size_t p = 0; p < primitives; ++p) {
      spec.primitives.push_back(kAll[rng.Below(5)]);
    }
    spec.seed = seed * 31 + i;
    suite.push_back(GenerateDataExchangeScenario(spec));
  }
  return suite;
}

}  // namespace vadalog
