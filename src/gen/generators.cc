#include "gen/generators.h"

#include <cassert>

#include "ast/parser.h"

namespace vadalog {
namespace {

Term NodeConstant(Program* program, uint32_t index) {
  return program->symbols().InternConstant("v" + std::to_string(index));
}

}  // namespace

void AddRandomGraphFacts(Program* program, const std::string& edge_predicate,
                         uint32_t num_nodes, uint64_t num_edges, Rng* rng) {
  PredicateId edge = program->symbols().InternPredicate(edge_predicate, 2);
  for (uint64_t i = 0; i < num_edges; ++i) {
    Term from = NodeConstant(program, static_cast<uint32_t>(
                                          rng->Below(num_nodes)));
    Term to = NodeConstant(program, static_cast<uint32_t>(
                                        rng->Below(num_nodes)));
    program->AddFact(Atom(edge, {from, to}));
  }
}

void AddChainGraphFacts(Program* program, const std::string& edge_predicate,
                        uint32_t num_nodes) {
  PredicateId edge = program->symbols().InternPredicate(edge_predicate, 2);
  for (uint32_t i = 0; i + 1 < num_nodes; ++i) {
    program->AddFact(
        Atom(edge, {NodeConstant(program, i), NodeConstant(program, i + 1)}));
  }
}

Program MakeTransitiveClosureProgram(bool linear) {
  const char* text = linear ? R"(
      t(X, Y) :- e(X, Y).
      t(X, Z) :- e(X, Y), t(Y, Z).
    )"
                            : R"(
      t(X, Y) :- e(X, Y).
      t(X, Z) :- t(X, Y), t(Y, Z).
    )";
  ParseResult parsed = ParseProgram(text);
  assert(parsed.ok());
  return std::move(*parsed.program);
}

Program MakeOwl2QlProgram() {
  // Example 3.3; the underlined wards are subclassStar/type/triple atoms.
  const char* text = R"(
    subclassStar(X, Y) :- subclass(X, Y).
    subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).
    type(X, Z) :- type(X, Y), subclassStar(Y, Z).
    triple(X, Z, W) :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).
    type(X, W) :- triple(X, Y, Z), restriction(W, Y).
  )";
  ParseResult parsed = ParseProgram(text);
  assert(parsed.ok());
  return std::move(*parsed.program);
}

void AddOntologyFacts(Program* program, uint32_t num_classes,
                      uint32_t num_properties, uint32_t num_individuals,
                      Rng* rng) {
  SymbolTable& symbols = program->symbols();
  PredicateId subclass = symbols.InternPredicate("subclass", 2);
  PredicateId restriction = symbols.InternPredicate("restriction", 2);
  PredicateId inverse = symbols.InternPredicate("inverse", 2);
  PredicateId type = symbols.InternPredicate("type", 2);

  auto class_constant = [&](uint32_t i) {
    return symbols.InternConstant("class" + std::to_string(i));
  };
  auto property_constant = [&](uint32_t i) {
    return symbols.InternConstant("prop" + std::to_string(i));
  };
  auto individual_constant = [&](uint32_t i) {
    return symbols.InternConstant("ind" + std::to_string(i));
  };

  // Subclass forest: each non-root class gets a parent with smaller index.
  for (uint32_t c = 1; c < num_classes; ++c) {
    uint32_t parent = static_cast<uint32_t>(rng->Below(c));
    program->AddFact(
        Atom(subclass, {class_constant(c), class_constant(parent)}));
  }
  // Restrictions tie classes to properties; inverses pair properties.
  for (uint32_t p = 0; p < num_properties; ++p) {
    uint32_t c = static_cast<uint32_t>(rng->Below(num_classes));
    program->AddFact(
        Atom(restriction, {class_constant(c), property_constant(p)}));
    if (p + 1 < num_properties && rng->Chance(0.5)) {
      program->AddFact(
          Atom(inverse, {property_constant(p), property_constant(p + 1)}));
    }
  }
  // Typed individuals.
  for (uint32_t i = 0; i < num_individuals; ++i) {
    uint32_t c = static_cast<uint32_t>(rng->Below(num_classes));
    program->AddFact(Atom(type, {individual_constant(i), class_constant(c)}));
  }
}

Program GenerateScenario(const ScenarioSpec& spec) {
  Rng rng(spec.seed);
  std::string text;
  auto edb = [](uint32_t stratum) { return "e" + std::to_string(stratum); };
  auto idb = [](uint32_t stratum, uint32_t i) {
    return "p" + std::to_string(stratum) + "_" + std::to_string(i);
  };

  for (uint32_t s = 0; s < spec.num_strata; ++s) {
    // The stratum's base predicate feeds on the previous stratum (or on an
    // extensional predicate for stratum 0).
    std::string lower = s == 0 ? edb(0) : idb(s - 1, 0);
    for (uint32_t r = 0; r < spec.rules_per_stratum; ++r) {
      std::string p = idb(s, r);
      // Exit rule.
      text += p + "(X, Y) :- " + lower + "(X, Y).\n";
      switch (spec.shape) {
        case RecursionShape::kLinear:
          // p(X,Z) :- p(X,Y), e(Y,Z): one intensional body atom.
          text += p + "(X, Z) :- " + p + "(X, Y), " + edb(s) + "(Y, Z).\n";
          break;
        case RecursionShape::kPiecewiseLinear:
          // Two intensional body atoms, one mutually recursive with the
          // head (the Example 3.3 Type/SubClass* pattern).
          text += p + "(X, Z) :- " + p + "(X, Y), " + lower + "(Y, Z).\n";
          break;
        case RecursionShape::kLinearizable:
          // Transitive-closure-style: rewritable by LinearizeProgram.
          text += p + "(X, Z) :- " + p + "(X, Y), " + p + "(Y, Z).\n";
          break;
        case RecursionShape::kNonLinear: {
          // Mutually recursive pair q ↔ p with two q-atoms in one body:
          // not PWL and outside the chain-closure linearization pattern.
          std::string q = p + "q";
          text += q + "(X, Y) :- " + p + "(X, Y).\n";
          text += p + "(X, Z) :- " + q + "(X, Y), " + q + "(Y, Z).\n";
          break;
        }
      }
      if (spec.with_existentials && rng.Chance(0.6)) {
        // A self-contained warded ∃-pattern (the Section 3 example
        // P(x) → ∃z R(x,z); R(x,y) → P(y)): the dangerous variable of the
        // third rule is confined to its single-atom ward. Kept disjoint
        // from the main hierarchy so affected positions do not leak into
        // the other shapes' rules.
        std::string pw = p + "w";
        std::string aux = p + "wr";
        text += pw + "(X) :- " + edb(s) + "(X, Y).\n";
        text += aux + "(X, Z) :- " + pw + "(X).\n";  // Z existential
        text += pw + "(Y) :- " + aux + "(X, Y).\n";
        break;
      }
    }
  }
  ParseResult parsed = ParseProgram(text);
  assert(parsed.ok());
  return std::move(*parsed.program);
}

std::vector<Program> GenerateScenarioSuite(size_t count,
                                           const SuiteMixture& mixture,
                                           uint64_t seed) {
  Rng rng(seed);
  double total = mixture.linear + mixture.piecewise + mixture.linearizable +
                 mixture.nonlinear;
  std::vector<Program> suite;
  suite.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double draw = rng.Uniform() * total;
    ScenarioSpec spec;
    if (draw < mixture.linear) {
      spec.shape = RecursionShape::kLinear;
    } else if (draw < mixture.linear + mixture.piecewise) {
      spec.shape = RecursionShape::kPiecewiseLinear;
    } else if (draw <
               mixture.linear + mixture.piecewise + mixture.linearizable) {
      spec.shape = RecursionShape::kLinearizable;
    } else {
      spec.shape = RecursionShape::kNonLinear;
    }
    spec.num_strata = 1 + static_cast<uint32_t>(rng.Below(3));
    spec.rules_per_stratum = 1 + static_cast<uint32_t>(rng.Below(3));
    spec.with_existentials = rng.Chance(0.5);
    spec.seed = seed * 7919 + i;
    suite.push_back(GenerateScenario(spec));
  }
  return suite;
}

}  // namespace vadalog
