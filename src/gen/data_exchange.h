// iBench/ChaseBench-style data-exchange scenarios. The corpora the paper
// analyzed (Section 1.2) mix recursive reasoning sets with classical
// data-exchange mappings; this module generates the latter: source-to-
// target TGDs following the iBench mapping primitives [3]
//   copy, projection (with existential completion), vertical partitioning
//   (shared existential key), fusion (merging sources), and a GLAV join.
// All generated scenarios are warded (dangerous variables stay confined
// to single-atom wards) and — being non-recursive or tamely recursive —
// piece-wise linear, matching the paper's observation that the
// data-exchange corpora fall inside the fragment.

#ifndef VADALOG_GEN_DATA_EXCHANGE_H_
#define VADALOG_GEN_DATA_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "ast/program.h"
#include "base/rng.h"

namespace vadalog {

enum class MappingPrimitive : uint8_t {
  kCopy,               // S(x̄) → T(x̄)
  kProjection,         // S(x,y) → ∃z T(x,z): drop + invent
  kVerticalPartition,  // S(x,y,w) → ∃k (T1(x,k), T2(k,y,w))
  kFusion,             // S1(x,y) → T(x,y);  S2(x,y) → T(x,y)
  kGlavJoin,           // S1(x,y), S2(y,z) → ∃w T(x,z,w)
};

struct DataExchangeSpec {
  std::vector<MappingPrimitive> primitives;  // one mapping per entry
  uint64_t seed = 1;
  /// Also emit `facts_per_source` random source facts per source relation.
  uint64_t facts_per_source = 0;
  uint32_t domain_size = 8;
};

/// Generates a data-exchange scenario: one set of mappings per primitive,
/// over disjoint source/target relations named s{i}_* / t{i}_*.
Program GenerateDataExchangeScenario(const DataExchangeSpec& spec);

/// A mixed suite of `count` scenarios drawing 1–4 primitives each.
std::vector<Program> GenerateDataExchangeSuite(size_t count, uint64_t seed);

}  // namespace vadalog

#endif  // VADALOG_GEN_DATA_EXCHANGE_H_
