// Workload generators: random graph and ontology databases, the Example
// 3.3 OWL 2 QL program, and an iWarded-style scenario generator emitting
// warded TGD-sets with controlled recursion shapes (experiment E4).
//
// The paper analyzed proprietary benchmark corpora (ChaseBench, iBench,
// iWarded, DBpedia, industrial scenarios); per DESIGN.md §2 we substitute
// a synthetic generator whose scenario mixture is calibrated to the corpus
// profile reported in Section 1.2 (≈55% directly piece-wise linear, ≈15%
// linearizable into PWL, ≈30% other). The classifier and linearizer under
// test are the real artifacts.

#ifndef VADALOG_GEN_GENERATORS_H_
#define VADALOG_GEN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/program.h"
#include "base/rng.h"

namespace vadalog {

/// Adds `num_edges` random edge facts over `num_nodes` constants named
/// v0..v{n-1} to `program` under binary predicate `edge_predicate`.
void AddRandomGraphFacts(Program* program, const std::string& edge_predicate,
                         uint32_t num_nodes, uint64_t num_edges, Rng* rng);

/// Adds a simple-path chain v0 → v1 → ... → v{n-1} (worst case for
/// reachability depth).
void AddChainGraphFacts(Program* program, const std::string& edge_predicate,
                        uint32_t num_nodes);

/// The transitive-closure program of Section 1.2:
///   non-linear:  E→T;  T(x,y), T(y,z) → T(x,z)
///   linear:      E→T;  E(x,y), T(y,z) → T(x,z)
Program MakeTransitiveClosureProgram(bool linear);

/// The warded, piece-wise linear OWL 2 QL entailment fragment of Example
/// 3.3 (SubClass/SubClass*/Type/Triple/Restriction/Inverse rules).
Program MakeOwl2QlProgram();

/// Populates an OWL 2 QL database: a random subclass forest over
/// `num_classes` classes, `num_properties` properties with restrictions
/// and inverses, and `num_individuals` typed individuals.
void AddOntologyFacts(Program* program, uint32_t num_classes,
                      uint32_t num_properties, uint32_t num_individuals,
                      Rng* rng);

/// Recursion shapes for generated scenarios.
enum class RecursionShape : uint8_t {
  kLinear,              // at most one intensional body atom, directly PWL
  kPiecewiseLinear,     // ≥2 intensional body atoms, one mutually recursive
  kLinearizable,        // transitive-closure-style non-linear (Sec. 1.2)
  kNonLinear,           // genuinely non-PWL recursion
};

struct ScenarioSpec {
  RecursionShape shape = RecursionShape::kLinear;
  uint32_t num_strata = 2;        // depth of the predicate-level hierarchy
  uint32_t rules_per_stratum = 2;
  bool with_existentials = true;  // sprinkle warded ∃-rules
  uint64_t seed = 1;
};

/// Generates one warded TGD-set with the requested recursion shape.
Program GenerateScenario(const ScenarioSpec& spec);

/// Mixture weights for a scenario suite (normalized internally).
struct SuiteMixture {
  double linear = 0.30;
  double piecewise = 0.25;       // linear + piecewise ≈ 55% directly PWL
  double linearizable = 0.15;    // +15% PWL after rewriting
  double nonlinear = 0.30;       // remaining ≈ 30%
};

/// Generates `count` scenarios with shapes drawn from `mixture`.
std::vector<Program> GenerateScenarioSuite(size_t count,
                                           const SuiteMixture& mixture,
                                           uint64_t seed);

}  // namespace vadalog

#endif  // VADALOG_GEN_GENERATORS_H_
