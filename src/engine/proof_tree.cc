#include "engine/proof_tree.h"

namespace vadalog {

std::string ProofStep::ToString(const Program& program) const {
  const SymbolTable& symbols = program.symbols();
  std::string out;
  switch (kind) {
    case Kind::kStart:
      out = "start        ";
      break;
    case Kind::kResolution:
      out = "resolve      [" +
            program.tgds()[tgd_index].ToString(symbols) + "]  => ";
      break;
    case Kind::kMatchDrop:
      out = "match+drop   [" + matched_fact.ToString(symbols) + "]  => ";
      break;
    case Kind::kLeafDischarge:
      out = "discharge    [satisfiable component]  => ";
      break;
  }
  if (state.empty()) {
    out += "{} (accept)";
  } else {
    out += "{" + AtomsToString(state, symbols) + "}";
  }
  return out;
}

std::string ProofExplanation::ToString(const Program& program) const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    out += std::to_string(i) + ": " + steps[i].ToString(program) + "\n";
  }
  return out;
}

}  // namespace vadalog
