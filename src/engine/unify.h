// Most general unifiers for atoms over constants, nulls, and variables
// (no function symbols). Used by chunk-based resolution (Definition 4.3).

#ifndef VADALOG_ENGINE_UNIFY_H_
#define VADALOG_ENGINE_UNIFY_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "ast/atom.h"

namespace vadalog {

/// A unifier under construction: a union-find-style binding map. Rigid
/// terms (constants/nulls) are never bound; variables may be bound to
/// variables or rigid terms. Resolve() follows binding chains.
///
/// Bindings are only ever inserted, so the unifier keeps an insertion
/// journal: Mark()/Rewind() give cheap backtracking (the chunk DFS of
/// resolution extends one shared unifier instead of copying it per branch).
class Unifier {
 public:
  /// Follows bindings until a rigid term or an unbound variable.
  Term Resolve(Term t) const;

  /// Unifies two terms; returns false on clash (two distinct rigids).
  bool Unify(Term a, Term b);

  /// Unifies two atoms position-wise; false on predicate/arity mismatch or
  /// clash. On failure, bindings added by the partial walk remain; use
  /// Mark()/Rewind() to restore.
  bool UnifyAtoms(const Atom& a, const Atom& b);

  /// Journal position for Rewind().
  size_t Mark() const { return journal_.size(); }

  /// Erases every binding inserted after `mark` (LIFO undo).
  void Rewind(size_t mark);

  /// The substitution mapping every bound variable to its fully resolved
  /// value. Unbound variables are left out (identity).
  Substitution ToSubstitution() const;

  /// All variables v (bound or not) whose resolved representative equals
  /// Resolve(t); includes t itself when t is a variable. Used to inspect
  /// the equivalence class of an existential variable when validating a
  /// chunk unifier.
  std::vector<Term> ClassOf(Term t) const;

 private:
  std::unordered_map<Term, Term> bindings_;
  std::vector<Term> journal_;  // keys of bindings_, in insertion order
};

/// Convenience: MGU of two atoms, or nullopt.
std::optional<Substitution> MostGeneralUnifier(const Atom& a, const Atom& b);

}  // namespace vadalog

#endif  // VADALOG_ENGINE_UNIFY_H_
