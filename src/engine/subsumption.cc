#include "engine/subsumption.h"

#include <algorithm>
#include <limits>

#include "storage/homomorphism.h"

namespace vadalog {
namespace {

// Hom checks per query before giving up. Subsumption is an optimization:
// missing a prune is always sound, so a deterministic cap bounds the
// worst-case insertion cost on searches with huge same-predicate buckets.
// Size-layered buckets make the capped prefix the most general subsumers.
// A missed prune forfeits a whole subtree while a hom check costs well
// under a microsecond, so the cap errs generous; the adaptive gate below
// handles workloads where subsumption never fires at all.
constexpr uint64_t kMaxHomChecksPerQuery = 64;

// Deterministic self-disable, in units of work-per-prune: a successful
// prune saves at least one state expansion (usually a whole subtree),
// worth roughly a couple hundred hom checks. Once the index has burned
// kAdaptiveProbation checks and is paying more than kMaxChecksPerHit
// checks per hit, the workload's states are evidently (near-)pairwise
// incomparable and every further query is a net loss — stop checking.
constexpr uint64_t kAdaptiveProbation = 16384;
constexpr uint64_t kMaxChecksPerHit = 32;

}  // namespace

uint64_t SubsumptionIndex::MaskOf(const std::vector<Atom>& atoms) {
  uint64_t mask = 0;
  for (const Atom& a : atoms) mask |= uint64_t{1} << (a.predicate % 64);
  return mask;
}

uint64_t SubsumptionIndex::RigidMaskOf(const std::vector<Atom>& atoms) {
  uint64_t mask = 0;
  for (const Atom& a : atoms) {
    for (Term t : a.args) {
      if (t.is_rigid()) {
        mask |= uint64_t{1} << (std::hash<Term>{}(t) & 63);
      }
    }
  }
  return mask;
}

int64_t SubsumptionIndex::Add(const CanonicalState& state, size_t width,
                              size_t chunk) {
  // The empty state never arises here (it is the accepting state).
  if (state.atoms.empty()) return -1;
  Entry entry;
  entry.atoms = state.atoms;
  entry.mask = MaskOf(state.atoms);
  entry.rigid_mask = RigidMaskOf(state.atoms);
  entry.width = static_cast<uint32_t>(
      std::min<size_t>(width, std::numeric_limits<uint32_t>::max()));
  entry.chunk = static_cast<uint32_t>(
      std::min<size_t>(chunk, std::numeric_limits<uint32_t>::max()));
  for (const Atom& a : entry.atoms) {
    atom_bytes_ += sizeof(Atom) + a.args.size() * sizeof(Term);
  }

  PredicateId min_predicate = entry.atoms[0].predicate;
  for (const Atom& a : entry.atoms) {
    min_predicate = std::min(min_predicate, a.predicate);
  }
  if (buckets_.size() <= min_predicate) buckets_.resize(min_predicate + 1);
  std::vector<std::vector<uint32_t>>& layers = buckets_[min_predicate];
  size_t layer = entry.atoms.size() - 1;
  if (layers.size() <= layer) layers.resize(layer + 1);
  int64_t id = static_cast<int64_t>(entries_.size());
  layers[layer].push_back(static_cast<uint32_t>(id));
  entries_.push_back(std::move(entry));
  return id;
}

int64_t SubsumptionIndex::FindSubsumer(const CanonicalState& state,
                                       size_t width, size_t chunk,
                                       int64_t same_size_before,
                                       Stats* probe_stats) const {
  Stats& stats = probe_stats != nullptr ? *probe_stats : stats_;
  if (entries_.empty() || state.atoms.empty()) return -1;
  // The adaptive gate always counts the index's lifetime block on top of
  // an external probe block: private blocks start at zero, and without
  // the lifetime term every branch task of every search would re-pay the
  // whole probation window on workloads the gate long since learned to
  // skip. Deterministic: stats_ is frozen while external-block probes
  // run (merges happen at end of search, single-threaded), so the sum
  // depends only on the probing searcher's own query sequence.
  uint64_t gate_checks = stats.hom_checks;
  uint64_t gate_hits = stats.hits;
  if (probe_stats != nullptr) {
    gate_checks += stats_.hom_checks;
    gate_hits += stats_.hits;
  }
  if (gate_checks >= kAdaptiveProbation &&
      gate_checks > gate_hits * kMaxChecksPerHit) {
    ++stats.disabled_skips;
    return -1;
  }
  ++stats.queries;
  uint64_t state_mask = MaskOf(state.atoms);
  uint64_t state_rigid = RigidMaskOf(state.atoms);
  uint64_t checks = 0;
  // The subsumer's predicates are a subset of the state's, so its
  // min-predicate bucket is keyed by one of the state's predicates.
  // Distinct predicates only: consecutive canonical atoms share buckets.
  static thread_local std::vector<PredicateId> predicates;
  predicates.clear();
  PredicateId last = std::numeric_limits<PredicateId>::max();
  for (const Atom& a : state.atoms) {
    if (a.predicate != last && a.predicate < buckets_.size()) {
      predicates.push_back(a.predicate);
    }
    last = a.predicate;
  }
  // Smallest layers first: the most general subsumers prune the most, so
  // they get the capped hom-check budget.
  size_t same_size_layer = state.atoms.size() - 1;
  for (size_t layer = 0; layer <= same_size_layer; ++layer) {
    for (PredicateId p : predicates) {
      if (layer >= buckets_[p].size()) continue;
      for (uint32_t id : buckets_[p][layer]) {
        if (layer == same_size_layer &&
            static_cast<int64_t>(id) >= same_size_before) {
          continue;
        }
        const Entry& entry = entries_[id];
        if (entry.suppressed != 0) continue;
        if ((entry.mask & ~state_mask) != 0) continue;
        if ((entry.rigid_mask & ~state_rigid) != 0) continue;
        if (entry.width < width || entry.chunk < chunk) continue;
        if (checks >= kMaxHomChecksPerQuery) {
          ++stats.capped;
          return -1;
        }
        ++checks;
        ++stats.hom_checks;
        if (HasStateHomomorphism(entry.atoms, state.atoms)) {
          ++stats.hits;
          return static_cast<int64_t>(id);
        }
      }
    }
  }
  return -1;
}

size_t SubsumptionIndex::InvalidateByPredicate(
    const std::vector<char>& affected) {
  size_t dropped = 0;
  for (Entry& entry : entries_) {
    if (entry.suppressed != 0) continue;
    bool stale = false;
    for (const Atom& a : entry.atoms) {
      if (a.predicate < affected.size() && affected[a.predicate] != 0) {
        stale = true;
        break;
      }
    }
    if (!stale) continue;
    for (const Atom& a : entry.atoms) {
      atom_bytes_ -= sizeof(Atom) + a.args.size() * sizeof(Term);
    }
    std::vector<Atom>().swap(entry.atoms);
    entry.suppressed = 1;
    ++dropped;
  }
  return dropped;
}

size_t SubsumptionIndex::ApproximateBytes() const {
  return atom_bytes_ + entries_.size() * sizeof(Entry) +
         entries_.size() * sizeof(uint32_t);
}

}  // namespace vadalog
