#include "engine/search_cache.h"

#include <algorithm>

#include "analysis/predicate_graph.h"

namespace vadalog {

ProgramIndex::ProgramIndex(const Program& program, const Instance& database) {
  const std::vector<Tgd>& tgds = program.tgds();
  size_t max_predicate = 0;
  auto note = [&max_predicate](PredicateId p) {
    max_predicate = std::max<size_t>(max_predicate, p);
  };
  for (const Tgd& tgd : tgds) {
    for (const Atom& a : tgd.head) note(a.predicate);
    for (const Atom& a : tgd.body) note(a.predicate);
  }
  for (PredicateId p : database.Predicates()) note(p);
  tgds_by_head_.resize(max_predicate + 1);
  supported_.assign(max_predicate + 1, 0);
  heads_by_body_.resize(max_predicate + 1);

  for (size_t i = 0; i < tgds.size(); ++i) {
    for (const Atom& head : tgds[i].head) {
      tgds_by_head_[head.predicate].push_back(i);
      for (const Atom& body : tgds[i].body) {
        heads_by_body_[body.predicate].push_back(head.predicate);
      }
    }
  }
  for (std::vector<PredicateId>& heads : heads_by_body_) {
    std::sort(heads.begin(), heads.end());
    heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
  }

  // Supported-predicate least fixpoint, seeded with the database
  // predicates and evaluated one SCC of pg(Σ) at a time in topological
  // order: a head's body can only mention predicates of the same SCC or of
  // earlier ones, so each component stabilizes with a local iteration.
  for (PredicateId p : database.Predicates()) supported_[p] = 1;
  PredicateGraph graph(program);
  auto body_supported = [this](const Tgd& tgd) {
    for (const Atom& a : tgd.body) {
      if (!Supported(a.predicate)) return false;
    }
    return true;
  };
  for (int scc : graph.TopologicalComponents()) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (PredicateId p : graph.Component(scc)) {
        if (Supported(p)) continue;
        for (size_t tgd_index : TgdsWithHead(p)) {
          if (body_supported(tgds[tgd_index])) {
            supported_[p] = 1;
            changed = true;
            break;
          }
        }
      }
    }
  }
}

const std::vector<size_t>& ProgramIndex::TgdsWithHead(PredicateId p) const {
  return p < tgds_by_head_.size() ? tgds_by_head_[p] : no_tgds_;
}

std::vector<char> ProgramIndex::AffectedByDelta(
    const std::vector<PredicateId>& delta) const {
  std::vector<char> affected(supported_.size(), 0);
  std::vector<PredicateId> frontier;
  for (PredicateId p : delta) {
    if (p < affected.size() && affected[p] == 0) {
      affected[p] = 1;
      frontier.push_back(p);
    }
  }
  while (!frontier.empty()) {
    PredicateId p = frontier.back();
    frontier.pop_back();
    for (PredicateId head : heads_by_body_[p]) {
      if (affected[head] == 0) {
        affected[head] = 1;
        frontier.push_back(head);
      }
    }
  }
  return affected;
}

bool ProgramIndex::StateIsDead(const std::vector<Atom>& atoms,
                               const Instance& database) const {
  for (const Atom& atom : atoms) {
    if (!Supported(atom.predicate)) return true;
    if (!RuleDerivable(atom.predicate) &&
        EstimateMatches(atom, database) == 0) {
      return true;
    }
  }
  return false;
}

ProofSearchCache::ProofSearchCache(const Program& program,
                                   const Instance& database)
    : index_(program, database) {}

ProofSearchCache::Key ProofSearchCache::InternKey(const CanonicalState& state) {
  Key key;
  key.reserve(state.atoms.size());
  size_t offset = 0;
  for (const Atom& atom : state.atoms) {
    size_t len = 1 + atom.args.size();
    std::vector<uint64_t> chunk(state.encoding.begin() + offset,
                                state.encoding.begin() + offset + len);
    offset += len;
    uint32_t next_id = static_cast<uint32_t>(atom_ids_.size());
    auto [it, inserted] = atom_ids_.try_emplace(std::move(chunk), next_id);
    if (inserted) {
      interned_words_ += len;
      atom_predicates_.push_back(atom.predicate);
    }
    key.push_back(it->second);
  }
  return key;
}

bool ProofSearchCache::BuildKey(const CanonicalState& state, Key* out) const {
  // Thread-local scratch: concurrent lookups (from the parallel frontier
  // workers) must not share a member buffer.
  static thread_local std::vector<uint64_t> chunk_scratch;
  out->clear();
  out->reserve(state.atoms.size());
  size_t offset = 0;
  for (const Atom& atom : state.atoms) {
    size_t len = 1 + atom.args.size();
    chunk_scratch.assign(state.encoding.begin() + offset,
                         state.encoding.begin() + offset + len);
    offset += len;
    auto it = atom_ids_.find(chunk_scratch);
    if (it == atom_ids_.end()) return false;  // unseen atom => unseen state
    out->push_back(it->second);
  }
  return true;
}

bool ProofSearchCache::Lookup(const Table& table, const CanonicalState& state,
                              size_t width, size_t max_chunk,
                              bool entry_must_cover) {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  if (table.empty()) return false;  // cold cache: skip the key walk
  Key key;
  if (!BuildKey(state, &key)) return false;
  auto it = table.find(key);
  if (it == table.end()) return false;
  const Bound& entry = it->second;
  // A refutation transfers to a search exploring no more than the
  // recording one (entry covers the request); a proof to one exploring no
  // less (request covers the entry).
  bool usable = entry_must_cover
                    ? (entry.width >= width && entry.chunk >= max_chunk)
                    : (entry.width <= width && entry.chunk <= max_chunk);
  if (usable) stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return usable;
}

bool ProofSearchCache::Record(Table* table, const CanonicalState& state,
                              size_t width, size_t max_chunk,
                              bool keep_larger) {
  Bound fresh{
      static_cast<uint32_t>(std::min<size_t>(width, UINT32_MAX)),
      static_cast<uint32_t>(std::min<size_t>(max_chunk, UINT32_MAX))};
  Key key = InternKey(state);
  size_t key_len = key.size();
  auto [it, inserted] = table->try_emplace(std::move(key), fresh);
  if (inserted) {
    stats_.insertions.fetch_add(1, std::memory_order_relaxed);
    key_words_ += key_len;
    return true;
  }
  // Only replace when the new bound dominates the stored one in the
  // direction that makes the entry more reusable; incomparable bounds keep
  // the existing entry (both claims are true, we just keep one).
  Bound& stored = it->second;
  bool dominates = keep_larger ? (fresh.width >= stored.width &&
                                  fresh.chunk >= stored.chunk)
                               : (fresh.width <= stored.width &&
                                  fresh.chunk <= stored.chunk);
  if (dominates) stored = fresh;
  return false;
}

bool ProofSearchCache::LinearKnownRefuted(const CanonicalState& state,
                                          size_t width, size_t max_chunk) {
  base::ReaderLock lock(&mutex_);
  return Lookup(linear_refuted_, state, width, max_chunk,
                /*entry_must_cover=*/true);
}

void ProofSearchCache::LinearRecordRefuted(const CanonicalState& state,
                                           size_t width, size_t max_chunk) {
  base::WriterLock lock(&mutex_);
  if (Record(&linear_refuted_, state, width, max_chunk,
             /*keep_larger=*/true)) {
    // Fresh refutations also enter the subsumption index (with their
    // insert-time bound; later bound upgrades are not mirrored — a stale
    // narrower entry is still sound, just less reusable).
    linear_refuted_states_.Add(state, width, max_chunk);
  }
}

bool ProofSearchCache::AltKnownProven(const CanonicalState& state,
                                      size_t width, size_t max_chunk) {
  base::ReaderLock lock(&mutex_);
  return Lookup(alt_proven_, state, width, max_chunk,
                /*entry_must_cover=*/false);
}

bool ProofSearchCache::AltKnownRefuted(const CanonicalState& state,
                                       size_t width, size_t max_chunk) {
  base::ReaderLock lock(&mutex_);
  return Lookup(alt_refuted_, state, width, max_chunk,
                /*entry_must_cover=*/true);
}

void ProofSearchCache::AltRecordProven(const CanonicalState& state,
                                       size_t width, size_t max_chunk) {
  base::WriterLock lock(&mutex_);
  Record(&alt_proven_, state, width, max_chunk, /*keep_larger=*/false);
}

void ProofSearchCache::AltRecordRefuted(const CanonicalState& state,
                                        size_t width, size_t max_chunk) {
  base::WriterLock lock(&mutex_);
  if (Record(&alt_refuted_, state, width, max_chunk, /*keep_larger=*/true)) {
    alt_refuted_states_.Add(state, width, max_chunk);
  }
}

ProofSearchCache::DeltaInvalidation ProofSearchCache::InvalidateForDelta(
    const Program& program, const Instance& database,
    const std::vector<PredicateId>& delta_predicates) {
  base::WriterLock lock(&mutex_);
  DeltaInvalidation result;
  // The schema-sized index is rebuilt first: the supported fixpoint and
  // the per-atom match estimates are monotone in the database, so the
  // fresh index only ever prunes less than the stale one did.
  index_ = ProgramIndex(program, database);
  std::vector<char> affected = index_.AffectedByDelta(delta_predicates);
  for (char flag : affected) {
    result.affected_predicates += static_cast<size_t>(flag);
  }

  // One staleness bit per interned atom id; stored keys are tested by id
  // without re-decoding the atom encoding.
  std::vector<char> stale_atom(atom_predicates_.size(), 0);
  bool any_stale = false;
  for (size_t id = 0; id < atom_predicates_.size(); ++id) {
    PredicateId p = atom_predicates_[id];
    if (p < affected.size() && affected[p] != 0) {
      stale_atom[id] = 1;
      any_stale = true;
    }
  }
  result.proven_kept = alt_proven_.size();
  if (!any_stale) return result;

  auto key_is_stale = [&stale_atom](const Key& key) {
    for (uint32_t id : key) {
      if (stale_atom[id] != 0) return true;
    }
    return false;
  };
  auto drop_stale = [&](Table* table) {
    for (auto it = table->begin(); it != table->end();) {
      if (key_is_stale(it->first)) {
        key_words_ -= it->first.size();
        it = table->erase(it);
        ++result.exact_dropped;
      } else {
        ++it;
      }
    }
  };
  // Refutations ("cannot reach the empty state") can be voided by new
  // facts in their cone; proofs are monotone and all survive.
  drop_stale(&linear_refuted_);
  drop_stale(&alt_refuted_);
  result.subsumers_dropped =
      linear_refuted_states_.InvalidateByPredicate(affected) +
      alt_refuted_states_.InvalidateByPredicate(affected);
  return result;
}

size_t ProofSearchCache::ApproximateBytes() const {
  base::ReaderLock lock(&mutex_);
  size_t entries = linear_refuted_.size() + alt_proven_.size() +
                   alt_refuted_.size();
  return interned_words_ * sizeof(uint64_t) + key_words_ * sizeof(uint32_t) +
         atom_predicates_.size() * sizeof(PredicateId) +
         entries * sizeof(Bound) + linear_refuted_states_.ApproximateBytes() +
         alt_refuted_states_.ApproximateBytes();
}

}  // namespace vadalog
