#include "engine/resolution.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "engine/unify.h"

namespace vadalog {
namespace {

/// Validates the existential-variable conditions of a chunk unifier and, on
/// success, emits the resolvent.
bool TryEmitResolvent(const std::vector<Atom>& state,
                      const std::vector<size_t>& chunk, const Tgd& renamed,
                      const std::vector<Term>& existentials,
                      uint64_t fresh_variable_base, const Unifier& unifier,
                      size_t tgd_index, std::vector<Resolvent>* out) {
  // Variables of the chunk (S1) and of the remainder of the state. States
  // are node-width bounded, so flat membership structures beat hash sets;
  // the buffers are thread-local scratch (this runs millions of times per
  // search, mostly failing the validation below).
  static thread_local std::vector<char> in_chunk;
  static thread_local std::vector<Term> chunk_vars;
  static thread_local std::vector<Term> rest_vars;
  in_chunk.assign(state.size(), 0);
  chunk_vars.clear();
  rest_vars.clear();
  for (size_t i : chunk) in_chunk[i] = 1;
  for (size_t i = 0; i < state.size(); ++i) {
    std::vector<Term>& vars = in_chunk[i] ? chunk_vars : rest_vars;
    for (Term t : state[i].args) {
      if (t.is_variable()) vars.push_back(t);
    }
  }
  auto contains = [](const std::vector<Term>& vars, Term t) {
    return std::find(vars.begin(), vars.end(), t) != vars.end();
  };

  auto is_sigma_variable = [fresh_variable_base](Term t) {
    return t.is_variable() && t.index() >= fresh_variable_base;
  };

  for (Term x : existentials) {
    // (1) γ(x) must not be rigid: a fresh null can never equal a constant
    // or a pre-existing null.
    Term resolved = unifier.Resolve(x);
    if (resolved.is_rigid()) return false;
    // (2) every variable unified with x must be a non-shared variable of
    // the chunk. Unifying x with any variable of σ (a frontier variable or
    // another existential) is unsound as well: a fresh null is distinct
    // from every other term of the chase.
    for (Term y : unifier.ClassOf(x)) {
      if (y == x) continue;
      if (is_sigma_variable(y)) return false;
      if (!contains(chunk_vars, y)) return false;  // must occur in S1
      if (contains(rest_vars, y)) return false;    // and not be shared
    }
  }

  // γ applied on the fly: Resolve() maps every bound variable to its
  // representative, which is exactly ToSubstitution() without building the
  // intermediate map.
  Resolvent resolvent;
  resolvent.tgd_index = tgd_index;
  resolvent.chunk = chunk;
  std::sort(resolvent.chunk.begin(), resolvent.chunk.end());
  resolvent.atoms.reserve(state.size() - chunk.size() + renamed.body.size());
  auto emit = [&](const Atom& atom) {
    Atom resolved;
    resolved.predicate = atom.predicate;
    resolved.args.reserve(atom.args.size());
    for (Term t : atom.args) resolved.args.push_back(unifier.Resolve(t));
    resolvent.atoms.push_back(std::move(resolved));
  };
  for (size_t i = 0; i < state.size(); ++i) {
    if (!in_chunk[i]) emit(state[i]);
  }
  for (const Atom& b : renamed.body) emit(b);
  out->push_back(std::move(resolvent));
  return true;
}

/// DFS over chunks S1 ⊆ candidate atoms: extends the chunk one atom at a
/// time, unifying incrementally (a chunk that fails to unify prunes all of
/// its supersets). The shared unifier is extended in place and rewound via
/// its journal instead of being copied per branch.
void ExtendChunk(const std::vector<Atom>& state,
                 const std::vector<size_t>& candidates, size_t start,
                 Unifier& unifier, std::vector<size_t>* chunk,
                 const Tgd& renamed, const std::vector<Term>& existentials,
                 uint64_t fresh_variable_base, size_t tgd_index,
                 size_t max_chunk, std::vector<Resolvent>* out) {
  if (!chunk->empty()) {
    TryEmitResolvent(state, *chunk, renamed, existentials,
                     fresh_variable_base, unifier, tgd_index, out);
  }
  if (chunk->size() >= max_chunk) return;
  for (size_t i = start; i < candidates.size(); ++i) {
    size_t mark = unifier.Mark();
    if (unifier.UnifyAtoms(state[candidates[i]], renamed.head[0])) {
      chunk->push_back(candidates[i]);
      ExtendChunk(state, candidates, i + 1, unifier, chunk, renamed,
                  existentials, fresh_variable_base, tgd_index, max_chunk,
                  out);
      chunk->pop_back();
    }
    unifier.Rewind(mark);
  }
}

}  // namespace

std::vector<Resolvent> ResolveWithTgd(const std::vector<Atom>& state,
                                      const Program& program,
                                      size_t tgd_index,
                                      uint64_t fresh_variable_base,
                                      size_t max_chunk, size_t anchor) {
  std::vector<Resolvent> out;
  const Tgd& tgd = program.tgds()[tgd_index];
  assert(tgd.head.size() == 1 &&
         "resolution requires single-head TGDs (normalize first)");
  PredicateId head_predicate = tgd.head[0].predicate;
  if (anchor != kNoAnchor && state[anchor].predicate != head_predicate) {
    return out;  // the anchor can never join a chunk of this TGD
  }
  Tgd renamed = tgd.WithVariableOffset(fresh_variable_base);

  std::vector<size_t> candidates;
  for (size_t i = 0; i < state.size(); ++i) {
    if (state[i].predicate == head_predicate && i != anchor) {
      candidates.push_back(i);
    }
  }

  std::vector<size_t> chunk;
  Unifier unifier;
  if (anchor != kNoAnchor) {
    // Pre-seed the chunk with the anchor; every emitted chunk extends it.
    if (!unifier.UnifyAtoms(state[anchor], renamed.head[0])) return out;
    chunk.push_back(anchor);
  } else if (candidates.empty()) {
    return out;
  }
  std::unordered_set<Term> existential_set = renamed.ExistentialVariables();
  std::vector<Term> existentials(existential_set.begin(),
                                 existential_set.end());
  ExtendChunk(state, candidates, 0, unifier, &chunk, renamed, existentials,
              fresh_variable_base, tgd_index, max_chunk, &out);
  return out;
}

std::vector<Resolvent> ResolveAll(const std::vector<Atom>& state,
                                  const Program& program,
                                  uint64_t fresh_variable_base,
                                  size_t max_chunk) {
  std::vector<Resolvent> out;
  for (size_t i = 0; i < program.tgds().size(); ++i) {
    std::vector<Resolvent> partial = ResolveWithTgd(
        state, program, i, fresh_variable_base, max_chunk);
    for (Resolvent& r : partial) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace vadalog
