#include "engine/resolution.h"

#include <cassert>
#include <unordered_set>

#include "engine/unify.h"

namespace vadalog {
namespace {

/// Validates the existential-variable conditions of a chunk unifier and, on
/// success, emits the resolvent.
bool TryEmitResolvent(const std::vector<Atom>& state,
                      const std::vector<size_t>& chunk, const Tgd& renamed,
                      uint64_t fresh_variable_base, const Unifier& unifier,
                      size_t tgd_index, std::vector<Resolvent>* out) {
  // Variables of the chunk (S1) and of the remainder of the state.
  std::unordered_set<Term> chunk_vars;
  std::unordered_set<size_t> chunk_set(chunk.begin(), chunk.end());
  std::unordered_set<Term> rest_vars;
  for (size_t i = 0; i < state.size(); ++i) {
    for (Term t : state[i].args) {
      if (!t.is_variable()) continue;
      if (chunk_set.count(i) > 0) {
        chunk_vars.insert(t);
      } else {
        rest_vars.insert(t);
      }
    }
  }

  auto is_sigma_variable = [fresh_variable_base](Term t) {
    return t.is_variable() && t.index() >= fresh_variable_base;
  };

  for (Term x : renamed.ExistentialVariables()) {
    // (1) γ(x) must not be rigid: a fresh null can never equal a constant
    // or a pre-existing null.
    Term resolved = unifier.Resolve(x);
    if (resolved.is_rigid()) return false;
    // (2) every variable unified with x must be a non-shared variable of
    // the chunk. Unifying x with any variable of σ (a frontier variable or
    // another existential) is unsound as well: a fresh null is distinct
    // from every other term of the chase.
    for (Term y : unifier.ClassOf(x)) {
      if (y == x) continue;
      if (is_sigma_variable(y)) return false;
      if (chunk_vars.count(y) == 0) return false;   // must occur in S1
      if (rest_vars.count(y) > 0) return false;     // and not be shared
    }
  }

  Substitution gamma = unifier.ToSubstitution();
  Resolvent resolvent;
  resolvent.tgd_index = tgd_index;
  resolvent.chunk = chunk;
  for (size_t i = 0; i < state.size(); ++i) {
    if (chunk_set.count(i) > 0) continue;
    resolvent.atoms.push_back(ApplySubstitution(gamma, state[i]));
  }
  for (const Atom& b : renamed.body) {
    resolvent.atoms.push_back(ApplySubstitution(gamma, b));
  }
  out->push_back(std::move(resolvent));
  return true;
}

/// DFS over chunks S1 ⊆ candidate atoms: extends the chunk one atom at a
/// time, unifying incrementally (a chunk that fails to unify prunes all of
/// its supersets).
void ExtendChunk(const std::vector<Atom>& state,
                 const std::vector<size_t>& candidates, size_t start,
                 const Unifier& unifier, std::vector<size_t>* chunk,
                 const Tgd& renamed, uint64_t fresh_variable_base,
                 size_t tgd_index, size_t max_chunk,
                 std::vector<Resolvent>* out) {
  if (!chunk->empty()) {
    TryEmitResolvent(state, *chunk, renamed, fresh_variable_base, unifier,
                     tgd_index, out);
  }
  if (chunk->size() >= max_chunk) return;
  for (size_t i = start; i < candidates.size(); ++i) {
    Unifier extended = unifier;
    if (!extended.UnifyAtoms(state[candidates[i]], renamed.head[0])) continue;
    chunk->push_back(candidates[i]);
    ExtendChunk(state, candidates, i + 1, extended, chunk, renamed,
                fresh_variable_base, tgd_index, max_chunk, out);
    chunk->pop_back();
  }
}

}  // namespace

std::vector<Resolvent> ResolveWithTgd(const std::vector<Atom>& state,
                                      const Program& program,
                                      size_t tgd_index,
                                      uint64_t fresh_variable_base,
                                      size_t max_chunk) {
  std::vector<Resolvent> out;
  const Tgd& tgd = program.tgds()[tgd_index];
  assert(tgd.head.size() == 1 &&
         "resolution requires single-head TGDs (normalize first)");
  Tgd renamed = tgd.WithVariableOffset(fresh_variable_base);

  std::vector<size_t> candidates;
  for (size_t i = 0; i < state.size(); ++i) {
    if (state[i].predicate == renamed.head[0].predicate) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return out;

  std::vector<size_t> chunk;
  Unifier empty;
  ExtendChunk(state, candidates, 0, empty, &chunk, renamed,
              fresh_variable_base, tgd_index, max_chunk, &out);
  return out;
}

std::vector<Resolvent> ResolveAll(const std::vector<Atom>& state,
                                  const Program& program,
                                  uint64_t fresh_variable_base,
                                  size_t max_chunk) {
  std::vector<Resolvent> out;
  for (size_t i = 0; i < program.tgds().size(); ++i) {
    std::vector<Resolvent> partial = ResolveWithTgd(
        state, program, i, fresh_variable_base, max_chunk);
    for (Resolvent& r : partial) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace vadalog
