#include "engine/unify.h"

namespace vadalog {

Term Unifier::Resolve(Term t) const {
  while (t.is_variable()) {
    auto it = bindings_.find(t);
    if (it == bindings_.end()) return t;
    t = it->second;
  }
  return t;
}

bool Unifier::Unify(Term a, Term b) {
  a = Resolve(a);
  b = Resolve(b);
  if (a == b) return true;
  if (a.is_variable()) {
    bindings_.emplace(a, b);
    journal_.push_back(a);
    return true;
  }
  if (b.is_variable()) {
    bindings_.emplace(b, a);
    journal_.push_back(b);
    return true;
  }
  return false;  // two distinct rigid terms
}

bool Unifier::UnifyAtoms(const Atom& a, const Atom& b) {
  if (a.predicate != b.predicate || a.args.size() != b.args.size()) {
    return false;
  }
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!Unify(a.args[i], b.args[i])) return false;
  }
  return true;
}

void Unifier::Rewind(size_t mark) {
  while (journal_.size() > mark) {
    bindings_.erase(journal_.back());
    journal_.pop_back();
  }
}

Substitution Unifier::ToSubstitution() const {
  Substitution subst;
  for (const auto& [from, to] : bindings_) {
    subst[from] = Resolve(from);
  }
  return subst;
}

std::vector<Term> Unifier::ClassOf(Term t) const {
  Term representative = Resolve(t);
  std::vector<Term> members;
  if (t.is_variable()) members.push_back(t);
  for (const auto& [from, to] : bindings_) {
    if (from != t && Resolve(from) == representative) members.push_back(from);
  }
  // The representative itself, if a variable distinct from t.
  if (representative.is_variable() && representative != t) {
    bool present = false;
    for (Term m : members) present = present || m == representative;
    if (!present) members.push_back(representative);
  }
  return members;
}

std::optional<Substitution> MostGeneralUnifier(const Atom& a, const Atom& b) {
  Unifier unifier;
  if (!unifier.UnifyAtoms(a, b)) return std::nullopt;
  return unifier.ToSubstitution();
}

}  // namespace vadalog
