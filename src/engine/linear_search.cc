#include "engine/linear_search.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/fragments.h"
#include "analysis/predicate_graph.h"
#include "base/hash.h"
#include "engine/resolution.h"
#include "engine/search_cache.h"
#include "engine/state.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

struct EncodingHash {
  size_t operator()(const std::vector<uint64_t>& encoding) const {
    return HashRange(encoding.begin(), encoding.end());
  }
};

/// Provenance edge for proof reconstruction: how a canonical state was
/// first reached.
struct ParentEdge {
  std::vector<uint64_t> parent;  // parent canonical encoding
  ProofStep step;                // op that produced the child
};

}  // namespace

std::optional<std::vector<Atom>> FreezeQuery(const ConjunctiveQuery& query,
                                             const std::vector<Term>& answer) {
  if (answer.size() != query.output.size()) return std::nullopt;
  Substitution freeze;
  for (size_t i = 0; i < answer.size(); ++i) {
    if (!answer[i].is_constant()) return std::nullopt;
    Term out = query.output[i];
    if (out.is_constant()) {
      if (out != answer[i]) return std::nullopt;
      continue;
    }
    auto [it, inserted] = freeze.try_emplace(out, answer[i]);
    if (!inserted && it->second != answer[i]) return std::nullopt;
  }
  return ApplySubstitution(freeze, query.atoms);
}

ProofSearchResult LinearProofSearch(const Program& program,
                                    const Instance& database,
                                    const ConjunctiveQuery& query,
                                    const std::vector<Term>& answer,
                                    const ProofSearchOptions& options,
                                    ProofExplanation* explanation) {
  ProofSearchResult result;

  size_t width = options.node_width;
  if (width == 0) {
    PredicateGraph graph(program);
    width = NodeWidthBoundPwl(query.atoms.size(), program, graph);
  }
  result.node_width_used = width;
  size_t max_chunk =
      options.max_chunk == 0 ? width : std::min(options.max_chunk, width);

  std::optional<std::vector<Atom>> frozen = FreezeQuery(query, answer);
  if (!frozen.has_value()) return result;  // inconsistent candidate

  // The relevance index comes from the shared cache when one is supplied
  // (it must have been built for this same program + database); otherwise
  // a local one is built for this call.
  ProofSearchCache* cache = options.cache;
  std::optional<ProgramIndex> local_index;
  if (cache == nullptr) local_index.emplace(program, database);
  const ProgramIndex& index =
      cache != nullptr ? cache->index() : *local_index;

  const bool timed = options.max_millis != 0;
  const std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options.max_millis);

  std::unordered_set<CanonicalState, CanonicalStateHash> visited;
  std::deque<CanonicalState> frontier;
  std::unordered_map<std::vector<uint64_t>, ParentEdge, EncodingHash> parents;

  // Enqueues a successor state; returns true on acceptance (empty state).
  // `step` carries the provenance when explanations are requested.
  auto enqueue = [&](std::vector<Atom> atoms,
                     const std::vector<uint64_t>& parent_encoding,
                     ProofStep step) {
    EagerSimplify(&atoms, database);
    if (atoms.size() > width) return false;  // pruned by Theorem 4.8
    if (index.StateIsDead(atoms, database)) return false;
    CanonicalState canonical = Canonicalize(std::move(atoms));
    if (explanation != nullptr) {
      step.state = canonical.atoms;
      parents.try_emplace(canonical.encoding,
                          ParentEdge{parent_encoding, std::move(step)});
    }
    if (canonical.atoms.empty()) {
      result.accepted = true;
      return true;
    }
    if (cache != nullptr &&
        cache->LinearKnownRefuted(canonical, width, max_chunk)) {
      ++result.cache_hits;  // a previous search refuted this whole subtree
      return false;
    }
    result.peak_state_bytes =
        std::max(result.peak_state_bytes, canonical.ApproximateBytes());
    auto [it, inserted] = visited.insert(std::move(canonical));
    if (inserted) {
      result.visited_bytes += it->ApproximateBytes();
      frontier.push_back(*it);
    }
    return false;
  };

  auto finish = [&]() {
    result.states_visited = visited.size();
    if (!result.accepted && !result.budget_exhausted && cache != nullptr) {
      // A completed BFS is a refutation certificate for every state it
      // visited: everything reachable from a visited state was explored
      // (or already known refuted) and no empty state appeared.
      for (const CanonicalState& state : visited) {
        cache->LinearRecordRefuted(state, width, max_chunk);
      }
    }
    if (result.accepted && explanation != nullptr) {
      // Fold the parent chain back into the linear proof.
      explanation->steps.clear();
      std::vector<uint64_t> cursor;  // empty = accepting state
      while (true) {
        auto it = parents.find(cursor);
        if (it == parents.end()) break;
        explanation->steps.push_back(it->second.step);
        cursor = it->second.parent;
        if (it->second.step.kind == ProofStep::Kind::kStart) break;
      }
      std::reverse(explanation->steps.begin(), explanation->steps.end());
    }
    return result;
  };

  {
    ProofStep start;
    start.kind = ProofStep::Kind::kStart;
    if (enqueue(std::move(*frozen), {}, std::move(start))) return finish();
  }

  while (!frontier.empty()) {
    if (options.max_states != 0 &&
        result.states_expanded >= options.max_states) {
      result.budget_exhausted = true;
      break;
    }
    if (timed && (result.states_expanded & 63) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      result.budget_exhausted = true;
      break;
    }
    CanonicalState state = std::move(frontier.front());
    frontier.pop_front();
    ++result.states_expanded;

    // SLD selection: all work on this state goes through one atom.
    size_t selected = SelectAtom(state.atoms, database);
    const Atom& pivot = state.atoms[selected];

    // Match-and-drop: each homomorphism of the selected atom into the
    // database is one specialization guess; the atom becomes a leaf.
    std::vector<Atom> rest;
    rest.reserve(state.atoms.size() - 1);
    for (size_t i = 0; i < state.atoms.size(); ++i) {
      if (i != selected) rest.push_back(state.atoms[i]);
    }
    bool done = false;
    ForEachHomomorphism({pivot}, database, {}, [&](const Substitution& h) {
      ++result.drop_edges;
      ProofStep step;
      step.kind = ProofStep::Kind::kMatchDrop;
      step.matched_fact = ApplySubstitution(h, pivot);
      if (enqueue(ApplySubstitution(h, rest), state.encoding,
                  std::move(step))) {
        done = true;
        return false;
      }
      return true;
    });
    if (done) return finish();

    // Resolution: every chunk unifier whose chunk contains the selected
    // atom (Definition 4.3). Only TGDs whose head predicate matches the
    // pivot can contribute such a chunk, so the per-predicate bucket of
    // the relevance index replaces the loop over program.tgds().
    uint64_t fresh_base = 0;
    for (const Atom& a : state.atoms) {
      for (Term t : a.args) {
        if (t.is_variable()) fresh_base = std::max(fresh_base, t.index() + 1);
      }
    }
    for (size_t tgd_index : index.TgdsWithHead(pivot.predicate)) {
      std::vector<Resolvent> resolvents =
          ResolveWithTgd(state.atoms, program, tgd_index, fresh_base,
                         max_chunk, /*anchor=*/selected);
      for (Resolvent& r : resolvents) {
        ++result.resolution_edges;
        ProofStep step;
        step.kind = ProofStep::Kind::kResolution;
        step.tgd_index = tgd_index;
        if (enqueue(std::move(r.atoms), state.encoding, std::move(step))) {
          return finish();
        }
      }
    }
  }

  return finish();
}

}  // namespace vadalog
