#include "engine/linear_search.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/fragments.h"
#include "analysis/predicate_graph.h"
#include "base/hash.h"
#include "engine/resolution.h"
#include "engine/search_cache.h"
#include "engine/state.h"
#include "engine/subsumption.h"
#include "obs/metrics.h"
#include "server/worker_pool.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

struct EncodingHash {
  size_t operator()(const std::vector<uint64_t>& encoding) const {
    return HashRange(encoding.begin(), encoding.end());
  }
};

/// Provenance edge for proof reconstruction: how a canonical state was
/// first reached.
struct ParentEdge {
  std::vector<uint64_t> parent;  // parent canonical encoding
  ProofStep step;                // op that produced the child
};

/// A successor that survived the worker-side filters (simplify, width,
/// dead-state, visited snapshot, exact cache) and awaits the merge phase.
struct Candidate {
  CanonicalState state;
  ProofStep step;  // provenance; only populated with explanations on
  const CanonicalState* visited = nullptr;  // node in the visited table
  bool fresh = false;  // true iff this candidate inserted that node
};

/// Everything one frontier expansion produces. Workers fill these
/// independently (one slot per frontier index), so the merge can process
/// them in deterministic frontier order regardless of scheduling.
struct ExpandOutput {
  std::vector<Candidate> candidates;
  bool accepted = false;
  ProofStep accept_step;
  uint64_t drop_edges = 0;
  uint64_t resolution_edges = 0;
  uint64_t cache_hits = 0;
  size_t peak_state_bytes = 0;
};

constexpr size_t kVisitedShards = 64;  // power of two

// Upper bound on worker threads regardless of what the caller asks for:
// oversubscription beyond this buys nothing, and an absurd request must
// degrade instead of making the fallback pool's thread spawns throw.
constexpr uint32_t kMaxSearchThreads = 64;

/// One queued frontier state plus its subsumption-index registration id
/// (the deterministic tie-break for same-size subsumption).
struct LevelEntry {
  const CanonicalState* state;
  int64_t ordinal;
};

/// The level-synchronous BFS driver. One code path serves the
/// single-threaded and the parallel search: each level is (1) expanded —
/// by a worker pool when wide enough — against a read-only snapshot of
/// the sharded visited table, (2) deduplicated into the shards (workers
/// own disjoint shards, processing candidates in frontier order), and
/// (3) merged sequentially in frontier order (acceptance, subsumption
/// discard and retirement, provenance, next frontier). Only phase 3
/// touches the subsumption indexes, so they stay single-threaded by
/// construction, and the decision — and on completed refutations every
/// counter — is independent of the thread count.
class LinearSearcher {
 public:
  LinearSearcher(const Program& program, const Instance& database,
                 const ProgramIndex& index, const ProofSearchOptions& options,
                 size_t width, size_t max_chunk, WorkerPool* pool,
                 ProofSearchResult* result, ProofExplanation* explanation)
      : program_(program),
        database_(database),
        index_(index),
        cache_(options.cache),
        shared_refuted_(options.shared_refuted),
        subsumption_(options.subsumption),
        width_(width),
        max_chunk_(max_chunk),
        max_states_(options.max_states),
        timed_(options.max_millis != 0),
        num_threads_(std::min(kMaxSearchThreads,
                              std::max<uint32_t>(1, options.num_threads))),
        pool_(pool),
        result_(result),
        explanation_(explanation),
        shards_(kVisitedShards) {
    if (timed_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options.max_millis);
    }
  }

  void Run(std::vector<Atom> frozen) {
    std::vector<LevelEntry> level;
    {
      // The initial state goes through the same pipeline with a synthetic
      // kStart edge and an all-dirty certificate.
      ExpandOutput seed;
      std::vector<char> dirty(frozen.size(), 1);
      ProofStep start;
      start.kind = ProofStep::Kind::kStart;
      MakeCandidate(std::move(frozen), &dirty, std::move(start), &seed);
      std::vector<const CanonicalState*> no_parent = {nullptr};
      std::vector<ExpandOutput*> seed_outputs = {&seed};
      MergeOutputs(no_parent, seed_outputs, &level);
      AccumulateCounters(seed);
      if (result_->accepted) return Finish();
    }

    while (!level.empty() && !result_->accepted &&
           !result_->budget_exhausted) {
      // Subsumption pruning happens here, per level, just before the
      // workers launch: one sequential pass while the index is quiescent,
      // against everything registered so far — including this level's own
      // siblings (discard + retirement unified). States a budget cut
      // strands unexpanded never pay for a query.
      if (subsumption_) FilterLevel(&level);
      if (level.empty()) break;

      size_t allowed = level.size();
      if (max_states_ != 0) {
        uint64_t remaining = max_states_ > result_->states_expanded
                                 ? max_states_ - result_->states_expanded
                                 : 0;
        if (remaining < allowed) {
          allowed = static_cast<size_t>(remaining);
          result_->budget_exhausted = true;  // part of the level is cut
        }
      }

      std::vector<ExpandOutput> outputs(allowed);
      result_->states_expanded += ExpandLevel(level, allowed, &outputs);
      for (const ExpandOutput& out : outputs) AccumulateCounters(out);

      std::vector<const CanonicalState*> parent_states(allowed);
      std::vector<ExpandOutput*> output_ptrs(allowed);
      for (size_t i = 0; i < allowed; ++i) {
        parent_states[i] = level[i].state;
        output_ptrs[i] = &outputs[i];
      }
      std::vector<LevelEntry> next;
      MergeOutputs(parent_states, output_ptrs, &next);
      level = std::move(next);
    }
    Finish();
  }

 private:
  std::unordered_set<CanonicalState, CanonicalStateHash>& ShardFor(
      size_t hash) {
    return shards_[hash & (kVisitedShards - 1)];
  }

  /// The unified subsumption pass: drops every queued state some other
  /// registered state maps into — visited states of earlier levels
  /// (classic discard), same-level siblings registered earlier or
  /// strictly smaller (retirement), and the shared cache's refuted
  /// states. Dropped states stay visited and stay registered: their
  /// claims remain valid, and the (size, registration-id) measure keeps
  /// the pruning chains well-founded.
  void FilterLevel(std::vector<LevelEntry>* level) {
    int64_t level_base = level->front().ordinal;
    size_t kept = 0;
    for (LevelEntry& entry : *level) {
      int64_t subsumer = visited_subsumers_.FindSubsumer(
          *entry.state, width_, max_chunk_, entry.ordinal);
      if (subsumer >= 0) {
        if (subsumer >= level_base) {
          ++result_->states_retired;  // a same-level, newer-general sibling
        } else {
          ++result_->subsumed_discarded;
        }
        visited_subsumers_.Suppress(entry.ordinal);
        continue;
      }
      // The sweep-shared bank first: in a warm session it is the small,
      // hot index (this sweep's refutations) in front of the session
      // cache's larger, older one.
      if (shared_refuted_ != nullptr &&
          shared_refuted_->FindSubsumer(*entry.state, width_, max_chunk_) >=
              0) {
        ++result_->sweep_refuted_hits;
        ++result_->subsumed_discarded;
        visited_subsumers_.Suppress(entry.ordinal);
        continue;
      }
      if (cache_ != nullptr &&
          cache_->LinearRefutedBySubsumption(*entry.state, width_,
                                             max_chunk_)) {
        ++result_->cache_hits;
        ++result_->subsumed_discarded;
        visited_subsumers_.Suppress(entry.ordinal);
        continue;
      }
      (*level)[kept++] = entry;
    }
    level->resize(kept);
  }

  /// Expands `level[0..allowed)` into `outputs`, in parallel when the
  /// level is wide enough. Returns the number of completed expansions
  /// (less than `allowed` only on early accept / deadline stop).
  size_t ExpandLevel(const std::vector<LevelEntry>& level, size_t allowed,
                     std::vector<ExpandOutput>* outputs) {
    std::atomic<size_t> next{0};
    std::atomic<bool> stop{false};
    std::atomic<size_t> expanded{0};
    std::atomic<uint64_t> clock_ticks{0};
    std::atomic<bool> deadline_hit{false};
    // Early accept-abort trades which proof is found for wall-clock; with
    // explanations requested every claimed state is finished so the merge
    // deterministically picks the first accepting edge in frontier order.
    const bool abort_on_accept = explanation_ == nullptr;

    auto worker = [&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= allowed) break;
        if (timed_ &&
            (clock_ticks.fetch_add(1, std::memory_order_relaxed) & 63) ==
                0 &&
            std::chrono::steady_clock::now() >= deadline_) {
          deadline_hit.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
          break;
        }
        ExpandState(*level[i].state, &(*outputs)[i]);
        expanded.fetch_add(1, std::memory_order_relaxed);
        if ((*outputs)[i].accepted && abort_on_accept) {
          stop.store(true, std::memory_order_relaxed);
        }
      }
    };

    size_t threads = std::min<size_t>(num_threads_, allowed);
    if (threads <= 1 || allowed < 2 * static_cast<size_t>(num_threads_) ||
        pool_ == nullptr) {
      worker();
    } else {
      // Fork onto the persistent pool; the calling thread takes a
      // worker's share instead of idling, and helpers the pool never got
      // to are revoked (the atomic `next` counter makes any participant
      // count complete the level).
      pool_->ParallelInvoke(threads - 1, worker);
    }
    if (deadline_hit.load(std::memory_order_relaxed)) {
      result_->budget_exhausted = true;
    }
    return expanded.load(std::memory_order_relaxed);
  }

  /// Expands one canonical state: match-and-drop plus anchored chunk
  /// resolutions through the selected atom. Reads shared state only
  /// through thread-safe paths (visited snapshot, exact cache lookups).
  void ExpandState(const CanonicalState& state, ExpandOutput* out) {
    size_t selected = SelectAtom(state.atoms, database_);
    const Atom& pivot = state.atoms[selected];
    std::vector<int> components = ComponentIds(state.atoms);
    int pivot_component = components[selected];

    // Match-and-drop: each homomorphism of the selected atom into the
    // database is one specialization guess; the atom becomes a leaf. Only
    // the pivot's component loses an atom, so only its remnants need
    // re-simplification (the bindings touch no other component).
    std::vector<Atom> rest;
    std::vector<char> rest_dirty;
    rest.reserve(state.atoms.size() - 1);
    rest_dirty.reserve(state.atoms.size() - 1);
    for (size_t i = 0; i < state.atoms.size(); ++i) {
      if (i == selected) continue;
      rest.push_back(state.atoms[i]);
      rest_dirty.push_back(components[i] == pivot_component ? 1 : 0);
    }
    std::vector<char> dirty;
    ForEachHomomorphism({pivot}, database_, {}, [&](const Substitution& h) {
      ++out->drop_edges;
      ProofStep step;
      step.kind = ProofStep::Kind::kMatchDrop;
      step.matched_fact = ApplySubstitution(h, pivot);
      dirty = rest_dirty;
      return !MakeCandidate(ApplySubstitution(h, rest), &dirty,
                            std::move(step), out);
    });
    if (out->accepted) return;

    // Resolution: every chunk unifier whose chunk contains the selected
    // atom (Definition 4.3), over the per-predicate relevance bucket.
    uint64_t fresh_base = 0;
    for (const Atom& a : state.atoms) {
      for (Term t : a.args) {
        if (t.is_variable()) fresh_base = std::max(fresh_base, t.index() + 1);
      }
    }
    for (size_t tgd_index : index_.TgdsWithHead(pivot.predicate)) {
      std::vector<Resolvent> resolvents =
          ResolveWithTgd(state.atoms, program_, tgd_index, fresh_base,
                         max_chunk_, /*anchor=*/selected);
      for (Resolvent& r : resolvents) {
        ++out->resolution_edges;
        ProofStep step;
        step.kind = ProofStep::Kind::kResolution;
        step.tgd_index = tgd_index;
        ResolventDirtyFlags(components, r.chunk, r.atoms.size(), &dirty);
        if (MakeCandidate(std::move(r.atoms), &dirty, std::move(step),
                          out)) {
          return;
        }
      }
    }
  }

  /// Simplifies, filters and canonicalizes one successor. Returns true on
  /// acceptance (empty state), which stops the surrounding expansion.
  bool MakeCandidate(std::vector<Atom> atoms, std::vector<char>* dirty,
                     ProofStep step, ExpandOutput* out) {
    EagerSimplifyIncremental(&atoms, database_, dirty);
    if (atoms.size() > width_) return false;  // pruned by Theorem 4.8
    if (index_.StateIsDead(atoms, database_)) return false;
    CanonicalState canonical = Canonicalize(std::move(atoms));
    if (canonical.atoms.empty()) {
      out->accepted = true;
      if (explanation_ != nullptr) {
        step.state = canonical.atoms;
        out->accept_step = std::move(step);
      }
      return true;
    }
    out->peak_state_bytes =
        std::max(out->peak_state_bytes, canonical.ApproximateBytes());
    // Snapshot dedupe: reads the shards as of the level start (the merge
    // re-checks authoritatively, so intra-level duplicates are fine).
    if (ShardFor(canonical.hash).count(canonical) > 0) return false;
    if (cache_ != nullptr &&
        cache_->LinearKnownRefuted(canonical, width_, max_chunk_)) {
      ++out->cache_hits;  // a previous search refuted this whole subtree
      return false;
    }
    if (explanation_ != nullptr) step.state = canonical.atoms;
    Candidate candidate;
    candidate.state = std::move(canonical);
    candidate.step = std::move(step);
    out->candidates.push_back(std::move(candidate));
    return false;
  }

  /// Phase 2: sharded dedupe into the visited table. Worker w owns shards
  /// s with s % W == w and processes all candidates in frontier order, so
  /// each candidate has exactly one writer and per-shard insertion order
  /// is deterministic.
  void DedupeCandidates(const std::vector<ExpandOutput*>& outputs) {
    auto dedupe = [this, &outputs](size_t worker, size_t workers) {
      for (ExpandOutput* out : outputs) {
        for (Candidate& candidate : out->candidates) {
          size_t shard = candidate.state.hash & (kVisitedShards - 1);
          if (shard % workers != worker) continue;
          // The candidate state is dead after this (visited/fresh carry
          // everything the merge needs), so move it into the table.
          auto [it, inserted] =
              shards_[shard].insert(std::move(candidate.state));
          candidate.visited = &*it;
          candidate.fresh = inserted;
        }
      }
    };
    size_t total = 0;
    for (const ExpandOutput* out : outputs) total += out->candidates.size();
    size_t workers = std::min<size_t>(num_threads_, kVisitedShards);
    // Hash inserts are ~100 ns and every worker scans all candidates for
    // shard ownership, so parallel dedupe only pays for itself on levels
    // with thousands of candidates.
    if (workers <= 1 || total < 4096 || pool_ == nullptr) {
      dedupe(0, 1);
      return;
    }
    // Shard classes are claimed dynamically: ParallelInvoke may deliver
    // fewer participants than requested (revoked helpers), and every
    // class must be processed exactly once. Which thread handles a class
    // does not matter — per-shard insertion order is frontier order
    // either way.
    std::atomic<size_t> next_class{0};
    pool_->ParallelInvoke(workers - 1, [&] {
      size_t w;
      while ((w = next_class.fetch_add(1, std::memory_order_relaxed)) <
             workers) {
        dedupe(w, workers);
      }
    });
  }

  /// Phase 3: sequential merge in frontier order — acceptance, provenance,
  /// subsumption registration, and the next frontier. The subsumption
  /// *queries* happen later, in FilterLevel, so unexpanded states never
  /// pay for them. `parents[i]` may be null (the synthetic root).
  void MergeOutputs(const std::vector<const CanonicalState*>& parents,
                    const std::vector<ExpandOutput*>& outputs,
                    std::vector<LevelEntry>* next_level) {
    DedupeCandidates(outputs);

    static const std::vector<uint64_t> kRootEncoding;
    for (size_t i = 0; i < outputs.size(); ++i) {
      const ExpandOutput& out = *outputs[i];
      const std::vector<uint64_t>& parent_encoding =
          parents[i] == nullptr ? kRootEncoding : parents[i]->encoding;
      if (out.accepted) {
        result_->accepted = true;
        if (explanation_ != nullptr) {
          parents_.try_emplace(std::vector<uint64_t>{},
                               ParentEdge{parent_encoding, out.accept_step});
        }
        return;  // deterministic: first accepting edge in frontier order
      }
      for (const Candidate& candidate : out.candidates) {
        if (explanation_ != nullptr) {
          parents_.try_emplace(candidate.visited->encoding,
                               ParentEdge{parent_encoding, candidate.step});
        }
        if (!candidate.fresh) continue;  // duplicate of an earlier state
        const CanonicalState* state = candidate.visited;
        result_->visited_bytes += state->ApproximateBytes();
        int64_t ordinal =
            subsumption_
                ? visited_subsumers_.Add(*state, width_, max_chunk_)
                : 0;
        next_level->push_back(LevelEntry{state, ordinal});
      }
    }
  }

  void AccumulateCounters(const ExpandOutput& out) {
    result_->drop_edges += out.drop_edges;
    result_->resolution_edges += out.resolution_edges;
    result_->cache_hits += out.cache_hits;
    result_->peak_state_bytes =
        std::max(result_->peak_state_bytes, out.peak_state_bytes);
  }

  void Finish() {
    size_t visited = 0;
    for (const auto& shard : shards_) visited += shard.size();
    result_->states_visited = visited;
    result_->subsumption_checks = visited_subsumers_.stats().hom_checks;
    if (!result_->accepted && !result_->budget_exhausted) {
      // A completed BFS is a refutation certificate for every state it
      // visited: everything reachable from a visited state was explored,
      // already known refuted, or subsumed by another visited state. A
      // budget-exhausted (or accepted) run records nothing — an aborted
      // refutation is not a refutation certificate. Certificates go to
      // the session cache (exact, interned, long-lived) and to the
      // sweep-shared subsumption bank (full states, sweep-lived).
      for (const auto& shard : shards_) {
        for (const CanonicalState& state : shard) {
          if (cache_ != nullptr) {
            cache_->LinearRecordRefuted(state, width_, max_chunk_);
          }
          if (shared_refuted_ != nullptr) {
            shared_refuted_->Add(state, width_, max_chunk_);
          }
        }
      }
    }
    if (result_->accepted && explanation_ != nullptr) {
      // Fold the parent chain back into the linear proof.
      explanation_->steps.clear();
      std::vector<uint64_t> cursor;  // empty = accepting state
      while (true) {
        auto it = parents_.find(cursor);
        if (it == parents_.end()) break;
        explanation_->steps.push_back(it->second.step);
        cursor = it->second.parent;
        if (it->second.step.kind == ProofStep::Kind::kStart) break;
      }
      std::reverse(explanation_->steps.begin(), explanation_->steps.end());
    }
  }

  const Program& program_;
  const Instance& database_;
  const ProgramIndex& index_;
  ProofSearchCache* cache_;
  SubsumptionIndex* shared_refuted_;
  const bool subsumption_;
  const size_t width_;
  const size_t max_chunk_;
  const uint64_t max_states_;
  const bool timed_;
  const uint32_t num_threads_;
  WorkerPool* pool_;
  std::chrono::steady_clock::time_point deadline_{};
  ProofSearchResult* result_;
  ProofExplanation* explanation_;

  std::vector<std::unordered_set<CanonicalState, CanonicalStateHash>> shards_;
  SubsumptionIndex visited_subsumers_;
  std::unordered_map<std::vector<uint64_t>, ParentEdge, EncodingHash>
      parents_;
};

}  // namespace

std::optional<std::vector<Atom>> FreezeQuery(const ConjunctiveQuery& query,
                                             const std::vector<Term>& answer) {
  if (answer.size() != query.output.size()) return std::nullopt;
  Substitution freeze;
  for (size_t i = 0; i < answer.size(); ++i) {
    if (!answer[i].is_constant()) return std::nullopt;
    Term out = query.output[i];
    if (out.is_constant()) {
      if (out != answer[i]) return std::nullopt;
      continue;
    }
    auto [it, inserted] = freeze.try_emplace(out, answer[i]);
    if (!inserted && it->second != answer[i]) return std::nullopt;
  }
  return ApplySubstitution(freeze, query.atoms);
}

ProofSearchResult LinearProofSearch(const Program& program,
                                    const Instance& database,
                                    const ConjunctiveQuery& query,
                                    const std::vector<Term>& answer,
                                    const ProofSearchOptions& options,
                                    ProofExplanation* explanation) {
  ProofSearchResult result;

  size_t width = options.node_width;
  if (width == 0) {
    PredicateGraph graph(program);
    width = NodeWidthBoundPwl(query.atoms.size(), program, graph);
  }
  result.node_width_used = width;
  size_t max_chunk =
      options.max_chunk == 0 ? width : std::min(options.max_chunk, width);

  std::optional<std::vector<Atom>> frozen = FreezeQuery(query, answer);
  if (!frozen.has_value()) return result;  // inconsistent candidate

  // The relevance index comes from the shared cache when one is supplied
  // (it must have been built for this same program + database); otherwise
  // a local one is built for this call.
  std::optional<ProgramIndex> local_index;
  if (options.cache == nullptr) local_index.emplace(program, database);
  const ProgramIndex& index =
      options.cache != nullptr ? options.cache->index() : *local_index;

  // A parallel search without a caller-supplied pool gets a private one
  // for its own lifetime: one spawn per search, not one per level.
  uint32_t threads = std::min(kMaxSearchThreads,
                              std::max<uint32_t>(1, options.num_threads));
  std::optional<WorkerPool> own_pool;
  WorkerPool* pool = options.pool;
  if (pool == nullptr && threads > 1) {
    own_pool.emplace(threads - 1);
    pool = &*own_pool;
  }

  LinearSearcher searcher(program, database, index, options, width,
                          max_chunk, pool, &result, explanation);
  searcher.Run(std::move(*frozen));
  if (options.metrics != nullptr) {
    options.metrics->RecordSearch(result.states_expanded, result.cache_hits,
                                  result.subsumed_discarded,
                                  result.sweep_refuted_hits,
                                  result.budget_exhausted);
  }
  return result;
}

}  // namespace vadalog
