// Subsumption-based state pruning for the bounded proof searches.
//
// A proof state is accepted iff it maps homomorphically into chase(D, Σ),
// so if a state A maps homomorphically into a state S (Chandra–Merlin:
// S's CQ is contained in A's), every proof of S restricts to a proof of
// A — refuting A refutes S, and exploring A covers every acceptance S
// could contribute. The searches exploit this two ways:
//
//   * a new frontier state subsumed by an already-visited/refuted state is
//     discarded (its whole subtree is covered by the subsumer's), and
//   * a queued frontier state that a newer, more general state maps into
//     is retired without expansion.
//
// Both prunings are restricted to subsumers with no more atoms than the
// subsumed state. That keeps the simulation argument within the node-width
// bound (a larger subsumer's simulated proof could exceed the bound where
// the original did not) and makes the index cheap: candidate subsumers are
// prefiltered by atom count and a predicate bitmask before any
// homomorphism is attempted. Exactness of the pruned searches against the
// chase engine is fuzzed by the cross-engine property sweeps.
//
// Entries carry the (node_width, max_chunk) exploration bound they were
// established under, mirroring ProofSearchCache: a refutation-backed
// subsumer only prunes a search exploring no more than the recording one.
//
// Thread safety: NOT internally synchronized — a SubsumptionIndex is
// either owned by a single search (the per-search visited banks) or
// embedded in a ProofSearchCache, whose reader-writer capability guards
// it (the banks are GUARDED_BY the cache mutex, so clang -Wthread-safety
// checks every access). Beware that FindSubsumer without a caller-private
// `probe_stats` block mutates the mutable internal Stats: concurrent
// probing REQUIRES a private stats block per prober (what the parallel
// branch tasks do), or exclusive access.

#ifndef VADALOG_ENGINE_SUBSUMPTION_H_
#define VADALOG_ENGINE_SUBSUMPTION_H_

#include <cstdint>
#include <vector>

#include "engine/state.h"

namespace vadalog {

class SubsumptionIndex {
 public:
  /// Registers `state` as a subsumer established under exploration bound
  /// (width, chunk) and returns its entry id (sequential from 0). Entries
  /// are never removed: a pruned state's refutation claim stays valid, so
  /// it keeps subsuming.
  int64_t Add(const CanonicalState& state, size_t width, size_t chunk);

  struct Stats {
    uint64_t queries = 0;
    uint64_t hom_checks = 0;
    uint64_t hits = 0;
    uint64_t capped = 0;  // queries that hit the per-query hom-check cap
    uint64_t disabled_skips = 0;  // queries skipped by the adaptive gate

    /// Accumulates another counter block (the single definition of what
    /// "merging stats" means — index-internal and searcher-private
    /// blocks both go through here).
    void MergeFrom(const Stats& delta) {
      queries += delta.queries;
      hom_checks += delta.hom_checks;
      hits += delta.hits;
      capped += delta.capped;
      disabled_skips += delta.disabled_skips;
    }
  };

  /// Finds a registered state with a bound covering (width, chunk) and no
  /// more atoms than `state` that maps homomorphically into it. Returns
  /// its entry id, or -1. Same-size subsumers only count when their entry
  /// id is below `same_size_before`: a search pruning its own registered
  /// frontier passes the state's own id, which (a) excludes the state
  /// itself and (b) makes same-size pruning acyclic — otherwise two
  /// mutually subsuming equal-size states could each prune the other and
  /// drop an accepting subtree on the floor. Strictly smaller subsumers
  /// always count (the (size, id) measure strictly decreases along any
  /// pruning chain, so chains end at a state that is genuinely expanded).
  ///
  /// `probe_stats`, when non-null, replaces the index's internal counter
  /// block for this query: the adaptive gate evaluates against it and all
  /// increments go there. This is what makes concurrent read-only probing
  /// sound AND deterministic — parallel branch tasks of the alternating
  /// search each bring their own counter block (no data race on `stats_`,
  /// and the gate's decisions depend only on that task's own, schedule-
  /// independent query sequence), then merge the deltas back in a fixed
  /// order via MergeStats. Concurrent probing additionally requires that
  /// no Add/Suppress runs at the same time.
  int64_t FindSubsumer(const CanonicalState& state, size_t width,
                       size_t chunk, int64_t same_size_before = INT64_MAX,
                       Stats* probe_stats = nullptr) const;

  /// Marks an entry as covered by another subsumer, excluding it from
  /// further matching. Lossless: anything it subsumes, its own subsumer
  /// subsumes too (homomorphisms compose) — suppression just keeps the
  /// capped scans focused on non-redundant entries.
  void Suppress(int64_t id) {
    entries_[static_cast<size_t>(id)].suppressed = 1;
  }

  /// Delta maintenance: tombstones (suppresses and frees the atoms of)
  /// every live entry containing a predicate flagged in `affected` —
  /// such an entry's refutation claim may no longer hold once facts of
  /// an affected predicate are inserted. Entry ids stay stable (the
  /// suppressed slot remains so same-size ordering is untouched); the
  /// freed atom storage is reclaimed immediately. Returns the number of
  /// entries tombstoned.
  size_t InvalidateByPredicate(const std::vector<char>& affected);

  size_t size() const { return entries_.size(); }

  const Stats& stats() const { return stats_; }

  /// Folds an externally-accumulated counter block (a FindSubsumer
  /// `probe_stats` delta) into the internal one, so the long-lived
  /// index's adaptive gate keeps learning across searches that probed it
  /// with private blocks. Call from a single thread, in a deterministic
  /// order.
  void MergeStats(const Stats& delta) { stats_.MergeFrom(delta); }

  size_t ApproximateBytes() const;

 private:
  struct Entry {
    std::vector<Atom> atoms;  // canonical atoms of the subsumer
    uint64_t mask;            // predicate bloom mask
    uint64_t rigid_mask;      // bloom mask over constants and nulls
    uint32_t width;
    uint32_t chunk;
    char suppressed = 0;      // covered by another entry; skip in scans
  };

  static uint64_t MaskOf(const std::vector<Atom>& atoms);
  /// Bloom mask over the rigid terms (a homomorphism is the identity on
  /// constants and nulls, so a subsumer's rigid terms must all occur in
  /// the subsumed state).
  static uint64_t RigidMaskOf(const std::vector<Atom>& atoms);

  // Entries bucketed by their smallest predicate id (a subsumer's
  // predicates are a subset of the subsumed state's, so its smallest
  // predicate occurs in the state and the relevant buckets are exactly
  // those of the state's predicates), then layered by atom count so the
  // smallest — most general, hence strongest — subsumers are tried first
  // under the per-query hom-check cap.
  std::vector<Entry> entries_;
  // buckets_[p][size-1] -> entry ids with min predicate p and that size.
  std::vector<std::vector<std::vector<uint32_t>>> buckets_;
  size_t atom_bytes_ = 0;
  mutable Stats stats_;
};

}  // namespace vadalog

#endif  // VADALOG_ENGINE_SUBSUMPTION_H_
