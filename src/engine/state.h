// CQ proof states: canonical renaming, decomposition into variable-disjoint
// components (Definition 4.4 with frozen outputs), and eager simplification
// against the database.
//
// A proof state is the body of a CQ whose output variables have been frozen
// to constants (Section 4.3). Two states that differ only by a bijective
// renaming of variables are interchangeable, so the search canonicalizes
// states before deduplicating them: atoms are ordered by a variable-
// invariant key (refined once by variable "colors"), residual symmetric
// groups are resolved by bounded brute force, and variables are renamed by
// first occurrence.

#ifndef VADALOG_ENGINE_STATE_H_
#define VADALOG_ENGINE_STATE_H_

#include <cstdint>
#include <vector>

#include "ast/atom.h"
#include "storage/instance.h"

namespace vadalog {

/// A canonicalized proof state.
struct CanonicalState {
  std::vector<Atom> atoms;        // canonical atom order, variables 0..k-1
  std::vector<uint64_t> encoding; // flat injective encoding of `atoms`
  size_t hash = 0;                // hash of `encoding`, fixed at creation

  /// The hash is computed once during canonicalization and stored, so
  /// visited-set operations never re-walk the encoding.
  size_t Hash() const { return hash; }
  bool operator==(const CanonicalState& other) const {
    return encoding == other.encoding;
  }
  size_t ApproximateBytes() const {
    return encoding.size() * sizeof(uint64_t);
  }
};

struct CanonicalStateHash {
  size_t operator()(const CanonicalState& s) const { return s.Hash(); }
};

/// Canonicalizes a state (sorts atoms, renames variables).
CanonicalState Canonicalize(std::vector<Atom> atoms);

/// Extended canonicalization used by the Lemma 6.4 rewriter, which encodes
/// frozen output variables as labeled nulls ("sentinels"): when
/// `rename_nulls` is set, nulls are renamed canonically as a class of
/// their own (distinct from variables). If `mapping` is non-null it
/// receives the renaming original term → canonical term for every variable
/// and (when renamed) null of the input.
CanonicalState CanonicalizeEx(std::vector<Atom> atoms, bool rename_nulls,
                              std::unordered_map<Term, Term>* mapping);

/// Splits a state into connected components: atoms sharing a variable are
/// in the same component (constants never connect — they are frozen).
/// This is exactly the finest decomposition of Definition 4.4.
std::vector<std::vector<Atom>> SplitComponents(const std::vector<Atom>& atoms);

/// Per-atom connected-component ids (same connectivity as SplitComponents;
/// ids are dense, in first-occurrence order). No database work.
std::vector<int> ComponentIds(const std::vector<Atom>& atoms);

/// Removes every connected component that maps homomorphically into the
/// database (such components are proof-tree leaves: they can be specialized
/// to database facts and decomposed away without constraining the rest).
/// Returns the number of atoms removed.
size_t EagerSimplify(std::vector<Atom>* atoms, const Instance& database);

/// EagerSimplify for a successor of an already-simplified parent state.
/// `dirty` marks, per atom, whether the resolution/match step could have
/// re-enabled a database embedding: new body atoms, and atoms whose parent
/// component lost a member to the step. Components made of clean atoms
/// only inherit the parent's certificate — no component of a simplified
/// state maps into the database, the step's substitution binds no variable
/// of an untouched component (it would share a variable with the chunk and
/// hence be in a touched component), and a union of γ-instances of
/// non-embeddable components cannot embed — so only dirty components are
/// re-checked. Exact duplicates are still dropped globally. `dirty` is
/// consumed as scratch; its size must equal atoms->size().
size_t EagerSimplifyIncremental(std::vector<Atom>* atoms,
                                const Instance& database,
                                std::vector<char>* dirty);

/// Computes the dirty flags for a resolvent built by ResolveWithTgd from a
/// simplified parent state: kept parent atoms (parent order minus the
/// sorted `chunk`) are dirty iff their component lost a chunk member; the
/// trailing body atoms (up to `resolvent_size`) are new and always dirty.
/// `components` are the parent's ComponentIds. Both searches use this —
/// the certificate logic must never diverge between them.
void ResolventDirtyFlags(const std::vector<int>& components,
                         const std::vector<size_t>& chunk,
                         size_t resolvent_size, std::vector<char>* dirty);

/// Selects the atom the search works on next (the SLD selection
/// function): the database-matchable atom with the fewest candidate rows
/// (to be dropped, mirroring eager leaf decomposition), else the most
/// constrained atom (to be resolved). atoms must be non-empty.
size_t SelectAtom(const std::vector<Atom>& atoms, const Instance& database);

/// Upper bound on the database rows matching `atom` through its most
/// selective bound position (0 means provably no match).
size_t EstimateMatches(const Atom& atom, const Instance& database);

/// True if some atom can never be discharged: it has no database match
/// and its predicate is not derived by any rule (not in `derivable`).
/// States containing such an atom are dead and can be pruned — further
/// bindings only shrink an atom's match set.
bool HasDeadAtom(const std::vector<Atom>& atoms, const Instance& database,
                 const std::unordered_set<PredicateId>& derivable);

}  // namespace vadalog

#endif  // VADALOG_ENGINE_STATE_H_
