// Chunk-based resolution (Definition 4.3).
//
// Given a CQ state q (whose output variables are already frozen to
// constants, per the Section 4.3 algorithm box) and a single-head TGD σ
// with variables disjoint from q, a chunk unifier is a triple (S1, S2, γ)
// with S1 ⊆ atoms(q), S2 = head(σ), and γ a unifier such that every
// existential variable x of σ occurring in S2 satisfies:
//   (1) γ(x) is not a constant (nor a null), and
//   (2) γ(x) = γ(y) implies y occurs in S1 and is not shared, where a
//       variable of S1 is shared iff it also occurs in atoms(q) \ S1.
// (Output variables are constants here, so the "output variables are
// shared" clause of the paper is subsumed by (1).)
//
// The σ-resolvent is γ((atoms(q) \ S1) ∪ body(σ)).

#ifndef VADALOG_ENGINE_RESOLUTION_H_
#define VADALOG_ENGINE_RESOLUTION_H_

#include <cstddef>
#include <vector>

#include "ast/program.h"
#include "ast/rule.h"

namespace vadalog {

struct Resolvent {
  std::vector<Atom> atoms;   // the resolved CQ state
  size_t tgd_index;          // which σ was applied
  std::vector<size_t> chunk; // indices of the resolved S1 atoms in the state
};

/// Sentinel for `anchor`: enumerate chunks without an anchoring atom.
inline constexpr size_t kNoAnchor = static_cast<size_t>(-1);

/// Enumerates all σ-resolvents of `state` with the single-head TGD at
/// `tgd_index` of `program`. `max_chunk` bounds |S1| (chunks larger than
/// the node width can never be needed). Fresh body variables are renamed
/// starting at `fresh_variable_base` to stay disjoint from state variables.
/// When `anchor` names a state atom, only chunks containing that atom are
/// enumerated (the SLD selection restriction of the searches), skipping
/// the non-anchored chunks instead of generating and discarding them.
std::vector<Resolvent> ResolveWithTgd(const std::vector<Atom>& state,
                                      const Program& program,
                                      size_t tgd_index,
                                      uint64_t fresh_variable_base,
                                      size_t max_chunk = 4,
                                      size_t anchor = kNoAnchor);

/// Enumerates resolvents over every TGD of the program.
std::vector<Resolvent> ResolveAll(const std::vector<Atom>& state,
                                  const Program& program,
                                  uint64_t fresh_variable_base,
                                  size_t max_chunk = 4);

}  // namespace vadalog

#endif  // VADALOG_ENGINE_RESOLUTION_H_
