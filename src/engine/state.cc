#include "engine/state.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>

#include "base/hash.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

/// Renaming context for one encoding pass: variables always rename;
/// nulls rename only in extended (sentinel) mode.
struct RankMaps {
  bool rename_nulls = false;
  std::unordered_map<Term, uint64_t> var_rank;
  std::unordered_map<Term, uint64_t> null_rank;
};

// Encoded argument. Kind tags: constants/nulls keep their packed bits
// (tags 0/1); canonical variables use the unused tag 3; renamed nulls use
// tag 1 with a rank (safe: in sentinel mode no raw null bits are emitted).
uint64_t EncodeArg(Term t, RankMaps* ranks) {
  if (t.is_constant()) return t.bits();
  if (t.is_null()) {
    if (!ranks->rename_nulls) return t.bits();
    auto [it, inserted] = ranks->null_rank.try_emplace(t, ranks->null_rank.size());
    return (uint64_t{1} << 62) | it->second;
  }
  auto [it, inserted] = ranks->var_rank.try_emplace(t, ranks->var_rank.size());
  return (uint64_t{3} << 62) | it->second;
}

/// Encodes the atoms in the given order, ranking variables (and, in
/// sentinel mode, nulls) by first occurrence.
std::vector<uint64_t> EncodeOrder(const std::vector<Atom>& atoms,
                                  const std::vector<size_t>& order,
                                  bool rename_nulls) {
  std::vector<uint64_t> enc;
  RankMaps ranks;
  ranks.rename_nulls = rename_nulls;
  for (size_t idx : order) {
    const Atom& a = atoms[idx];
    enc.push_back((uint64_t{2} << 62) | a.predicate);
    for (Term t : a.args) enc.push_back(EncodeArg(t, &ranks));
  }
  return enc;
}

/// Variable-invariant key of an atom: predicate, constants verbatim,
/// renameable terms abstracted to kind + intra-atom first-occurrence index
/// + a refinement color from the global occurrence profile.
std::vector<uint64_t> InvariantKey(
    const Atom& atom, bool rename_nulls,
    const std::unordered_map<Term, uint64_t>& term_color) {
  std::vector<uint64_t> key;
  key.push_back(atom.predicate);
  std::unordered_map<Term, uint64_t> local_rank;
  for (Term t : atom.args) {
    bool renameable = t.is_variable() || (rename_nulls && t.is_null());
    if (!renameable) {
      key.push_back(t.bits());
      continue;
    }
    auto [it, inserted] = local_rank.try_emplace(t, local_rank.size());
    uint64_t kind_tag = t.is_variable() ? 3 : 1;
    key.push_back((kind_tag << 62) | it->second);
    auto color = term_color.find(t);
    key.push_back(color == term_color.end() ? 0 : color->second);
  }
  return key;
}

}  // namespace

size_t CanonicalState::Hash() const {
  return HashRange(encoding.begin(), encoding.end());
}

CanonicalState Canonicalize(std::vector<Atom> atoms) {
  return CanonicalizeEx(std::move(atoms), /*rename_nulls=*/false, nullptr);
}

CanonicalState CanonicalizeEx(std::vector<Atom> atoms, bool rename_nulls,
                              std::unordered_map<Term, Term>* mapping) {
  CanonicalState state;
  size_t n = atoms.size();
  if (n == 0) {
    state.atoms = std::move(atoms);
    return state;
  }
  auto renameable = [rename_nulls](Term t) {
    return t.is_variable() || (rename_nulls && t.is_null());
  };

  // Pass 1: color renameable terms by their occurrence profile (multiset
  // of (predicate, position) pairs) to break most ties.
  std::unordered_map<Term, std::vector<uint64_t>> occurrences;
  for (const Atom& a : atoms) {
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (renameable(a.args[i])) {
        occurrences[a.args[i]].push_back(
            (static_cast<uint64_t>(a.predicate) << 8) | i);
      }
    }
  }
  std::unordered_map<Term, uint64_t> term_color;
  for (auto& [term, profile] : occurrences) {
    std::sort(profile.begin(), profile.end());
    term_color[term] = HashRange(profile.begin(), profile.end());
  }

  // Sort atom indices by invariant key; collect tie groups.
  std::vector<std::vector<uint64_t>> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = InvariantKey(atoms[i], rename_nulls, term_color);
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });

  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) in `order`
  size_t combinations = 1;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && keys[order[i]] == keys[order[j]]) ++j;
    if (j - i > 1) {
      groups.emplace_back(i, j);
      for (size_t k = 2; k <= j - i && combinations <= 720; ++k) {
        combinations *= k;
      }
    }
    i = j;
  }

  if (groups.empty() || combinations > 720) {
    state.encoding = EncodeOrder(atoms, order, rename_nulls);
  } else {
    // Brute-force tie-group permutations for the lexicographically
    // smallest encoding (exact canonical form on symmetric states).
    std::vector<uint64_t> best;
    std::vector<size_t> current = order;
    std::function<void(size_t)> recurse = [&](size_t group_index) {
      if (group_index == groups.size()) {
        std::vector<uint64_t> enc = EncodeOrder(atoms, current, rename_nulls);
        if (best.empty() || enc < best) {
          best = std::move(enc);
          order = current;
        }
        return;
      }
      auto [begin, end] = groups[group_index];
      std::vector<size_t> members(current.begin() + begin,
                                  current.begin() + end);
      std::sort(members.begin(), members.end());
      do {
        std::copy(members.begin(), members.end(), current.begin() + begin);
        recurse(group_index + 1);
      } while (std::next_permutation(members.begin(), members.end()));
    };
    recurse(0);
    state.encoding = std::move(best);
  }

  // Materialize atoms in canonical order with canonical names.
  std::unordered_map<Term, uint64_t> var_rank;
  std::unordered_map<Term, uint64_t> null_rank;
  state.atoms.reserve(n);
  for (size_t idx : order) {
    Atom renamed;
    renamed.predicate = atoms[idx].predicate;
    renamed.args.reserve(atoms[idx].args.size());
    for (Term t : atoms[idx].args) {
      Term out = t;
      if (t.is_variable()) {
        auto [it, inserted] = var_rank.try_emplace(t, var_rank.size());
        out = Term::Variable(it->second);
      } else if (rename_nulls && t.is_null()) {
        auto [it, inserted] = null_rank.try_emplace(t, null_rank.size());
        out = Term::Null(it->second);
      }
      if (mapping != nullptr && renameable(t)) (*mapping)[t] = out;
      renamed.args.push_back(out);
    }
    state.atoms.push_back(std::move(renamed));
  }
  return state;
}

std::vector<std::vector<Atom>> SplitComponents(
    const std::vector<Atom>& atoms) {
  size_t n = atoms.size();
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

  std::unordered_map<Term, size_t> first_seen;
  for (size_t i = 0; i < n; ++i) {
    for (Term t : atoms[i].args) {
      if (!t.is_variable()) continue;
      auto [it, inserted] = first_seen.try_emplace(t, i);
      if (!inserted) unite(static_cast<int>(i), static_cast<int>(it->second));
    }
  }

  std::map<int, std::vector<Atom>> buckets;
  for (size_t i = 0; i < n; ++i) {
    buckets[find(static_cast<int>(i))].push_back(atoms[i]);
  }
  std::vector<std::vector<Atom>> components;
  components.reserve(buckets.size());
  for (auto& [root, component] : buckets) {
    components.push_back(std::move(component));
  }
  return components;
}

size_t EagerSimplify(std::vector<Atom>* atoms, const Instance& database) {
  std::vector<std::vector<Atom>> components = SplitComponents(*atoms);
  std::vector<Atom> kept;
  size_t removed = 0;
  for (std::vector<Atom>& component : components) {
    if (HasHomomorphism(component, database)) {
      removed += component.size();
    } else {
      for (Atom& a : component) kept.push_back(std::move(a));
    }
  }
  *atoms = std::move(kept);
  return removed;
}

bool HasDeadAtom(const std::vector<Atom>& atoms, const Instance& database,
                 const std::unordered_set<PredicateId>& derivable) {
  for (const Atom& atom : atoms) {
    if (derivable.count(atom.predicate) == 0 &&
        EstimateMatches(atom, database) == 0) {
      return true;
    }
  }
  return false;
}

size_t EstimateMatches(const Atom& atom, const Instance& database) {
  const Relation* rel = database.RelationFor(atom.predicate);
  if (rel == nullptr) return 0;
  size_t rows = rel->size();
  for (size_t pos = 0; pos < atom.args.size(); ++pos) {
    if (atom.args[pos].is_rigid()) {
      rows = std::min(
          rows,
          rel->RowsWith(static_cast<uint32_t>(pos), atom.args[pos]).size());
    }
  }
  return rows;
}

size_t SelectAtom(const std::vector<Atom>& atoms, const Instance& database) {
  // Mirror the proof tree's eager leaf decomposition: prefer the
  // database-matchable atom with the fewest candidate rows (it will be
  // dropped with few branches). Only when nothing is matchable do we pick
  // a resolution target, preferring the most-constrained atom.
  size_t best_droppable = atoms.size();
  size_t best_rows = ~size_t{0};
  size_t best_resolvable = 0;
  size_t best_rigid = 0;
  bool have_resolvable = false;
  for (size_t i = 0; i < atoms.size(); ++i) {
    size_t rows = EstimateMatches(atoms[i], database);
    if (rows > 0 && rows < best_rows) {
      best_rows = rows;
      best_droppable = i;
    }
    size_t rigid = 0;
    for (Term t : atoms[i].args) {
      if (t.is_rigid()) ++rigid;
    }
    if (!have_resolvable || rigid > best_rigid) {
      best_rigid = rigid;
      best_resolvable = i;
      have_resolvable = true;
    }
  }
  return best_droppable != atoms.size() ? best_droppable : best_resolvable;
}

}  // namespace vadalog
