#include "engine/state.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "base/hash.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

/// Renaming context for one encoding pass: variables always rename;
/// nulls rename only in extended (sentinel) mode.
struct RankMaps {
  bool rename_nulls = false;
  std::unordered_map<Term, uint64_t> var_rank;
  std::unordered_map<Term, uint64_t> null_rank;
};

// Encoded argument. Kind tags: constants/nulls keep their packed bits
// (tags 0/1); canonical variables use the unused tag 3; renamed nulls use
// tag 1 with a rank (safe: in sentinel mode no raw null bits are emitted).
uint64_t EncodeArg(Term t, RankMaps* ranks) {
  if (t.is_constant()) return t.bits();
  if (t.is_null()) {
    if (!ranks->rename_nulls) return t.bits();
    auto [it, inserted] =
        ranks->null_rank.try_emplace(t, ranks->null_rank.size());
    return (uint64_t{1} << 62) | it->second;
  }
  auto [it, inserted] = ranks->var_rank.try_emplace(t, ranks->var_rank.size());
  return (uint64_t{3} << 62) | it->second;
}

/// Encodes the atoms in the given order, ranking variables (and, in
/// sentinel mode, nulls) by first occurrence.
std::vector<uint64_t> EncodeOrder(const std::vector<Atom>& atoms,
                                  const std::vector<size_t>& order,
                                  bool rename_nulls) {
  std::vector<uint64_t> enc;
  size_t words = 0;
  for (const Atom& a : atoms) words += 1 + a.args.size();
  enc.reserve(words);
  RankMaps ranks;
  ranks.rename_nulls = rename_nulls;
  for (size_t idx : order) {
    const Atom& a = atoms[idx];
    enc.push_back((uint64_t{2} << 62) | a.predicate);
    for (Term t : a.args) enc.push_back(EncodeArg(t, &ranks));
  }
  return enc;
}

/// Variable-invariant key of an atom: predicate, constants verbatim,
/// renameable terms abstracted to kind + intra-atom first-occurrence index
/// + a refinement color from the global occurrence profile.
std::vector<uint64_t> InvariantKey(
    const Atom& atom, bool rename_nulls,
    const std::unordered_map<Term, uint64_t>& term_color) {
  std::vector<uint64_t> key;
  key.push_back(atom.predicate);
  std::unordered_map<Term, uint64_t> local_rank;
  for (Term t : atom.args) {
    bool renameable = t.is_variable() || (rename_nulls && t.is_null());
    if (!renameable) {
      key.push_back(t.bits());
      continue;
    }
    auto [it, inserted] = local_rank.try_emplace(t, local_rank.size());
    uint64_t kind_tag = t.is_variable() ? 3 : 1;
    key.push_back((kind_tag << 62) | it->second);
    auto color = term_color.find(t);
    key.push_back(color == term_color.end() ? 0 : color->second);
  }
  return key;
}

constexpr uint32_t kUnranked = 0xffffffffu;
constexpr uint64_t kFlatVarLimit = 4096;

/// Grow-only per-thread scratch for the flat canonicalization fast path:
/// every per-term lookup is an array indexed by variable index, and no
/// allocation survives between calls.
struct FlatScratch {
  std::vector<uint64_t> color;     // per variable index
  std::vector<uint32_t> var_rank;  // per variable index; kUnranked = unseen
  std::vector<uint32_t> touched;   // var indices to reset in var_rank
  std::vector<std::pair<uint64_t, uint64_t>> occ;  // (var, code) pairs
  std::vector<uint64_t> run_codes;
  std::vector<uint64_t> keys;  // concatenated per-atom invariant keys
  std::vector<std::pair<uint32_t, uint32_t>> key_span;  // per atom [b, e)

  void Prepare(size_t num_vars) {
    if (color.size() < num_vars) {
      color.resize(num_vars, 0);
      var_rank.resize(num_vars, kUnranked);
    }
    occ.clear();
    keys.clear();
    key_span.clear();
  }
};

/// EncodeOrder for the flat path: identical output, array-backed ranks.
void FlatEncode(const std::vector<Atom>& atoms,
                const std::vector<size_t>& order, FlatScratch* s,
                std::vector<uint64_t>* enc) {
  enc->clear();
  uint32_t next = 0;
  for (size_t idx : order) {
    const Atom& a = atoms[idx];
    enc->push_back((uint64_t{2} << 62) | a.predicate);
    for (Term t : a.args) {
      if (!t.is_variable()) {
        enc->push_back(t.bits());
        continue;
      }
      uint32_t v = static_cast<uint32_t>(t.index());
      if (s->var_rank[v] == kUnranked) {
        s->var_rank[v] = next++;
        s->touched.push_back(v);
      }
      enc->push_back((uint64_t{3} << 62) | s->var_rank[v]);
    }
  }
  for (uint32_t v : s->touched) s->var_rank[v] = kUnranked;
  s->touched.clear();
}

/// Sorts the (var, code) pairs in `s->occ` and folds each variable's code
/// run into its color (combining with the previous color when refining).
/// The hash formulas mirror the map-based general path exactly, so both
/// paths produce identical canonical encodings.
void FoldColorRuns(FlatScratch* s, bool combine_old) {
  std::sort(s->occ.begin(), s->occ.end());
  for (size_t i = 0; i < s->occ.size();) {
    uint64_t var = s->occ[i].first;
    s->run_codes.clear();
    size_t j = i;
    while (j < s->occ.size() && s->occ[j].first == var) {
      s->run_codes.push_back(s->occ[j].second);
      ++j;
    }
    size_t c = HashRange(s->run_codes.begin(), s->run_codes.end());
    if (combine_old) HashCombine(&c, s->color[var]);
    s->color[var] = c;
    i = j;
  }
}

/// The common-case canonicalization (no null renaming, no mapping out,
/// variable indices < kFlatVarLimit): same algorithm and identical output
/// as the general path below, with flat arrays replacing the hash maps.
CanonicalState FlatCanonicalize(std::vector<Atom> atoms, size_t num_vars) {
  static thread_local FlatScratch scratch;
  FlatScratch* s = &scratch;
  s->Prepare(num_vars);
  CanonicalState state;
  size_t n = atoms.size();

  // Pass 1: occurrence-profile colors.
  for (const Atom& a : atoms) {
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (a.args[i].is_variable()) {
        s->occ.emplace_back(a.args[i].index(),
                            (static_cast<uint64_t>(a.predicate) << 8) | i);
      }
    }
  }
  FoldColorRuns(s, /*combine_old=*/false);

  // Pass 1b: one WL refinement round (see the general path).
  if (n > 2) {
    s->occ.clear();
    for (const Atom& a : atoms) {
      size_t atom_sig = a.predicate;
      for (Term t : a.args) {
        HashCombine(&atom_sig,
                    t.is_variable() ? s->color[t.index()] : t.bits());
      }
      for (size_t i = 0; i < a.args.size(); ++i) {
        if (a.args[i].is_variable()) {
          size_t code = atom_sig;
          HashCombine(&code, i);
          s->occ.emplace_back(a.args[i].index(), code);
        }
      }
    }
    FoldColorRuns(s, /*combine_old=*/true);
  }

  // Invariant keys, concatenated into one arena. A variable's local rank
  // is its first-occurrence index among the atom's distinct variables,
  // exactly as the general path's per-atom rank map.
  std::vector<uint64_t> atom_seen;
  for (const Atom& a : atoms) {
    uint32_t begin = static_cast<uint32_t>(s->keys.size());
    s->keys.push_back(a.predicate);
    atom_seen.clear();
    for (Term t : a.args) {
      if (!t.is_variable()) {
        s->keys.push_back(t.bits());
        continue;
      }
      size_t local_rank = 0;
      while (local_rank < atom_seen.size() &&
             atom_seen[local_rank] != t.index()) {
        ++local_rank;
      }
      if (local_rank == atom_seen.size()) atom_seen.push_back(t.index());
      s->keys.push_back((uint64_t{3} << 62) | local_rank);
      s->keys.push_back(s->color[t.index()]);
    }
    s->key_span.emplace_back(begin, static_cast<uint32_t>(s->keys.size()));
  }

  auto key_less = [s](size_t a, size_t b) {
    auto [ab, ae] = s->key_span[a];
    auto [bb, be] = s->key_span[b];
    return std::lexicographical_compare(s->keys.begin() + ab,
                                        s->keys.begin() + ae,
                                        s->keys.begin() + bb,
                                        s->keys.begin() + be);
  };
  auto key_eq = [s](size_t a, size_t b) {
    auto [ab, ae] = s->key_span[a];
    auto [bb, be] = s->key_span[b];
    return ae - ab == be - bb &&
           std::equal(s->keys.begin() + ab, s->keys.begin() + ae,
                      s->keys.begin() + bb);
  };

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), key_less);

  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) in `order`
  size_t combinations = 1;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && key_eq(order[i], order[j])) ++j;
    if (j - i > 1) {
      groups.emplace_back(i, j);
      for (size_t k = 2; k <= j - i && combinations <= 720; ++k) {
        combinations *= k;
      }
    }
    i = j;
  }

  if (groups.empty() || combinations > 720) {
    FlatEncode(atoms, order, s, &state.encoding);
  } else {
    std::vector<uint64_t> best;
    std::vector<uint64_t> candidate;
    std::vector<size_t> current = order;
    std::function<void(size_t)> recurse = [&](size_t group_index) {
      if (group_index == groups.size()) {
        FlatEncode(atoms, current, s, &candidate);
        if (best.empty() || candidate < best) {
          std::swap(best, candidate);
          order = current;
        }
        return;
      }
      auto [begin, end] = groups[group_index];
      std::vector<size_t> members(current.begin() + begin,
                                  current.begin() + end);
      std::sort(members.begin(), members.end());
      do {
        std::copy(members.begin(), members.end(), current.begin() + begin);
        recurse(group_index + 1);
      } while (std::next_permutation(members.begin(), members.end()));
    };
    recurse(0);
    state.encoding = std::move(best);
  }

  // Materialize atoms in canonical order with canonical names.
  uint32_t next_rank = 0;
  state.atoms.reserve(n);
  for (size_t idx : order) {
    Atom renamed;
    renamed.predicate = atoms[idx].predicate;
    renamed.args.reserve(atoms[idx].args.size());
    for (Term t : atoms[idx].args) {
      if (t.is_variable()) {
        uint32_t v = static_cast<uint32_t>(t.index());
        if (s->var_rank[v] == kUnranked) {
          s->var_rank[v] = next_rank++;
          s->touched.push_back(v);
        }
        renamed.args.push_back(Term::Variable(s->var_rank[v]));
      } else {
        renamed.args.push_back(t);
      }
    }
    state.atoms.push_back(std::move(renamed));
  }
  for (uint32_t v : s->touched) s->var_rank[v] = kUnranked;
  s->touched.clear();

  state.hash = HashRange(state.encoding.begin(), state.encoding.end());
  return state;
}

}  // namespace

CanonicalState Canonicalize(std::vector<Atom> atoms) {
  return CanonicalizeEx(std::move(atoms), /*rename_nulls=*/false, nullptr);
}

CanonicalState CanonicalizeEx(std::vector<Atom> atoms, bool rename_nulls,
                              std::unordered_map<Term, Term>* mapping) {
  CanonicalState state;
  size_t n = atoms.size();
  if (n == 0) {
    state.atoms = std::move(atoms);
    state.hash = HashRange(state.encoding.begin(), state.encoding.end());
    return state;
  }
  if (!rename_nulls && mapping == nullptr) {
    uint64_t max_var = 0;
    for (const Atom& a : atoms) {
      for (Term t : a.args) {
        if (t.is_variable() && t.index() > max_var) max_var = t.index();
      }
    }
    if (max_var < kFlatVarLimit) {
      return FlatCanonicalize(std::move(atoms), max_var + 1);
    }
  }

  auto renameable = [rename_nulls](Term t) {
    return t.is_variable() || (rename_nulls && t.is_null());
  };

  // Pass 1: color renameable terms by their occurrence profile (multiset
  // of (predicate, position) pairs) to break most ties.
  std::unordered_map<Term, std::vector<uint64_t>> occurrences;
  for (const Atom& a : atoms) {
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (renameable(a.args[i])) {
        occurrences[a.args[i]].push_back(
            (static_cast<uint64_t>(a.predicate) << 8) | i);
      }
    }
  }
  std::unordered_map<Term, uint64_t> term_color;
  for (auto& [term, profile] : occurrences) {
    std::sort(profile.begin(), profile.end());
    term_color[term] = HashRange(profile.begin(), profile.end());
  }

  // Pass 1b: one Weisfeiler–Leman-style refinement round — recolor each
  // term by the multiset of its occurrences *including the colors of the
  // co-occurring terms*. This separates most structurally distinct but
  // profile-identical variables, collapsing the tie groups the brute-force
  // pass below would otherwise have to permute.
  if (n > 2) {
    auto context_color = [&term_color](Term t) -> uint64_t {
      if (t.is_constant() || t.is_null()) return t.bits();
      auto it = term_color.find(t);
      return it == term_color.end() ? 0 : it->second;
    };
    std::unordered_map<Term, std::vector<uint64_t>> refined;
    for (const Atom& a : atoms) {
      uint64_t atom_sig = a.predicate;
      for (Term t : a.args) HashCombine(&atom_sig, context_color(t));
      for (size_t i = 0; i < a.args.size(); ++i) {
        if (renameable(a.args[i])) {
          uint64_t occ = atom_sig;
          HashCombine(&occ, i);
          refined[a.args[i]].push_back(occ);
        }
      }
    }
    for (auto& [term, profile] : refined) {
      std::sort(profile.begin(), profile.end());
      uint64_t color = HashRange(profile.begin(), profile.end());
      HashCombine(&color, term_color[term]);
      term_color[term] = color;
    }
  }

  // Sort atom indices by invariant key; collect tie groups.
  std::vector<std::vector<uint64_t>> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = InvariantKey(atoms[i], rename_nulls, term_color);
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });

  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) in `order`
  size_t combinations = 1;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && keys[order[i]] == keys[order[j]]) ++j;
    if (j - i > 1) {
      groups.emplace_back(i, j);
      for (size_t k = 2; k <= j - i && combinations <= 720; ++k) {
        combinations *= k;
      }
    }
    i = j;
  }

  if (groups.empty() || combinations > 720) {
    state.encoding = EncodeOrder(atoms, order, rename_nulls);
  } else {
    // Brute-force tie-group permutations for the lexicographically
    // smallest encoding (exact canonical form on symmetric states).
    std::vector<uint64_t> best;
    std::vector<size_t> current = order;
    std::function<void(size_t)> recurse = [&](size_t group_index) {
      if (group_index == groups.size()) {
        std::vector<uint64_t> enc = EncodeOrder(atoms, current, rename_nulls);
        if (best.empty() || enc < best) {
          best = std::move(enc);
          order = current;
        }
        return;
      }
      auto [begin, end] = groups[group_index];
      std::vector<size_t> members(current.begin() + begin,
                                  current.begin() + end);
      std::sort(members.begin(), members.end());
      do {
        std::copy(members.begin(), members.end(), current.begin() + begin);
        recurse(group_index + 1);
      } while (std::next_permutation(members.begin(), members.end()));
    };
    recurse(0);
    state.encoding = std::move(best);
  }

  // Materialize atoms in canonical order with canonical names.
  std::unordered_map<Term, uint64_t> var_rank;
  std::unordered_map<Term, uint64_t> null_rank;
  state.atoms.reserve(n);
  for (size_t idx : order) {
    Atom renamed;
    renamed.predicate = atoms[idx].predicate;
    renamed.args.reserve(atoms[idx].args.size());
    for (Term t : atoms[idx].args) {
      Term out = t;
      if (t.is_variable()) {
        auto [it, inserted] = var_rank.try_emplace(t, var_rank.size());
        out = Term::Variable(it->second);
      } else if (rename_nulls && t.is_null()) {
        auto [it, inserted] = null_rank.try_emplace(t, null_rank.size());
        out = Term::Null(it->second);
      }
      if (mapping != nullptr && renameable(t)) (*mapping)[t] = out;
      renamed.args.push_back(out);
    }
    state.atoms.push_back(std::move(renamed));
  }
  state.hash = HashRange(state.encoding.begin(), state.encoding.end());
  return state;
}

std::vector<int> ComponentIds(const std::vector<Atom>& atoms) {
  size_t n = atoms.size();
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::unordered_map<Term, size_t> first_seen;
  for (size_t i = 0; i < n; ++i) {
    for (Term t : atoms[i].args) {
      if (!t.is_variable()) continue;
      auto [it, inserted] = first_seen.try_emplace(t, i);
      if (!inserted) {
        parent[find(static_cast<int>(i))] = find(static_cast<int>(it->second));
      }
    }
  }

  // Dense component ids in first-occurrence order of the roots.
  std::vector<int> id_of_root(n, -1);
  std::vector<int> ids(n);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    int root = find(static_cast<int>(i));
    if (id_of_root[root] < 0) id_of_root[root] = next++;
    ids[i] = id_of_root[root];
  }
  return ids;
}

std::vector<std::vector<Atom>> SplitComponents(
    const std::vector<Atom>& atoms) {
  std::vector<int> ids = ComponentIds(atoms);
  std::vector<std::vector<Atom>> components;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (static_cast<size_t>(ids[i]) >= components.size()) {
      components.resize(ids[i] + 1);
    }
    components[ids[i]].push_back(atoms[i]);
  }
  return components;
}

size_t EagerSimplify(std::vector<Atom>* atoms, const Instance& database) {
  std::vector<char> dirty(atoms->size(), 1);
  return EagerSimplifyIncremental(atoms, database, &dirty);
}

size_t EagerSimplifyIncremental(std::vector<Atom>* atoms,
                                const Instance& database,
                                std::vector<char>* dirty) {
  // A CQ state is a *set* of atoms: conjunction is idempotent, so exact
  // duplicates (frequent in resolvents) are dropped first. This shrinks
  // states against the width bound and merges otherwise-distinct states.
  // A surviving copy inherits the dirtiness of every duplicate it absorbs.
  {
    size_t n = atoms->size();
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      bool duplicate = false;
      for (size_t j = 0; j < kept && !duplicate; ++j) {
        if ((*atoms)[i] == (*atoms)[j]) {
          (*dirty)[j] = static_cast<char>((*dirty)[j] | (*dirty)[i]);
          duplicate = true;
        }
      }
      if (!duplicate) {
        if (kept != i) {
          (*atoms)[kept] = std::move((*atoms)[i]);
          (*dirty)[kept] = (*dirty)[i];
        }
        ++kept;
      }
    }
    atoms->resize(kept);
    dirty->resize(kept);
  }

  std::vector<int> ids = ComponentIds(*atoms);
  int num_components = 0;
  for (int id : ids) num_components = std::max(num_components, id + 1);

  // 0 = keep unchecked (clean, parent certificate), 1 = check, 2 = drop.
  std::vector<char> component_state(num_components, 0);
  for (size_t i = 0; i < ids.size(); ++i) {
    if ((*dirty)[i] != 0) component_state[ids[i]] = 1;
  }
  std::vector<Atom> scratch;
  for (int c = 0; c < num_components; ++c) {
    if (component_state[c] != 1) continue;
    scratch.clear();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == c) scratch.push_back((*atoms)[i]);
    }
    if (HasHomomorphism(scratch, database)) component_state[c] = 2;
  }

  // Emit survivors grouped by component, in first-occurrence order —
  // byte-identical to the SplitComponents-based full simplification.
  std::vector<Atom> kept;
  kept.reserve(atoms->size());
  size_t removed = 0;
  for (int c = 0; c < num_components; ++c) {
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] != c) continue;
      if (component_state[c] == 2) {
        ++removed;
      } else {
        kept.push_back(std::move((*atoms)[i]));
      }
    }
  }
  *atoms = std::move(kept);
  return removed;
}

void ResolventDirtyFlags(const std::vector<int>& components,
                         const std::vector<size_t>& chunk,
                         size_t resolvent_size, std::vector<char>* dirty) {
  // Components disjoint from the chunk pass through the resolution
  // untouched (the unifier binds none of their variables — a shared
  // variable would put them in a chunk atom's component), so only
  // components that lost a member need re-checking, plus the new body
  // atoms appended after the kept parent atoms.
  static thread_local std::vector<char> component_hit;
  component_hit.assign(components.size(), 0);
  for (size_t idx : chunk) component_hit[components[idx]] = 1;
  dirty->clear();
  size_t chunk_cursor = 0;
  for (size_t i = 0; i < components.size(); ++i) {
    if (chunk_cursor < chunk.size() && chunk[chunk_cursor] == i) {
      ++chunk_cursor;
      continue;
    }
    dirty->push_back(component_hit[components[i]]);
  }
  dirty->resize(resolvent_size, 1);  // the body atoms are new
}

bool HasDeadAtom(const std::vector<Atom>& atoms, const Instance& database,
                 const std::unordered_set<PredicateId>& derivable) {
  for (const Atom& atom : atoms) {
    if (derivable.count(atom.predicate) == 0 &&
        EstimateMatches(atom, database) == 0) {
      return true;
    }
  }
  return false;
}

size_t EstimateMatches(const Atom& atom, const Instance& database) {
  const Relation* rel = database.RelationFor(atom.predicate);
  if (rel == nullptr) return 0;
  size_t rows = rel->size();
  for (size_t pos = 0; pos < atom.args.size(); ++pos) {
    if (atom.args[pos].is_rigid()) {
      rows = std::min(
          rows,
          rel->RowsWith(static_cast<uint32_t>(pos), atom.args[pos]).size());
    }
  }
  return rows;
}

size_t SelectAtom(const std::vector<Atom>& atoms, const Instance& database) {
  // Mirror the proof tree's eager leaf decomposition: prefer the
  // database-matchable atom with the fewest candidate rows (it will be
  // dropped with few branches). Only when nothing is matchable do we pick
  // a resolution target, preferring the most-constrained atom.
  size_t best_droppable = atoms.size();
  size_t best_rows = ~size_t{0};
  size_t best_resolvable = 0;
  size_t best_rigid = 0;
  bool have_resolvable = false;
  for (size_t i = 0; i < atoms.size(); ++i) {
    size_t rows = EstimateMatches(atoms[i], database);
    if (rows > 0 && rows < best_rows) {
      best_rows = rows;
      best_droppable = i;
    }
    size_t rigid = 0;
    for (Term t : atoms[i].args) {
      if (t.is_rigid()) ++rigid;
    }
    if (!have_resolvable || rigid > best_rigid) {
      best_rigid = rigid;
      best_resolvable = i;
      have_resolvable = true;
    }
  }
  return best_droppable != atoms.size() ? best_droppable : best_resolvable;
}

}  // namespace vadalog
