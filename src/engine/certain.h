// Certain-answer computation facade: chase-based materialization
// (Proposition 2.1) and proof-search-based verification/enumeration
// (Theorems 4.8/4.9), behind one interface.

#ifndef VADALOG_ENGINE_CERTAIN_H_
#define VADALOG_ENGINE_CERTAIN_H_

#include <vector>

#include "ast/program.h"
#include "ast/rule.h"
#include "chase/chase.h"
#include "engine/alternating_search.h"
#include "engine/linear_search.h"
#include "storage/instance.h"

namespace vadalog {

/// cert(q, D, Σ) by materializing chase(D, Σ) (with the Vadalog
/// termination control) and evaluating q over it, keeping tuples of
/// constants only (Proposition 2.1). Sorted and deduplicated.
std::vector<std::vector<Term>> CertainAnswersViaChase(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, const ChaseOptions& options = {});

/// Verifies one candidate tuple with the linear bounded proof search
/// (complete for WARD ∩ PWL programs with single-head TGDs).
bool IsCertainViaLinearSearch(const Program& program, const Instance& database,
                              const ConjunctiveQuery& query,
                              const std::vector<Term>& answer,
                              const ProofSearchOptions& options = {});

/// Verifies one candidate tuple with the alternating bounded proof search
/// (complete for WARD programs with single-head TGDs).
bool IsCertainViaAlternatingSearch(const Program& program,
                                   const Instance& database,
                                   const ConjunctiveQuery& query,
                                   const std::vector<Term>& answer,
                                   const ProofSearchOptions& options = {});

/// The result of a search-based certain-answer enumeration. `complete`
/// distinguishes a genuine refutation sweep from one that gave up: a
/// candidate rejected by a budget-exhausted (max_states / max_millis)
/// search may still be a certain answer, so the answer set is only a
/// definitive cert(q, D, Σ) when `complete` is true. Accepted candidates
/// are always sound — an interrupted search never fabricates a proof.
struct CertainAnswerSet {
  std::vector<std::vector<Term>> answers;  // sorted, deduplicated
  bool complete = true;
  uint64_t budget_exhausted_candidates = 0;  // rejections that gave up
  /// Non-empty when the request could not be served at all (e.g. a
  /// program whose fragment no engine supports); `answers` is then empty
  /// and meaningless rather than a (possibly incomplete) answer set.
  /// Scripted callers must distinguish this from "no certain answers".
  std::string error;
};

/// Enumerates cert(q, D, Σ) purely via proof search: every distinct tuple
/// over the constants of dom(D) (respecting repeated output variables) is
/// verified once, all candidates sharing one memoization cache (the one in
/// `options`, or an internal one when unset) so refutation work transfers
/// across the sweep. Exponential in the output arity — intended for tests
/// and small inputs. Callers running with budgets must consult
/// `complete` before treating the answers as definitive.
CertainAnswerSet CertainAnswersViaSearchChecked(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, bool use_alternating = false,
    const ProofSearchOptions& options = {});

/// Answers-only convenience wrapper over CertainAnswersViaSearchChecked.
/// Safe when the options carry no budget (the sweep cannot give up);
/// with budgets, prefer the Checked variant — this one cannot report that
/// the search gave up on some refutation.
std::vector<std::vector<Term>> CertainAnswersViaSearch(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, bool use_alternating = false,
    const ProofSearchOptions& options = {});

}  // namespace vadalog

#endif  // VADALOG_ENGINE_CERTAIN_H_
