#include "engine/alternating_search.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/fragments.h"
#include "engine/resolution.h"
#include "engine/search_cache.h"
#include "engine/state.h"
#include "engine/subsumption.h"
#include "obs/metrics.h"
#include "server/worker_pool.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

constexpr size_t kNoTouch = std::numeric_limits<size_t>::max();

// Upper bound on worker threads regardless of what the caller asks for,
// mirroring the linear BFS: oversubscription beyond this buys nothing,
// and an absurd request must degrade instead of making the fallback
// pool's thread spawns throw.
constexpr uint32_t kMaxSearchThreads = 64;

/// Read-only per-search context shared by every branch task.
struct SearchContext {
  const Program& program;
  const Instance& database;
  const ProgramIndex& index;
  ProofSearchCache* cache;
  SubsumptionIndex* shared_refuted;
  bool subsumption;
  size_t width;
  size_t max_chunk;
  bool timed;
  std::chrono::steady_clock::time_point deadline;
  WorkerPool* pool;
  uint32_t num_threads;
};

struct Outcome {
  bool proven;
  size_t min_touch;  // shallowest on-path ancestor hit by cycle pruning
};

/// A successor state that has not been gated yet (raw atoms plus the
/// incremental-simplification dirty flags).
struct ChildState {
  std::vector<Atom> atoms;
  std::vector<char> dirty;
};

/// One memo batch: the proven/refuted canonical states one Searcher
/// established, plus a log of them in finalize order. The sets double as
/// the searcher's memo tables while it runs; the log drives the
/// deterministic end-of-search flush into the shared cache and the
/// sweep-shared refutation bank (both of which must stay read-only while
/// branch tasks may still be probing them concurrently). Log entries
/// point into the node-based sets, so moving a batch keeps them valid.
struct RecordBatch {
  std::unordered_set<CanonicalState, CanonicalStateHash> proven;
  std::unordered_set<CanonicalState, CanonicalStateHash> refuted;
  struct Entry {
    const CanonicalState* state;
    bool proven;
  };
  std::vector<Entry> log;
};

using PathMap =
    std::unordered_map<CanonicalState, size_t, CanonicalStateHash>;

/// The iterative AND/OR tree machine. One instance decides one (sub)goal
/// with its own memo tables, counters and budget; proof depth lives in
/// heap-allocated frames, so it is bounded only by the caller's budgets —
/// never by the OS stack (the former kMaxProveDepth recursion guard,
/// which silently turned deep-but-provable goals into false
/// budget_exhausted verdicts, is gone).
///
/// The top `fork_levels` tree levels run their children as isolated
/// branch tasks: each child goal becomes a fresh Searcher seeded with the
/// on-path ancestor table (for cycle pruning) but otherwise private —
/// private memo, private counters, private probe stats, records deferred.
/// Tasks are speculatively executed in parallel on the worker pool and
/// folded strictly in child order with exact serial budgets, so verdicts
/// and (untimed) counters are bit-identical for any thread count: a
/// speculative result is only accepted when it provably equals the run
/// the sequential fold would have made (same assigned budget, or finished
/// strictly inside the serial budget without exhausting); anything else —
/// including tasks past the deciding child — is re-run exactly or
/// discarded wholesale.
class Searcher {
 public:
  Searcher(const SearchContext& ctx, const PathMap& ancestors,
           size_t base_depth, uint32_t fork_levels, uint64_t max_states,
           AlternatingSearchResult* result)
      : ctx_(ctx),
        on_path_(ancestors),
        base_depth_(base_depth),
        fork_levels_(fork_levels),
        max_states_(max_states),
        result_(result),
        records_(std::make_unique<RecordBatch>()) {}

  Outcome Prove(std::vector<Atom> atoms, std::vector<char> dirty) {
    Outcome out;
    if (Gate(std::move(atoms), std::move(dirty), &out)) return out;
    return fork_levels_ == 0 ? RunMachine() : RunFork();
  }

  /// The memo batches established by this searcher and (in fold order)
  /// every branch task folded into it. Valid after Prove.
  std::vector<std::unique_ptr<RecordBatch>> TakeRecords() {
    std::vector<std::unique_ptr<RecordBatch>> all = std::move(collected_);
    all.push_back(std::move(records_));
    return all;
  }

  /// Probe-stat deltas accumulated against the sweep-shared refutation
  /// bank and the cache's refuted-state index (folded-in tasks included).
  const SubsumptionIndex::Stats& shared_probe_stats() const {
    return shared_probe_stats_;
  }
  const SubsumptionIndex::Stats& cache_probe_stats() const {
    return cache_probe_stats_;
  }

 private:
  /// One AND/OR tree node. The frame index in `stack_` (plus the
  /// searcher's base depth) IS the node's proof-tree depth: the on-path
  /// cycle table and min_touch path-independence tracking key off this
  /// explicit structure, exactly as the recursive engine keyed off call
  /// depth.
  struct Frame {
    CanonicalState state;
    size_t min_touch = kNoTouch;
    bool is_and = false;
    // AND node: variable-disjoint components, proved in order.
    std::vector<std::vector<Atom>> components;
    // OR node: match-and-drop children (one per homomorphism of the
    // selected atom), then chunk resolvents per relevance-bucket TGD,
    // generated lazily one TGD at a time like the recursive engine.
    std::vector<Substitution> homs;
    std::vector<Atom> rest;
    std::vector<char> rest_dirty;
    std::vector<int> component_ids;
    std::vector<Resolvent> resolvents;
    const std::vector<size_t>* tgds = nullptr;
    uint64_t fresh_base = 0;
    uint32_t selected = 0;
    uint32_t next_child = 0;  // component / homomorphism cursor
    uint32_t next_tgd = 0;
    uint32_t next_resolvent = 0;
  };

  /// The result of one branch task: its private counters, outcome, memo
  /// batches, probe-stat deltas, and the budget it ran under (the fold's
  /// validity check compares it against the exact serial budget).
  struct BranchSlot {
    AlternatingSearchResult res;
    Outcome out{false, kNoTouch};
    std::vector<std::unique_ptr<RecordBatch>> records;
    SubsumptionIndex::Stats shared_stats;
    SubsumptionIndex::Stats cache_stats;
    uint64_t assigned_budget = 0;
    bool done = false;
  };

  /// Simplifies, canonicalizes and memo-checks one child goal. Returns
  /// true when the goal is decided on the spot (`*out` set); otherwise
  /// pushes the expansion frame and returns false.
  bool Gate(std::vector<Atom> atoms, std::vector<char> dirty, Outcome* out) {
    EagerSimplifyIncremental(&atoms, ctx_.database, &dirty);
    if (atoms.empty()) {
      *out = {true, kNoTouch};
      return true;
    }
    if (atoms.size() > ctx_.width) {  // Theorem 4.9
      *out = {false, kNoTouch};
      return true;
    }
    if (ctx_.index.StateIsDead(atoms, ctx_.database)) {
      *out = {false, kNoTouch};
      return true;
    }

    CanonicalState state = Canonicalize(std::move(atoms));
    result_->peak_state_bytes =
        std::max(result_->peak_state_bytes, state.ApproximateBytes());

    if (records_->proven.count(state) > 0) {
      *out = {true, kNoTouch};
      return true;
    }
    if (records_->refuted.count(state) > 0) {
      *out = {false, kNoTouch};
      return true;
    }
    if (ctx_.cache != nullptr) {
      if (ctx_.cache->AltKnownProven(state, ctx_.width, ctx_.max_chunk)) {
        ++result_->cache_hits;
        *out = {true, kNoTouch};
        return true;
      }
      if (ctx_.cache->AltKnownRefuted(state, ctx_.width, ctx_.max_chunk)) {
        ++result_->cache_hits;
        *out = {false, kNoTouch};
        return true;
      }
    }
    if (ctx_.subsumption) {
      // A path-independently refuted state that maps into this one
      // refutes it outright (every proof of this state restricts to one
      // of the subsumer), so the failure is itself path-independent.
      // Three banks, hottest first: this searcher's own refutations,
      // the sweep-shared bank, the session cache's refuted-state index.
      // The shared banks are probed with searcher-private stat blocks:
      // pure reads, so concurrent sibling tasks stay race-free and each
      // task's adaptive-gate decisions depend only on its own
      // (schedule-independent) query sequence.
      if (refuted_subsumers_.FindSubsumer(state, ctx_.width,
                                          ctx_.max_chunk) >= 0) {
        ++result_->subsumed_discarded;
        *out = {false, kNoTouch};
        return true;
      }
      if (ctx_.shared_refuted != nullptr &&
          ctx_.shared_refuted->FindSubsumer(state, ctx_.width,
                                            ctx_.max_chunk, INT64_MAX,
                                            &shared_probe_stats_) >= 0) {
        ++result_->sweep_refuted_hits;
        ++result_->subsumed_discarded;
        *out = {false, kNoTouch};
        return true;
      }
      if (ctx_.cache != nullptr &&
          ctx_.cache->AltRefutedBySubsumption(state, ctx_.width,
                                              ctx_.max_chunk,
                                              &cache_probe_stats_)) {
        ++result_->cache_hits;
        ++result_->subsumed_discarded;
        *out = {false, kNoTouch};
        return true;
      }
    }
    auto path_it = on_path_.find(state);
    if (path_it != on_path_.end()) {
      // Cycle: a minimal proof never repeats a state along a branch.
      *out = {false, path_it->second};
      return true;
    }
    if (result_->budget_exhausted) {  // hard stop
      *out = {false, 0};
      return true;
    }
    if (max_states_ != 0 && result_->states_expanded >= max_states_) {
      result_->budget_exhausted = true;
      *out = {false, 0};  // uncacheable: the branch was not explored
      return true;
    }
    if (ctx_.timed && (result_->states_expanded & 63) == 0 &&
        std::chrono::steady_clock::now() >= ctx_.deadline) {
      result_->budget_exhausted = true;
      *out = {false, 0};  // uncacheable
      return true;
    }
    ++result_->states_expanded;
    size_t depth = base_depth_ + stack_.size();
    PushFrame(std::move(state));
    on_path_.emplace(stack_.back().state, depth);
    return false;
  }

  void PushFrame(CanonicalState state) {
    Frame f;
    // AND node: decomposition into variable-disjoint components
    // (Definition 4.4; frozen outputs never connect). Each component is
    // a whole component of an already-simplified state: clean.
    std::vector<std::vector<Atom>> components = SplitComponents(state.atoms);
    if (components.size() > 1) {
      f.is_and = true;
      f.components = std::move(components);
    } else {
      // OR node: operations through the selected atom.
      f.selected = static_cast<uint32_t>(
          SelectAtom(state.atoms, ctx_.database));
      const Atom& pivot = state.atoms[f.selected];
      f.component_ids = ComponentIds(state.atoms);
      int pivot_component = f.component_ids[f.selected];
      f.rest.reserve(state.atoms.size() - 1);
      f.rest_dirty.reserve(state.atoms.size() - 1);
      for (size_t i = 0; i < state.atoms.size(); ++i) {
        if (i == f.selected) continue;
        f.rest.push_back(state.atoms[i]);
        f.rest_dirty.push_back(
            f.component_ids[i] == pivot_component ? 1 : 0);
      }
      ForEachHomomorphism({pivot}, ctx_.database, {},
                          [&f](const Substitution& h) {
                            f.homs.push_back(h);
                            return true;
                          });
      uint64_t fresh_base = 0;
      for (const Atom& a : state.atoms) {
        for (Term t : a.args) {
          if (t.is_variable()) {
            fresh_base = std::max(fresh_base, t.index() + 1);
          }
        }
      }
      f.fresh_base = fresh_base;
      // Chunks through the pivot exist only for TGDs whose head
      // predicate matches it: resolve against the relevance bucket.
      f.tgds = &ctx_.index.TgdsWithHead(pivot.predicate);
    }
    f.state = std::move(state);
    stack_.push_back(std::move(f));
  }

  /// Produces the next not-yet-gated child of the top frame, in the same
  /// order the recursive engine descended: components (AND), else
  /// match-and-drop homomorphisms, then anchored resolvents TGD by TGD.
  bool NextChild(Frame* f, ChildState* child) {
    if (f->is_and) {
      if (f->next_child >= f->components.size()) return false;
      child->atoms = std::move(f->components[f->next_child++]);
      child->dirty.assign(child->atoms.size(), 0);
      return true;
    }
    // Match-and-drop children. The homomorphisms were materialized whole
    // at expansion (ForEachHomomorphism is callback-driven, so a lazy
    // cursor would mean re-implementing its matching semantics): on a
    // child that proves early this pays a full row scan the recursive
    // engine skipped, but refutations — the expensive case — enumerate
    // everything either way. The list is freed as soon as it is drained
    // so deep proofs don't pin one hom list per live frame.
    if (f->next_child < f->homs.size()) {
      const Substitution& h = f->homs[f->next_child++];
      child->atoms = ApplySubstitution(h, f->rest);
      child->dirty = f->rest_dirty;
      if (f->next_child >= f->homs.size()) {
        std::vector<Substitution>().swap(f->homs);
        f->next_child = 0;  // homs drained; cursor no longer consulted
      }
      return true;
    }
    while (true) {
      if (f->next_resolvent < f->resolvents.size()) {
        Resolvent& r = f->resolvents[f->next_resolvent++];
        ResolventDirtyFlags(f->component_ids, r.chunk, r.atoms.size(),
                            &child->dirty);
        child->atoms = std::move(r.atoms);
        return true;
      }
      if (f->tgds == nullptr || f->next_tgd >= f->tgds->size()) {
        return false;
      }
      f->resolvents =
          ResolveWithTgd(f->state.atoms, ctx_.program,
                         (*f->tgds)[f->next_tgd++], f->fresh_base,
                         ctx_.max_chunk, f->selected);
      f->next_resolvent = 0;
    }
  }

  /// Pops the top frame with its verdict: memo insertion (refuted only
  /// when independent of every proper ancestor and no budget cut hit),
  /// record log, min_touch propagation.
  Outcome Finalize(bool proven) {
    Frame f = std::move(stack_.back());
    stack_.pop_back();
    size_t depth = base_depth_ + stack_.size();
    on_path_.erase(f.state);
    if (proven) {
      auto [it, inserted] = records_->proven.insert(std::move(f.state));
      if (inserted) records_->log.push_back({&*it, true});
      ++result_->proven_cached;
    } else if (f.min_touch >= depth && !result_->budget_exhausted) {
      // Refutation independent of any proper ancestor: cacheable.
      auto [it, inserted] = records_->refuted.insert(std::move(f.state));
      if (inserted) {
        records_->log.push_back({&*it, false});
        if (ctx_.subsumption) {
          refuted_subsumers_.Add(*it, ctx_.width, ctx_.max_chunk);
        }
      }
      ++result_->refuted_cached;
    }
    // Pruning against this very node is resolved here; only shallower
    // touches remain relevant to the caller.
    size_t propagated = f.min_touch >= depth ? kNoTouch : f.min_touch;
    return {proven, propagated};
  }

  /// The sequential explicit-stack loop: depth-first over heap frames,
  /// delivering child outcomes upward with AND/OR short-circuiting.
  Outcome RunMachine() {
    Outcome out{false, kNoTouch};
    bool have_outcome = false;
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      if (have_outcome) {
        have_outcome = false;
        f.min_touch = std::min(f.min_touch, out.min_touch);
        bool decided = f.is_and ? !out.proven : out.proven;
        if (decided) {
          out = Finalize(out.proven);
          have_outcome = true;
          continue;
        }
      }
      ChildState child;
      if (NextChild(&f, &child)) {
        // Gate may push a frame (invalidating `f`; not touched after) or
        // decide the child outright.
        have_outcome =
            Gate(std::move(child.atoms), std::move(child.dirty), &out);
      } else {
        // Children exhausted: every component proven (AND), or every
        // alternative failed (OR).
        out = Finalize(f.is_and);
        have_outcome = true;
      }
    }
    return out;
  }

  /// Runs one branch task: a fresh sub-searcher over `child`, seeded with
  /// this searcher's on-path table, one fork level fewer, and `budget`
  /// visited states.
  void RunBranch(const ChildState& child, uint64_t budget,
                 BranchSlot* slot) const {
    slot->assigned_budget = budget;
    Searcher sub(ctx_, on_path_, base_depth_ + stack_.size(), fork_levels_ - 1,
                 budget, &slot->res);
    std::vector<Atom> atoms = child.atoms;
    std::vector<char> dirty = child.dirty;
    slot->out = sub.Prove(std::move(atoms), std::move(dirty));
    slot->records = sub.TakeRecords();
    slot->shared_stats = sub.shared_probe_stats();
    slot->cache_stats = sub.cache_probe_stats();
    slot->done = true;
  }

  /// Fork-join over the single pushed frame's children. Speculative
  /// parallel phase (optional), then the authoritative sequential fold.
  Outcome RunFork() {
    Frame& f = stack_.back();
    std::vector<ChildState> children;
    {
      ChildState child;
      while (NextChild(&f, &child)) {
        children.push_back(std::move(child));
        child = ChildState{};
      }
    }
    const bool is_and = f.is_and;
    const size_t n = children.size();
    std::vector<BranchSlot> slots(n);

    // Speculative phase: run branch tasks concurrently, each with the
    // budget remaining as of the fork. Tasks ordered after an
    // already-decided child skip themselves — the fold would discard
    // them anyway.
    bool parallel = ctx_.pool != nullptr && ctx_.num_threads > 1 && n > 1 &&
                    !(max_states_ != 0 &&
                      result_->states_expanded >= max_states_);
    if (parallel) {
      uint64_t spec_budget =
          max_states_ == 0 ? 0 : max_states_ - result_->states_expanded;
      std::atomic<size_t> next{0};
      std::atomic<size_t> first_decided{n};
      auto worker = [&] {
        while (true) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          if (i > first_decided.load(std::memory_order_relaxed)) continue;
          RunBranch(children[i], spec_budget, &slots[i]);
          bool decides = is_and ? !slots[i].out.proven : slots[i].out.proven;
          if (decides) {
            size_t cur = first_decided.load(std::memory_order_relaxed);
            while (i < cur && !first_decided.compare_exchange_weak(
                                  cur, i, std::memory_order_relaxed)) {
            }
          }
        }
      };
      size_t workers = std::min<size_t>(ctx_.num_threads, n);
      ctx_.pool->ParallelInvoke(workers - 1, worker);
    }

    // Authoritative fold, strictly in child order with exact serial
    // budgets. A speculative result counts only when it provably equals
    // the exact run: same assigned budget, or finished strictly inside
    // the serial budget without exhausting it (a budgeted search that
    // never reaches its budget is identical under any larger one).
    bool decided = false;
    size_t processed = 0;
    for (size_t i = 0; i < n; ++i) {
      if (max_states_ != 0 && result_->states_expanded >= max_states_) {
        result_->budget_exhausted = true;
        break;
      }
      uint64_t serial_budget =
          max_states_ == 0 ? 0 : max_states_ - result_->states_expanded;
      BranchSlot& slot = slots[i];
      bool valid =
          slot.done &&
          (slot.assigned_budget == serial_budget ||
           (!slot.res.budget_exhausted &&
            (max_states_ == 0 ||
             slot.res.states_expanded < serial_budget)));
      if (!valid) {
        slot = BranchSlot{};
        RunBranch(children[i], serial_budget, &slot);
      }
      ++processed;
      result_->states_expanded += slot.res.states_expanded;
      result_->proven_cached += slot.res.proven_cached;
      result_->refuted_cached += slot.res.refuted_cached;
      result_->cache_hits += slot.res.cache_hits;
      result_->subsumed_discarded += slot.res.subsumed_discarded;
      result_->sweep_refuted_hits += slot.res.sweep_refuted_hits;
      result_->peak_state_bytes =
          std::max(result_->peak_state_bytes, slot.res.peak_state_bytes);
      shared_probe_stats_.MergeFrom(slot.shared_stats);
      cache_probe_stats_.MergeFrom(slot.cache_stats);
      f.min_touch = std::min(f.min_touch, slot.out.min_touch);
      for (std::unique_ptr<RecordBatch>& batch : slot.records) {
        collected_.push_back(std::move(batch));
      }
      if (slot.res.budget_exhausted) result_->budget_exhausted = true;
      // A decision from this child stands even when the budget flag is
      // set (a found proof is a proof; an AND already failed): the
      // exhausted stop only cuts the children that would come after.
      if (is_and ? !slot.out.proven : slot.out.proven) {
        decided = true;
        break;
      }
      if (result_->budget_exhausted) break;
    }
    bool proven = is_and ? (!decided && processed == n) : decided;
    return Finalize(proven);
  }

  const SearchContext& ctx_;
  PathMap on_path_;
  const size_t base_depth_;
  const uint32_t fork_levels_;
  const uint64_t max_states_;  // this searcher's visited-state budget
  AlternatingSearchResult* result_;

  std::vector<Frame> stack_;
  std::unique_ptr<RecordBatch> records_;
  std::vector<std::unique_ptr<RecordBatch>> collected_;
  SubsumptionIndex refuted_subsumers_;  // private: own refutations only
  SubsumptionIndex::Stats shared_probe_stats_;
  SubsumptionIndex::Stats cache_probe_stats_;
};

}  // namespace

AlternatingSearchResult AlternatingProofSearch(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, const std::vector<Term>& answer,
    const ProofSearchOptions& options) {
  AlternatingSearchResult result;
  size_t width = options.node_width != 0
                     ? options.node_width
                     : NodeWidthBoundWarded(query.atoms.size(), program);
  result.node_width_used = width;
  size_t max_chunk =
      options.max_chunk == 0 ? width : std::min(options.max_chunk, width);

  std::optional<std::vector<Atom>> frozen = FreezeQuery(query, answer);
  if (!frozen.has_value()) return result;

  ProofSearchCache* cache = options.cache;
  std::optional<ProgramIndex> local_index;
  if (cache == nullptr) local_index.emplace(program, database);
  const ProgramIndex& index =
      cache != nullptr ? cache->index() : *local_index;

  // A parallel search without a caller-supplied pool gets a private one
  // for its own lifetime, mirroring the linear BFS. With fork_depth == 0
  // there are no branch tasks to run, so no threads are spawned either.
  uint32_t threads = std::min(kMaxSearchThreads,
                              std::max<uint32_t>(1, options.num_threads));
  std::optional<WorkerPool> own_pool;
  WorkerPool* pool = options.pool;
  if (pool == nullptr && threads > 1 && options.fork_depth > 0) {
    own_pool.emplace(threads - 1);
    pool = &*own_pool;
  }

  SearchContext ctx{program,
                    database,
                    index,
                    cache,
                    options.subsumption ? options.shared_refuted : nullptr,
                    options.subsumption,
                    width,
                    max_chunk,
                    options.max_millis != 0,
                    {},
                    pool,
                    threads};
  if (ctx.timed) {
    // The deadline (and the clock read behind it) exists only for timed
    // searches; untimed ones never touch the clock.
    ctx.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options.max_millis);
  }

  Searcher searcher(ctx, PathMap{}, /*base_depth=*/0, options.fork_depth,
                    options.max_states, &result);
  std::vector<char> dirty(frozen->size(), 1);
  result.accepted =
      searcher.Prove(std::move(*frozen), std::move(dirty)).proven;

  // Deferred flush, in deterministic (fold, then finalize) order: while
  // branch tasks run, the session cache and the sweep-shared bank are
  // read-only; every proven / path-independently refuted state they
  // established lands here, after the last probe. Budget-cut branches
  // recorded nothing (Finalize's guard), so exhausted searches still
  // deposit no refutation certificate for anything they gave up on.
  std::vector<std::unique_ptr<RecordBatch>> batches = searcher.TakeRecords();
  if (cache != nullptr || (options.shared_refuted != nullptr &&
                           options.subsumption)) {
    // Sibling branch tasks share no memo tables, so two batches can log
    // the same canonical state; the cache's Record() dedupes internally,
    // but SubsumptionIndex::Add appends unconditionally — dedupe across
    // batches here so the bank gets at most one entry per state per
    // search (duplicates would crowd the capped probe prefix).
    struct DerefHash {
      size_t operator()(const CanonicalState* s) const { return s->Hash(); }
    };
    struct DerefEq {
      bool operator()(const CanonicalState* a,
                      const CanonicalState* b) const {
        return *a == *b;
      }
    };
    std::unordered_set<const CanonicalState*, DerefHash, DerefEq> banked;
    for (const std::unique_ptr<RecordBatch>& batch : batches) {
      for (const RecordBatch::Entry& entry : batch->log) {
        if (entry.proven) {
          if (cache != nullptr) {
            cache->AltRecordProven(*entry.state, width, max_chunk);
          }
        } else {
          if (cache != nullptr) {
            cache->AltRecordRefuted(*entry.state, width, max_chunk);
          }
          if (options.shared_refuted != nullptr && options.subsumption &&
              banked.insert(entry.state).second) {
            options.shared_refuted->Add(*entry.state, width, max_chunk);
          }
        }
      }
    }
  }
  if (options.shared_refuted != nullptr) {
    options.shared_refuted->MergeStats(searcher.shared_probe_stats());
  }
  if (cache != nullptr) {
    cache->MergeAltProbeStats(searcher.cache_probe_stats());
  }
  if (options.metrics != nullptr) {
    options.metrics->RecordSearch(result.states_expanded, result.cache_hits,
                                  result.subsumed_discarded,
                                  result.sweep_refuted_hits,
                                  result.budget_exhausted);
  }
  return result;
}

}  // namespace vadalog
