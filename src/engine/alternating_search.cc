#include "engine/alternating_search.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/fragments.h"
#include "engine/resolution.h"
#include "engine/search_cache.h"
#include "engine/state.h"
#include "engine/subsumption.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

constexpr size_t kNoTouch = std::numeric_limits<size_t>::max();

// Recursion guard: the DFS descends one stack frame per proof-tree level,
// and pathological warded instances can chain tens of thousands of levels
// before cycle pruning bites. Past this depth the search gives up on the
// branch and reports budget exhaustion (a "gave up", never a refutation)
// instead of overflowing the stack. Sized for the worst build: a level
// costs ~1.5-2 KiB in debug/sanitizer builds (Prove + ProveExpanded +
// the homomorphism callback frames), so 2000 levels stay comfortably
// inside the 8 MiB default thread stack everywhere.
constexpr size_t kMaxProveDepth = 2000;

class Searcher {
 public:
  Searcher(const Program& program, const Instance& database,
           const ProgramIndex& index, ProofSearchCache* cache, size_t width,
           size_t max_chunk, const ProofSearchOptions& options,
           AlternatingSearchResult* result)
      : program_(program),
        database_(database),
        index_(index),
        cache_(cache),
        shared_refuted_(options.shared_refuted),
        subsumption_(options.subsumption),
        width_(width),
        max_chunk_(max_chunk),
        max_states_(options.max_states),
        timed_(options.max_millis != 0),
        result_(result) {
    if (timed_) {
      // The deadline (and the clock read behind it) exists only for timed
      // searches; untimed ones never touch the clock.
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options.max_millis);
    }
  }

  struct Outcome {
    bool proven;
    size_t min_touch;  // shallowest on-path ancestor hit by cycle pruning
  };

  /// Proves or refutes one state. `dirty` marks, per atom, whether the
  /// producing step could have re-enabled a database embedding; clean
  /// components inherit the parent's simplification certificate (see
  /// EagerSimplifyIncremental). Consumed as scratch.
  Outcome Prove(std::vector<Atom> atoms, std::vector<char> dirty,
                size_t depth) {
    EagerSimplifyIncremental(&atoms, database_, &dirty);
    if (atoms.empty()) return {true, kNoTouch};
    if (atoms.size() > width_) return {false, kNoTouch};  // Theorem 4.9
    if (index_.StateIsDead(atoms, database_)) return {false, kNoTouch};

    CanonicalState state = Canonicalize(std::move(atoms));
    result_->peak_state_bytes =
        std::max(result_->peak_state_bytes, state.ApproximateBytes());

    if (proven_.count(state) > 0) return {true, kNoTouch};
    if (refuted_.count(state) > 0) return {false, kNoTouch};
    if (cache_ != nullptr) {
      if (cache_->AltKnownProven(state, width_, max_chunk_)) {
        ++result_->cache_hits;
        return {true, kNoTouch};
      }
      if (cache_->AltKnownRefuted(state, width_, max_chunk_)) {
        ++result_->cache_hits;
        return {false, kNoTouch};
      }
    }
    if (subsumption_) {
      // A path-independently refuted state that maps into this one refutes
      // it outright (every proof of this state restricts to one of the
      // subsumer), so the failure is itself path-independent. With a
      // sweep-shared bank the search registers and probes that one index
      // instead of a private per-candidate copy, so refutation subtrees
      // carry across the candidates of one sweep.
      SubsumptionIndex& refuted_index =
          shared_refuted_ != nullptr ? *shared_refuted_ : refuted_subsumers_;
      if (refuted_index.FindSubsumer(state, width_, max_chunk_) >= 0) {
        if (shared_refuted_ != nullptr) ++result_->sweep_refuted_hits;
        ++result_->subsumed_discarded;
        return {false, kNoTouch};
      }
      if (cache_ != nullptr &&
          cache_->AltRefutedBySubsumption(state, width_, max_chunk_)) {
        ++result_->cache_hits;
        ++result_->subsumed_discarded;
        return {false, kNoTouch};
      }
    }
    auto path_it = on_path_.find(state);
    if (path_it != on_path_.end()) {
      // Cycle: a minimal proof never repeats a state along a branch.
      return {false, path_it->second};
    }
    if (result_->budget_exhausted) return {false, 0};  // hard stop
    if (depth >= kMaxProveDepth) {
      result_->budget_exhausted = true;
      return {false, 0};  // uncacheable: the branch was not explored
    }
    if (max_states_ != 0 && result_->states_expanded >= max_states_) {
      result_->budget_exhausted = true;
      return {false, 0};  // uncacheable
    }
    if (timed_ && (result_->states_expanded & 63) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      result_->budget_exhausted = true;
      return {false, 0};  // uncacheable
    }
    ++result_->states_expanded;
    on_path_.emplace(state, depth);

    size_t min_touch = kNoTouch;
    bool proven = ProveExpanded(state, depth, &min_touch);

    on_path_.erase(state);
    if (proven) {
      proven_.insert(state);
      ++result_->proven_cached;
      if (cache_ != nullptr) {
        cache_->AltRecordProven(state, width_, max_chunk_);
      }
    } else if (min_touch >= depth && !result_->budget_exhausted) {
      // Refutation independent of any proper ancestor: cacheable.
      auto [it, inserted] = refuted_.insert(state);
      if (inserted && subsumption_) {
        (shared_refuted_ != nullptr ? *shared_refuted_ : refuted_subsumers_)
            .Add(*it, width_, max_chunk_);
      }
      ++result_->refuted_cached;
      if (cache_ != nullptr) {
        cache_->AltRecordRefuted(state, width_, max_chunk_);
      }
    }
    // Pruning against this very node is resolved here; only shallower
    // touches remain relevant to the caller.
    size_t propagated = min_touch >= depth ? kNoTouch : min_touch;
    return {proven, propagated};
  }

 private:
  bool ProveExpanded(const CanonicalState& state, size_t depth,
                     size_t* min_touch) {
    // AND node: decomposition into variable-disjoint components
    // (Definition 4.4; frozen outputs never connect). Each component is a
    // whole component of an already-simplified state: clean.
    std::vector<std::vector<Atom>> components = SplitComponents(state.atoms);
    if (components.size() > 1) {
      for (std::vector<Atom>& component : components) {
        std::vector<char> clean(component.size(), 0);
        Outcome out = Prove(std::move(component), std::move(clean),
                            depth + 1);
        *min_touch = std::min(*min_touch, out.min_touch);
        if (!out.proven) return false;
      }
      return true;
    }

    // OR node: operations through the selected atom.
    size_t selected = SelectAtom(state.atoms, database_);
    const Atom& pivot = state.atoms[selected];
    std::vector<int> component_ids = ComponentIds(state.atoms);
    int pivot_component = component_ids[selected];
    std::vector<Atom> rest;
    std::vector<char> rest_dirty;
    rest.reserve(state.atoms.size() - 1);
    rest_dirty.reserve(state.atoms.size() - 1);
    for (size_t i = 0; i < state.atoms.size(); ++i) {
      if (i == selected) continue;
      rest.push_back(state.atoms[i]);
      rest_dirty.push_back(component_ids[i] == pivot_component ? 1 : 0);
    }

    bool proven = false;
    ForEachHomomorphism({pivot}, database_, {}, [&](const Substitution& h) {
      Outcome out =
          Prove(ApplySubstitution(h, rest), rest_dirty, depth + 1);
      *min_touch = std::min(*min_touch, out.min_touch);
      if (out.proven) {
        proven = true;
        return false;
      }
      return true;
    });
    if (proven) return true;

    uint64_t fresh_base = 0;
    for (const Atom& a : state.atoms) {
      for (Term t : a.args) {
        if (t.is_variable()) fresh_base = std::max(fresh_base, t.index() + 1);
      }
    }
    // Chunks through the pivot exist only for TGDs whose head predicate
    // matches it: resolve against the relevance bucket, anchored.
    std::vector<char> dirty;
    for (size_t tgd_index : index_.TgdsWithHead(pivot.predicate)) {
      std::vector<Resolvent> resolvents =
          ResolveWithTgd(state.atoms, program_, tgd_index, fresh_base,
                         max_chunk_, /*anchor=*/selected);
      for (Resolvent& r : resolvents) {
        ResolventDirtyFlags(component_ids, r.chunk, r.atoms.size(), &dirty);
        Outcome out = Prove(std::move(r.atoms), dirty, depth + 1);
        *min_touch = std::min(*min_touch, out.min_touch);
        if (out.proven) return true;
      }
    }
    return false;
  }

  const Program& program_;
  const Instance& database_;
  const ProgramIndex& index_;
  ProofSearchCache* cache_;
  SubsumptionIndex* shared_refuted_;
  const bool subsumption_;
  size_t width_;
  size_t max_chunk_;
  uint64_t max_states_;
  bool timed_;
  std::chrono::steady_clock::time_point deadline_{};
  AlternatingSearchResult* result_;

  std::unordered_set<CanonicalState, CanonicalStateHash> proven_;
  std::unordered_set<CanonicalState, CanonicalStateHash> refuted_;
  SubsumptionIndex refuted_subsumers_;
  std::unordered_map<CanonicalState, size_t, CanonicalStateHash> on_path_;
};

}  // namespace

AlternatingSearchResult AlternatingProofSearch(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, const std::vector<Term>& answer,
    const ProofSearchOptions& options) {
  AlternatingSearchResult result;
  size_t width = options.node_width != 0
                     ? options.node_width
                     : NodeWidthBoundWarded(query.atoms.size(), program);
  result.node_width_used = width;
  size_t max_chunk =
      options.max_chunk == 0 ? width : std::min(options.max_chunk, width);

  std::optional<std::vector<Atom>> frozen = FreezeQuery(query, answer);
  if (!frozen.has_value()) return result;

  ProofSearchCache* cache = options.cache;
  std::optional<ProgramIndex> local_index;
  if (cache == nullptr) local_index.emplace(program, database);
  const ProgramIndex& index =
      cache != nullptr ? cache->index() : *local_index;

  Searcher searcher(program, database, index, cache, width, max_chunk,
                    options, &result);
  std::vector<char> dirty(frozen->size(), 1);
  result.accepted =
      searcher.Prove(std::move(*frozen), std::move(dirty), 0).proven;
  return result;
}

}  // namespace vadalog
