// Explicit proof objects. The linear proof search can record, per visited
// state, the operation that produced it; on acceptance the edge chain is
// folded back into a linear proof tree (Definition 4.6 with the leaves of
// each decomposition inlined) — a machine-checkable explanation of why a
// tuple is a certain answer.

#ifndef VADALOG_ENGINE_PROOF_TREE_H_
#define VADALOG_ENGINE_PROOF_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/atom.h"
#include "ast/program.h"

namespace vadalog {

/// One level of the reconstructed linear proof tree.
struct ProofStep {
  enum class Kind : uint8_t {
    kStart,          // the frozen initial query Q(c̄)
    kResolution,     // chunk-based resolution with a TGD (op 'r')
    kMatchDrop,      // specialization + leaf decomposition (ops 's','d')
    kLeafDischarge,  // a satisfiable component removed wholesale
  };

  Kind kind = Kind::kStart;
  size_t tgd_index = 0;     // for kResolution
  Atom matched_fact;        // for kMatchDrop: the database fact used
  std::vector<Atom> state;  // the CQ labeling this level (after the op)

  std::string ToString(const Program& program) const;
};

/// A linear proof: the sequence of levels from the frozen query down to
/// the empty CQ.
struct ProofExplanation {
  std::vector<ProofStep> steps;

  bool empty() const { return steps.empty(); }
  std::string ToString(const Program& program) const;
};

}  // namespace vadalog

#endif  // VADALOG_ENGINE_PROOF_TREE_H_
