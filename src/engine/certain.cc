#include "engine/certain.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "engine/search_cache.h"
#include "engine/subsumption.h"
#include "server/worker_pool.h"
#include "storage/homomorphism.h"

namespace vadalog {

std::vector<std::vector<Term>> CertainAnswersViaChase(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, const ChaseOptions& options) {
  ChaseResult chase = RunChase(program, database, options);
  return EvaluateQuerySorted(query, chase.instance, /*certain_only=*/true);
}

bool IsCertainViaLinearSearch(const Program& program, const Instance& database,
                              const ConjunctiveQuery& query,
                              const std::vector<Term>& answer,
                              const ProofSearchOptions& options) {
  return LinearProofSearch(program, database, query, answer, options).accepted;
}

bool IsCertainViaAlternatingSearch(const Program& program,
                                   const Instance& database,
                                   const ConjunctiveQuery& query,
                                   const std::vector<Term>& answer,
                                   const ProofSearchOptions& options) {
  return AlternatingProofSearch(program, database, query, answer, options)
      .accepted;
}

CertainAnswerSet CertainAnswersViaSearchChecked(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, bool use_alternating,
    const ProofSearchOptions& options) {
  CertainAnswerSet result;

  // Collect distinct output variables (a repeated variable must take the
  // same constant in every candidate); set-backed so repeated outputs cost
  // O(1) instead of a scan per output term.
  std::vector<Term> distinct_outputs;
  std::unordered_set<Term> seen_outputs;
  for (Term t : query.output) {
    if (t.is_variable() && seen_outputs.insert(t).second) {
      distinct_outputs.push_back(t);
    }
  }

  std::vector<Term> domain;
  for (Term t : database.ActiveDomain()) {
    if (t.is_constant()) domain.push_back(t);
  }
  std::sort(domain.begin(), domain.end());

  // Enumerate the induced candidate tuples first and deduplicate them, so
  // no tuple is ever verified twice (verification is the expensive part).
  std::vector<std::vector<Term>> candidates;
  std::vector<Term> assignment(distinct_outputs.size());
  auto recurse = [&](auto&& self, size_t position) -> void {
    if (position == distinct_outputs.size()) {
      Substitution binding;
      for (size_t i = 0; i < distinct_outputs.size(); ++i) {
        binding[distinct_outputs[i]] = assignment[i];
      }
      std::vector<Term> candidate;
      candidate.reserve(query.output.size());
      for (Term t : query.output) {
        candidate.push_back(ApplySubstitution(binding, t));
      }
      candidates.push_back(std::move(candidate));
      return;
    }
    for (Term c : domain) {
      assignment[position] = c;
      self(self, position + 1);
    }
  };
  if (query.output.empty()) {
    candidates.push_back({});
  } else {
    recurse(recurse, 0);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // All candidates run against one shared memoization cache: the frozen
  // constants differ per candidate but the derived canonical states
  // largely recur, so refutation work is paid once across the sweep. One
  // sweep-shared SubsumptionIndex rides along: completed refutations bank
  // their visited subtrees there, and every later candidate's search
  // discards frontier states a banked state maps into — subsumption-based
  // transfer on top of the cache's exact-match tables. A parallel sweep
  // additionally gets one persistent worker pool for all candidates.
  std::optional<ProofSearchCache> local_cache;
  SubsumptionIndex sweep_refuted;
  std::optional<WorkerPool> sweep_pool;
  ProofSearchOptions effective = options;
  if (effective.cache == nullptr) {
    local_cache.emplace(program, database);
    effective.cache = &*local_cache;
  }
  if (effective.shared_refuted == nullptr && effective.subsumption) {
    effective.shared_refuted = &sweep_refuted;
  }
  if (effective.pool == nullptr && effective.num_threads > 1 &&
      (!use_alternating || effective.fork_depth > 0)) {
    // Helpers only — the sweep's calling thread takes a share per level
    // (linear) or per branch batch (alternating; with fork_depth == 0
    // the machine is fully sequential and a pool would just idle). 64
    // mirrors the searches' own worker cap.
    sweep_pool.emplace(std::min<uint32_t>(effective.num_threads, 64) - 1);
    effective.pool = &*sweep_pool;
  }
  for (const std::vector<Term>& candidate : candidates) {
    bool certain = false;
    bool gave_up = false;
    if (use_alternating) {
      AlternatingSearchResult r = AlternatingProofSearch(
          program, database, query, candidate, effective);
      certain = r.accepted;
      gave_up = r.budget_exhausted;
    } else {
      ProofSearchResult r =
          LinearProofSearch(program, database, query, candidate, effective);
      certain = r.accepted;
      gave_up = r.budget_exhausted;
    }
    if (certain) {
      // A proof found within the budget is a proof — always sound.
      result.answers.push_back(candidate);
    } else if (gave_up) {
      // The search ran out of budget before refuting this candidate: the
      // rejection is NOT a refutation, and the answer set is incomplete.
      result.complete = false;
      ++result.budget_exhausted_candidates;
    }
  }
  return result;
}

std::vector<std::vector<Term>> CertainAnswersViaSearch(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, bool use_alternating,
    const ProofSearchOptions& options) {
  return CertainAnswersViaSearchChecked(program, database, query,
                                        use_alternating, options)
      .answers;
}

}  // namespace vadalog
