#include "engine/certain.h"

#include <algorithm>

#include "storage/homomorphism.h"

namespace vadalog {

std::vector<std::vector<Term>> CertainAnswersViaChase(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, const ChaseOptions& options) {
  ChaseResult chase = RunChase(program, database, options);
  return EvaluateQuerySorted(query, chase.instance, /*certain_only=*/true);
}

bool IsCertainViaLinearSearch(const Program& program, const Instance& database,
                              const ConjunctiveQuery& query,
                              const std::vector<Term>& answer,
                              const ProofSearchOptions& options) {
  return LinearProofSearch(program, database, query, answer, options).accepted;
}

bool IsCertainViaAlternatingSearch(const Program& program,
                                   const Instance& database,
                                   const ConjunctiveQuery& query,
                                   const std::vector<Term>& answer,
                                   const ProofSearchOptions& options) {
  return AlternatingProofSearch(program, database, query, answer, options)
      .accepted;
}

std::vector<std::vector<Term>> CertainAnswersViaSearch(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, bool use_alternating,
    const ProofSearchOptions& options) {
  std::vector<std::vector<Term>> answers;

  // Collect distinct output variables (a repeated variable must take the
  // same constant in every candidate).
  std::vector<Term> distinct_outputs;
  for (Term t : query.output) {
    if (t.is_variable() &&
        std::find(distinct_outputs.begin(), distinct_outputs.end(), t) ==
            distinct_outputs.end()) {
      distinct_outputs.push_back(t);
    }
  }

  std::vector<Term> domain;
  for (Term t : database.ActiveDomain()) {
    if (t.is_constant()) domain.push_back(t);
  }
  std::sort(domain.begin(), domain.end());

  // Enumerate assignments of domain constants to the distinct output
  // variables; verify each induced tuple.
  std::vector<Term> assignment(distinct_outputs.size());
  auto verify = [&](const std::vector<Term>& candidate) {
    return use_alternating
               ? IsCertainViaAlternatingSearch(program, database, query,
                                               candidate, options)
               : IsCertainViaLinearSearch(program, database, query, candidate,
                                          options);
  };
  auto recurse = [&](auto&& self, size_t position) -> void {
    if (position == distinct_outputs.size()) {
      Substitution binding;
      for (size_t i = 0; i < distinct_outputs.size(); ++i) {
        binding[distinct_outputs[i]] = assignment[i];
      }
      std::vector<Term> candidate;
      candidate.reserve(query.output.size());
      for (Term t : query.output) {
        candidate.push_back(ApplySubstitution(binding, t));
      }
      if (verify(candidate)) answers.push_back(candidate);
      return;
    }
    for (Term c : domain) {
      assignment[position] = c;
      self(self, position + 1);
    }
  };
  if (query.output.empty()) {
    if (verify({})) answers.push_back({});
  } else {
    recurse(recurse, 0);
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace vadalog
