// Relevance pruning and cross-candidate memoization for the bounded proof
// searches (Section 4.3).
//
// Both deterministic realizations (the linear BFS and the alternating
// AND-OR search) repeat two kinds of work across states and across
// candidate tuples:
//
//   * every state loops over all TGDs at every resolution step, although a
//     chunk unifier through the selected atom can only exist for TGDs
//     whose head predicate equals the selected atom's predicate — the
//     ProgramIndex precomputes that per-predicate bucket from pg(Σ), plus
//     a "supported" predicate fixpoint that prunes states containing atoms
//     no derivation can ever discharge;
//
//   * the candidate-tuple enumeration of CertainAnswersViaSearch (and
//     repeated decisions against one database, e.g. the OWL 2 QL example)
//     re-explores largely identical canonical states: the frozen output
//     constants differ but the derived sub-states recur. The
//     ProofSearchCache memoizes, across searches over the same
//     (program, database) pair, canonical states proven non-accepting by a
//     completed linear BFS, and both proven and refuted states of the
//     alternating search (refuted only when path-independent, per the
//     tabling taint rule).
//
// Cache entries are tagged with the (node_width, max_chunk) exploration
// bound they were established under: a refutation only transfers to a
// search exploring *no more* than the recording search did, a proof to one
// exploring *no less*. States are stored with their atoms interned (one
// uint32 id per canonical atom encoding), so the per-state footprint across
// thousands of overlapping states stays small.
//
// A cache is only meaningful for the (program, database) pair it was
// constructed with. The one sanctioned migration is InvalidateForDelta:
// when facts are *inserted* (never removed) the cache carries over to the
// grown database after dropping exactly the refutation-flavored entries
// whose predicates fall in the delta's affected cone — proven entries are
// monotone (a proof over D is a proof over any D ⊇ D) and survive as-is.
// Any other reuse across different inputs remains unsound.

#ifndef VADALOG_ENGINE_SEARCH_CACHE_H_
#define VADALOG_ENGINE_SEARCH_CACHE_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/program.h"
#include "base/hash.h"
#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "engine/state.h"
#include "engine/subsumption.h"
#include "storage/instance.h"

namespace vadalog {

/// Static relevance facts about one (program, database) pair, derived from
/// the predicate graph pg(Σ). Cheap to build (schema-sized); the searches
/// build a local one per call when no shared cache is supplied.
class ProgramIndex {
 public:
  ProgramIndex() = default;
  ProgramIndex(const Program& program, const Instance& database);

  /// Indices of the TGDs whose (single, post-normalization) head atom has
  /// predicate `p` — the only TGDs whose head can piece-unify with an atom
  /// of predicate `p` (Definition 4.3 chunks are predicate-homogeneous).
  const std::vector<size_t>& TgdsWithHead(PredicateId p) const;

  /// True iff some TGD derives `p`.
  bool RuleDerivable(PredicateId p) const {
    return !TgdsWithHead(p).empty();
  }

  /// True iff an atom with predicate `p` can possibly be discharged: `p`
  /// has database facts, or some TGD with head `p` has an all-supported
  /// body (least fixpoint over pg(Σ), SCCs processed in topological
  /// order). A state containing an unsupported predicate can never reach
  /// the empty (accepting) state.
  bool Supported(PredicateId p) const {
    return p < supported_.size() && supported_[p] != 0;
  }

  /// True iff some atom of the state can provably never be discharged:
  /// its predicate is unsupported, or it is not rule-derivable and its
  /// rigid bindings match no database row (further bindings only shrink
  /// the match set). Such states are dead and are pruned.
  bool StateIsDead(const std::vector<Atom>& atoms,
                   const Instance& database) const;

  /// Reverse-dependency query over pg(Σ) for delta maintenance: the set
  /// of predicates whose resolution cone can reach a predicate of
  /// `delta` — the least set containing `delta` and closed under "head
  /// of a TGD whose body intersects the set" (forward reachability in
  /// pg(Σ), the dual of the supported fixpoint above). A proof of a
  /// state none of whose predicates is affected can never discharge an
  /// atom against a new fact of a delta predicate, so refutations of
  /// such states survive the insertion untouched. Returned as flat
  /// per-predicate flags sized like `Supported`'s table; delta
  /// predicates beyond the known range are ignored (nothing recorded
  /// can mention them).
  std::vector<char> AffectedByDelta(
      const std::vector<PredicateId>& delta) const;

 private:
  // Flat per-predicate arrays: PredicateIds are small dense interned ints,
  // and these are probed for every atom of every explored state.
  std::vector<std::vector<size_t>> tgds_by_head_;
  std::vector<char> supported_;
  // Forward edges of pg(Σ): heads_by_body_[p] lists the head predicates
  // of TGDs with p in the body (deduplicated), for AffectedByDelta.
  std::vector<std::vector<PredicateId>> heads_by_body_;
  std::vector<size_t> no_tgds_;
};

/// Shared memoization across proof searches over one (program, database)
/// pair. Share within one reasoning session.
///
/// Thread safety: internally synchronized by one reader-writer lock, so
/// whole *searches* can share the cache concurrently — several queries
/// of one session probing and (at their ends) recording at once. The
/// exact-match lookups, the stats-free subsumption probe (probe_stats
/// supplied), and the size getters take the lock shared; every Record,
/// the stats-mutating subsumption probe, MergeAltProbeStats, and
/// InvalidateForDelta take it exclusive. Within one search the old
/// fine-grained contract still matters for determinism (the parallel
/// searches defer their records past the concurrent probing phase), but
/// safety no longer depends on it. The one exception is `index()`: the
/// returned reference is invalidated by InvalidateForDelta, so callers
/// must externally exclude delta maintenance for as long as they hold
/// it — the session layer does (queries hold the session data lock
/// shared, ADD_FACTS holds it exclusive).
class ProofSearchCache {
 public:
  ProofSearchCache(const Program& program, const Instance& database);

  const ProgramIndex& index() const { return index_; }

  /// Linear BFS: was `state` proven unable to reach the empty state by a
  /// completed search whose exploration bound covers (width, max_chunk)?
  bool LinearKnownRefuted(const CanonicalState& state, size_t width,
                          size_t max_chunk);
  void LinearRecordRefuted(const CanonicalState& state, size_t width,
                           size_t max_chunk);

  /// Alternating search: globally valid proven / path-independent refuted
  /// sub-states.
  bool AltKnownProven(const CanonicalState& state, size_t width,
                      size_t max_chunk);
  bool AltKnownRefuted(const CanonicalState& state, size_t width,
                       size_t max_chunk);
  void AltRecordProven(const CanonicalState& state, size_t width,
                       size_t max_chunk);
  void AltRecordRefuted(const CanonicalState& state, size_t width,
                        size_t max_chunk);

  /// Subsumption transfer over the recorded refutations: true iff some
  /// recorded refuted state with a covering bound maps homomorphically
  /// into `state` (and has no more atoms). Without `probe_stats` the
  /// probe updates the bank's own counters and takes the cache lock
  /// exclusive; with a task-private `probe_stats` it is a pure read
  /// under the shared lock — what the alternating search's concurrent
  /// branch tasks use, merging the deltas back via MergeAltProbeStats
  /// in a fixed order for determinism.
  bool LinearRefutedBySubsumption(const CanonicalState& state, size_t width,
                                  size_t max_chunk) const {
    // Exclusive despite being a probe: without a task-private stats
    // block, FindSubsumer mutates the bank's own counters.
    base::WriterLock lock(&mutex_);
    return linear_refuted_states_.FindSubsumer(state, width, max_chunk) >= 0;
  }
  bool AltRefutedBySubsumption(
      const CanonicalState& state, size_t width, size_t max_chunk,
      SubsumptionIndex::Stats* probe_stats = nullptr) const {
    if (probe_stats != nullptr) {
      base::ReaderLock lock(&mutex_);
      return alt_refuted_states_.FindSubsumer(state, width, max_chunk,
                                              INT64_MAX, probe_stats) >= 0;
    }
    base::WriterLock lock(&mutex_);
    return alt_refuted_states_.FindSubsumer(state, width, max_chunk,
                                            INT64_MAX, nullptr) >= 0;
  }
  void MergeAltProbeStats(const SubsumptionIndex::Stats& delta) {
    base::WriterLock lock(&mutex_);
    alt_refuted_states_.MergeStats(delta);
  }

  /// What one InvalidateForDelta pass dropped (observability + tests).
  struct DeltaInvalidation {
    size_t affected_predicates = 0;  // size of the affected cone
    size_t exact_dropped = 0;        // linear/alt refuted exact entries
    size_t proven_kept = 0;          // alt proven entries (all survive)
    size_t subsumers_dropped = 0;    // bank entries tombstoned
  };

  /// Delta maintenance on fact insertion: migrates this cache to the
  /// grown `database` (which must be a superset of the one the cache was
  /// built against, same `program`) by rebuilding the schema-sized
  /// ProgramIndex and invalidating only the refuted entries — exact
  /// tables and subsumption banks — that mention a predicate in
  /// AffectedByDelta(delta_predicates). Everything else keeps its
  /// soundness: proofs are monotone under fact insertion, and a
  /// refutation whose cone misses the delta can never have used (or
  /// missed) a new fact. Single-threaded, like the Record paths.
  DeltaInvalidation InvalidateForDelta(
      const Program& program, const Instance& database,
      const std::vector<PredicateId>& delta_predicates);

  /// Counters are atomic so concurrent exact-match lookups stay race-free.
  struct Stats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> insertions{0};
  };
  const Stats& stats() const { return stats_; }

  size_t linear_refuted_size() const {
    base::ReaderLock lock(&mutex_);
    return linear_refuted_.size();
  }
  size_t alt_proven_size() const {
    base::ReaderLock lock(&mutex_);
    return alt_proven_.size();
  }
  size_t alt_refuted_size() const {
    base::ReaderLock lock(&mutex_);
    return alt_refuted_.size();
  }
  size_t interned_atoms() const {
    base::ReaderLock lock(&mutex_);
    return atom_ids_.size();
  }
  size_t ApproximateBytes() const;

 private:
  /// The exploration bound a memo entry was established under.
  struct Bound {
    uint32_t width;
    uint32_t chunk;
  };

  // A state key: one interned id per canonical atom, in canonical order.
  using Key = std::vector<uint32_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashRange(k.begin(), k.end());
    }
  };
  struct ChunkHash {
    size_t operator()(const std::vector<uint64_t>& c) const {
      return HashRange(c.begin(), c.end());
    }
  };
  using Table = std::unordered_map<Key, Bound, KeyHash>;

  Key InternKey(const CanonicalState& state) REQUIRES(mutex_);
  /// Builds the interned key without interning: returns false (a sure
  /// cache miss) when any atom of the state has never been recorded.
  /// Shared suffices: reads the intern map only, scratch is thread-local.
  bool BuildKey(const CanonicalState& state, Key* out) const
      REQUIRES_SHARED(mutex_);
  bool Lookup(const Table& table, const CanonicalState& state, size_t width,
              size_t max_chunk, bool entry_must_cover)
      REQUIRES_SHARED(mutex_);
  /// Returns true when the entry was freshly inserted (not an update).
  bool Record(Table* table, const CanonicalState& state, size_t width,
              size_t max_chunk, bool keep_larger) REQUIRES(mutex_);

  /// The cache-wide reader-writer lock (see class comment).
  mutable base::SharedMutex mutex_;
  /// Deliberately NOT GUARDED_BY(mutex_): index() hands out an unlocked
  /// reference under the documented external contract (the session data
  /// lock excludes InvalidateForDelta, the only writer, for as long as a
  /// search holds the reference — see the class comment).
  ProgramIndex index_;
  std::unordered_map<std::vector<uint64_t>, uint32_t, ChunkHash> atom_ids_
      GUARDED_BY(mutex_);
  // Predicate of each interned atom id (parallel to atom_ids_ values):
  // lets InvalidateForDelta test a stored key against the affected cone
  // without decoding the atom encoding.
  std::vector<PredicateId> atom_predicates_ GUARDED_BY(mutex_);
  size_t interned_words_ GUARDED_BY(mutex_) = 0;
  size_t key_words_ GUARDED_BY(mutex_) = 0;
  Table linear_refuted_ GUARDED_BY(mutex_);
  Table alt_proven_ GUARDED_BY(mutex_);
  Table alt_refuted_ GUARDED_BY(mutex_);
  // Full-state copies of the refuted entries for subsumption transfer,
  // bound-tagged like the exact tables. Externally synchronized
  // containers (engine/subsumption.h); this capability is what
  // synchronizes them.
  SubsumptionIndex linear_refuted_states_ GUARDED_BY(mutex_);
  SubsumptionIndex alt_refuted_states_ GUARDED_BY(mutex_);
  Stats stats_;
};

}  // namespace vadalog

#endif  // VADALOG_ENGINE_SEARCH_CACHE_H_
