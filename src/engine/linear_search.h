// The space-bounded linear proof search of Section 4.3 — the paper's
// headline algorithm for CQAns(WARD ∩ PWL).
//
// The nondeterministic algorithm guesses, level by level, the single
// non-leaf branch of a linear proof tree: each level holds one CQ of size
// at most f_WARD∩PWL(q, Σ), and moves are resolution (r), decomposition
// (d), and specialization (s). This deterministic realization is a BFS
// over canonically-renamed CQ states (graph reachability — NLogSpace
// determinizes to polynomial time):
//
//   * output variables are frozen to the candidate answer constants up
//     front, making the IDO condition automatic;
//   * specialization+decomposition are fused into *match-and-drop*: the
//     selected atom is matched against the database (each homomorphism is
//     one specialization guess), its bindings propagate, and the atom is
//     dropped as a leaf;
//   * connected components that map into the database are removed eagerly
//     (they are leaf decompositions);
//   * resolution follows Definition 4.3, restricted to chunks containing
//     the selected atom (SLD-style selection, complete for piece
//     unification);
//   * states wider than the node-width bound are pruned — Theorem 4.8
//     guarantees completeness under the bound for warded ∩ piece-wise
//     linear programs.
//
// The search accepts when a state becomes empty.

#ifndef VADALOG_ENGINE_LINEAR_SEARCH_H_
#define VADALOG_ENGINE_LINEAR_SEARCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ast/program.h"
#include "ast/rule.h"
#include "engine/proof_tree.h"
#include "storage/instance.h"

namespace vadalog {

namespace obs {
struct EngineCounters;
}  // namespace obs

class ProofSearchCache;
class SubsumptionIndex;
class WorkerPool;

struct ProofSearchOptions {
  /// Maximum atoms per CQ state. 0 = derive f_WARD∩PWL(q, Σ) from the
  /// program (requires it to be warded and piece-wise linear for
  /// completeness; the bound is still sound otherwise).
  size_t node_width = 0;

  /// Maximum chunk size |S1| per resolution step. 0 = up to node_width.
  size_t max_chunk = 0;

  /// Visited-state budget; 0 = unlimited. When exhausted the result is
  /// reported as not-accepted with `budget_exhausted` set.
  uint64_t max_states = 0;

  /// Wall-clock budget in milliseconds; 0 = unlimited. Like `max_states`,
  /// exhaustion reports not-accepted with `budget_exhausted` set.
  uint64_t max_millis = 0;

  /// Worker threads; 0 or 1 = single-threaded. Drives both engines
  /// uniformly. Linear BFS: each level is expanded by a worker pool
  /// against a read-only snapshot of the visited table, then merged
  /// deterministically in frontier order, so the decision (and, on
  /// refutations, every counter) is independent of the thread count.
  /// Alternating search: the AND/OR nodes in the top `fork_depth` levels
  /// of the proof tree run their children as isolated branch tasks,
  /// speculatively in parallel, folded in child order — on untimed
  /// searches, verdicts and all counters are bit-identical for any
  /// thread count (a max_millis deadline is wall-clock, so timed runs
  /// are schedule-dependent in both engines; exhaustion is still always
  /// reported, never passed off as a refutation).
  uint32_t num_threads = 1;

  /// Alternating search only: how many levels of the AND/OR proof tree
  /// fork their children as isolated branch tasks (the unit of
  /// parallelism; also the granularity at which sibling subtrees stop
  /// sharing memo tables — deeper forking exposes more parallelism but
  /// duplicates more overlapping work). 0 = fully sequential machine.
  /// The fork structure is fixed by this option alone, never by
  /// num_threads, which is what keeps counters thread-count-independent.
  uint32_t fork_depth = 1;

  /// Subsumption-based state pruning: discard a frontier state some
  /// already-visited (linear) or path-independently refuted (alternating)
  /// state maps homomorphically into, and retire queued states a newer,
  /// more general state subsumes. On by default; exposed so the
  /// differential sweeps can compare pruned vs unpruned searches.
  bool subsumption = true;

  /// Optional memoization shared across searches. Must have been built
  /// for the exact same (program, database) pair, or results are unsound.
  /// The cache also supplies the precomputed relevance index; without it a
  /// local index is built per call.
  ProofSearchCache* cache = nullptr;

  /// Optional refutation bank shared across the candidate searches of one
  /// CertainAnswersViaSearch sweep (or one daemon session): completed
  /// refutations deposit their visited states here, and later searches
  /// discard any frontier state a banked state maps homomorphically into.
  /// Like `cache`, it is only sound for the exact (program, database)
  /// pair it was filled against. The linear BFS deposits on completed
  /// refutations only; the alternating search uses it in place of its
  /// per-search refuted-state index (path-independent entries are valid
  /// sweep-wide).
  SubsumptionIndex* shared_refuted = nullptr;

  /// Persistent worker pool for the parallel linear frontier and the
  /// alternating branch tasks, shared with the daemon's request handling.
  /// When null and num_threads > 1, the search creates a private pool for
  /// its own lifetime — one thread spawn per search instead of the former
  /// one per frontier level.
  WorkerPool* pool = nullptr;

  /// Optional registry counter handles (obs/metrics.h) the search
  /// flushes its end-of-search totals into — once, at completion; the
  /// hot loops never touch them. Null = no metrics. The daemon wires a
  /// per-(session, engine) set here so METRICS exposes the private
  /// result counters cumulatively.
  const obs::EngineCounters* metrics = nullptr;
};

struct ProofSearchResult {
  bool accepted = false;
  bool budget_exhausted = false;
  uint64_t states_expanded = 0;
  uint64_t states_visited = 0;    // distinct canonical states seen
  uint64_t resolution_edges = 0;
  uint64_t drop_edges = 0;
  uint64_t cache_hits = 0;        // successors skipped via the shared cache
  uint64_t subsumed_discarded = 0;  // successors pruned by subsumption
  uint64_t states_retired = 0;      // queued states retired unexpanded
  uint64_t sweep_refuted_hits = 0;  // pruned via options.shared_refuted
  /// Hom checks paid by this search's own visited-state subsumption index
  /// (checks inside a shared cache's index are accounted there, across
  /// all searches using it — not here).
  uint64_t subsumption_checks = 0;
  /// Size of the largest single CQ state — the analog of the
  /// nondeterministic machine's work tape (O(width · log |dom(D)|) bits).
  size_t peak_state_bytes = 0;
  /// Total bytes of the visited set — the cost of determinization.
  size_t visited_bytes = 0;
  size_t node_width_used = 0;
};

/// Decides whether `answer` (a tuple of constants, one per output variable
/// of `query`) is a certain answer to `query` w.r.t. `database` and the
/// TGDs of `program`. The program must have single-head TGDs (normalize
/// first); completeness of the width bound additionally requires
/// WARD ∩ PWL membership.
ProofSearchResult LinearProofSearch(const Program& program,
                                    const Instance& database,
                                    const ConjunctiveQuery& query,
                                    const std::vector<Term>& answer,
                                    const ProofSearchOptions& options = {},
                                    ProofExplanation* explanation = nullptr);

/// Instantiates the query output with `answer`, returning the frozen
/// initial state, or nullopt when `answer` is inconsistent (repeated
/// output variable bound to different constants) or malformed.
std::optional<std::vector<Atom>> FreezeQuery(const ConjunctiveQuery& query,
                                             const std::vector<Term>& answer);

}  // namespace vadalog

#endif  // VADALOG_ENGINE_LINEAR_SEARCH_H_
