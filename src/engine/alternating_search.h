// The alternating bounded proof search for general warded sets of TGDs
// (Section 4.3, "The Case of CQAns(WARD)").
//
// For arbitrary warded programs, proof trees are not linear: a node may
// have several non-leaf children. The paper's algorithm builds the
// branches in parallel universal computations using alternation; this
// deterministic realization is a memoized AND-OR search:
//
//   * OR nodes: the operations applicable to a state (match-and-drop of
//     the selected atom, chunk resolutions through it);
//   * AND nodes: decomposition into variable-disjoint components
//     (Definition 4.4 with frozen outputs), each proved independently;
//   * node-width is bounded by f_WARD(q, Σ) (Theorem 4.9);
//   * proven states are memoized globally; refuted states are memoized
//     only when their refutation did not depend on cycle pruning against
//     an ancestor still on the DFS path (standard tabling taint rule —
//     a minimal proof never repeats a state along a branch, so pruning
//     revisits is complete, but the resulting failure is path-dependent).
//
// The machine is an explicit-stack iterative DFS: frames live on the
// heap, so proof depth is bounded only by the max_states/max_millis
// budgets — never by the OS stack. The top ProofSearchOptions.fork_depth
// tree levels run their children as isolated branch tasks, speculatively
// in parallel on the shared worker pool and folded deterministically in
// child order: on untimed searches, verdicts and all counters are
// bit-identical for any num_threads. A max_millis deadline is wall-clock
// and therefore schedule-dependent — a loaded host can push a timed
// search over the deadline at one thread count and not another (the
// give-up is still reported honestly as budget_exhausted, never as a
// refutation) — exactly as for the parallel linear BFS.

#ifndef VADALOG_ENGINE_ALTERNATING_SEARCH_H_
#define VADALOG_ENGINE_ALTERNATING_SEARCH_H_

#include <cstdint>

#include "ast/program.h"
#include "ast/rule.h"
#include "engine/linear_search.h"
#include "storage/instance.h"

namespace vadalog {

struct AlternatingSearchResult {
  bool accepted = false;
  bool budget_exhausted = false;
  uint64_t states_expanded = 0;
  uint64_t proven_cached = 0;
  uint64_t refuted_cached = 0;
  uint64_t cache_hits = 0;  // sub-searches skipped via the shared cache
  uint64_t subsumed_discarded = 0;  // refuted via subsumption, unexpanded
  uint64_t sweep_refuted_hits = 0;  // refuted via options.shared_refuted
  size_t peak_state_bytes = 0;
  size_t node_width_used = 0;
};

/// Decides certain-answer membership for arbitrary warded programs
/// (single-head normalized). Uses the f_WARD node-width bound by default.
AlternatingSearchResult AlternatingProofSearch(
    const Program& program, const Instance& database,
    const ConjunctiveQuery& query, const std::vector<Term>& answer,
    const ProofSearchOptions& options = {});

}  // namespace vadalog

#endif  // VADALOG_ENGINE_ALTERNATING_SEARCH_H_
