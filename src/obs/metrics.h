// vdmetrics: the process metrics registry behind vadalogd's METRICS
// command and the Prometheus scraper (tools/vadalog_metrics).
//
// Three instrument kinds, chosen for hot-path cost:
//
//   * Counter — monotonic, sharded across cache lines: Add() is one
//     relaxed fetch_add on a thread-affine shard, no lock, no contention
//     between threads that stick to their shard. Value() sums the shards
//     (monotonic but not a point-in-time snapshot while writers run —
//     exactly the Prometheus counter contract).
//   * Gauge — one atomic int64 (Set/Add); for levels that go both ways:
//     in-flight requests, open connections, queue depth, cache bytes.
//   * Histogram — log2-bucketed (bucket i counts observations <= 2^i,
//     microsecond-scaled by convention): Observe() is two relaxed
//     fetch_adds and a bit scan. 28 buckets cover 1us..~67s plus +inf.
//
// The registry is instantiable, NOT a process-global singleton: tests
// and benches run several Servers in one process, and each owns its own
// registry (the daemon has exactly one). Registration takes a mutex and
// returns stable handles; instruments are registered once (session
// construction, server start) and handed out as plain pointers, so the
// increment paths never touch the registry again. Handles live as long
// as the registry: a metric is never unregistered (an unloaded session's
// series simply stops moving — the Prometheus model).
//
// This module is standard-library-only by design: it sits BELOW engine
// and server in the dependency order (like server/worker_pool.h), so the
// proof searches and the worker pool can carry handles. JSON rendering
// of a Snapshot() lives in the server layer (server/session.h), keeping
// obs/ free of the JSON dependency.

#ifndef VADALOG_OBS_METRICS_H_
#define VADALOG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace vadalog {
namespace obs {

/// Shard count for Counter. 16 shards of one cache line each bound the
/// per-counter footprint at 1 KiB while keeping 16-thread increment
/// storms (the daemon's worker-count scale) off each other's lines.
inline constexpr size_t kCounterShards = 16;

/// Histogram buckets: observation v lands in the first bucket with
/// v <= 2^i (i = 0..kHistogramBuckets-2); the last bucket is +inf.
/// 2^26 us ~ 67 s, past any request latency worth bucketing finely.
inline constexpr size_t kHistogramBuckets = 28;

class Counter {
 public:
  /// Lock-free, wait-free on x86: one relaxed fetch_add on the calling
  /// thread's shard.
  void Add(uint64_t n = 1) noexcept {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards; monotonic, not a point-in-time cut while writers
  /// are active (the Prometheus counter contract).
  uint64_t Value() const noexcept {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Threads are assigned shards round-robin at first touch; a thread
  /// keeps its shard for life, so steady-state increments never bounce
  /// cache lines between threads.
  static size_t ShardIndex() noexcept {
    static std::atomic<size_t> next{0};
    thread_local const size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
    return shard;
  }

  std::array<Shard, kCounterShards> shards_;
};

class Gauge {
 public:
  void Set(int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  /// Two relaxed fetch_adds plus a bit scan; no locks.
  void Observe(uint64_t value) noexcept {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Non-cumulative per-bucket count (the snapshot layer renders the
  /// cumulative Prometheus form).
  uint64_t bucket(size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// The inclusive upper bound of bucket i (2^i); the last bucket is
  /// +inf and has no finite bound.
  static uint64_t BucketBound(size_t i) noexcept { return uint64_t{1} << i; }

  static size_t BucketIndex(uint64_t value) noexcept {
    if (value <= 1) return 0;
    // First i with value <= 2^i, i.e. ceil(log2(value)).
    size_t index = 64 - static_cast<size_t>(std::countl_zero(value - 1));
    return index < kHistogramBuckets - 1 ? index : kHistogramBuckets - 1;
  }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Label pairs, ordered as registered (order is part of the identity:
/// register with a consistent order, which every call site here does).
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// One metric's point-in-time reading, as Snapshot() returns it.
struct Sample {
  std::string name;
  MetricType type = MetricType::kCounter;
  LabelSet labels;
  std::string help;
  /// Counter total or gauge level (gauges may be negative).
  int64_t value = 0;
  /// Histogram only: CUMULATIVE bucket counts (bucket i = observations
  /// <= 2^i, last = +inf = count), plus sum and count.
  std::vector<uint64_t> buckets;
  uint64_t sum = 0;
  uint64_t count = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the instrument with this (name, labels) identity.
  /// Handles are stable for the registry's lifetime. Registration is
  /// mutex-guarded (rare: session creation / server start); the returned
  /// handle's increment path never locks.
  Counter* GetCounter(const std::string& name, const LabelSet& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const LabelSet& labels = {},
                          const std::string& help = "");

  /// Every registered metric's current reading, sorted by (name, labels)
  /// so dumps are deterministic for a deterministic registration set.
  std::vector<Sample> Snapshot() const;

 private:
  struct Entry {
    std::string name;
    LabelSet labels;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const LabelSet& labels,
                      const std::string& help, MetricType type);

  mutable base::Mutex mutex_;
  /// Append-only; an Entry's fields are immutable once pushed, so
  /// Snapshot may read them through copied pointers after dropping the
  /// lock (only the vector itself needs the capability).
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mutex_);
};

/// The per-(session, engine) proof-search counters, plumbed to the
/// engines through ProofSearchOptions::metrics. A search flushes its
/// ProofSearchResult totals here ONCE at completion — the search hot
/// loops never touch these.
struct EngineCounters {
  Counter* searches = nullptr;
  Counter* states_expanded = nullptr;
  Counter* cache_hits = nullptr;
  Counter* subsumed_discarded = nullptr;
  Counter* sweep_refuted_hits = nullptr;
  Counter* budget_exhausted = nullptr;

  void RecordSearch(uint64_t expanded, uint64_t hits, uint64_t subsumed,
                    uint64_t sweep_hits, bool exhausted) const {
    if (searches != nullptr) searches->Add(1);
    if (states_expanded != nullptr) states_expanded->Add(expanded);
    if (cache_hits != nullptr) cache_hits->Add(hits);
    if (subsumed_discarded != nullptr) subsumed_discarded->Add(subsumed);
    if (sweep_refuted_hits != nullptr) sweep_refuted_hits->Add(sweep_hits);
    if (exhausted && budget_exhausted != nullptr) budget_exhausted->Add(1);
  }
};

/// Registers the standard vadalog_search_* counter family under `labels`
/// (conventionally {{"session", ...}, {"engine", "linear"|"alternating"}}).
EngineCounters MakeEngineCounters(MetricsRegistry* registry,
                                  const LabelSet& labels);

}  // namespace obs
}  // namespace vadalog

#endif  // VADALOG_OBS_METRICS_H_
