// Per-request trace spans — the schema behind `"trace": true` on
// QUERY/EXPLAIN and the slow-query log records.
//
// One request's wall time decomposes into five non-overlapping spans
// (microseconds, measured on the serving path):
//
//   queue_wait  dispatch accepted -> a pool worker picked the request up
//   parse       query resolution (inline text parse or index lookup)
//   lock_wait   blocking on the session cache lock behind a writer
//               (eviction / ADD_FACTS migration); 0 when uncontended
//   search      the engine call (proof search or chase enumeration)
//   encode      rendering the answer table to wire cells
//
// total_us is measured independently end to end, so the spans need not
// (and do not) sum to it — the remainder is the serving path's own
// bookkeeping. The session layer renders this struct into the response
// body ("trace") and the slow-query JSON lines; SpanList fixes the
// render order so both encodings and the goldens agree byte for byte.
//
// Header-only and standard-library-only, like the rest of obs/.

#ifndef VADALOG_OBS_TRACE_H_
#define VADALOG_OBS_TRACE_H_

#include <array>
#include <cstdint>

namespace vadalog {
namespace obs {

struct TraceSpans {
  uint64_t queue_wait_us = 0;
  uint64_t parse_us = 0;
  uint64_t lock_wait_us = 0;
  uint64_t search_us = 0;
  uint64_t encode_us = 0;
  /// End-to-end serving time, measured independently of the spans.
  uint64_t total_us = 0;
};

struct SpanView {
  const char* name;
  uint64_t us;
};

/// The five spans in canonical render order (total_us is rendered
/// separately, as "total_us" next to the span list).
inline std::array<SpanView, 5> SpanList(const TraceSpans& spans) {
  return {{{"queue_wait", spans.queue_wait_us},
           {"parse", spans.parse_us},
           {"lock_wait", spans.lock_wait_us},
           {"search", spans.search_us},
           {"encode", spans.encode_us}}};
}

}  // namespace obs
}  // namespace vadalog

#endif  // VADALOG_OBS_TRACE_H_
