// A tiny leveled, timestamped logger for the daemon plus the structured
// slow-query sink — the logging half of src/obs/.
//
// Lines look like
//
//   2026-08-09T12:34:56.789Z W vadalogd: client stopped reading; closing
//
// (UTC wall clock, millisecond precision, one level letter). The level
// and sink are process-global — vadalogd is one process with one stderr,
// and `--config log_level=...` (validated by ServerConfig) is the knob;
// everything is atomics/one mutex, so logging from workers, the event
// loop, and signal-adjacent shutdown paths is safe. Formatting is
// printf-style with the format attribute, so -Wformat checks call sites.
//
// SlowQueryLog is the structured counterpart: the session layer renders
// one JSON object per slow query (same span payload as a traced
// response) and hands the line here; the sink appends and flushes under
// a mutex so concurrent workers never interleave lines. The sink is a
// file path or stderr (ServerConfig slow_query_log); an unopened log
// drops writes, so the disabled configuration costs one branch.
//
// Standard-library-only, like the rest of obs/ (POSIX-free: plain stdio).

#ifndef VADALOG_OBS_LOG_H_
#define VADALOG_OBS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace vadalog {
namespace obs {

enum class LogLevel : uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

const char* LogLevelName(LogLevel level);
/// Parses "debug" | "info" | "warn" | "error" | "off"; false on anything
/// else (the ServerConfig validation path).
bool LogLevelFromName(std::string_view name, LogLevel* level);

/// Process-global minimum level; messages below it are dropped at the
/// call site with one relaxed atomic load. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);

/// Redirects log output (tests); nullptr restores stderr.
void SetLogSink(std::FILE* sink);

#if defined(__GNUC__) || defined(__clang__)
#define VADALOG_PRINTF(fmt_index, args_index) \
  __attribute__((format(printf, fmt_index, args_index)))
#else
#define VADALOG_PRINTF(fmt_index, args_index)
#endif

void LogMessage(LogLevel level, const char* format, ...)
    VADALOG_PRINTF(2, 3);
void LogDebug(const char* format, ...) VADALOG_PRINTF(1, 2);
void LogInfo(const char* format, ...) VADALOG_PRINTF(1, 2);
void LogWarn(const char* format, ...) VADALOG_PRINTF(1, 2);
void LogError(const char* format, ...) VADALOG_PRINTF(1, 2);

#undef VADALOG_PRINTF

/// "2026-08-09T12:34:56.789Z" — UTC wall clock, millisecond precision
/// (gmtime_r: reentrant, safe from any worker). Shared by the log line
/// prefix and the slow-query records.
std::string FormatTimestampUtc();

/// Append-and-flush sink for JSON-lines slow-query records. Thread-safe;
/// a default-constructed (never-opened) log drops every Write.
class SlowQueryLog {
 public:
  SlowQueryLog() = default;
  ~SlowQueryLog();
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Opens `path` for appending ("stderr" and "" select stderr instead).
  /// False + `error` when the file cannot be opened.
  bool Open(const std::string& path, std::string* error);

  bool enabled() const {
    base::MutexLock lock(&mutex_);
    return sink_ != nullptr;
  }
  uint64_t lines_written() const;

  /// Appends one pre-rendered JSON line (newline added here) and
  /// flushes. No-op when the log was never opened.
  void Write(std::string_view json_line);

 private:
  mutable base::Mutex mutex_;
  std::FILE* sink_ GUARDED_BY(mutex_) = nullptr;
  bool owns_sink_ GUARDED_BY(mutex_) = false;
  uint64_t lines_ GUARDED_BY(mutex_) = 0;
};

}  // namespace obs
}  // namespace vadalog

#endif  // VADALOG_OBS_LOG_H_
