#include "obs/log.h"

#include <atomic>
#include <cstdarg>
#include <chrono>
#include <ctime>

namespace vadalog {
namespace obs {

namespace {

std::atomic<uint8_t> g_level{static_cast<uint8_t>(LogLevel::kInfo)};
std::atomic<std::FILE*> g_sink{nullptr};  // nullptr = stderr
base::Mutex g_write_mutex;

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo: return 'I';
    case LogLevel::kWarn: return 'W';
    case LogLevel::kError: return 'E';
    case LogLevel::kOff: return '?';
  }
  return '?';
}

void LogMessageV(LogLevel level, const char* format, va_list args) {
  if (!LogEnabled(level)) return;
  char message[1024];
  std::vsnprintf(message, sizeof message, format, args);
  std::string stamp = FormatTimestampUtc();
  std::FILE* sink = g_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) sink = stderr;
  // One fprintf per line under a mutex so concurrent workers never
  // interleave fragments.
  base::MutexLock lock(&g_write_mutex);
  std::fprintf(sink, "%s %c vadalogd: %s\n", stamp.c_str(),
               LevelLetter(level), message);
  std::fflush(sink);
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool LogLevelFromName(std::string_view name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warn") {
    *level = LogLevel::kWarn;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else if (name == "off") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<uint8_t>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void SetLogSink(std::FILE* sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* format, ...) {
  va_list args;
  va_start(args, format);
  LogMessageV(level, format, args);
  va_end(args);
}

#define VADALOG_DEFINE_LEVEL_FN(Name, level)        \
  void Name(const char* format, ...) {              \
    va_list args;                                   \
    va_start(args, format);                         \
    LogMessageV(level, format, args);               \
    va_end(args);                                   \
  }

VADALOG_DEFINE_LEVEL_FN(LogDebug, LogLevel::kDebug)
VADALOG_DEFINE_LEVEL_FN(LogInfo, LogLevel::kInfo)
VADALOG_DEFINE_LEVEL_FN(LogWarn, LogLevel::kWarn)
VADALOG_DEFINE_LEVEL_FN(LogError, LogLevel::kError)

#undef VADALOG_DEFINE_LEVEL_FN

std::string FormatTimestampUtc() {
  using std::chrono::system_clock;
  system_clock::time_point now = system_clock::now();
  std::time_t seconds = system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer,
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

SlowQueryLog::~SlowQueryLog() {
  if (owns_sink_ && sink_ != nullptr) std::fclose(sink_);
}

bool SlowQueryLog::Open(const std::string& path, std::string* error) {
  base::MutexLock lock(&mutex_);
  if (owns_sink_ && sink_ != nullptr) std::fclose(sink_);
  sink_ = nullptr;
  owns_sink_ = false;
  if (path.empty() || path == "stderr") {
    sink_ = stderr;
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "ae");  // append, close-on-exec
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open slow-query log \"" + path + "\" for append";
    }
    return false;
  }
  sink_ = file;
  owns_sink_ = true;
  return true;
}

uint64_t SlowQueryLog::lines_written() const {
  base::MutexLock lock(&mutex_);
  return lines_;
}

void SlowQueryLog::Write(std::string_view json_line) {
  base::MutexLock lock(&mutex_);
  if (sink_ == nullptr) return;
  std::fwrite(json_line.data(), 1, json_line.size(), sink_);
  std::fputc('\n', sink_);
  std::fflush(sink_);
  ++lines_;
}

}  // namespace obs
}  // namespace vadalog
