#include "obs/metrics.h"

#include <algorithm>

namespace vadalog {
namespace obs {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      const LabelSet& labels,
                                                      const std::string& help,
                                                      MetricType type) {
  base::MutexLock lock(&mutex_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->type == type && entry->name == name &&
        entry->labels == labels) {
      return entry.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels,
                                     const std::string& help) {
  return FindOrCreate(name, labels, help, MetricType::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels,
                                 const std::string& help) {
  return FindOrCreate(name, labels, help, MetricType::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         const std::string& help) {
  return FindOrCreate(name, labels, help, MetricType::kHistogram)
      ->histogram.get();
}

std::vector<Sample> MetricsRegistry::Snapshot() const {
  std::vector<const Entry*> ordered;
  {
    base::MutexLock lock(&mutex_);
    ordered.reserve(entries_.size());
    for (const std::unique_ptr<Entry>& entry : entries_) {
      ordered.push_back(entry.get());
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) {
              if (a->name != b->name) return a->name < b->name;
              return a->labels < b->labels;
            });
  std::vector<Sample> samples;
  samples.reserve(ordered.size());
  for (const Entry* entry : ordered) {
    Sample sample;
    sample.name = entry->name;
    sample.type = entry->type;
    sample.labels = entry->labels;
    sample.help = entry->help;
    switch (entry->type) {
      case MetricType::kCounter:
        sample.value = static_cast<int64_t>(entry->counter->Value());
        break;
      case MetricType::kGauge:
        sample.value = entry->gauge->Value();
        break;
      case MetricType::kHistogram: {
        // Rendered cumulative (Prometheus "le" semantics); the final
        // +inf bucket then equals the count by construction.
        sample.buckets.resize(kHistogramBuckets);
        uint64_t running = 0;
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
          running += entry->histogram->bucket(i);
          sample.buckets[i] = running;
        }
        sample.sum = entry->histogram->sum();
        sample.count = entry->histogram->count();
        break;
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

EngineCounters MakeEngineCounters(MetricsRegistry* registry,
                                  const LabelSet& labels) {
  EngineCounters counters;
  if (registry == nullptr) return counters;
  counters.searches = registry->GetCounter(
      "vadalog_search_total", labels, "proof searches completed");
  counters.states_expanded = registry->GetCounter(
      "vadalog_search_states_expanded_total", labels,
      "proof-search states expanded");
  counters.cache_hits = registry->GetCounter(
      "vadalog_search_cache_hits_total", labels,
      "sub-searches answered by the shared proof cache");
  counters.subsumed_discarded = registry->GetCounter(
      "vadalog_search_subsumed_total", labels,
      "states discarded by subsumption pruning");
  counters.sweep_refuted_hits = registry->GetCounter(
      "vadalog_search_sweep_refuted_hits_total", labels,
      "states pruned via the sweep-shared refutation bank");
  counters.budget_exhausted = registry->GetCounter(
      "vadalog_search_budget_exhausted_total", labels,
      "searches that gave up on a state or time budget");
  return counters;
}

}  // namespace obs
}  // namespace vadalog
