// The Lemma 6.4 construction: rewriting a (WARD ∩ PWL, CQ) query into an
// equivalent piece-wise linear Datalog query (Theorem 6.3 (1)).
//
// Every linear proof tree of q w.r.t. Σ with node-width at most
// f_WARD∩PWL(q, Σ) is converted into full TGDs over fresh predicates
// C[p](x̄) — one per canonical renaming [p] of a CQ p labeling a proof-tree
// node. Since canonical CQs of bounded width over a fixed schema are
// finitely many, the exhaustive conversion terminates and yields a finite
// Datalog program Σ' with an atomic goal C[q](x̄) such that, for every
// database D over edb(Σ), cert(q, D, Σ) = Σ'-evaluation of the goal on D.
//
// Operationally we explore the same state graph as the linear proof
// search, but *database-independently*: instead of match-and-drop against
// a concrete D, an atom over an extensional predicate can become a leaf,
// contributing that atom to the rule body being built. Each reachable
// canonical state S gets a predicate C[S] over its variables, and:
//   * a resolution step S →σ S' yields the Datalog rule
//         C[S](vars(S)) :- C[S'](vars(S')), leaves...
//     — more precisely, we emit rules backwards: C[S] is derivable from
//     C[S'] plus the extensional atoms dropped along the step;
//   * a state whose atoms are all extensional yields the base rule
//         C[S](vars(S)) :- atoms(S).
// The goal is C[S0] for the initial state S0 = atoms(q).
//
// The construction witnesses Σ' ∈ FULL1 ∩ PWL: every rule body contains at
// most one C[·] predicate (the linear-tree child), and only C[·]
// predicates can be mutually recursive.

#ifndef VADALOG_REWRITING_PWL_TO_DATALOG_H_
#define VADALOG_REWRITING_PWL_TO_DATALOG_H_

#include <cstdint>
#include <optional>

#include "ast/program.h"
#include "ast/rule.h"

namespace vadalog {

struct RewriteOptions {
  /// Node-width cap for explored states; 0 = f_WARD∩PWL(q, Σ).
  size_t node_width = 0;
  /// Cap on |S1| per resolution chunk; 0 = node width.
  size_t max_chunk = 0;
  /// Safety budget on distinct canonical states; 0 = unlimited.
  uint64_t max_states = 0;
};

struct RewriteResult {
  /// The piece-wise linear Datalog program (over the symbol table of the
  /// returned program), including the goal rule. Present iff the
  /// exploration completed within budget.
  std::optional<Program> datalog;
  /// The goal query: an atomic CQ over the fresh goal predicate, with the
  /// same output arity as the input query.
  ConjunctiveQuery goal;
  uint64_t states_explored = 0;
  uint64_t rules_emitted = 0;
  bool budget_exhausted = false;
};

/// Rewrites (Σ, q) ∈ (WARD ∩ PWL, CQ) into piece-wise linear Datalog.
/// `program` must be single-head normalized. The output program shares no
/// state with the input (fresh symbol table, cloned constants/predicates).
RewriteResult RewritePwlWardedToDatalog(const Program& program,
                                        const ConjunctiveQuery& query,
                                        const RewriteOptions& options = {});

}  // namespace vadalog

#endif  // VADALOG_REWRITING_PWL_TO_DATALOG_H_
