#include "rewriting/pwl_to_datalog.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "analysis/fragments.h"
#include "analysis/predicate_graph.h"
#include "engine/resolution.h"
#include "engine/state.h"

namespace vadalog {
namespace {

/// Builder context: translates exploration states (with sentinel nulls as
/// frozen output variables) into Datalog rules over fresh C[·] predicates.
class RewriteBuilder {
 public:
  RewriteBuilder(const Program& input, const RewriteOptions& options,
                 RewriteResult* result)
      : input_(input), options_(options), result_(result) {
    // Clone symbols so constant/predicate ids stay aligned.
    const SymbolTable& symbols = input.symbols();
    for (size_t i = 0; i < symbols.num_constants(); ++i) {
      out_.symbols().InternConstant(symbols.ConstantName(Term::Constant(i)));
    }
    for (size_t i = 0; i < symbols.num_predicates(); ++i) {
      PredicateId id = static_cast<PredicateId>(i);
      out_.symbols().InternPredicate(symbols.PredicateName(id),
                                     symbols.PredicateArity(id));
    }
    intensional_ = input.IntensionalPredicates();
  }

  /// Runs the exploration from the frozen initial state; returns the goal
  /// predicate (C[S0]) and its sentinel pre-images in S0-input space.
  bool Run(const ConjunctiveQuery& query) {
    size_t width = options_.node_width;
    if (width == 0) {
      PredicateGraph graph(input_);
      width = NodeWidthBoundPwl(query.atoms.size(), input_, graph);
    }
    width_ = width;
    max_chunk_ = options_.max_chunk == 0
                     ? width
                     : std::min(options_.max_chunk, width);

    // Freeze distinct output variables as sentinel nulls.
    Substitution freeze;
    std::vector<Term> output_sentinels;  // sentinel per distinct output var
    std::vector<Term> distinct_outputs;
    for (Term t : query.output) {
      if (t.is_variable() && freeze.count(t) == 0) {
        Term sentinel = Term::Null(freeze.size());
        freeze.emplace(t, sentinel);
        distinct_outputs.push_back(t);
        output_sentinels.push_back(sentinel);
      }
    }
    std::vector<Atom> initial = ApplySubstitution(freeze, query.atoms);

    std::unordered_map<Term, Term> mapping;
    CanonicalState s0 =
        CanonicalizeEx(std::move(initial), /*rename_nulls=*/true, &mapping);
    if (s0.atoms.size() > width_) return false;
    PredicateId c0 = StateFor(s0);

    // Goal rule: Goal(output terms) :- C[S0](args).
    PredicateId goal = out_.symbols().MakeFreshPredicate(
        "Goal", static_cast<uint32_t>(query.output.size()));
    {
      Tgd rule;
      uint64_t next_var = 0;
      std::unordered_map<Term, Term> tau;  // distinct output var -> rule var
      Atom head(goal, {});
      for (Term t : query.output) {
        if (t.is_constant()) {
          head.args.push_back(t);
        } else {
          auto [it, inserted] = tau.try_emplace(t, Term::Variable(next_var));
          if (inserted) ++next_var;
          head.args.push_back(it->second);
        }
      }
      // C[S0] arguments: canonical sentinel j corresponds to the distinct
      // output variable whose sentinel maps to Null(j).
      uint32_t arity = out_.symbols().PredicateArity(c0);
      std::vector<Term> args(arity);
      for (size_t i = 0; i < output_sentinels.size(); ++i) {
        auto it = mapping.find(output_sentinels[i]);
        if (it == mapping.end()) continue;  // output var absent from body
        args[it->second.index()] = tau.at(distinct_outputs[i]);
      }
      // Any unfilled argument would be unsafe; sentinels always occur in
      // S0's atoms, so this only triggers for output vars missing from the
      // query body (ill-formed CQ) — bail out.
      for (Term t : args) {
        if (t == Term()) return false;
      }
      Atom call(c0, std::move(args));
      rule.head.push_back(std::move(head));
      rule.body.push_back(std::move(call));
      EmitRule(std::move(rule));
    }

    goal_query_.output.clear();
    goal_query_.atoms.clear();
    {
      std::vector<Term> vars;
      for (size_t i = 0; i < query.output.size(); ++i) {
        vars.push_back(Term::Variable(i));
      }
      goal_query_.atoms.push_back(Atom(goal, vars));
      goal_query_.output = vars;
    }

    // BFS over canonical states.
    while (!queue_.empty()) {
      if (options_.max_states != 0 &&
          result_->states_explored >= options_.max_states) {
        result_->budget_exhausted = true;
        return false;
      }
      CanonicalState state = std::move(queue_.front());
      queue_.pop_front();
      ++result_->states_explored;
      Expand(state);
    }
    return true;
  }

  Program TakeProgram() { return std::move(out_); }
  ConjunctiveQuery goal_query() const { return goal_query_; }

 private:
  /// Registers (or finds) the C[·] predicate of a canonical state; new
  /// states are enqueued. Arity = number of distinct sentinels.
  PredicateId StateFor(const CanonicalState& state) {
    auto it = predicate_of_.find(state.encoding);
    if (it != predicate_of_.end()) return it->second;
    uint64_t sentinels = 0;
    for (const Atom& a : state.atoms) {
      for (Term t : a.args) {
        if (t.is_null()) sentinels = std::max(sentinels, t.index() + 1);
      }
    }
    PredicateId pred = out_.symbols().MakeFreshPredicate(
        "C", static_cast<uint32_t>(sentinels));
    predicate_of_.emplace(state.encoding, pred);
    queue_.push_back(state);
    return pred;
  }

  void EmitRule(Tgd rule) {
    std::string signature = rule.ToString(out_.symbols());
    if (emitted_.insert(std::move(signature)).second) {
      out_.AddTgd(std::move(rule));
      ++result_->rules_emitted;
    }
  }

  /// Converts an exploration-space term (variable / sentinel null /
  /// constant) into a rule variable or constant, allocating rule variables
  /// on demand.
  Term Tau(Term t, std::unordered_map<Term, Term>* tau, uint64_t* next_var) {
    if (t.is_constant()) return t;
    auto [it, inserted] = tau->try_emplace(t, Term::Variable(*next_var));
    if (inserted) ++(*next_var);
    return it->second;
  }

  Atom TauAtom(const Atom& a, std::unordered_map<Term, Term>* tau,
               uint64_t* next_var) {
    Atom out;
    out.predicate = a.predicate;
    out.args.reserve(a.args.size());
    for (Term t : a.args) out.args.push_back(Tau(t, tau, next_var));
    return out;
  }

  void Expand(const CanonicalState& state) {
    PredicateId c_pred = predicate_of_.at(state.encoding);
    uint32_t arity = out_.symbols().PredicateArity(c_pred);

    std::vector<Atom> edb_part;
    std::vector<Atom> idb_part;
    for (const Atom& a : state.atoms) {
      if (intensional_.count(a.predicate) > 0) {
        idb_part.push_back(a);
      } else {
        edb_part.push_back(a);
      }
    }

    if (!edb_part.empty()) {
      // Extensional atoms can only ever be leaves: retire them all.
      ExpandRetire(c_pred, arity, edb_part, idb_part);
    } else {
      ExpandResolve(state, c_pred, arity);
      // An intensional atom may also be a leaf (the database of the
      // general CQAns problem can hold facts over intensional
      // predicates); retire one atom at a time — sequences compose.
      for (size_t i = 0; i < state.atoms.size(); ++i) {
        std::vector<Atom> leaf = {state.atoms[i]};
        std::vector<Atom> rest;
        for (size_t j = 0; j < state.atoms.size(); ++j) {
          if (j != i) rest.push_back(state.atoms[j]);
        }
        ExpandRetire(c_pred, arity, leaf, rest);
      }
    }
  }

  /// Retire step: the atoms of `edb_part` become proof-tree leaves; the
  /// variables shared with the remainder are promoted to frozen outputs
  /// (specialization, Definition 4.5, followed by a leaf decomposition,
  /// Definition 4.4).
  void ExpandRetire(PredicateId c_pred, uint32_t arity,
                    const std::vector<Atom>& edb_part,
                    const std::vector<Atom>& idb_part) {
    // Promote shared variables to fresh sentinels.
    std::unordered_set<Term> edb_vars = VariablesOf(edb_part);
    std::unordered_set<Term> idb_vars = VariablesOf(idb_part);
    uint64_t next_sentinel = arity;
    Substitution promote;
    for (Term v : edb_vars) {
      if (idb_vars.count(v) > 0) {
        promote.emplace(v, Term::Null(next_sentinel++));
      }
    }
    std::vector<Atom> child_atoms = ApplySubstitution(promote, idb_part);

    std::unordered_map<Term, Term> mapping;
    CanonicalState child =
        CanonicalizeEx(std::move(child_atoms), /*rename_nulls=*/true,
                       &mapping);

    // Rule: C[S](sentinels) :- edb atoms, C[child](pre-images).
    Tgd rule;
    uint64_t next_var = 0;
    std::unordered_map<Term, Term> tau;
    Atom head(c_pred, {});
    for (uint32_t i = 0; i < arity; ++i) {
      head.args.push_back(Tau(Term::Null(i), &tau, &next_var));
    }
    rule.head.push_back(std::move(head));
    for (const Atom& a : edb_part) {
      rule.body.push_back(TauAtom(a, &tau, &next_var));
    }
    if (!child.atoms.empty()) {
      PredicateId child_pred = StateFor(child);
      uint32_t child_arity = out_.symbols().PredicateArity(child_pred);
      // Pre-image of each canonical child sentinel in state space: either
      // one of S's sentinels, or a promoted shared variable.
      std::vector<Term> call_args(child_arity, Term());
      bool complete = true;
      auto note = [&](Term pre, Term image) {
        auto it = mapping.find(image);
        if (it == mapping.end()) return;  // image absent from child
        call_args[it->second.index()] = Tau(pre, &tau, &next_var);
      };
      for (uint32_t i = 0; i < arity; ++i) {
        note(Term::Null(i), Term::Null(i));
      }
      for (const auto& [var, sentinel] : promote) {
        note(var, sentinel);
      }
      for (Term t : call_args) {
        if (t == Term()) complete = false;
      }
      if (!complete) return;  // defensive: unsafe rule, skip
      rule.body.push_back(Atom(child_pred, std::move(call_args)));
    }
    EmitRule(std::move(rule));
  }

  /// Resolution step: chunk-based resolution (Definition 4.3) with frozen
  /// sentinels acting as rigid names; one rule per resolvent.
  void ExpandResolve(const CanonicalState& state, PredicateId c_pred,
                     uint32_t arity) {
    uint64_t fresh_base = 0;
    for (const Atom& a : state.atoms) {
      for (Term t : a.args) {
        if (t.is_variable()) fresh_base = std::max(fresh_base, t.index() + 1);
      }
    }
    for (size_t tgd_index = 0; tgd_index < input_.tgds().size(); ++tgd_index) {
      std::vector<Resolvent> resolvents = ResolveWithTgd(
          state.atoms, input_, tgd_index, fresh_base, max_chunk_);
      for (Resolvent& r : resolvents) {
        if (r.atoms.size() > width_) continue;  // Theorem 4.8 pruning
        std::unordered_map<Term, Term> mapping;
        CanonicalState child = CanonicalizeEx(std::move(r.atoms),
                                              /*rename_nulls=*/true, &mapping);
        Tgd rule;
        uint64_t next_var = 0;
        std::unordered_map<Term, Term> tau;
        Atom head(c_pred, {});
        for (uint32_t i = 0; i < arity; ++i) {
          head.args.push_back(Tau(Term::Null(i), &tau, &next_var));
        }
        rule.head.push_back(std::move(head));
        if (child.atoms.empty()) {
          // A resolvent can only be empty if the TGD body was empty, which
          // the parser forbids; skip defensively.
          continue;
        }
        PredicateId child_pred = StateFor(child);
        uint32_t child_arity = out_.symbols().PredicateArity(child_pred);
        std::vector<Term> call_args(child_arity, Term());
        bool complete = true;
        for (uint32_t i = 0; i < arity; ++i) {
          auto it = mapping.find(Term::Null(i));
          if (it == mapping.end()) continue;
          call_args[it->second.index()] = Tau(Term::Null(i), &tau, &next_var);
        }
        for (Term t : call_args) {
          if (t == Term()) complete = false;
        }
        if (!complete) continue;  // sentinel vanished: cannot happen, skip
        rule.body.push_back(Atom(child_pred, std::move(call_args)));
        EmitRule(std::move(rule));
      }
    }
  }

  const Program& input_;
  const RewriteOptions& options_;
  RewriteResult* result_;

  Program out_;
  std::unordered_set<PredicateId> intensional_;
  size_t width_ = 0;
  size_t max_chunk_ = 0;
  ConjunctiveQuery goal_query_;

  struct EncodingHash {
    size_t operator()(const std::vector<uint64_t>& e) const {
      return HashRange(e.begin(), e.end());
    }
  };
  std::unordered_map<std::vector<uint64_t>, PredicateId, EncodingHash>
      predicate_of_;
  std::deque<CanonicalState> queue_;
  std::unordered_set<std::string> emitted_;
};

}  // namespace

RewriteResult RewritePwlWardedToDatalog(const Program& program,
                                        const ConjunctiveQuery& query,
                                        const RewriteOptions& options) {
  RewriteResult result;
  RewriteBuilder builder(program, options, &result);
  bool ok = builder.Run(query);
  result.goal = builder.goal_query();
  if (ok) {
    result.datalog = builder.TakeProgram();
  }
  return result;
}

}  // namespace vadalog
