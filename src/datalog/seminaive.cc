#include "datalog/seminaive.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "analysis/predicate_graph.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

/// Applies one rule against all triggers anchored on `delta_atom` bound at
/// body position `anchor`; inserts derived heads, appending new atoms to
/// `out_delta`. Returns the number of new tuples.
uint64_t FireAnchored(const Tgd& rule, size_t anchor, const Atom& delta_atom,
                      Instance* instance, std::vector<Atom>* out_delta) {
  const Atom& pattern = rule.body[anchor];
  if (pattern.predicate != delta_atom.predicate) return 0;
  Substitution seed;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    Term t = ApplySubstitution(seed, pattern.args[i]);
    if (t.is_rigid()) {
      if (t != delta_atom.args[i]) return 0;
    } else {
      seed.emplace(t, delta_atom.args[i]);
    }
  }
  std::vector<Atom> rest;
  rest.reserve(rule.body.size() - 1);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i != anchor) rest.push_back(rule.body[i]);
  }
  // Buffer derivations: inserting during enumeration would invalidate the
  // relation storage the matcher is iterating.
  std::vector<Atom> derived;
  ForEachHomomorphism(rest, *instance, seed, [&](const Substitution& h) {
    // Stratified negation: negated atoms are ground under h (safety) and
    // their predicates live in strictly earlier strata, so absence in the
    // current instance is definitive.
    for (const Atom& negated : rule.negative_body) {
      if (instance->Contains(ApplySubstitution(h, negated))) return true;
    }
    derived.push_back(ApplySubstitution(h, rule.head[0]));
    return true;
  });
  uint64_t produced = 0;
  for (Atom& atom : derived) {
    if (instance->Insert(atom)) {
      ++produced;
      out_delta->push_back(std::move(atom));
    }
  }
  return produced;
}

/// Applies one rule against every trigger in the instance (naive mode).
uint64_t FireFull(const Tgd& rule, Instance* instance,
                  std::vector<Atom>* out_delta) {
  std::vector<Atom> derived;
  ForEachHomomorphism(rule.body, *instance, {}, [&](const Substitution& h) {
    for (const Atom& negated : rule.negative_body) {
      if (instance->Contains(ApplySubstitution(h, negated))) return true;
    }
    derived.push_back(ApplySubstitution(h, rule.head[0]));
    return true;
  });
  uint64_t produced = 0;
  for (Atom& atom : derived) {
    if (instance->Insert(atom)) {
      ++produced;
      if (out_delta != nullptr) out_delta->push_back(std::move(atom));
    }
  }
  return produced;
}

}  // namespace

DatalogResult EvaluateDatalog(const Program& program, const Instance& database,
                              const DatalogOptions& options) {
  DatalogResult result;
  Instance& instance = result.instance;

  PredicateGraph graph(program);
  if (!graph.NegationIsStratified()) {
    // Negation through recursion has no stratified model; refuse.
    result.reached_fixpoint = false;
    return result;
  }
  for (const Atom& fact : database.AllAtoms()) instance.Insert(fact);

  // Assign every rule to the stratum of its head predicate's SCC, in
  // topological order of the condensation.
  const std::vector<int>& topo = graph.TopologicalComponents();
  std::unordered_map<int, size_t> stratum_of_component;
  for (size_t i = 0; i < topo.size(); ++i) stratum_of_component[topo[i]] = i;

  std::vector<std::vector<size_t>> rules_by_stratum(topo.size());
  for (size_t r = 0; r < program.tgds().size(); ++r) {
    const Tgd& rule = program.tgds()[r];
    assert(rule.IsDatalogRule() &&
           "EvaluateDatalog requires full single-head rules");
    size_t stratum =
        stratum_of_component.at(graph.ComponentOf(rule.head[0].predicate));
    rules_by_stratum[stratum].push_back(r);
  }

  // Predicates read by strata >= s (for boundary garbage collection).
  std::vector<std::unordered_set<PredicateId>> read_from(topo.size() + 1);
  for (size_t s = topo.size(); s-- > 0;) {
    read_from[s] = read_from[s + 1];
    for (size_t r : rules_by_stratum[s]) {
      for (const Atom& b : program.tgds()[r].body) {
        read_from[s].insert(b.predicate);
      }
      for (const Atom& n : program.tgds()[r].negative_body) {
        read_from[s].insert(n.predicate);
      }
    }
  }

  auto note_peak = [&]() {
    result.peak_instance_bytes =
        std::max(result.peak_instance_bytes, instance.ApproximateBytes());
  };

  for (size_t s = 0; s < rules_by_stratum.size(); ++s) {
    const std::vector<size_t>& rules = rules_by_stratum[s];
    if (!rules.empty()) {
      if (options.seminaive) {
        // Seed round: full evaluation of the stratum's rules once.
        std::vector<Atom> delta;
        for (size_t r : rules) {
          result.rule_applications +=
              FireFull(program.tgds()[r], &instance, &delta);
        }
        ++result.rounds;
        note_peak();
        // Delta rounds: anchor each join on a freshly derived atom — the
        // Section 7 (2) bias toward the mutually recursive operand.
        while (!delta.empty()) {
          if (options.max_rounds != 0 && result.rounds >= options.max_rounds) {
            result.reached_fixpoint = false;
            break;
          }
          std::vector<Atom> next_delta;
          for (size_t r : rules) {
            const Tgd& rule = program.tgds()[r];
            for (size_t anchor = 0; anchor < rule.body.size(); ++anchor) {
              for (const Atom& d : delta) {
                result.rule_applications +=
                    FireAnchored(rule, anchor, d, &instance, &next_delta);
              }
            }
          }
          ++result.rounds;
          note_peak();
          delta = std::move(next_delta);
        }
      } else {
        // Naive mode: re-derive from scratch every round until a full pass
        // adds nothing.
        for (;;) {
          if (options.max_rounds != 0 && result.rounds >= options.max_rounds) {
            result.reached_fixpoint = false;
            break;
          }
          uint64_t produced = 0;
          for (size_t r : rules) {
            produced += FireFull(program.tgds()[r], &instance, nullptr);
          }
          result.rule_applications += produced;
          ++result.rounds;
          note_peak();
          if (produced == 0) break;
        }
      }
    }

    if (options.materialize_strata) {
      // Boundary materialization: later strata only need `read_from[s+1]`
      // plus explicitly preserved predicates; drop the rest.
      for (PredicateId p : instance.Predicates()) {
        if (read_from[s + 1].count(p) == 0 && options.preserve.count(p) == 0) {
          instance.DropRelation(p);
        }
      }
      note_peak();
    }
  }

  return result;
}

}  // namespace vadalog
