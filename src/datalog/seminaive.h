// Semi-naive bottom-up evaluation for Datalog programs (the class FULL1 of
// Section 6), stratified along the condensation of the predicate graph.
//
// This substrate serves three roles:
//   * the baseline evaluator for the expressiveness experiments (Theorem
//     6.3: PWL-warded programs rewritten into piece-wise linear Datalog are
//     evaluated here and compared against the TGD engines);
//   * the vehicle for the Section 7 optimization ablations: (2) join
//     ordering biased to anchor the mutually-recursive body atom (this is
//     exactly what delta-driven semi-naive does; the ablation compares it
//     against naive re-evaluation), and (3) materialization at the
//     boundaries of the PWL strata, which lets the evaluator discard
//     relations that no later stratum reads;
//   * the target of the tiling reduction when run on solvable instances.

#ifndef VADALOG_DATALOG_SEMINAIVE_H_
#define VADALOG_DATALOG_SEMINAIVE_H_

#include <cstdint>
#include <unordered_set>

#include "ast/program.h"
#include "storage/instance.h"

namespace vadalog {

struct DatalogOptions {
  /// Delta-driven semi-naive evaluation (the recursive body atom is the
  /// anchor operand of each join). When false, every round naively
  /// re-evaluates every rule against the full instance — the unbiased join
  /// ordering of the Section 7 (2) ablation.
  bool seminaive = true;

  /// Evaluate stratum by stratum along the condensation of pg(Σ) and, at
  /// each stratum boundary, drop relations that no later stratum (and no
  /// predicate in `preserve`) reads. Mirrors the materialization nodes of
  /// Section 7 (3): intermediate results are pinned at boundaries, and the
  /// upstream operator state is released.
  bool materialize_strata = false;

  /// Predicates whose relations must survive stratum garbage collection
  /// (e.g. the query predicates). Ignored unless materialize_strata.
  std::unordered_set<PredicateId> preserve;

  /// 0 = unlimited.
  uint64_t max_rounds = 0;
};

struct DatalogResult {
  Instance instance;
  uint64_t rule_applications = 0;  // successful (new-tuple) derivations
  uint64_t rounds = 0;
  size_t peak_instance_bytes = 0;
  bool reached_fixpoint = true;
};

/// Evaluates a Datalog program bottom-up. All TGDs of `program` must be
/// full with single-atom heads (callers normalize first; asserts in debug).
DatalogResult EvaluateDatalog(const Program& program, const Instance& database,
                              const DatalogOptions& options = {});

}  // namespace vadalog

#endif  // VADALOG_DATALOG_SEMINAIVE_H_
