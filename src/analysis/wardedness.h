// Affected positions, the harmless/harmful/dangerous variable taxonomy, and
// the wardedness check of Definition 3.1.

#ifndef VADALOG_ANALYSIS_WARDEDNESS_H_
#define VADALOG_ANALYSIS_WARDEDNESS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "ast/program.h"

namespace vadalog {

/// A position R[i] of the schema, packed as (predicate << 16) | i.
///
/// The packing is injective only while i <= kMaxArity (16 index bits) —
/// a larger index would alias into the predicate bits and corrupt every
/// affected-position set computed from it. SymbolTable::InternPredicate
/// rejects arities past kMaxArity, so no representable atom can violate
/// this; the assert documents (and, in debug builds, enforces) the
/// invariant against future construction paths that might bypass
/// interning. PredicateId is 32 bits, so the predicate side cannot
/// overflow its 48 bits.
using Position = uint64_t;

inline Position MakePosition(PredicateId predicate, uint32_t index) {
  assert(index <= kMaxArity);
  return (static_cast<uint64_t>(predicate) << 16) | index;
}
inline PredicateId PositionPredicate(Position p) {
  return static_cast<PredicateId>(p >> 16);
}
inline uint32_t PositionIndex(Position p) {
  return static_cast<uint32_t>(p & 0xffff);
}

/// Computes aff(Σ), the affected positions of sch(Σ) (Section 3):
///  - a position hosting an existential variable in some head is affected;
///  - if a frontier variable occurs in a body only at affected positions,
///    the head positions where it occurs are affected.
/// Fixpoint over the rule set.
std::unordered_set<Position> AffectedPositions(const Program& program);

/// Classification of a body variable (Section 3).
enum class VariableRole : uint8_t {
  kHarmless,   // some body occurrence at a non-affected position
  kHarmful,    // all body occurrences at affected positions, not frontier
  kDangerous,  // harmful and in the frontier
};

/// Per-TGD variable roles.
struct VariableMarking {
  // role_of[i] is the role of variable with index i (only meaningful for
  // variables occurring in the body).
  std::vector<VariableRole> role_of;
  std::unordered_set<Term> dangerous;
  std::unordered_set<Term> harmful;
  std::unordered_set<Term> harmless;
};

/// Computes roles for the body variables of `tgd` w.r.t. aff(Σ).
VariableMarking MarkVariables(const Tgd& tgd,
                              const std::unordered_set<Position>& affected);

/// One non-wardedness witness: a TGD whose dangerous variables admit no
/// ward, with everything a diagnostic needs to explain Definition 3.1 —
/// the exact dangerous variables, the affected positions at which each
/// occurs in the body, and why each candidate body atom fails as a ward.
struct WardednessViolation {
  size_t rule_index = 0;  // into Program::tgds()

  /// The rule's dangerous variables (deterministic order: by index).
  std::vector<Term> dangerous;

  /// For each dangerous variable (parallel to `dangerous`), the affected
  /// body positions where it occurs.
  std::vector<std::vector<Position>> dangerous_positions;

  /// Why each body atom is not a ward (parallel to the rule's body):
  /// kMissesDangerous — some dangerous variable does not occur in it;
  /// kSharesNonHarmless — it contains all dangerous variables but shares
  /// a non-harmless variable with the rest of the body.
  enum class CandidateFailure : uint8_t {
    kMissesDangerous,
    kSharesNonHarmless,
  };
  std::vector<CandidateFailure> candidate_failures;

  /// For kSharesNonHarmless candidates, one offending shared variable
  /// (the first found); Term::Variable(0)-initialized otherwise.
  std::vector<Term> shared_variable;
};

/// Result of the wardedness check: overall verdict plus, per TGD, either
/// the chosen ward atom index or a structured violation witness.
struct WardednessReport {
  bool is_warded = false;
  /// For each TGD: index into body of the ward, or -1 when the rule has no
  /// dangerous variables (no ward needed), or -2 when no valid ward exists.
  std::vector<int> ward_index;
  std::vector<std::string> violations;  // human-readable, empty when warded
  /// One structured witness per ward_index == -2 rule, in rule order.
  std::vector<WardednessViolation> witnesses;
};

/// Checks Definition 3.1: every TGD either has no dangerous variables, or
/// has a body atom α (the ward) containing all dangerous variables such
/// that α shares only harmless variables with the rest of the body.
WardednessReport CheckWardedness(const Program& program);

/// Convenience wrapper.
bool IsWarded(const Program& program);

}  // namespace vadalog

#endif  // VADALOG_ANALYSIS_WARDEDNESS_H_
