// Affected positions, the harmless/harmful/dangerous variable taxonomy, and
// the wardedness check of Definition 3.1.

#ifndef VADALOG_ANALYSIS_WARDEDNESS_H_
#define VADALOG_ANALYSIS_WARDEDNESS_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "ast/program.h"

namespace vadalog {

/// A position R[i] of the schema, packed as (predicate << 16) | i.
using Position = uint64_t;

inline Position MakePosition(PredicateId predicate, uint32_t index) {
  return (static_cast<uint64_t>(predicate) << 16) | index;
}
inline PredicateId PositionPredicate(Position p) {
  return static_cast<PredicateId>(p >> 16);
}
inline uint32_t PositionIndex(Position p) {
  return static_cast<uint32_t>(p & 0xffff);
}

/// Computes aff(Σ), the affected positions of sch(Σ) (Section 3):
///  - a position hosting an existential variable in some head is affected;
///  - if a frontier variable occurs in a body only at affected positions,
///    the head positions where it occurs are affected.
/// Fixpoint over the rule set.
std::unordered_set<Position> AffectedPositions(const Program& program);

/// Classification of a body variable (Section 3).
enum class VariableRole : uint8_t {
  kHarmless,   // some body occurrence at a non-affected position
  kHarmful,    // all body occurrences at affected positions, not frontier
  kDangerous,  // harmful and in the frontier
};

/// Per-TGD variable roles.
struct VariableMarking {
  // role_of[i] is the role of variable with index i (only meaningful for
  // variables occurring in the body).
  std::vector<VariableRole> role_of;
  std::unordered_set<Term> dangerous;
  std::unordered_set<Term> harmful;
  std::unordered_set<Term> harmless;
};

/// Computes roles for the body variables of `tgd` w.r.t. aff(Σ).
VariableMarking MarkVariables(const Tgd& tgd,
                              const std::unordered_set<Position>& affected);

/// Result of the wardedness check: overall verdict plus, per TGD, either
/// the chosen ward atom index or a violation description.
struct WardednessReport {
  bool is_warded = false;
  /// For each TGD: index into body of the ward, or -1 when the rule has no
  /// dangerous variables (no ward needed), or -2 when no valid ward exists.
  std::vector<int> ward_index;
  std::vector<std::string> violations;  // human-readable, empty when warded
};

/// Checks Definition 3.1: every TGD either has no dangerous variables, or
/// has a body atom α (the ward) containing all dangerous variables such
/// that α shares only harmless variables with the rest of the body.
WardednessReport CheckWardedness(const Program& program);

/// Convenience wrapper.
bool IsWarded(const Program& program);

}  // namespace vadalog

#endif  // VADALOG_ANALYSIS_WARDEDNESS_H_
