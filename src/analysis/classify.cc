#include "analysis/classify.h"

#include "analysis/fragments.h"
#include "analysis/linearize.h"
#include "analysis/predicate_graph.h"
#include "analysis/wardedness.h"

namespace vadalog {

Program CloneProgram(const Program& program) {
  Program copy;
  // Re-intern symbols in id order so every id stays valid in the copy.
  const SymbolTable& symbols = program.symbols();
  for (size_t i = 0; i < symbols.num_constants(); ++i) {
    copy.symbols().InternConstant(symbols.ConstantName(Term::Constant(i)));
  }
  for (size_t i = 0; i < symbols.num_predicates(); ++i) {
    PredicateId id = static_cast<PredicateId>(i);
    copy.symbols().InternPredicate(symbols.PredicateName(id),
                                   symbols.PredicateArity(id));
  }
  copy.tgds() = program.tgds();
  copy.facts() = program.facts();
  copy.queries() = program.queries();
  return copy;
}

ProgramClassification ClassifyProgram(const Program& program) {
  ProgramClassification result;
  PredicateGraph graph(program);

  result.warded = IsWarded(program);
  result.piecewise_linear = IsPiecewiseLinear(program, graph);
  result.intensionally_linear = IsIntensionallyLinear(program);
  result.datalog = IsDatalog(program);
  result.linear_datalog = result.datalog && result.intensionally_linear;
  result.linear_tgds = IsLinearTgds(program);
  result.guarded = IsGuarded(program);
  result.sticky = IsSticky(program);
  result.uses_negation = program.HasNegation();

  for (const Tgd& tgd : program.tgds()) {
    if (!tgd.IsFull()) result.uses_existentials = true;
  }
  for (int c = 0; c < graph.num_components(); ++c) {
    if (graph.ComponentIsCyclic(c)) result.recursive = true;
  }

  if (!result.piecewise_linear) {
    Program copy = CloneProgram(program);
    LinearizeResult lin = LinearizeProgram(&copy);
    result.pwl_after_linearization = lin.changed && lin.now_piecewise;
  }
  return result;
}

}  // namespace vadalog
