// Predicate graph pg(Σ), strongly connected components, mutual recursion,
// and the predicate-level function ℓΣ of Section 4.2.
//
// pg(Σ) = (V, E) with V = sch(Σ) and (P, R) ∈ E iff some TGD σ ∈ Σ has P in
// body(σ) and R in head(σ). Two predicates are mutually recursive iff some
// cycle of pg(Σ) contains both — equivalently, they lie in the same SCC and
// that SCC is cyclic (size > 1 or carries a self-loop).

#ifndef VADALOG_ANALYSIS_PREDICATE_GRAPH_H_
#define VADALOG_ANALYSIS_PREDICATE_GRAPH_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/program.h"

namespace vadalog {

class PredicateGraph {
 public:
  explicit PredicateGraph(const Program& program);

  /// All predicates of sch(Σ), in a stable order.
  const std::vector<PredicateId>& predicates() const { return predicates_; }

  /// Successors of P in pg(Σ).
  const std::unordered_set<PredicateId>& Successors(PredicateId p) const;

  bool HasEdge(PredicateId from, PredicateId to) const;

  /// Index of P's strongly connected component (condensation node).
  int ComponentOf(PredicateId p) const;

  /// Number of SCCs.
  int num_components() const { return static_cast<int>(components_.size()); }

  /// Members of an SCC.
  const std::vector<PredicateId>& Component(int scc) const {
    return components_[scc];
  }

  /// True iff the SCC is cyclic (size > 1, or a single node with a
  /// self-loop). Only cyclic SCCs witness mutual recursion.
  bool ComponentIsCyclic(int scc) const { return cyclic_[scc]; }

  /// True iff P and R are mutually recursive w.r.t. Σ.
  bool MutuallyRecursive(PredicateId p, PredicateId r) const;

  /// rec(P): the set of predicates mutually recursive with P (empty if P is
  /// not on any cycle).
  std::unordered_set<PredicateId> RecursiveWith(PredicateId p) const;

  /// The level ℓΣ(P) of Section 4.2: the unique function satisfying
  ///   ℓΣ(P) = max{ ℓΣ(R) | (R,P) ∈ E, R ∉ rec(P) } + 1,
  /// with max ∅ = 0. Mutually recursive predicates share a level.
  uint32_t Level(PredicateId p) const;

  /// max over sch(Σ) of ℓΣ(P); 0 for an empty schema.
  uint32_t MaxLevel() const;

  /// SCC indices in a topological order of the condensation (sources
  /// first). Useful for stratified evaluation (Section 7 (3)).
  const std::vector<int>& TopologicalComponents() const {
    return topo_order_;
  }

  /// True iff the program's negation is stratified: no negative
  /// dependency lies inside a cycle of pg(Σ) (the negated predicate's
  /// stratum strictly precedes the head's).
  bool NegationIsStratified() const { return negation_stratified_; }

  /// A concrete unstratified-negation witness: a negative dependency
  /// ¬negated → head together with a predicate path head → ... → negated
  /// in pg(Σ) that closes the cycle through the negation. `cycle` starts
  /// at `head` and ends at `negated` (it may be just [head] when head ==
  /// negated, a direct self-negation).
  struct NegationCycleWitness {
    PredicateId negated = kInvalidPredicate;
    PredicateId head = kInvalidPredicate;
    std::vector<PredicateId> cycle;
  };

  /// The first (deterministic: rule order) unstratified negative edge,
  /// with its cycle; nullopt when negation is stratified.
  std::optional<NegationCycleWitness> UnstratifiedNegationWitness() const;

 private:
  void ComputeSccs();
  void ComputeLevels();

  std::vector<PredicateId> predicates_;
  std::unordered_map<PredicateId, std::unordered_set<PredicateId>> edges_;
  std::unordered_map<PredicateId, int> component_of_;
  std::vector<std::vector<PredicateId>> components_;
  std::vector<bool> cyclic_;
  std::vector<int> topo_order_;
  std::vector<uint32_t> component_level_;
  std::vector<std::pair<PredicateId, PredicateId>> negative_edges_;
  bool negation_stratified_ = true;
  std::unordered_set<PredicateId> empty_;
};

}  // namespace vadalog

#endif  // VADALOG_ANALYSIS_PREDICATE_GRAPH_H_
