// Syntactic fragment checks: piece-wise linearity (Definition 4.1),
// intensional linearity (IL, Section 5), linear Datalog, FULL1, and the
// node-width polynomials f_WARD∩PWL and f_WARD of Section 4.2.

#ifndef VADALOG_ANALYSIS_FRAGMENTS_H_
#define VADALOG_ANALYSIS_FRAGMENTS_H_

#include <cstddef>

#include "analysis/predicate_graph.h"
#include "ast/program.h"
#include "ast/rule.h"

namespace vadalog {

/// Number of body atoms of σ whose predicate is mutually recursive with a
/// predicate occurring in head(σ).
size_t RecursiveBodyAtomCount(const Tgd& tgd, const PredicateGraph& graph);

/// Definition 4.1: Σ is piece-wise linear if every TGD has at most one body
/// atom whose predicate is mutually recursive with a head predicate.
bool IsPiecewiseLinear(const Program& program, const PredicateGraph& graph);
bool IsPiecewiseLinear(const Program& program);

/// Section 5: Σ is intensionally linear (IL) if every TGD has at most one
/// body atom with an intensional predicate.
bool IsIntensionallyLinear(const Program& program);

/// Σ is a Datalog program (class FULL1): full TGDs with single-atom heads.
bool IsDatalog(const Program& program);

/// Σ is linear Datalog: Datalog where each body has at most one
/// intensional atom.
bool IsLinearDatalog(const Program& program);

/// Σ is in the class LINEAR of Datalog±: every TGD has exactly one body
/// atom. (Strictly stronger than IL; decidable, FO-rewritable.)
bool IsLinearTgds(const Program& program);

/// Σ is guarded: every TGD has a body atom (the guard) containing every
/// universally quantified variable of the body.
bool IsGuarded(const Program& program);

/// Σ is sticky (Calì–Gottlob–Pieris marking procedure): after marking
///   (base) every body variable that does not occur in the head, and
///   (prop) every body variable appearing in a head position that holds a
///          marked body occurrence somewhere in Σ,
/// no marked variable occurs more than once in a body. Sticky sets allow
/// arbitrary joins but restrict how join variables propagate.
bool IsSticky(const Program& program);

/// The node-width polynomial for WARD ∩ PWL (Section 4.2):
///   f(q, Σ) = (|q| + 1) · max_P ℓΣ(P) · max_σ |body(σ)|.
/// `query_atoms` is |q| (number of atoms of the CQ).
size_t NodeWidthBoundPwl(size_t query_atoms, const Program& program,
                         const PredicateGraph& graph);

/// The node-width polynomial for WARD (Section 4.2):
///   f(q, Σ) = 2 · max{ |q|, max_σ |body(σ)| }.
size_t NodeWidthBoundWarded(size_t query_atoms, const Program& program);

}  // namespace vadalog

#endif  // VADALOG_ANALYSIS_FRAGMENTS_H_
