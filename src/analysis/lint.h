// LintDriver: witness-producing static checks over a Vadalog program,
// anchored to source locations. Runs the whole catalog of
// analysis/diagnostics.h checks:
//
//   V001 parse-error             V201 singleton-variable
//   V002 arity-overflow          V202 unsafe-query
//   V003 unstratified-negation   V301 unused-predicate
//   V004 unsupported-fragment    V302 underivable-predicate
//   V101 non-warded              V401 duplicate-rule
//   V102 fragment-downgrade      V402 subsumed-rule
//
// The driver works on the *unnormalized* program (single-head
// normalization invents predicates and drops source anchors), so callers
// holding only a Reasoner must re-parse the original text — LintSource
// does exactly that. Programs without source locations (generated,
// hand-built) lint fine: diagnostics simply carry unknown locations, and
// name-dependent checks (V201) skip rules with no recorded variable names.

#ifndef VADALOG_ANALYSIS_LINT_H_
#define VADALOG_ANALYSIS_LINT_H_

#include <optional>
#include <string>
#include <string_view>

#include "analysis/classify.h"
#include "analysis/diagnostics.h"
#include "ast/program.h"

namespace vadalog {

struct LintResult {
  FileDiagnostics file;  // sorted by (line, column, id)
  /// Set when the program parsed (absent exactly when V001/V002 fired).
  std::optional<ProgramClassification> classification;

  bool ok() const { return !file.HasErrors(); }
};

/// Lints an already-built program (no parse stage, so never V001/V002).
/// Appends to `file.diagnostics` and sorts; sets `classification`.
LintResult LintProgram(const Program& program, std::string file_name);

/// Parses `text` and lints the resulting program; a parse failure yields
/// a single V001 (or V002, when the failure is an arity overflow)
/// diagnostic at the failure location. Stores `text` into the result's
/// FileDiagnostics::source so text rendering can show excerpts.
LintResult LintSource(std::string_view text, std::string file_name);

}  // namespace vadalog

#endif  // VADALOG_ANALYSIS_LINT_H_
