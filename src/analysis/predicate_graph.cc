#include "analysis/predicate_graph.h"

#include <algorithm>
#include <cassert>

namespace vadalog {

PredicateGraph::PredicateGraph(const Program& program) {
  std::unordered_set<PredicateId> seen;
  auto add_predicate = [&](PredicateId p) {
    if (seen.insert(p).second) predicates_.push_back(p);
  };
  for (const Tgd& tgd : program.tgds()) {
    for (const Atom& a : tgd.body) add_predicate(a.predicate);
    for (const Atom& a : tgd.head) add_predicate(a.predicate);
    for (const Atom& a : tgd.negative_body) add_predicate(a.predicate);
    for (const Atom& b : tgd.body) {
      for (const Atom& h : tgd.head) {
        edges_[b.predicate].insert(h.predicate);
      }
    }
    // Negative dependencies participate in the graph (they constrain the
    // stratification) and are remembered for the stratification check.
    for (const Atom& n : tgd.negative_body) {
      for (const Atom& h : tgd.head) {
        edges_[n.predicate].insert(h.predicate);
        negative_edges_.emplace_back(n.predicate, h.predicate);
      }
    }
  }
  std::sort(predicates_.begin(), predicates_.end());
  ComputeSccs();
  ComputeLevels();
  for (auto [from, to] : negative_edges_) {
    if (ComponentOf(from) == ComponentOf(to)) negation_stratified_ = false;
  }
}

const std::unordered_set<PredicateId>& PredicateGraph::Successors(
    PredicateId p) const {
  auto it = edges_.find(p);
  return it == edges_.end() ? empty_ : it->second;
}

bool PredicateGraph::HasEdge(PredicateId from, PredicateId to) const {
  auto it = edges_.find(from);
  return it != edges_.end() && it->second.count(to) > 0;
}

int PredicateGraph::ComponentOf(PredicateId p) const {
  auto it = component_of_.find(p);
  assert(it != component_of_.end());
  return it->second;
}

void PredicateGraph::ComputeSccs() {
  // Iterative Tarjan SCC; components are emitted in reverse topological
  // order, so we reverse at the end to get sources-first.
  std::unordered_map<PredicateId, int> index, lowlink;
  std::unordered_set<PredicateId> on_stack;
  std::vector<PredicateId> stack;
  int next_index = 0;

  struct Frame {
    PredicateId node;
    std::vector<PredicateId> successors;
    size_t next_successor;
  };

  for (PredicateId root : predicates_) {
    if (index.count(root) > 0) continue;
    std::vector<Frame> call_stack;
    auto push_node = [&](PredicateId v) {
      index[v] = lowlink[v] = next_index++;
      stack.push_back(v);
      on_stack.insert(v);
      std::vector<PredicateId> succ(Successors(v).begin(),
                                    Successors(v).end());
      std::sort(succ.begin(), succ.end());
      call_stack.push_back(Frame{v, std::move(succ), 0});
    };
    push_node(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      if (frame.next_successor < frame.successors.size()) {
        PredicateId w = frame.successors[frame.next_successor++];
        if (index.count(w) == 0) {
          push_node(w);
        } else if (on_stack.count(w) > 0) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[w]);
        }
      } else {
        PredicateId v = frame.node;
        if (lowlink[v] == index[v]) {
          std::vector<PredicateId> component;
          for (;;) {
            PredicateId w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            component.push_back(w);
            component_of_[w] = static_cast<int>(components_.size());
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          components_.push_back(std::move(component));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          PredicateId parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }

  cyclic_.resize(components_.size(), false);
  for (size_t c = 0; c < components_.size(); ++c) {
    if (components_[c].size() > 1) {
      cyclic_[c] = true;
    } else {
      PredicateId only = components_[c][0];
      cyclic_[c] = HasEdge(only, only);
    }
  }

  // Tarjan emits SCCs in reverse topological order of the condensation.
  topo_order_.resize(components_.size());
  for (size_t i = 0; i < components_.size(); ++i) {
    topo_order_[i] = static_cast<int>(components_.size() - 1 - i);
  }
}

void PredicateGraph::ComputeLevels() {
  component_level_.assign(components_.size(), 0);
  for (int c : topo_order_) {
    uint32_t best = 0;
    for (PredicateId p : components_[c]) {
      // Incoming edges: scan all predecessors. The graph is small (schema
      // sized), so a full scan per component is fine.
      for (const auto& [from, tos] : edges_) {
        if (tos.count(p) == 0) continue;
        int from_scc = component_of_.at(from);
        if (from_scc == c) continue;  // from ∈ rec(P) (or P itself).
        best = std::max(best, component_level_[from_scc]);
      }
    }
    component_level_[c] = best + 1;
  }
}

bool PredicateGraph::MutuallyRecursive(PredicateId p, PredicateId r) const {
  int cp = ComponentOf(p);
  return cp == ComponentOf(r) && cyclic_[cp];
}

std::unordered_set<PredicateId> PredicateGraph::RecursiveWith(
    PredicateId p) const {
  std::unordered_set<PredicateId> result;
  int c = ComponentOf(p);
  if (!cyclic_[c]) return result;
  for (PredicateId q : components_[c]) result.insert(q);
  return result;
}

uint32_t PredicateGraph::Level(PredicateId p) const {
  return component_level_[ComponentOf(p)];
}

std::optional<PredicateGraph::NegationCycleWitness>
PredicateGraph::UnstratifiedNegationWitness() const {
  for (auto [negated, head] : negative_edges_) {
    if (ComponentOf(negated) != ComponentOf(head)) continue;
    NegationCycleWitness witness;
    witness.negated = negated;
    witness.head = head;
    // BFS head → negated over pg(Σ). Both endpoints share an SCC, so a
    // path exists; sorted successor order keeps the witness deterministic.
    std::unordered_map<PredicateId, PredicateId> parent;
    std::vector<PredicateId> queue{head};
    parent[head] = head;
    for (size_t i = 0; i < queue.size() && parent.count(negated) == 0; ++i) {
      std::vector<PredicateId> succ(Successors(queue[i]).begin(),
                                    Successors(queue[i]).end());
      std::sort(succ.begin(), succ.end());
      for (PredicateId next : succ) {
        if (parent.emplace(next, queue[i]).second) queue.push_back(next);
      }
    }
    if (head == negated) {
      witness.cycle.push_back(head);
    } else {
      assert(parent.count(negated) > 0);
      for (PredicateId at = negated; at != head; at = parent.at(at)) {
        witness.cycle.push_back(at);
      }
      witness.cycle.push_back(head);
      std::reverse(witness.cycle.begin(), witness.cycle.end());
    }
    return witness;
  }
  return std::nullopt;
}

uint32_t PredicateGraph::MaxLevel() const {
  uint32_t best = 0;
  for (uint32_t level : component_level_) best = std::max(best, level);
  return best;
}

}  // namespace vadalog
