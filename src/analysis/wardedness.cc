#include "analysis/wardedness.h"

#include <algorithm>

namespace vadalog {

std::unordered_set<Position> AffectedPositions(const Program& program) {
  std::unordered_set<Position> affected;

  // Base case: positions of existential variables in heads.
  for (const Tgd& tgd : program.tgds()) {
    std::unordered_set<Term> existential = tgd.ExistentialVariables();
    for (const Atom& head : tgd.head) {
      for (size_t i = 0; i < head.args.size(); ++i) {
        Term t = head.args[i];
        if (t.is_variable() && existential.count(t) > 0) {
          affected.insert(
              MakePosition(head.predicate, static_cast<uint32_t>(i)));
        }
      }
    }
  }

  // Inductive case: propagate through frontier variables that occur in the
  // body only at affected positions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Tgd& tgd : program.tgds()) {
      std::unordered_set<Term> frontier = tgd.Frontier();
      for (Term x : frontier) {
        bool all_body_occurrences_affected = true;
        for (const Atom& body : tgd.body) {
          for (size_t i = 0; i < body.args.size(); ++i) {
            if (body.args[i] == x &&
                affected.count(MakePosition(body.predicate,
                                            static_cast<uint32_t>(i))) == 0) {
              all_body_occurrences_affected = false;
              break;
            }
          }
          if (!all_body_occurrences_affected) break;
        }
        if (!all_body_occurrences_affected) continue;
        for (const Atom& head : tgd.head) {
          for (size_t i = 0; i < head.args.size(); ++i) {
            if (head.args[i] == x) {
              Position pos =
                  MakePosition(head.predicate, static_cast<uint32_t>(i));
              if (affected.insert(pos).second) changed = true;
            }
          }
        }
      }
    }
  }
  return affected;
}

VariableMarking MarkVariables(const Tgd& tgd,
                              const std::unordered_set<Position>& affected) {
  VariableMarking marking;
  std::unordered_set<Term> frontier = tgd.Frontier();
  std::unordered_set<Term> body_vars = VariablesOf(tgd.body);

  uint64_t max_index = tgd.VariableCount();
  marking.role_of.assign(max_index, VariableRole::kHarmless);

  for (Term x : body_vars) {
    bool harmless = false;
    for (const Atom& body : tgd.body) {
      for (size_t i = 0; i < body.args.size(); ++i) {
        if (body.args[i] == x &&
            affected.count(MakePosition(body.predicate,
                                        static_cast<uint32_t>(i))) == 0) {
          harmless = true;
          break;
        }
      }
      if (harmless) break;
    }
    VariableRole role;
    if (harmless) {
      role = VariableRole::kHarmless;
      marking.harmless.insert(x);
    } else if (frontier.count(x) > 0) {
      role = VariableRole::kDangerous;
      marking.dangerous.insert(x);
      marking.harmful.insert(x);
    } else {
      role = VariableRole::kHarmful;
      marking.harmful.insert(x);
    }
    marking.role_of[x.index()] = role;
  }
  return marking;
}

WardednessReport CheckWardedness(const Program& program) {
  WardednessReport report;
  report.is_warded = true;
  std::unordered_set<Position> affected = AffectedPositions(program);

  for (size_t rule_index = 0; rule_index < program.tgds().size();
       ++rule_index) {
    const Tgd& tgd = program.tgds()[rule_index];
    VariableMarking marking = MarkVariables(tgd, affected);
    if (marking.dangerous.empty()) {
      report.ward_index.push_back(-1);
      continue;
    }
    int chosen = -2;
    WardednessViolation witness;
    witness.rule_index = rule_index;
    for (size_t candidate = 0; candidate < tgd.body.size(); ++candidate) {
      const Atom& alpha = tgd.body[candidate];
      std::unordered_set<Term> alpha_vars;
      for (Term t : alpha.args) {
        if (t.is_variable()) alpha_vars.insert(t);
      }
      // (1) all dangerous variables occur in α.
      bool covers = std::all_of(
          marking.dangerous.begin(), marking.dangerous.end(),
          [&alpha_vars](Term d) { return alpha_vars.count(d) > 0; });
      if (!covers) {
        witness.candidate_failures.push_back(
            WardednessViolation::CandidateFailure::kMissesDangerous);
        witness.shared_variable.push_back(Term::Variable(0));
        continue;
      }
      // (2) variables shared with the rest of the body are harmless.
      bool clean = true;
      Term offender = Term::Variable(0);
      for (size_t other = 0; other < tgd.body.size() && clean; ++other) {
        if (other == candidate) continue;
        for (Term t : tgd.body[other].args) {
          if (t.is_variable() && alpha_vars.count(t) > 0 &&
              marking.harmless.count(t) == 0) {
            clean = false;
            offender = t;
            break;
          }
        }
      }
      if (clean) {
        chosen = static_cast<int>(candidate);
        break;
      }
      witness.candidate_failures.push_back(
          WardednessViolation::CandidateFailure::kSharesNonHarmless);
      witness.shared_variable.push_back(offender);
    }
    report.ward_index.push_back(chosen);
    if (chosen == -2) {
      report.is_warded = false;
      report.violations.push_back(
          "rule " + std::to_string(rule_index) + " (" +
          tgd.ToString(program.symbols()) +
          "): dangerous variables admit no ward");
      // Deterministic witness order: dangerous variables by index, each
      // with its affected body positions in body order.
      witness.dangerous.assign(marking.dangerous.begin(),
                               marking.dangerous.end());
      std::sort(witness.dangerous.begin(), witness.dangerous.end());
      for (Term d : witness.dangerous) {
        std::vector<Position> positions;
        for (const Atom& body : tgd.body) {
          for (size_t i = 0; i < body.args.size(); ++i) {
            if (body.args[i] == d) {
              Position pos =
                  MakePosition(body.predicate, static_cast<uint32_t>(i));
              if (affected.count(pos) > 0) positions.push_back(pos);
            }
          }
        }
        witness.dangerous_positions.push_back(std::move(positions));
      }
      report.witnesses.push_back(std::move(witness));
    }
  }
  return report;
}

bool IsWarded(const Program& program) {
  return CheckWardedness(program).is_warded;
}

}  // namespace vadalog
