#include "analysis/linearize.h"

#include <optional>

#include "analysis/fragments.h"

namespace vadalog {
namespace {

/// True if `tgd` is an exit rule for predicate `p` w.r.t. `graph`: it
/// defines p and no body predicate is mutually recursive with p.
bool IsExitRuleFor(const Tgd& tgd, PredicateId p, const PredicateGraph& graph) {
  bool defines = false;
  for (const Atom& h : tgd.head) {
    if (h.predicate == p) defines = true;
  }
  if (!defines) return false;
  for (const Atom& b : tgd.body) {
    if (graph.MutuallyRecursive(b.predicate, p)) return false;
  }
  return true;
}

/// Builds the substitution mapping the (renamed) exit-rule head arguments
/// onto the arguments of `target`. Requires the exit head's arguments to be
/// pairwise distinct variables (the common case; e.g. E(x,y) → T(x,y)).
std::optional<Substitution> MatchExitHead(const Atom& exit_head,
                                          const Atom& target) {
  if (exit_head.predicate != target.predicate ||
      exit_head.args.size() != target.args.size()) {
    return std::nullopt;
  }
  Substitution subst;
  for (size_t i = 0; i < exit_head.args.size(); ++i) {
    Term from = exit_head.args[i];
    if (!from.is_variable()) return std::nullopt;
    auto [it, inserted] = subst.try_emplace(from, target.args[i]);
    if (!inserted && it->second != target.args[i]) return std::nullopt;
  }
  return subst;
}

}  // namespace

LinearizeResult LinearizeProgram(Program* program) {
  LinearizeResult result;
  PredicateGraph graph(*program);

  std::vector<Tgd> rewritten;
  for (const Tgd& tgd : program->tgds()) {
    if (RecursiveBodyAtomCount(tgd, graph) <= 1 || tgd.head.size() != 1) {
      rewritten.push_back(tgd);
      continue;
    }
    // Chain-closure pattern: exactly two body atoms, both with the head's
    // predicate P (e.g. T(x,y), T(y,z) → T(x,z)).
    PredicateId p = tgd.head[0].predicate;
    bool chain_shape = tgd.body.size() == 2 &&
                       tgd.body[0].predicate == p &&
                       tgd.body[1].predicate == p;
    if (!chain_shape) {
      rewritten.push_back(tgd);
      continue;
    }
    // Gather exit rules for P; require them to be full so the unfolding
    // introduces no existentials into the rewritten body.
    std::vector<const Tgd*> exits;
    for (const Tgd& candidate : program->tgds()) {
      if (IsExitRuleFor(candidate, p, graph) && candidate.IsFull() &&
          candidate.head.size() == 1) {
        exits.push_back(&candidate);
      }
    }
    if (exits.empty()) {
      rewritten.push_back(tgd);
      continue;
    }
    // Unfold the first recursive atom with every exit rule. Exit-rule
    // variables are renamed past the host rule's variables first.
    bool unfolded_all = true;
    std::vector<Tgd> replacements;
    for (const Tgd* exit : exits) {
      Tgd renamed = exit->WithVariableOffset(tgd.VariableCount());
      std::optional<Substitution> subst =
          MatchExitHead(renamed.head[0], tgd.body[0]);
      if (!subst.has_value()) {
        unfolded_all = false;
        break;
      }
      Tgd replacement;
      replacement.head = tgd.head;
      replacement.body = ApplySubstitution(*subst, renamed.body);
      replacement.body.push_back(tgd.body[1]);
      replacements.push_back(std::move(replacement));
    }
    if (!unfolded_all) {
      rewritten.push_back(tgd);
      continue;
    }
    for (Tgd& r : replacements) rewritten.push_back(std::move(r));
    result.changed = true;
    ++result.rules_rewritten;
  }

  if (result.changed) program->tgds() = std::move(rewritten);
  PredicateGraph new_graph(*program);
  result.now_piecewise = IsPiecewiseLinear(*program, new_graph);
  return result;
}

}  // namespace vadalog
