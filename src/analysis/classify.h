// Whole-program classification used by the recursion-profile experiment
// (E4): which fragment does a TGD-set fall into, and does linearization
// bring it into PWL?

#ifndef VADALOG_ANALYSIS_CLASSIFY_H_
#define VADALOG_ANALYSIS_CLASSIFY_H_

#include <string>

#include "ast/program.h"

namespace vadalog {

struct ProgramClassification {
  bool warded = false;
  bool piecewise_linear = false;        // directly PWL (Definition 4.1)
  bool pwl_after_linearization = false; // PWL after the Sec. 1.2 rewrite
  bool intensionally_linear = false;    // IL (Section 5)
  bool datalog = false;                 // FULL1
  bool linear_datalog = false;
  bool linear_tgds = false;             // LINEAR (one body atom per rule)
  bool guarded = false;                 // GUARDED (a guard body atom)
  bool sticky = false;                  // STICKY (CGP marking)
  bool uses_existentials = false;
  bool uses_negation = false;           // stratified negation present
  bool recursive = false;               // pg(Σ) has a cycle

  /// One of "pwl-direct", "pwl-after-linearization", "non-pwl".
  std::string RecursionBucket() const {
    if (piecewise_linear) return "pwl-direct";
    if (pwl_after_linearization) return "pwl-after-linearization";
    return "non-pwl";
  }
};

/// Classifies the program. Does not modify it (linearization is attempted
/// on a copy).
ProgramClassification ClassifyProgram(const Program& program);

/// Deep-copies a program (fresh symbol table with identical contents).
Program CloneProgram(const Program& program);

}  // namespace vadalog

#endif  // VADALOG_ANALYSIS_CLASSIFY_H_
