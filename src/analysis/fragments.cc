#include "analysis/fragments.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vadalog {

size_t RecursiveBodyAtomCount(const Tgd& tgd, const PredicateGraph& graph) {
  size_t count = 0;
  for (const Atom& body : tgd.body) {
    bool recursive = false;
    for (const Atom& head : tgd.head) {
      if (graph.MutuallyRecursive(body.predicate, head.predicate)) {
        recursive = true;
        break;
      }
    }
    if (recursive) ++count;
  }
  return count;
}

bool IsPiecewiseLinear(const Program& program, const PredicateGraph& graph) {
  for (const Tgd& tgd : program.tgds()) {
    if (RecursiveBodyAtomCount(tgd, graph) > 1) return false;
  }
  return true;
}

bool IsPiecewiseLinear(const Program& program) {
  PredicateGraph graph(program);
  return IsPiecewiseLinear(program, graph);
}

bool IsIntensionallyLinear(const Program& program) {
  std::unordered_set<PredicateId> idb = program.IntensionalPredicates();
  for (const Tgd& tgd : program.tgds()) {
    size_t intensional = 0;
    for (const Atom& body : tgd.body) {
      if (idb.count(body.predicate) > 0) ++intensional;
    }
    if (intensional > 1) return false;
  }
  return true;
}

bool IsDatalog(const Program& program) {
  return std::all_of(program.tgds().begin(), program.tgds().end(),
                     [](const Tgd& tgd) { return tgd.IsDatalogRule(); });
}

bool IsLinearDatalog(const Program& program) {
  return IsDatalog(program) && IsIntensionallyLinear(program);
}

bool IsLinearTgds(const Program& program) {
  return std::all_of(program.tgds().begin(), program.tgds().end(),
                     [](const Tgd& tgd) { return tgd.body.size() == 1; });
}

bool IsGuarded(const Program& program) {
  for (const Tgd& tgd : program.tgds()) {
    std::unordered_set<Term> body_vars = VariablesOf(tgd.body);
    bool has_guard = false;
    for (const Atom& candidate : tgd.body) {
      std::unordered_set<Term> guard_vars;
      for (Term t : candidate.args) {
        if (t.is_variable()) guard_vars.insert(t);
      }
      if (guard_vars.size() == body_vars.size()) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) return false;
  }
  return true;
}

bool IsSticky(const Program& program) {
  const std::vector<Tgd>& tgds = program.tgds();
  // marked[r] = variables marked in the body of rule r.
  std::vector<std::unordered_set<Term>> marked(tgds.size());

  // Base step: body variables that do not occur in the head.
  for (size_t r = 0; r < tgds.size(); ++r) {
    std::unordered_set<Term> head_vars = VariablesOf(tgds[r].head);
    for (Term v : VariablesOf(tgds[r].body)) {
      if (head_vars.count(v) == 0) marked[r].insert(v);
    }
  }

  // Propagation to a fixpoint: a position R[i] is marked if some rule has
  // a marked variable at body position R[i]; any head variable sitting at
  // a marked position becomes marked in its own body.
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_set<uint64_t> marked_positions;
    for (size_t r = 0; r < tgds.size(); ++r) {
      for (const Atom& body : tgds[r].body) {
        for (size_t i = 0; i < body.args.size(); ++i) {
          if (body.args[i].is_variable() &&
              marked[r].count(body.args[i]) > 0) {
            marked_positions.insert(
                (static_cast<uint64_t>(body.predicate) << 16) | i);
          }
        }
      }
    }
    for (size_t r = 0; r < tgds.size(); ++r) {
      std::unordered_set<Term> body_vars = VariablesOf(tgds[r].body);
      for (const Atom& head : tgds[r].head) {
        for (size_t i = 0; i < head.args.size(); ++i) {
          Term v = head.args[i];
          if (!v.is_variable() || body_vars.count(v) == 0) continue;
          uint64_t position =
              (static_cast<uint64_t>(head.predicate) << 16) | i;
          if (marked_positions.count(position) > 0 &&
              marked[r].insert(v).second) {
            changed = true;
          }
        }
      }
    }
  }

  // Sticky iff no marked variable occurs more than once in its body.
  for (size_t r = 0; r < tgds.size(); ++r) {
    std::unordered_map<Term, int> occurrences;
    for (const Atom& body : tgds[r].body) {
      for (Term t : body.args) {
        if (t.is_variable()) ++occurrences[t];
      }
    }
    for (Term v : marked[r]) {
      auto it = occurrences.find(v);
      if (it != occurrences.end() && it->second > 1) return false;
    }
  }
  return true;
}

size_t NodeWidthBoundPwl(size_t query_atoms, const Program& program,
                         const PredicateGraph& graph) {
  size_t max_body = std::max<size_t>(1, program.MaxBodySize());
  size_t max_level = std::max<uint32_t>(1, graph.MaxLevel());
  return (query_atoms + 1) * max_level * max_body;
}

size_t NodeWidthBoundWarded(size_t query_atoms, const Program& program) {
  size_t max_body = std::max<size_t>(1, program.MaxBodySize());
  return 2 * std::max(query_atoms, max_body);
}

}  // namespace vadalog
