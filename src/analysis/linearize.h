// Elimination of unnecessary non-linear recursion (Section 1.2).
//
// The paper observes that ~15% of the analyzed TGD-sets become piece-wise
// linear after a "standard elimination procedure of unnecessary non-linear
// recursion". The canonical instance is transitive closure:
//
//     E(x,y) → T(x,y)      T(x,y), T(y,z) → T(x,z)
//
// which is rewritten to the linear-recursive
//
//     E(x,y) → T(x,y)      E(x,y), T(y,z) → T(x,z).
//
// The transformation implemented here handles the chain-closure pattern:
// a rule whose body contains two atoms mutually recursive with the head,
// where one of them can be replaced by the bodies of the *exit rules*
// (non-recursive rules) defining its predicate. For chain closures this is
// the classical right-linear rewriting, which preserves certain answers
// (T = E⁺ and E⁺ = E ∪ E∘E⁺). Rules outside the pattern are left alone;
// the caller checks whether the result is piece-wise linear.

#ifndef VADALOG_ANALYSIS_LINEARIZE_H_
#define VADALOG_ANALYSIS_LINEARIZE_H_

#include "analysis/predicate_graph.h"
#include "ast/program.h"

namespace vadalog {

struct LinearizeResult {
  bool changed = false;        // at least one rule was rewritten
  bool now_piecewise = false;  // the rewritten program is PWL
  size_t rules_rewritten = 0;
};

/// Attempts to rewrite non-PWL rules of `program` into PWL form by
/// unfolding one recursive body atom with the exit rules of its predicate.
/// Only applies when the unfolded atom's predicate P
///   (a) is mutually recursive with the head predicate,
///   (b) has at least one exit rule (a rule defining P whose body has no
///       predicate mutually recursive with P), and
///   (c) every recursive rule defining P is of the chain-closure shape:
///       the unfolded atom joins the rest of the body only through frontier
///       variables (so the right-linear unfolding is answer-preserving).
/// Modifies `program` in place on success.
LinearizeResult LinearizeProgram(Program* program);

}  // namespace vadalog

#endif  // VADALOG_ANALYSIS_LINEARIZE_H_
