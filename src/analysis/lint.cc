#include "analysis/lint.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "analysis/fragments.h"
#include "analysis/predicate_graph.h"
#include "analysis/wardedness.h"
#include "ast/parser.h"

namespace vadalog {
namespace {

std::string PredicateDisplay(const SymbolTable& symbols, PredicateId p) {
  return symbols.PredicateName(p) + "/" +
         std::to_string(symbols.PredicateArity(p));
}

std::string PositionDisplay(const SymbolTable& symbols, Position pos) {
  return symbols.PredicateName(PositionPredicate(pos)) + "[" +
         std::to_string(PositionIndex(pos)) + "]";
}

Diagnostic MakeDiagnostic(std::string id, SourceLoc loc, std::string message) {
  Diagnostic d;
  d.id = std::move(id);
  const CheckInfo* info = FindCheck(d.id);
  d.severity = info ? info->severity : Severity::kWarning;
  d.loc = loc;
  d.message = std::move(message);
  return d;
}

std::string LocDisplay(SourceLoc loc, size_t rule_index) {
  return loc.valid() ? "line " + std::to_string(loc.line)
                     : "rule " + std::to_string(rule_index);
}

// ---- V003: unstratified negation ----------------------------------------

void CheckUnstratifiedNegation(const Program& program,
                               const PredicateGraph& graph,
                               std::vector<Diagnostic>* out) {
  auto witness = graph.UnstratifiedNegationWitness();
  if (!witness.has_value()) return;
  const SymbolTable& symbols = program.symbols();
  // Anchor at the negative atom that contributes the offending edge.
  SourceLoc loc;
  for (const Tgd& tgd : program.tgds()) {
    bool head_matches = std::any_of(
        tgd.head.begin(), tgd.head.end(),
        [&](const Atom& h) { return h.predicate == witness->head; });
    if (!head_matches) continue;
    for (const Atom& n : tgd.negative_body) {
      if (n.predicate == witness->negated) {
        loc = n.loc;
        break;
      }
    }
    if (loc.valid()) break;
  }
  Diagnostic d = MakeDiagnostic(
      "V003", loc,
      "predicate '" + symbols.PredicateName(witness->negated) +
          "' is negated inside a recursive cycle; the negation cannot be "
          "stratified");
  std::string cycle;
  for (PredicateId p : witness->cycle) {
    if (!cycle.empty()) cycle += " -> ";
    cycle += symbols.PredicateName(p);
  }
  cycle += " -[not]-> " + symbols.PredicateName(witness->head);
  d.witness.emplace_back("cycle", cycle);
  out->push_back(std::move(d));
}

// ---- V004: unsupported fragment -----------------------------------------

void CheckUnsupportedFragment(const Program& program,
                              const ProgramClassification& cls,
                              std::vector<Diagnostic>* out) {
  if (!cls.uses_negation || cls.datalog) return;
  SourceLoc loc;
  for (const Tgd& tgd : program.tgds()) {
    if (!tgd.negative_body.empty()) {
      loc = tgd.negative_body.front().loc;
      break;
    }
  }
  Diagnostic d = MakeDiagnostic(
      "V004", loc,
      "negation is only supported for plain Datalog programs; no engine "
      "can serve this combination");
  d.witness.emplace_back("uses-existentials",
                         cls.uses_existentials ? "true" : "false");
  out->push_back(std::move(d));
}

// ---- V101: non-warded rules ---------------------------------------------

void CheckWarded(const Program& program, std::vector<Diagnostic>* out) {
  WardednessReport report = CheckWardedness(program);
  if (report.is_warded) return;
  const SymbolTable& symbols = program.symbols();
  for (const WardednessViolation& w : report.witnesses) {
    const Tgd& tgd = program.tgds()[w.rule_index];
    std::string variables;
    for (Term v : w.dangerous) {
      if (!variables.empty()) variables += ", ";
      variables += "'" + VariableName(tgd.var_names, v) + "'";
    }
    Diagnostic d = MakeDiagnostic(
        "V101", tgd.loc,
        "dangerous variable" + std::string(w.dangerous.size() > 1 ? "s " : " ") +
            variables + " admit no ward (Definition 3.1)");
    d.witness.emplace_back("rule", tgd.ToString(symbols));
    for (size_t i = 0; i < w.dangerous.size(); ++i) {
      std::string positions;
      for (Position pos : w.dangerous_positions[i]) {
        if (!positions.empty()) positions += ", ";
        positions += PositionDisplay(symbols, pos);
      }
      d.witness.emplace_back(
          "dangerous:" + VariableName(tgd.var_names, w.dangerous[i]),
          "all body occurrences affected: " + positions);
    }
    for (size_t i = 0; i < w.candidate_failures.size(); ++i) {
      std::string why;
      if (w.candidate_failures[i] ==
          WardednessViolation::CandidateFailure::kMissesDangerous) {
        why = "misses a dangerous variable";
      } else {
        why = "shares non-harmless '" +
              VariableName(tgd.var_names, w.shared_variable[i]) +
              "' with the rest of the body";
      }
      d.witness.emplace_back("body[" + std::to_string(i) + "]", why);
    }
    out->push_back(std::move(d));
  }
}

// ---- V102: fragment downgrade -------------------------------------------

void CheckFragmentDowngrade(const Program& program,
                            const PredicateGraph& graph,
                            const ProgramClassification& cls,
                            std::vector<Diagnostic>* out) {
  if (!cls.warded || cls.piecewise_linear) return;
  // Anchor at the first rule with more than one recursive body atom (the
  // Definition 4.1 offender).
  SourceLoc loc;
  std::string rule_text;
  size_t recursive_atoms = 0;
  for (const Tgd& tgd : program.tgds()) {
    size_t count = RecursiveBodyAtomCount(tgd, graph);
    if (count > 1) {
      loc = tgd.loc;
      rule_text = tgd.ToString(program.symbols());
      recursive_atoms = count;
      break;
    }
  }
  std::string message =
      cls.pwl_after_linearization
          ? "program is piece-wise linear only after linearization; direct "
            "proof search loses the polynomial node-width bound"
          : "program is warded but not piece-wise linear; proof search "
            "falls back to the exponential node-width bound";
  Diagnostic d = MakeDiagnostic("V102", loc, std::move(message));
  d.witness.emplace_back("bucket", cls.RecursionBucket());
  if (recursive_atoms > 0) {
    d.witness.emplace_back("rule", rule_text);
    d.witness.emplace_back("recursive-body-atoms",
                           std::to_string(recursive_atoms));
  }
  out->push_back(std::move(d));
}

// ---- V201: singleton variables ------------------------------------------

void CheckSingletons(const Program& program, std::vector<Diagnostic>* out) {
  for (size_t rule_index = 0; rule_index < program.tgds().size();
       ++rule_index) {
    const Tgd& tgd = program.tgds()[rule_index];
    if (tgd.var_names == nullptr) continue;  // synthetic rule: names unknown
    std::unordered_map<uint64_t, size_t> occurrences;
    std::unordered_map<uint64_t, SourceLoc> first_loc;
    std::unordered_set<uint64_t> in_body;
    auto visit = [&](const std::vector<Atom>& atoms, bool body) {
      for (const Atom& a : atoms) {
        for (Term t : a.args) {
          if (!t.is_variable()) continue;
          ++occurrences[t.index()];
          if (body) in_body.insert(t.index());
          first_loc.emplace(t.index(), a.loc);
        }
      }
    };
    visit(tgd.body, true);
    visit(tgd.negative_body, true);
    visit(tgd.head, false);
    // Deterministic order: by variable index. Head-only singletons are
    // existentials — intentional, never flagged. Wildcards parse as fresh
    // variables named "_".
    std::map<uint64_t, size_t> ordered(occurrences.begin(), occurrences.end());
    for (const auto& [index, count] : ordered) {
      if (count != 1 || in_body.count(index) == 0) continue;
      std::string name = VariableName(tgd.var_names, Term::Variable(index));
      if (name == "_") continue;
      Diagnostic d = MakeDiagnostic(
          "V201", first_loc.at(index),
          "variable '" + name +
              "' occurs only once in this rule; use '_' for a don't-care");
      d.witness.emplace_back("rule", tgd.ToString(program.symbols()));
      out->push_back(std::move(d));
    }
  }
  for (const ConjunctiveQuery& query : program.queries()) {
    if (query.var_names == nullptr) continue;
    std::unordered_map<uint64_t, size_t> occurrences;
    std::unordered_map<uint64_t, SourceLoc> first_loc;
    for (const Atom& a : query.atoms) {
      for (Term t : a.args) {
        if (!t.is_variable()) continue;
        ++occurrences[t.index()];
        first_loc.emplace(t.index(), a.loc);
      }
    }
    std::unordered_set<uint64_t> output;
    for (Term t : query.output) {
      if (t.is_variable()) output.insert(t.index());
    }
    std::map<uint64_t, size_t> ordered(occurrences.begin(), occurrences.end());
    for (const auto& [index, count] : ordered) {
      if (count != 1 || output.count(index) > 0) continue;
      std::string name = VariableName(query.var_names, Term::Variable(index));
      if (name == "_") continue;
      Diagnostic d = MakeDiagnostic(
          "V201", first_loc.at(index),
          "variable '" + name +
              "' occurs only once in this query; use '_' for a don't-care");
      d.witness.emplace_back("query", query.ToString(program.symbols()));
      out->push_back(std::move(d));
    }
  }
}

// ---- V202: unsafe queries -----------------------------------------------

void CheckUnsafeQueries(const Program& program, std::vector<Diagnostic>* out) {
  for (const ConjunctiveQuery& query : program.queries()) {
    std::unordered_set<Term> bound;
    for (const Atom& a : query.atoms) {
      for (Term t : a.args) {
        if (t.is_variable()) bound.insert(t);
      }
    }
    for (Term t : query.output) {
      if (!t.is_variable() || bound.count(t) > 0) continue;
      Diagnostic d = MakeDiagnostic(
          "V202", query.loc,
          "query output variable '" + VariableName(query.var_names, t) +
              "' is not bound by any query atom");
      d.witness.emplace_back("query", query.ToString(program.symbols()));
      out->push_back(std::move(d));
    }
  }
}

// ---- V301/V302: dead predicates -----------------------------------------

void CheckDeadPredicates(const Program& program,
                         std::vector<Diagnostic>* out) {
  const SymbolTable& symbols = program.symbols();

  // Where each predicate is first defined (head or fact), for anchoring.
  std::unordered_map<PredicateId, SourceLoc> defined_at;
  std::vector<PredicateId> defined_order;
  auto define = [&](PredicateId p, SourceLoc loc) {
    if (defined_at.emplace(p, loc).second) defined_order.push_back(p);
  };
  std::unordered_set<PredicateId> read;
  for (const Tgd& tgd : program.tgds()) {
    for (const Atom& a : tgd.body) read.insert(a.predicate);
    for (const Atom& a : tgd.negative_body) read.insert(a.predicate);
    for (const Atom& a : tgd.head) define(a.predicate, tgd.loc);
  }
  for (const Atom& fact : program.facts()) define(fact.predicate, fact.loc);
  for (const ConjunctiveQuery& query : program.queries()) {
    for (const Atom& a : query.atoms) read.insert(a.predicate);
  }

  // V301 — only meaningful when the program says what its outputs are:
  // without a query, every derived predicate is a potential output.
  if (!program.queries().empty()) {
    for (PredicateId p : defined_order) {
      if (read.count(p) > 0) continue;
      out->push_back(MakeDiagnostic(
          "V301", defined_at.at(p),
          "predicate '" + PredicateDisplay(symbols, p) +
              "' is never read by any rule body or query"));
    }
  }

  // V302 — supported-predicate fixpoint. Extensional predicates (never in
  // a head) count as supported even without facts in this file: the EDB
  // may arrive later (daemon ADD_FACTS). An intensional predicate outside
  // the fixpoint can never be derived by any input.
  std::unordered_set<PredicateId> intensional = program.IntensionalPredicates();
  std::unordered_set<PredicateId> supported;
  for (PredicateId p : program.SchemaPredicates()) {
    if (intensional.count(p) == 0) supported.insert(p);
  }
  for (const Atom& fact : program.facts()) supported.insert(fact.predicate);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Tgd& tgd : program.tgds()) {
      bool body_supported = std::all_of(
          tgd.body.begin(), tgd.body.end(), [&](const Atom& a) {
            return supported.count(a.predicate) > 0;
          });
      if (!body_supported) continue;
      for (const Atom& h : tgd.head) {
        if (supported.insert(h.predicate).second) changed = true;
      }
    }
  }
  for (PredicateId p : defined_order) {
    if (intensional.count(p) == 0 || supported.count(p) > 0) continue;
    out->push_back(MakeDiagnostic(
        "V302", defined_at.at(p),
        "predicate '" + PredicateDisplay(symbols, p) +
            "' can never be derived: no rule chain grounds it in facts or "
            "extensional input"));
  }
}

// ---- V401/V402: duplicate and subsumed rules ----------------------------

// Canonical serialization with variables renumbered in first-occurrence
// order, so alpha-equivalent rules collide.
std::string CanonicalRule(const Tgd& tgd) {
  std::unordered_map<uint64_t, uint64_t> rename;
  std::string out;
  auto emit = [&](const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) {
      out += std::to_string(a.predicate) + "(";
      for (Term t : a.args) {
        if (t.is_variable()) {
          auto [it, inserted] = rename.emplace(t.index(), rename.size());
          out += "v" + std::to_string(it->second);
        } else {
          out += DebugString(t);
        }
        out += ",";
      }
      out += ")";
    }
  };
  emit(tgd.body);
  out += "|not|";
  emit(tgd.negative_body);
  out += "|head|";
  emit(tgd.head);
  return out;
}

// Does `general` subsume `specific`? True when some substitution θ on
// general's variables maps its head onto specific's head and every body
// atom into specific's body. Restricted to single-head rules without
// negation (the common case; anything else is skipped conservatively).
bool MatchAtoms(const Atom& from, const Atom& to,
                std::unordered_map<uint64_t, Term>* theta) {
  if (from.predicate != to.predicate || from.args.size() != to.args.size()) {
    return false;
  }
  std::vector<std::pair<uint64_t, bool>> added;  // (key, was-new) for undo
  for (size_t i = 0; i < from.args.size(); ++i) {
    Term f = from.args[i], t = to.args[i];
    if (!f.is_variable()) {
      if (f != t) {
        for (auto& [key, was_new] : added) {
          if (was_new) theta->erase(key);
        }
        return false;
      }
      continue;
    }
    auto [it, inserted] = theta->emplace(f.index(), t);
    added.emplace_back(f.index(), inserted);
    if (!inserted && it->second != t) {
      for (auto& [key, was_new] : added) {
        if (was_new) theta->erase(key);
      }
      return false;
    }
  }
  return true;
}

bool MatchBody(const std::vector<Atom>& general,
               const std::vector<Atom>& specific, size_t next,
               std::unordered_map<uint64_t, Term>* theta) {
  if (next == general.size()) return true;
  for (const Atom& target : specific) {
    std::unordered_map<uint64_t, Term> saved = *theta;
    if (MatchAtoms(general[next], target, theta) &&
        MatchBody(general, specific, next + 1, theta)) {
      return true;
    }
    *theta = std::move(saved);
  }
  return false;
}

bool Subsumes(const Tgd& general, const Tgd& specific) {
  if (general.head.size() != 1 || specific.head.size() != 1 ||
      !general.negative_body.empty() || !specific.negative_body.empty()) {
    return false;
  }
  std::unordered_map<uint64_t, Term> theta;
  if (!MatchAtoms(general.head[0], specific.head[0], &theta)) return false;
  return MatchBody(general.body, specific.body, 0, &theta);
}

void CheckRedundantRules(const Program& program,
                         std::vector<Diagnostic>* out) {
  const std::vector<Tgd>& tgds = program.tgds();
  std::unordered_map<std::string, size_t> canonical_first;
  std::vector<bool> duplicate(tgds.size(), false);
  for (size_t i = 0; i < tgds.size(); ++i) {
    auto [it, inserted] = canonical_first.emplace(CanonicalRule(tgds[i]), i);
    if (inserted) continue;
    duplicate[i] = true;
    const Tgd& first = tgds[it->second];
    Diagnostic d = MakeDiagnostic(
        "V401", tgds[i].loc,
        "rule duplicates the rule at " + LocDisplay(first.loc, it->second) +
            " up to variable renaming");
    d.witness.emplace_back("rule", tgds[i].ToString(program.symbols()));
    d.witness.emplace_back("first-occurrence",
                           LocDisplay(first.loc, it->second));
    out->push_back(std::move(d));
  }
  for (size_t i = 0; i < tgds.size(); ++i) {
    if (duplicate[i]) continue;
    for (size_t j = 0; j < tgds.size(); ++j) {
      if (i == j || duplicate[j]) continue;
      // Strict subsumption only: exact duplicates were reported above.
      if (CanonicalRule(tgds[i]) == CanonicalRule(tgds[j])) continue;
      if (!Subsumes(tgds[j], tgds[i])) continue;
      Diagnostic d = MakeDiagnostic(
          "V402", tgds[i].loc,
          "rule is subsumed by the more general rule at " +
              LocDisplay(tgds[j].loc, j) + " and can never derive anything "
              "new");
      d.witness.emplace_back("rule", tgds[i].ToString(program.symbols()));
      d.witness.emplace_back("subsumed-by", LocDisplay(tgds[j].loc, j));
      out->push_back(std::move(d));
      break;
    }
  }
}

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::stable_sort(diagnostics->begin(), diagnostics->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.line != b.loc.line) {
                       return a.loc.line < b.loc.line;
                     }
                     if (a.loc.column != b.loc.column) {
                       return a.loc.column < b.loc.column;
                     }
                     return a.id < b.id;
                   });
}

}  // namespace

LintResult LintProgram(const Program& program, std::string file_name) {
  LintResult result;
  result.file.file = std::move(file_name);
  std::vector<Diagnostic>* out = &result.file.diagnostics;

  PredicateGraph graph(program);
  ProgramClassification cls = ClassifyProgram(program);
  result.classification = cls;

  CheckUnstratifiedNegation(program, graph, out);
  CheckUnsupportedFragment(program, cls, out);
  CheckWarded(program, out);
  CheckFragmentDowngrade(program, graph, cls, out);
  CheckSingletons(program, out);
  CheckUnsafeQueries(program, out);
  CheckDeadPredicates(program, out);
  CheckRedundantRules(program, out);

  SortDiagnostics(out);
  return result;
}

LintResult LintSource(std::string_view text, std::string file_name) {
  ParseResult parsed = ParseProgram(text);
  if (!parsed.ok()) {
    LintResult result;
    result.file.file = std::move(file_name);
    result.file.source = std::string(text);
    // Strip the parser's own "line N: " prefix; the location carries it.
    std::string message = parsed.error;
    if (message.rfind("line ", 0) == 0) {
      size_t colon = message.find(": ");
      if (colon != std::string::npos) message = message.substr(colon + 2);
    }
    // Arity overflows are lint-catalogued in their own right (V002); the
    // parser phrases them with the kMaxArity bound.
    bool arity = message.find("the maximum is 65535") != std::string::npos;
    result.file.diagnostics.push_back(
        MakeDiagnostic(arity ? "V002" : "V001", parsed.error_loc,
                       std::move(message)));
    return result;
  }
  LintResult result = LintProgram(*parsed.program, std::move(file_name));
  result.file.source = std::string(text);
  return result;
}

}  // namespace vadalog
