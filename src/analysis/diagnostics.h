// Source-located diagnostics: the data model shared by every lint check,
// plus the three renderers (human text with caret excerpts, JSON, SARIF
// 2.1.0) used by vadalog_lint, `vadalog_cli --lint`, and the daemon's
// ANALYZE command.
//
// This lives in the analysis layer, below server/, so the JSON and SARIF
// emitters are hand-rolled here (server/json.h is not visible from this
// layer; the daemon re-wraps Diagnostic into its own JsonValue).

#ifndef VADALOG_ANALYSIS_DIAGNOSTICS_H_
#define VADALOG_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ast/source_loc.h"

namespace vadalog {

enum class Severity : uint8_t {
  kNote,     // advisory (fragment downgrades)
  kWarning,  // servable but suspicious (non-warded, singletons, dead rules)
  kError,    // unservable or meaning-corrupting (parse, arity, stratification)
};

/// "note" / "warning" / "error" (also the SARIF level strings).
std::string_view SeverityName(Severity severity);

/// One diagnostic. `witness` carries the structured evidence behind the
/// message (dangerous variables, cycle paths, duplicate-of line numbers)
/// as ordered key/value pairs — rendered as indented notes in text mode
/// and as an object in JSON/SARIF property bags.
struct Diagnostic {
  std::string id;  // catalog id, e.g. "V101"
  Severity severity = Severity::kWarning;
  SourceLoc loc;        // primary anchor; may be unknown (synthetic input)
  std::string message;  // one-line human summary
  std::vector<std::pair<std::string, std::string>> witness;
};

/// All diagnostics for one input, with enough context to render excerpts.
struct FileDiagnostics {
  std::string file;    // display name; "<input>" when no file backs it
  std::string source;  // full program text ("" disables caret excerpts)
  std::vector<Diagnostic> diagnostics;  // sorted by (line, column, id)

  size_t CountSeverity(Severity severity) const;
  bool HasErrors() const { return CountSeverity(Severity::kError) > 0; }
};

/// Static catalog entry for a check; drives SARIF rule metadata and the
/// README table. `severity` is the check's fixed severity (checks never
/// change severity per finding).
struct CheckInfo {
  std::string_view id;           // "V101"
  std::string_view name;         // "non-warded"
  std::string_view description;  // one sentence
  Severity severity;
};

/// The full catalog, ordered by id.
const std::vector<CheckInfo>& CheckCatalog();

/// Catalog lookup; nullptr for unknown ids.
const CheckInfo* FindCheck(std::string_view id);

/// Human rendering, one block per diagnostic:
///   file:line:col: severity: ID name: message
///       <source line>
///       ^
///     key: value
/// Diagnostics with unknown locations omit the line/col and excerpt.
std::string RenderText(const FileDiagnostics& file);

/// Deterministic JSON: {"files":[{"file":...,"diagnostics":[{"id":...,
/// "severity":...,"line":...,"column":...,"message":...,"witness":{...}}]}],
/// "errors":N,"warnings":N,"notes":N}. Witness keys keep insertion order.
std::string RenderJson(const std::vector<FileDiagnostics>& files);

/// SARIF 2.1.0, one run; rules[] lists the full catalog so ruleIndex is
/// stable across outputs; severities map to SARIF levels verbatim.
std::string RenderSarif(const std::vector<FileDiagnostics>& files);

/// JSON string escaping (shared with the renderers; exposed for tests).
std::string JsonEscape(std::string_view text);

}  // namespace vadalog

#endif  // VADALOG_ANALYSIS_DIAGNOSTICS_H_
