#include "analysis/diagnostics.h"

#include <algorithm>

namespace vadalog {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

size_t FileDiagnostics::CountSeverity(Severity severity) const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

const std::vector<CheckInfo>& CheckCatalog() {
  static const std::vector<CheckInfo> kCatalog = {
      {"V001", "parse-error", "The program text failed to parse.",
       Severity::kError},
      {"V002", "arity-overflow",
       "A predicate's arity exceeds 65535, the widest index the packed "
       "schema-position encoding (predicate << 16 | index) can represent.",
       Severity::kError},
      {"V003", "unstratified-negation",
       "A negated predicate depends, through the predicate graph, on the "
       "head it guards: negation inside a recursive cycle has no "
       "stratified semantics.",
       Severity::kError},
      {"V004", "unsupported-fragment",
       "The program combines features no shipped engine serves (negation "
       "outside plain Datalog, or unsafe negation).",
       Severity::kWarning},
      {"V101", "non-warded",
       "A rule's dangerous variables admit no ward (Definition 3.1): no "
       "body atom contains all of them while sharing only harmless "
       "variables with the rest of the body.",
       Severity::kWarning},
      {"V102", "fragment-downgrade",
       "The program is warded but falls outside piece-wise linearity, so "
       "proof search loses the polynomial node-width bound.",
       Severity::kNote},
      {"V201", "singleton-variable",
       "A named variable occurs exactly once in its rule; use '_' to mark "
       "an intentional don't-care.",
       Severity::kWarning},
      {"V202", "unsafe-query",
       "A query output variable is not bound by any query atom.",
       Severity::kWarning},
      {"V301", "unused-predicate",
       "A predicate is derived or asserted but never read by any rule "
       "body or query.",
       Severity::kWarning},
      {"V302", "underivable-predicate",
       "An intensional predicate can never be derived: every defining "
       "rule depends on predicates that are themselves underivable.",
       Severity::kWarning},
      {"V401", "duplicate-rule",
       "A rule repeats an earlier rule up to variable renaming.",
       Severity::kWarning},
      {"V402", "subsumed-rule",
       "A rule is subsumed by a more general earlier rule and can never "
       "derive anything new.",
       Severity::kWarning},
  };
  return kCatalog;
}

const CheckInfo* FindCheck(std::string_view id) {
  for (const CheckInfo& info : CheckCatalog()) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// The 1-based `line`-th line of `source`, without its newline.
std::string_view SourceLine(std::string_view source, uint32_t line) {
  size_t start = 0;
  for (uint32_t current = 1; current < line; ++current) {
    size_t nl = source.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
  }
  size_t end = source.find('\n', start);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(start, end - start);
}

void AppendQuoted(std::string* out, std::string_view text) {
  *out += '"';
  *out += JsonEscape(text);
  *out += '"';
}

void AppendWitnessObject(std::string* out, const Diagnostic& d) {
  *out += '{';
  for (size_t i = 0; i < d.witness.size(); ++i) {
    if (i > 0) *out += ',';
    AppendQuoted(out, d.witness[i].first);
    *out += ':';
    AppendQuoted(out, d.witness[i].second);
  }
  *out += '}';
}

}  // namespace

std::string RenderText(const FileDiagnostics& file) {
  std::string out;
  for (const Diagnostic& d : file.diagnostics) {
    out += file.file;
    if (d.loc.valid()) {
      out += ':' + std::to_string(d.loc.line) + ':' +
             std::to_string(d.loc.column);
    }
    out += ": ";
    out += SeverityName(d.severity);
    out += ": ";
    out += d.id;
    if (const CheckInfo* info = FindCheck(d.id)) {
      out += ' ';
      out += info->name;
    }
    out += ": ";
    out += d.message;
    out += '\n';
    if (d.loc.valid() && !file.source.empty()) {
      std::string_view excerpt = SourceLine(file.source, d.loc.line);
      if (!excerpt.empty() && d.loc.column <= excerpt.size() + 1) {
        out += "    ";
        out += excerpt;
        out += "\n    ";
        // Mirror tabs so the caret lines up under tab-indented code.
        for (uint32_t i = 0; i + 1 < d.loc.column; ++i) {
          out += (i < excerpt.size() && excerpt[i] == '\t') ? '\t' : ' ';
        }
        out += "^\n";
      }
    }
    for (const auto& [key, value] : d.witness) {
      out += "  " + key + ": " + value + "\n";
    }
  }
  return out;
}

std::string RenderJson(const std::vector<FileDiagnostics>& files) {
  size_t errors = 0, warnings = 0, notes = 0;
  std::string out = "{\n  \"files\": [";
  for (size_t f = 0; f < files.size(); ++f) {
    const FileDiagnostics& file = files[f];
    errors += file.CountSeverity(Severity::kError);
    warnings += file.CountSeverity(Severity::kWarning);
    notes += file.CountSeverity(Severity::kNote);
    out += (f > 0) ? ",\n    {" : "\n    {";
    out += "\"file\": ";
    AppendQuoted(&out, file.file);
    out += ", \"diagnostics\": [";
    for (size_t i = 0; i < file.diagnostics.size(); ++i) {
      const Diagnostic& d = file.diagnostics[i];
      out += (i > 0) ? ",\n      {" : "\n      {";
      out += "\"id\": ";
      AppendQuoted(&out, d.id);
      out += ", \"severity\": ";
      AppendQuoted(&out, SeverityName(d.severity));
      out += ", \"line\": " + std::to_string(d.loc.line);
      out += ", \"column\": " + std::to_string(d.loc.column);
      out += ", \"message\": ";
      AppendQuoted(&out, d.message);
      out += ", \"witness\": ";
      AppendWitnessObject(&out, d);
      out += '}';
    }
    out += file.diagnostics.empty() ? "]}" : "\n    ]}";
  }
  out += files.empty() ? "],\n" : "\n  ],\n";
  out += "  \"errors\": " + std::to_string(errors);
  out += ", \"warnings\": " + std::to_string(warnings);
  out += ", \"notes\": " + std::to_string(notes);
  out += "\n}\n";
  return out;
}

std::string RenderSarif(const std::vector<FileDiagnostics>& files) {
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"vadalog_lint\",\n"
      "      \"rules\": [";
  const std::vector<CheckInfo>& catalog = CheckCatalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    const CheckInfo& info = catalog[i];
    out += (i > 0) ? ",\n        {" : "\n        {";
    out += "\"id\": ";
    AppendQuoted(&out, info.id);
    out += ", \"name\": ";
    AppendQuoted(&out, info.name);
    out += ",\n         \"shortDescription\": {\"text\": ";
    AppendQuoted(&out, info.description);
    out += "},\n         \"defaultConfiguration\": {\"level\": ";
    AppendQuoted(&out, SeverityName(info.severity));
    out += "}}";
  }
  out +=
      "\n      ]}},\n"
      "    \"results\": [";
  bool first = true;
  for (const FileDiagnostics& file : files) {
    for (const Diagnostic& d : file.diagnostics) {
      out += first ? "\n      {" : ",\n      {";
      first = false;
      out += "\"ruleId\": ";
      AppendQuoted(&out, d.id);
      size_t rule_index = 0;
      for (size_t i = 0; i < catalog.size(); ++i) {
        if (catalog[i].id == d.id) rule_index = i;
      }
      out += ", \"ruleIndex\": " + std::to_string(rule_index);
      out += ", \"level\": ";
      AppendQuoted(&out, SeverityName(d.severity));
      out += ",\n       \"message\": {\"text\": ";
      AppendQuoted(&out, d.message);
      out += "},\n       \"locations\": [{\"physicalLocation\": {";
      out += "\"artifactLocation\": {\"uri\": ";
      AppendQuoted(&out, file.file);
      out += "}";
      if (d.loc.valid()) {
        out += ", \"region\": {\"startLine\": " + std::to_string(d.loc.line) +
               ", \"startColumn\": " + std::to_string(d.loc.column) + "}";
      }
      out += "}}]";
      if (!d.witness.empty()) {
        out += ",\n       \"properties\": ";
        AppendWitnessObject(&out, d);
      }
      out += '}';
    }
  }
  out += first ? "]\n" : "\n    ]\n";
  out += "  }]\n}\n";
  return out;
}

}  // namespace vadalog
