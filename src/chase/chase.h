// The chase procedure (Section 2) with the termination control used by the
// Vadalog system (Section 7 (1)).
//
// A chase step I⟨σ,h⟩J applies a TGD σ = φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄) whose body
// matches I via h, extending h with fresh labeled nulls for z̄. The chase
// of a database under a warded set of TGDs may be infinite; the Vadalog
// system terminates it by skipping steps whose generated atom is
// *isomorphic* (equal up to a renaming of labeled nulls) to an
// already-derived atom — the "guide structure" / aggressive termination
// control of [6]. For warded sets this preserves certain answers: isomorphic
// atoms root isomorphic sub-chases, and harmful joins are confined to wards.
//
// The engine also supports the textbook restricted chase (skip a step whose
// head is already satisfied) and an oblivious mode, plus step/atom/depth
// budgets so that non-terminating programs (e.g. the piece-wise linear but
// unwarded reduction of Section 5) can be run to a bounded horizon.

#ifndef VADALOG_CHASE_CHASE_H_
#define VADALOG_CHASE_CHASE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ast/program.h"
#include "storage/instance.h"

namespace vadalog {

struct ChaseOptions {
  /// Skip steps whose generated atom is isomorphic (modulo null renaming)
  /// to an existing atom. This is the Vadalog termination control; turning
  /// it off yields the plain (possibly non-terminating) chase. Ablated in
  /// experiment E9.
  bool isomorphism_termination = true;

  /// Restricted chase: skip a step whose head is already satisfied by an
  /// extension of the trigger homomorphism.
  bool restricted = true;

  /// Budgets; 0 means unlimited. `max_depth` bounds the derivation depth
  /// of generated atoms (database atoms have depth 0).
  uint64_t max_steps = 0;
  uint64_t max_atoms = 0;
  uint32_t max_depth = 0;

  /// Record provenance edges (chase graph of Section 4.2).
  bool record_provenance = false;
};

/// Why the chase loop stopped.
enum class ChaseStopReason : uint8_t {
  kFixpoint,      // no applicable step remained: chase(D, Σ) materialized
  kStepBudget,    // hit max_steps
  kAtomBudget,    // hit max_atoms
  kUnsupported,   // program uses features the chase lacks (negation)
};

/// Provenance of one derived atom (an edge bundle of the chase graph).
struct ChaseDerivation {
  Atom atom;
  size_t tgd_index;             // which σ ∈ Σ fired
  std::vector<Atom> parents;    // h(body(σ))
  uint32_t depth;               // 1 + max parent depth
};

struct ChaseResult {
  Instance instance;
  ChaseStopReason stop_reason = ChaseStopReason::kFixpoint;
  uint64_t steps_applied = 0;
  uint64_t steps_skipped_satisfied = 0;
  uint64_t steps_skipped_isomorphic = 0;
  uint64_t steps_skipped_depth = 0;
  uint64_t nulls_created = 0;
  uint64_t rounds = 0;
  size_t peak_instance_bytes = 0;
  std::vector<ChaseDerivation> derivations;  // iff record_provenance

  bool Saturated() const {
    return stop_reason == ChaseStopReason::kFixpoint;
  }
};

/// Runs the chase of `database` under the TGDs of `program` using
/// semi-naive (delta-driven) round evaluation.
ChaseResult RunChase(const Program& program, const Instance& database,
                     const ChaseOptions& options = {});

}  // namespace vadalog

#endif  // VADALOG_CHASE_CHASE_H_
