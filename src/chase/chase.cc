#include "chase/chase.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "base/hash.h"
#include "storage/homomorphism.h"

namespace vadalog {
namespace {

/// Canonical key of an atom modulo null renaming: nulls are replaced by
/// their order of first occurrence. Two atoms are isomorphic iff they have
/// the same key.
std::vector<uint64_t> IsomorphismKey(const Atom& atom) {
  std::vector<uint64_t> key;
  key.reserve(atom.args.size() + 1);
  key.push_back(static_cast<uint64_t>(atom.predicate));
  std::unordered_map<Term, uint64_t> null_rank;
  for (Term t : atom.args) {
    if (t.is_null()) {
      auto [it, inserted] = null_rank.try_emplace(t, null_rank.size());
      key.push_back((uint64_t{1} << 62) | it->second);
    } else {
      assert(t.is_constant());
      key.push_back(t.index());
    }
  }
  return key;
}

struct KeyHash {
  size_t operator()(const std::vector<uint64_t>& key) const {
    return HashRange(key.begin(), key.end());
  }
};

struct Trigger {
  size_t tgd_index;
  Substitution h;
};

}  // namespace

ChaseResult RunChase(const Program& program, const Instance& database,
                     const ChaseOptions& options) {
  ChaseResult result;
  Instance& instance = result.instance;

  if (program.HasNegation()) {
    // TGD semantics (certain answers over all models) is incompatible
    // with negation-as-failure; stratified negation is served by
    // EvaluateDatalog instead.
    result.stop_reason = ChaseStopReason::kUnsupported;
    return result;
  }

  std::unordered_set<std::vector<uint64_t>, KeyHash> summaries;
  std::unordered_map<Atom, uint32_t, AtomHash> depth_of;

  std::vector<Atom> delta;
  for (const Atom& fact : database.AllAtoms()) {
    if (instance.Insert(fact)) {
      delta.push_back(fact);
      depth_of.emplace(fact, 0);
      summaries.insert(IsomorphismKey(fact));
    }
  }

  uint64_t next_null = database.MaxNullIndex();
  bool stop = false;

  while (!delta.empty() && !stop) {
    ++result.rounds;
    std::vector<Atom> next_delta;

    // Semi-naive trigger enumeration: for every rule and every body
    // position, anchor that position on a delta atom and complete the
    // match against the full instance. Triggers touching k delta atoms are
    // found k times; re-application is harmless (insertions deduplicate
    // and the satisfaction/isomorphism checks skip redundant steps).
    for (size_t tgd_index = 0; tgd_index < program.tgds().size() && !stop;
         ++tgd_index) {
      const Tgd& tgd = program.tgds()[tgd_index];
      for (size_t anchor = 0; anchor < tgd.body.size() && !stop; ++anchor) {
        const Atom& anchor_pattern = tgd.body[anchor];
        for (const Atom& delta_atom : delta) {
          if (stop) break;
          if (delta_atom.predicate != anchor_pattern.predicate) continue;
          // Bind the anchor pattern against the delta atom.
          Substitution seed;
          bool consistent = true;
          for (size_t i = 0; i < anchor_pattern.args.size(); ++i) {
            Term pattern = ApplySubstitution(seed, anchor_pattern.args[i]);
            if (pattern.is_rigid()) {
              if (pattern != delta_atom.args[i]) {
                consistent = false;
                break;
              }
            } else {
              seed.emplace(pattern, delta_atom.args[i]);
            }
          }
          if (!consistent) continue;

          std::vector<Atom> rest;
          rest.reserve(tgd.body.size() - 1);
          for (size_t i = 0; i < tgd.body.size(); ++i) {
            if (i != anchor) rest.push_back(tgd.body[i]);
          }

          // Matching must not run concurrently with insertions (relation
          // vectors may reallocate): buffer the triggers, apply after.
          std::vector<Substitution> triggers;
          ForEachHomomorphism(rest, instance, seed,
                              [&triggers](const Substitution& h) {
                                triggers.push_back(h);
                                return true;
                              });
          for (const Substitution& h : triggers) {
            if (stop) break;
            // Depth of the step: 1 + max depth of the matched body atoms.
            uint32_t depth = 0;
            std::vector<Atom> parents;
            parents.reserve(tgd.body.size());
            for (const Atom& b : tgd.body) {
              Atom image = ApplySubstitution(h, b);
              auto it = depth_of.find(image);
              uint32_t d = it == depth_of.end() ? 0 : it->second;
              depth = std::max(depth, d);
              if (options.record_provenance) parents.push_back(image);
            }
            depth += 1;
            if (options.max_depth != 0 && depth > options.max_depth) {
              ++result.steps_skipped_depth;
              continue;
            }

            // Restricted chase: skip if the head is already satisfied by
            // extending h on the frontier.
            std::vector<Atom> head_pattern =
                ApplySubstitution(h, tgd.head);
            if (options.restricted &&
                HasHomomorphism(head_pattern, instance)) {
              ++result.steps_skipped_satisfied;
              continue;
            }

            // Instantiate existential variables with fresh nulls.
            Substitution fresh;
            std::vector<Atom> generated = head_pattern;
            for (Atom& g : generated) {
              for (Term& t : g.args) {
                if (!t.is_variable()) continue;
                auto [it, inserted] =
                    fresh.try_emplace(t, Term::Null(next_null));
                if (inserted) ++next_null;
                t = it->second;
              }
            }

            // Vadalog termination control: skip the step when every
            // generated atom is isomorphic to an existing one.
            if (options.isomorphism_termination) {
              bool all_redundant = true;
              for (const Atom& g : generated) {
                if (summaries.count(IsomorphismKey(g)) == 0) {
                  all_redundant = false;
                  break;
                }
              }
              if (all_redundant) {
                ++result.steps_skipped_isomorphic;
                continue;
              }
            }

            bool inserted_any = false;
            for (const Atom& g : generated) {
              if (instance.Insert(g)) {
                inserted_any = true;
                next_delta.push_back(g);
                depth_of.emplace(g, depth);
                summaries.insert(IsomorphismKey(g));
                if (options.record_provenance) {
                  result.derivations.push_back(
                      ChaseDerivation{g, tgd_index, parents, depth});
                }
              }
            }
            if (inserted_any) {
              result.nulls_created += fresh.size();
              ++result.steps_applied;
            }

            if (options.max_steps != 0 &&
                result.steps_applied >= options.max_steps) {
              result.stop_reason = ChaseStopReason::kStepBudget;
              stop = true;
              break;
            }
            if (options.max_atoms != 0 &&
                instance.size() >= options.max_atoms) {
              result.stop_reason = ChaseStopReason::kAtomBudget;
              stop = true;
              break;
            }
          }
        }
      }
    }

    result.peak_instance_bytes =
        std::max(result.peak_instance_bytes, instance.ApproximateBytes());
    delta = std::move(next_delta);
  }

  return result;
}

}  // namespace vadalog
