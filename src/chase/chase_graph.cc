#include "chase/chase_graph.h"

#include <algorithm>
#include <deque>
#include <set>

namespace vadalog {

ChaseGraph::ChaseGraph(const ChaseResult& result, const Instance& database) {
  auto intern = [this](const Atom& atom) {
    auto [it, inserted] = id_of_.try_emplace(atom, atoms_.size());
    if (inserted) {
      atoms_.push_back(atom);
      parents_.emplace_back();
      rule_of_.push_back(0);
      depth_of_.push_back(0);
    }
    return it->second;
  };

  for (const Atom& fact : database.AllAtoms()) intern(fact);
  for (const ChaseDerivation& derivation : result.derivations) {
    size_t id = intern(derivation.atom);
    rule_of_[id] = derivation.tgd_index;
    depth_of_[id] = derivation.depth;
    for (const Atom& parent : derivation.parents) {
      parents_[id].push_back(intern(parent));
    }
  }
}

int64_t ChaseGraph::IdOf(const Atom& atom) const {
  auto it = id_of_.find(atom);
  return it == id_of_.end() ? -1 : static_cast<int64_t>(it->second);
}

std::vector<size_t> ChaseGraph::AncestorsOf(size_t id) const {
  std::set<size_t> seen;
  std::deque<size_t> frontier = {id};
  while (!frontier.empty()) {
    size_t current = frontier.front();
    frontier.pop_front();
    for (size_t parent : parents_[current]) {
      if (seen.insert(parent).second) frontier.push_back(parent);
    }
  }
  return std::vector<size_t>(seen.begin(), seen.end());
}

std::vector<Atom> ChaseGraph::SupportOf(size_t id) const {
  std::vector<Atom> support;
  for (size_t ancestor : AncestorsOf(id)) {
    if (IsSource(ancestor)) support.push_back(atoms_[ancestor]);
  }
  return support;
}

std::string ChaseGraph::ToDot(const Program& program,
                              size_t max_atoms) const {
  std::string out = "digraph chase {\n  rankdir=BT;\n";
  size_t limit = std::min(max_atoms, atoms_.size());
  for (size_t id = 0; id < limit; ++id) {
    out += "  n" + std::to_string(id) + " [label=\"" +
           atoms_[id].ToString(program.symbols()) + "\"" +
           (IsSource(id) ? ", shape=box" : "") + "];\n";
  }
  for (size_t id = 0; id < limit; ++id) {
    for (size_t parent : parents_[id]) {
      if (parent >= limit) continue;
      out += "  n" + std::to_string(parent) + " -> n" + std::to_string(id) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::vector<Atom> UnravelForest::AllAtoms() const {
  std::vector<Atom> all;
  all.reserve(nodes.size());
  for (const UnravelNode& node : nodes) all.push_back(node.atom);
  return all;
}

namespace {

/// Expands one node of the unraveling: copies the chase atom, renames the
/// nulls that were introduced along this path, and recurses into the
/// parents of the original atom.
size_t Expand(const ChaseGraph& graph, size_t chase_id,
              const Substitution& null_renaming, uint64_t* next_null,
              UnravelForest* forest, size_t max_nodes) {
  size_t node_index = forest->nodes.size();
  if (node_index >= max_nodes) return node_index;  // caller checks bound
  forest->nodes.emplace_back();

  const Atom& original = graph.AtomOf(chase_id);
  UnravelNode& node = forest->nodes[node_index];
  node.original = original;
  node.is_database_fact = graph.IsSource(chase_id);
  node.rule = graph.RuleOf(chase_id);
  node.atom = ApplySubstitution(null_renaming, original);

  if (node.is_database_fact) return node_index;

  // Nulls introduced *by this step* (those of the atom that do not occur
  // in any parent) keep the renaming decided here; nulls inherited from
  // parents extend the renaming downward.
  Substitution extended = null_renaming;
  std::unordered_set<Term> parent_nulls;
  for (size_t parent : graph.ParentsOf(chase_id)) {
    for (Term t : graph.AtomOf(parent).args) {
      if (t.is_null()) parent_nulls.insert(t);
    }
  }
  // Fresh copies for the parents' nulls that this path has not named yet:
  // each tree of the forest renames the chase's nulls apart.
  for (Term t : parent_nulls) {
    if (extended.count(t) == 0) {
      extended.emplace(t, Term::Null((*next_null)++));
      ++forest->nulls_renamed;
    }
  }

  std::vector<size_t> children;
  for (size_t parent : graph.ParentsOf(chase_id)) {
    if (forest->nodes.size() >= max_nodes) break;
    children.push_back(Expand(graph, parent, extended, next_null, forest,
                              max_nodes));
  }
  forest->nodes[node_index].children = std::move(children);
  return node_index;
}

}  // namespace

UnravelForest UnravelAround(const ChaseGraph& graph,
                            const std::vector<Atom>& theta,
                            uint64_t first_fresh_null, size_t max_nodes) {
  UnravelForest forest;
  uint64_t next_null = first_fresh_null;
  for (const Atom& atom : theta) {
    int64_t id = graph.IdOf(atom);
    if (id < 0) continue;
    // Root nulls keep their chase identity within this tree, renamed
    // apart from other trees.
    Substitution renaming;
    for (Term t : atom.args) {
      if (t.is_null() && renaming.count(t) == 0) {
        renaming.emplace(t, Term::Null(next_null++));
        ++forest.nulls_renamed;
      }
    }
    forest.roots.push_back(Expand(graph, static_cast<size_t>(id), renaming,
                                  &next_null, &forest, max_nodes));
  }
  return forest;
}

}  // namespace vadalog
