// The chase graph G_{D,Σ} and its unraveling (Section 4.2).
//
// The chase graph has one node per chase atom and an edge α → β when β was
// derived by a chase step whose trigger image contains α. It is the
// backbone of the paper's proof of Theorems 4.8/4.9: the *unraveling*
// around a set of atoms Θ reorganizes the backward derivations into a
// forest (duplicating shared atoms and renaming their labeled nulls
// apart), whose unfolding/decomposition structure yields the chase trees
// of Definition 4.10.
//
// This module materializes both structures from the provenance recorded by
// RunChase (options.record_provenance), supporting provenance queries
// ("which database facts and rules derived this atom?"), derivation-depth
// statistics, Graphviz export, and the forest unraveling with fresh-null
// copies.

#ifndef VADALOG_CHASE_CHASE_GRAPH_H_
#define VADALOG_CHASE_CHASE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/atom.h"
#include "ast/program.h"
#include "chase/chase.h"

namespace vadalog {

/// The chase graph for one chase run.
class ChaseGraph {
 public:
  /// Builds the graph from a chase result with recorded provenance.
  /// Database atoms (depth 0) are sources.
  ChaseGraph(const ChaseResult& result, const Instance& database);

  size_t num_atoms() const { return atoms_.size(); }

  /// Node id of an atom, or -1 if absent.
  int64_t IdOf(const Atom& atom) const;

  const Atom& AtomOf(size_t id) const { return atoms_[id]; }

  /// True if the atom is a database fact (no incoming edges).
  bool IsSource(size_t id) const { return parents_[id].empty(); }

  /// The direct parents (trigger image) of a derived atom.
  const std::vector<size_t>& ParentsOf(size_t id) const {
    return parents_[id];
  }

  /// The TGD that derived the atom (meaningless for sources).
  size_t RuleOf(size_t id) const { return rule_of_[id]; }

  uint32_t DepthOf(size_t id) const { return depth_of_[id]; }

  /// All ancestors of `id` (the backward closure), ids sorted ascending.
  /// This is the sub-derivation needed to re-derive the atom.
  std::vector<size_t> AncestorsOf(size_t id) const;

  /// The database facts among the ancestors — the provenance support set.
  std::vector<Atom> SupportOf(size_t id) const;

  /// Graphviz rendering (for debugging / the CLI's --dot flag).
  std::string ToDot(const Program& program, size_t max_atoms = 200) const;

 private:
  std::vector<Atom> atoms_;
  std::vector<std::vector<size_t>> parents_;
  std::vector<size_t> rule_of_;
  std::vector<uint32_t> depth_of_;
  std::unordered_map<Atom, size_t, AtomHash> id_of_;
};

/// One node of the unraveled forest: a copy of a chase atom whose labeled
/// nulls have been renamed apart per path (the paper's G^{D,Σ}_Θ).
struct UnravelNode {
  Atom atom;                      // with path-fresh nulls
  Atom original;                  // the chase atom it copies
  size_t rule = 0;                // TGD of the incoming step (if any)
  std::vector<size_t> children;   // indices into UnravelForest::nodes
  bool is_database_fact = false;
};

struct UnravelForest {
  std::vector<UnravelNode> nodes;
  std::vector<size_t> roots;      // one per atom of Θ (in order)
  uint64_t nulls_renamed = 0;

  /// All atoms appearing as labels (the paper's U(G^{D,Σ}, Θ)).
  std::vector<Atom> AllAtoms() const;
};

/// Unravels the chase graph around Θ: for each atom a tree whose branches
/// are backward paths to database atoms; shared derivations are duplicated
/// and their nulls renamed apart (fresh indices starting after the chase's
/// nulls). `max_nodes` bounds the expansion (duplicated DAGs can explode).
UnravelForest UnravelAround(const ChaseGraph& graph,
                            const std::vector<Atom>& theta,
                            uint64_t first_fresh_null,
                            size_t max_nodes = 100000);

}  // namespace vadalog

#endif  // VADALOG_CHASE_CHASE_GRAPH_H_
