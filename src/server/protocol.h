// vadalogd wire protocol, version 1: newline-delimited JSON, one request
// object in, one response object out, over a TCP or Unix-domain stream.
//
// Request shape (field presence per command):
//
//   {"v":1, "id":<any>, "cmd":"<COMMAND>", ...}
//
//   LOAD_PROGRAM  session, program (surface syntax), [replace=false]
//   ADD_FACTS     session, facts (surface-syntax fact clauses)
//   QUERY         session, query | query_index, [engine=auto],
//                 [max_states=0], [max_millis=0], [threads=0]
//   EXPLAIN       session, query | query_index, answer (constant strings)
//   STATS         [session]
//   UNLOAD        session
//   PING          -
//
// `v` defaults to 1 and must be 1; `id` is echoed verbatim so clients can
// pipeline. Responses are {"ok":true, ...} or
// {"ok":false, "error":{"code":"E...", "message":"..."}}. Budgets surface
// the engine's completeness signal: a QUERY answered by a proof-search
// engine carries "complete" (false when some refutation gave up on a
// budget — the answers are then a sound subset, not definitive) and
// "budget_exhausted_candidates".
//
// This module is the pure wire layer: request parsing and response
// shaping only. Session lookup and execution live in server/session.h.

#ifndef VADALOG_SERVER_PROTOCOL_H_
#define VADALOG_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "server/json.h"

namespace vadalog {
namespace protocol {

inline constexpr int kVersion = 1;

enum class Command : uint8_t {
  kLoadProgram,
  kAddFacts,
  kQuery,
  kExplain,
  kStats,
  kUnload,
  kPing,
};

const char* CommandName(Command cmd);

/// A structured protocol error: a stable machine-readable code plus a
/// human-readable message.
///
///   EPROTO    malformed JSON / not an object / bad field type
///   EVERSION  unsupported protocol version
///   ECMD      unknown command
///   EBADREQ   missing or invalid field for the command
///   EPARSE    program / facts / query text failed to parse
///   ENOSESSION  no session with that name
///   EEXISTS   LOAD_PROGRAM onto an existing session without replace
///   EUNSUPPORTED  the program's fragment cannot be served (e.g.
///                 negation outside Datalog)
///   EBUSY     admission control rejected the request; retry later
struct Error {
  std::string code;
  std::string message;
};

struct Request {
  int version = kVersion;
  JsonValue id;  // null when the client sent none; echoed verbatim
  Command cmd = Command::kPing;
  std::string session;

  // LOAD_PROGRAM
  std::string program;
  bool replace = false;

  // ADD_FACTS
  std::string facts;

  // QUERY / EXPLAIN: either inline surface-syntax text or an index into
  // the loaded program's parsed queries.
  std::string query_text;
  int64_t query_index = -1;

  // EXPLAIN
  std::vector<std::string> answer;

  // QUERY execution knobs.
  std::string engine = "auto";
  uint64_t max_states = 0;
  uint64_t max_millis = 0;
  uint32_t threads = 0;  // 0 = server default
};

/// Parses one request line (strict JSON, known command, per-command
/// required fields). On failure returns nullopt with `error` filled; when
/// the line was at least a JSON object, `*id` receives its "id" member so
/// the error response can still be correlated.
std::optional<Request> ParseRequest(std::string_view line, Error* error,
                                    JsonValue* id);

/// {"ok":false,"id":...,"error":{"code":...,"message":...}}
JsonValue ErrorResponse(const Error& error, const JsonValue& id);

/// {"ok":true,"id":...} — callers Set() additional members.
JsonValue OkResponse(const JsonValue& id);

}  // namespace protocol
}  // namespace vadalog

#endif  // VADALOG_SERVER_PROTOCOL_H_
