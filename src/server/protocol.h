// vadalogd wire protocol: newline-delimited JSON requests, versioned and
// negotiated per connection, over a TCP or Unix-domain stream.
//
// Request shape (field presence per command):
//
//   {"v":1|2, "id":<any>, "cmd":"<COMMAND>", ...}
//
//   HELLO         [max_version=2], [encodings=["binary","json",...]]
//   LOAD_PROGRAM  session, program (surface syntax), [replace=false]
//   ANALYZE       session — lint diagnostics + classification for the
//                 session's loaded program text (analysis/lint.h)
//   ADD_FACTS     session, facts (surface-syntax fact clauses)
//   QUERY         session, query | query_index, [engine=auto],
//                 [max_states=0], [max_millis=0], [threads=0],
//                 [trace=false]
//   EXPLAIN       session, query | query_index, answer (constant strings),
//                 [trace=false]
//   STATS         [session]
//   METRICS       - (full metrics-registry snapshot as JSON)
//   UNLOAD        session
//   PING          -
//
// `"trace": true` on QUERY/EXPLAIN asks the server to attach a "trace"
// object to the response body: the request's span breakdown in
// microseconds (queue_wait, parse, lock_wait, search, encode) plus
// total_us. The body is the head line under every encoding, so traced
// responses carry identical spans on v1 JSON and v2 binary.
//
// Version negotiation (wire-API v2): every connection starts at v1 with
// newline-JSON responses. A HELLO announces the client's highest
// supported version and its response-encoding preference list; the
// server answers with the negotiated version = min(client, server) and
// the first client-preferred encoding it both knows and allows — unknown
// encoding names are skipped (forward compatibility), an empty
// intersection falls back to JSON. A `max_version` below 1, like a
// request `v` outside [1, kMaxVersion], is EVERSION. `id` is echoed
// verbatim so clients can pipeline.
//
// Responses are a transport-independent model (`Response`): a JSON body
// plus an optional answer table, rendered by the negotiated encoding:
//
//   * json (default): the table is inlined into the body as
//     "answers":[[cell,...],...] and the response is one JSON line;
//   * binary (v2): the body line carries
//     "answers_frame":{"rows":R,"cols":C,"bytes":K} instead of the rows,
//     and K bytes of columnar payload follow the newline — see
//     EncodeAnswerFrame for the exact layout. Responses without an
//     answer table (errors, PING, STATS, ...) stay pure JSON lines on
//     every encoding, so the control channel is always line-framed.
//
// Budgets surface the engine's completeness signal: a QUERY answered by
// a proof-search engine carries "complete" (false when some refutation
// gave up on a budget — the answers are then a sound subset, not
// definitive) and "budget_exhausted_candidates".
//
// This module is the pure wire layer: request parsing, negotiation, and
// response encoding only. Session lookup and execution live in
// server/session.h; both encodings share that one execution path and
// differ only in how EncodeResponse renders the model.

#ifndef VADALOG_SERVER_PROTOCOL_H_
#define VADALOG_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "server/json.h"

namespace vadalog {
namespace protocol {

/// Baseline protocol version: what every connection speaks before (or
/// without) a HELLO, and the lowest version a HELLO can negotiate.
inline constexpr int kVersion = 1;
/// Highest version this server can negotiate (wire-API v2: HELLO itself
/// plus the binary answer encoding).
inline constexpr int kMaxVersion = 2;

enum class Command : uint8_t {
  kHello,
  kLoadProgram,
  kAnalyze,
  kAddFacts,
  kQuery,
  kExplain,
  kStats,
  kMetrics,
  kUnload,
  kPing,
};

const char* CommandName(Command cmd);

/// Response encodings a connection can negotiate via HELLO.
enum class Encoding : uint8_t { kJson, kBinary };

const char* EncodingName(Encoding encoding);
std::optional<Encoding> EncodingFromName(std::string_view name);

/// Per-connection negotiated wire state. Default-constructed = the v1
/// contract every connection starts with.
struct WireState {
  int version = kVersion;
  Encoding encoding = Encoding::kJson;
};

/// A structured protocol error: a stable machine-readable code plus a
/// human-readable message.
///
///   EPROTO    malformed JSON / not an object / bad field type
///   EVERSION  unsupported protocol version
///   ECMD      unknown command
///   EBADREQ   missing or invalid field for the command
///   EPARSE    program / facts / query text failed to parse
///   ENOSESSION  no session with that name
///   EEXISTS   LOAD_PROGRAM onto an existing session without replace
///   EUNSUPPORTED  the program's fragment cannot be served (e.g.
///                 negation outside Datalog)
///   EBUSY     admission control rejected the request; retry later
struct Error {
  std::string code;
  std::string message;
};

struct Request {
  int version = kVersion;
  JsonValue id;  // null when the client sent none; echoed verbatim
  Command cmd = Command::kPing;
  std::string session;

  // HELLO: the client's highest supported version and its encoding
  // preference list (first match wins; unknown names are skipped).
  int64_t max_version = kVersion;
  std::vector<std::string> client_encodings;

  // LOAD_PROGRAM
  std::string program;
  bool replace = false;

  // ADD_FACTS
  std::string facts;

  // QUERY / EXPLAIN: either inline surface-syntax text or an index into
  // the loaded program's parsed queries.
  std::string query_text;
  int64_t query_index = -1;

  // EXPLAIN
  std::vector<std::string> answer;

  // QUERY execution knobs.
  std::string engine = "auto";
  uint64_t max_states = 0;
  uint64_t max_millis = 0;
  uint32_t threads = 0;  // 0 = server default

  // QUERY / EXPLAIN: attach the span breakdown to the response body.
  // Wire field; must be a JSON boolean when present.
  bool trace = false;

  // Not a wire field: the daemon's dispatch path stamps how long this
  // request sat in the worker queue, and the session layer renders it
  // into the trace/slow-log spans. In-process callers leave it 0.
  uint64_t queue_wait_us = 0;
};

/// Parses one request line (strict JSON, known command, per-command
/// required fields). On failure returns nullopt with `error` filled; when
/// the line was at least a JSON object, `*id` receives its "id" member so
/// the error response can still be correlated.
std::optional<Request> ParseRequest(std::string_view line, Error* error,
                                    JsonValue* id);

/// A query's certain-answer rows as the transport-independent model both
/// encodings render: `columns` cells per row, row-major, every cell
/// already rendered to its wire string (the same TermToString text the
/// JSON encoding has always carried).
struct AnswerTable {
  size_t columns = 0;
  /// Stored explicitly, not derived from cells.size()/columns: a boolean
  /// query has zero columns yet one row when certain ("answers":[[]])
  /// and zero rows when not — a distinction a quotient would erase.
  size_t row_count = 0;
  std::vector<std::string> cells;  // row_count * columns, row-major

  size_t rows() const { return row_count; }
  bool operator==(const AnswerTable&) const = default;
};

/// One response in the transport-independent model: the JSON body (never
/// containing the rows) plus the optional answer table. Implicitly
/// constructible from a bare JsonValue so error/status paths stay as
/// terse as they were when responses *were* JsonValues.
struct Response {
  JsonValue body;
  std::optional<AnswerTable> answers;

  Response() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): by design, see above.
  Response(JsonValue b) : body(std::move(b)) {}

  /// The v1 JSON rendering as a value (answers inlined as "answers");
  /// what HandleLine returns and what the tests assert against.
  JsonValue ToJson() const;
};

/// {"ok":false,"id":...,"error":{"code":...,"message":...}}
JsonValue ErrorResponse(const Error& error, const JsonValue& id);

/// {"ok":true,"id":...} — callers Set() additional members.
JsonValue OkResponse(const JsonValue& id);

/// Applies one HELLO to `state` and builds its response. `allowed` is
/// the server's encoding allowlist (ServerConfig.encodings, already
/// validated); negotiation picks the first client preference present in
/// it, falling back to JSON. EVERSION (state untouched) when the client's
/// max_version is below kVersion.
Response NegotiateHello(const Request& request,
                        const std::vector<Encoding>& allowed,
                        WireState* state);

/// Renders one response for the wire under the negotiated encoding:
/// always a single JSON line ending in '\n', followed — only for
/// Encoding::kBinary responses that carry an answer table — by the
/// binary answer frame announced in the line's "answers_frame" member.
std::string EncodeResponse(const Response& response, Encoding encoding);

/// The binary answer frame (v2, little-endian throughout):
///
///   offset 0   "VDF2" magic (4 bytes)
///          4   uint32 rows
///          8   uint32 cols
///         12   cols column blocks, each:
///                uint32 cell_lengths[rows]
///                cell bytes, concatenated in row order
///
/// Columnar by design: a consumer scanning one output column touches one
/// contiguous block, and the per-cell JSON escaping of the v1 encoding
/// disappears entirely. EncodeAnswerFrame returns the payload (what
/// "answers_frame".bytes counts); DecodeAnswerFrame is its exact inverse
/// and fails (false + error) on any malformed frame.
std::string EncodeAnswerFrame(const AnswerTable& table);
bool DecodeAnswerFrame(std::string_view payload, AnswerTable* table,
                       std::string* error);

}  // namespace protocol
}  // namespace vadalog

#endif  // VADALOG_SERVER_PROTOCOL_H_
