#include "server/protocol.h"

namespace vadalog {
namespace protocol {
namespace {

std::optional<Command> CommandFromName(std::string_view name) {
  if (name == "LOAD_PROGRAM") return Command::kLoadProgram;
  if (name == "ADD_FACTS") return Command::kAddFacts;
  if (name == "QUERY") return Command::kQuery;
  if (name == "EXPLAIN") return Command::kExplain;
  if (name == "STATS") return Command::kStats;
  if (name == "UNLOAD") return Command::kUnload;
  if (name == "PING") return Command::kPing;
  return std::nullopt;
}

bool Fail(Error* error, std::string code, std::string message) {
  error->code = std::move(code);
  error->message = std::move(message);
  return false;
}

/// Commands whose requests must name a session.
bool NeedsSession(Command cmd) {
  return cmd != Command::kStats && cmd != Command::kPing;
}

bool ParseFields(const JsonValue& object, Request* request, Error* error) {
  const JsonValue* version = object.Find("v");
  if (version != nullptr) {
    if (!version->is_number() ||
        version->AsNumber() != static_cast<double>(kVersion)) {
      return Fail(error, "EVERSION",
                  "unsupported protocol version (expected " +
                      std::to_string(kVersion) + ")");
    }
  }

  const JsonValue* cmd = object.Find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    return Fail(error, "EPROTO", "missing string field \"cmd\"");
  }
  std::optional<Command> command = CommandFromName(cmd->AsString());
  if (!command.has_value()) {
    return Fail(error, "ECMD", "unknown command \"" + cmd->AsString() + "\"");
  }
  request->cmd = *command;

  request->session = object.GetString("session");
  if (NeedsSession(request->cmd) && request->session.empty()) {
    return Fail(error, "EBADREQ", "missing string field \"session\"");
  }

  switch (request->cmd) {
    case Command::kLoadProgram: {
      const JsonValue* program = object.Find("program");
      if (program == nullptr || !program->is_string()) {
        return Fail(error, "EBADREQ", "missing string field \"program\"");
      }
      request->program = program->AsString();
      request->replace = object.GetBool("replace", false);
      break;
    }
    case Command::kAddFacts: {
      const JsonValue* facts = object.Find("facts");
      if (facts == nullptr || !facts->is_string()) {
        return Fail(error, "EBADREQ", "missing string field \"facts\"");
      }
      request->facts = facts->AsString();
      break;
    }
    case Command::kQuery:
    case Command::kExplain: {
      const JsonValue* query = object.Find("query");
      uint64_t query_index = 0;
      JsonValue::UintField index_field =
          object.TryGetUint("query_index", &query_index);
      if (query != nullptr && query->is_string()) {
        request->query_text = query->AsString();
      } else if (index_field == JsonValue::UintField::kValid) {
        // TryGetUint already rejected negatives, fractions, and doubles
        // past 2^53 — the values whose raw int64_t cast is undefined.
        request->query_index = static_cast<int64_t>(query_index);
      } else {
        return Fail(error, "EBADREQ",
                    "need string \"query\" or a non-negative integer "
                    "\"query_index\"");
      }
      if (request->cmd == Command::kExplain) {
        const JsonValue* answer = object.Find("answer");
        if (answer == nullptr || !answer->is_array()) {
          return Fail(error, "EBADREQ", "missing array field \"answer\"");
        }
        for (const JsonValue& item : answer->Items()) {
          if (!item.is_string()) {
            return Fail(error, "EBADREQ",
                        "\"answer\" items must be constant-name strings");
          }
          request->answer.push_back(item.AsString());
        }
      }
      request->engine = object.GetString("engine", "auto");
      if (request->engine != "auto" && request->engine != "chase" &&
          request->engine != "linear" && request->engine != "alternating") {
        return Fail(error, "EBADREQ",
                    "\"engine\" must be auto|chase|linear|alternating");
      }
      // Budgets and thread counts: a present-but-malformed value (wrong
      // type, negative, fractional, non-finite, or past 2^53) is a
      // request error, not a silent fall-back to "unlimited" — a client
      // that sent {"max_states": -1} almost certainly did not want an
      // unbudgeted search.
      struct UintSpec {
        const char* key;
        uint64_t* dest;
        uint64_t max;
      };
      uint64_t threads_wide = 0;
      const UintSpec specs[] = {
          {"max_states", &request->max_states, UINT64_MAX},
          {"max_millis", &request->max_millis, UINT64_MAX},
          {"threads", &threads_wide, UINT32_MAX},
      };
      for (const UintSpec& spec : specs) {
        uint64_t value = 0;
        switch (object.TryGetUint(spec.key, &value)) {
          case JsonValue::UintField::kAbsent:
            break;
          case JsonValue::UintField::kValid:
            if (value > spec.max) {
              return Fail(error, "EBADREQ",
                          std::string("\"") + spec.key + "\" out of range");
            }
            *spec.dest = value;
            break;
          case JsonValue::UintField::kInvalid:
            return Fail(error, "EBADREQ",
                        std::string("\"") + spec.key +
                            "\" must be a non-negative integer");
        }
      }
      request->threads = static_cast<uint32_t>(threads_wide);
      break;
    }
    case Command::kStats:
    case Command::kUnload:
    case Command::kPing:
      break;
  }
  return true;
}

}  // namespace

const char* CommandName(Command cmd) {
  switch (cmd) {
    case Command::kLoadProgram: return "LOAD_PROGRAM";
    case Command::kAddFacts: return "ADD_FACTS";
    case Command::kQuery: return "QUERY";
    case Command::kExplain: return "EXPLAIN";
    case Command::kStats: return "STATS";
    case Command::kUnload: return "UNLOAD";
    case Command::kPing: return "PING";
  }
  return "?";
}

std::optional<Request> ParseRequest(std::string_view line, Error* error,
                                    JsonValue* id) {
  *id = JsonValue();
  std::string json_error;
  std::optional<JsonValue> parsed = JsonValue::Parse(line, &json_error);
  if (!parsed.has_value()) {
    Fail(error, "EPROTO", "malformed JSON: " + json_error);
    return std::nullopt;
  }
  if (!parsed->is_object()) {
    Fail(error, "EPROTO", "request must be a JSON object");
    return std::nullopt;
  }
  const JsonValue* id_field = parsed->Find("id");
  if (id_field != nullptr) *id = *id_field;

  Request request;
  request.id = *id;
  if (!ParseFields(*parsed, &request, error)) return std::nullopt;
  return request;
}

JsonValue ErrorResponse(const Error& error, const JsonValue& id) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  if (!id.is_null()) response.Set("id", id);
  JsonValue detail = JsonValue::Object();
  detail.Set("code", JsonValue::String(error.code));
  detail.Set("message", JsonValue::String(error.message));
  response.Set("error", std::move(detail));
  return response;
}

JsonValue OkResponse(const JsonValue& id) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  if (!id.is_null()) response.Set("id", id);
  return response;
}

}  // namespace protocol
}  // namespace vadalog
