#include "server/protocol.h"

#include <cstring>

namespace vadalog {
namespace protocol {
namespace {

std::optional<Command> CommandFromName(std::string_view name) {
  if (name == "HELLO") return Command::kHello;
  if (name == "LOAD_PROGRAM") return Command::kLoadProgram;
  if (name == "ANALYZE") return Command::kAnalyze;
  if (name == "ADD_FACTS") return Command::kAddFacts;
  if (name == "QUERY") return Command::kQuery;
  if (name == "EXPLAIN") return Command::kExplain;
  if (name == "STATS") return Command::kStats;
  if (name == "METRICS") return Command::kMetrics;
  if (name == "UNLOAD") return Command::kUnload;
  if (name == "PING") return Command::kPing;
  return std::nullopt;
}

bool Fail(Error* error, std::string code, std::string message) {
  error->code = std::move(code);
  error->message = std::move(message);
  return false;
}

/// Commands whose requests must name a session.
bool NeedsSession(Command cmd) {
  return cmd != Command::kStats && cmd != Command::kMetrics &&
         cmd != Command::kPing && cmd != Command::kHello;
}

void AppendU32(std::string* out, uint32_t value) {
  // Little-endian, byte by byte: independent of host endianness and
  // alignment, and the frame layout stays bit-stable across platforms.
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 24) & 0xff));
}

bool ReadU32(std::string_view payload, size_t* offset, uint32_t* value) {
  if (payload.size() - *offset < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data()) +
                  *offset;
  *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  *offset += 4;
  return true;
}

bool ParseFields(const JsonValue& object, Request* request, Error* error) {
  const JsonValue* version = object.Find("v");
  if (version != nullptr) {
    double v = version->is_number() ? version->AsNumber() : -1.0;
    if (v < static_cast<double>(kVersion) ||
        v > static_cast<double>(kMaxVersion) ||
        v != static_cast<double>(static_cast<int>(v))) {
      return Fail(error, "EVERSION",
                  "unsupported protocol version (supported: " +
                      std::to_string(kVersion) + ".." +
                      std::to_string(kMaxVersion) + ")");
    }
    request->version = static_cast<int>(v);
  }

  const JsonValue* cmd = object.Find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    return Fail(error, "EPROTO", "missing string field \"cmd\"");
  }
  std::optional<Command> command = CommandFromName(cmd->AsString());
  if (!command.has_value()) {
    return Fail(error, "ECMD", "unknown command \"" + cmd->AsString() + "\"");
  }
  request->cmd = *command;

  request->session = object.GetString("session");
  if (NeedsSession(request->cmd) && request->session.empty()) {
    return Fail(error, "EBADREQ", "missing string field \"session\"");
  }

  switch (request->cmd) {
    case Command::kHello: {
      // Absent max_version means "everything you have": HELLO itself is
      // a v2 verb, so a client sending it without the field is not an
      // old client to protect — give it the newest version.
      uint64_t max_version = static_cast<uint64_t>(kMaxVersion);
      switch (object.TryGetUint("max_version", &max_version)) {
        case JsonValue::UintField::kAbsent:
        case JsonValue::UintField::kValid:
          break;
        case JsonValue::UintField::kInvalid:
          return Fail(error, "EBADREQ",
                      "\"max_version\" must be a non-negative integer");
      }
      if (max_version < static_cast<uint64_t>(kVersion)) {
        return Fail(error, "EVERSION",
                    "client max_version " + std::to_string(max_version) +
                        " is below the oldest supported version " +
                        std::to_string(kVersion));
      }
      request->max_version = static_cast<int64_t>(
          max_version > static_cast<uint64_t>(kMaxVersion)
              ? static_cast<uint64_t>(kMaxVersion)
              : max_version);
      const JsonValue* encodings = object.Find("encodings");
      if (encodings != nullptr) {
        if (!encodings->is_array()) {
          return Fail(error, "EBADREQ",
                      "\"encodings\" must be an array of strings");
        }
        for (const JsonValue& item : encodings->Items()) {
          if (!item.is_string()) {
            return Fail(error, "EBADREQ",
                        "\"encodings\" items must be strings");
          }
          request->client_encodings.push_back(item.AsString());
        }
      }
      break;
    }
    case Command::kLoadProgram: {
      const JsonValue* program = object.Find("program");
      if (program == nullptr || !program->is_string()) {
        return Fail(error, "EBADREQ", "missing string field \"program\"");
      }
      request->program = program->AsString();
      request->replace = object.GetBool("replace", false);
      break;
    }
    case Command::kAddFacts: {
      const JsonValue* facts = object.Find("facts");
      if (facts == nullptr || !facts->is_string()) {
        return Fail(error, "EBADREQ", "missing string field \"facts\"");
      }
      request->facts = facts->AsString();
      break;
    }
    case Command::kQuery:
    case Command::kExplain: {
      const JsonValue* query = object.Find("query");
      uint64_t query_index = 0;
      JsonValue::UintField index_field =
          object.TryGetUint("query_index", &query_index);
      if (query != nullptr && query->is_string()) {
        request->query_text = query->AsString();
      } else if (index_field == JsonValue::UintField::kValid) {
        // TryGetUint already rejected negatives, fractions, and doubles
        // past 2^53 — the values whose raw int64_t cast is undefined.
        request->query_index = static_cast<int64_t>(query_index);
      } else {
        return Fail(error, "EBADREQ",
                    "need string \"query\" or a non-negative integer "
                    "\"query_index\"");
      }
      if (request->cmd == Command::kExplain) {
        const JsonValue* answer = object.Find("answer");
        if (answer == nullptr || !answer->is_array()) {
          return Fail(error, "EBADREQ", "missing array field \"answer\"");
        }
        for (const JsonValue& item : answer->Items()) {
          if (!item.is_string()) {
            return Fail(error, "EBADREQ",
                        "\"answer\" items must be constant-name strings");
          }
          request->answer.push_back(item.AsString());
        }
      }
      request->engine = object.GetString("engine", "auto");
      if (request->engine != "auto" && request->engine != "chase" &&
          request->engine != "linear" && request->engine != "alternating") {
        return Fail(error, "EBADREQ",
                    "\"engine\" must be auto|chase|linear|alternating");
      }
      // Budgets and thread counts: a present-but-malformed value (wrong
      // type, negative, fractional, non-finite, or past 2^53) is a
      // request error, not a silent fall-back to "unlimited" — a client
      // that sent {"max_states": -1} almost certainly did not want an
      // unbudgeted search.
      struct UintSpec {
        const char* key;
        uint64_t* dest;
        uint64_t max;
      };
      uint64_t threads_wide = 0;
      const UintSpec specs[] = {
          {"max_states", &request->max_states, UINT64_MAX},
          {"max_millis", &request->max_millis, UINT64_MAX},
          {"threads", &threads_wide, UINT32_MAX},
      };
      for (const UintSpec& spec : specs) {
        uint64_t value = 0;
        switch (object.TryGetUint(spec.key, &value)) {
          case JsonValue::UintField::kAbsent:
            break;
          case JsonValue::UintField::kValid:
            if (value > spec.max) {
              return Fail(error, "EBADREQ",
                          std::string("\"") + spec.key + "\" out of range");
            }
            *spec.dest = value;
            break;
          case JsonValue::UintField::kInvalid:
            return Fail(error, "EBADREQ",
                        std::string("\"") + spec.key +
                            "\" must be a non-negative integer");
        }
      }
      request->threads = static_cast<uint32_t>(threads_wide);
      const JsonValue* trace = object.Find("trace");
      if (trace != nullptr) {
        // Strict boolean, like the budgets: {"trace": "yes"} is a
        // request error, not a silent no-trace.
        if (!trace->is_bool()) {
          return Fail(error, "EBADREQ", "\"trace\" must be a boolean");
        }
        request->trace = trace->AsBool();
      }
      break;
    }
    case Command::kAnalyze:
    case Command::kStats:
    case Command::kMetrics:
    case Command::kUnload:
    case Command::kPing:
      break;
  }
  return true;
}

}  // namespace

const char* CommandName(Command cmd) {
  switch (cmd) {
    case Command::kHello: return "HELLO";
    case Command::kLoadProgram: return "LOAD_PROGRAM";
    case Command::kAnalyze: return "ANALYZE";
    case Command::kAddFacts: return "ADD_FACTS";
    case Command::kQuery: return "QUERY";
    case Command::kExplain: return "EXPLAIN";
    case Command::kStats: return "STATS";
    case Command::kMetrics: return "METRICS";
    case Command::kUnload: return "UNLOAD";
    case Command::kPing: return "PING";
  }
  return "?";
}

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kJson: return "json";
    case Encoding::kBinary: return "binary";
  }
  return "?";
}

std::optional<Encoding> EncodingFromName(std::string_view name) {
  if (name == "json") return Encoding::kJson;
  if (name == "binary") return Encoding::kBinary;
  return std::nullopt;
}

std::optional<Request> ParseRequest(std::string_view line, Error* error,
                                    JsonValue* id) {
  *id = JsonValue();
  std::string json_error;
  std::optional<JsonValue> parsed = JsonValue::Parse(line, &json_error);
  if (!parsed.has_value()) {
    Fail(error, "EPROTO", "malformed JSON: " + json_error);
    return std::nullopt;
  }
  if (!parsed->is_object()) {
    Fail(error, "EPROTO", "request must be a JSON object");
    return std::nullopt;
  }
  const JsonValue* id_field = parsed->Find("id");
  if (id_field != nullptr) *id = *id_field;

  Request request;
  request.id = *id;
  if (!ParseFields(*parsed, &request, error)) return std::nullopt;
  return request;
}

JsonValue Response::ToJson() const {
  if (!answers.has_value()) return body;
  JsonValue with_rows = body;
  JsonValue rows = JsonValue::Array();
  for (size_t r = 0; r < answers->rows(); ++r) {
    JsonValue row = JsonValue::Array();
    for (size_t c = 0; c < answers->columns; ++c) {
      row.Append(
          JsonValue::String(answers->cells[r * answers->columns + c]));
    }
    rows.Append(std::move(row));
  }
  with_rows.Set("answers", std::move(rows));
  return with_rows;
}

JsonValue ErrorResponse(const Error& error, const JsonValue& id) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  if (!id.is_null()) response.Set("id", id);
  JsonValue detail = JsonValue::Object();
  detail.Set("code", JsonValue::String(error.code));
  detail.Set("message", JsonValue::String(error.message));
  response.Set("error", std::move(detail));
  return response;
}

JsonValue OkResponse(const JsonValue& id) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  if (!id.is_null()) response.Set("id", id);
  return response;
}

Response NegotiateHello(const Request& request,
                        const std::vector<Encoding>& allowed,
                        WireState* state) {
  // ParseRequest already rejected max_version < kVersion with EVERSION
  // and clamped the top end, so here negotiation cannot fail.
  state->version = static_cast<int>(request.max_version);
  // First client preference the server both knows and allows wins;
  // unknown names are skipped so future encodings degrade gracefully,
  // and no usable intersection falls back to the JSON default. The
  // binary encoding is a v2 feature: a client that pinned max_version=1
  // negotiated v1 and keeps the v1 contract (JSON only).
  state->encoding = Encoding::kJson;
  if (state->version >= 2) {
    for (const std::string& name : request.client_encodings) {
      std::optional<Encoding> encoding = EncodingFromName(name);
      if (!encoding.has_value()) continue;
      bool allow = false;
      for (Encoding candidate : allowed) {
        if (candidate == *encoding) {
          allow = true;
          break;
        }
      }
      if (allow) {
        state->encoding = *encoding;
        break;
      }
    }
  }
  JsonValue body = OkResponse(request.id);
  body.Set("version", JsonValue::Number(state->version));
  body.Set("max_version", JsonValue::Number(kMaxVersion));
  body.Set("encoding", JsonValue::String(EncodingName(state->encoding)));
  JsonValue offered = JsonValue::Array();
  for (Encoding encoding : allowed) {
    offered.Append(JsonValue::String(EncodingName(encoding)));
  }
  body.Set("encodings", std::move(offered));
  return Response(std::move(body));
}

std::string EncodeAnswerFrame(const AnswerTable& table) {
  std::string payload;
  size_t rows = table.rows();
  size_t data_bytes = 0;
  for (const std::string& cell : table.cells) data_bytes += cell.size();
  payload.reserve(12 + 4 * table.cells.size() + data_bytes);
  payload.append("VDF2", 4);
  AppendU32(&payload, static_cast<uint32_t>(rows));
  AppendU32(&payload, static_cast<uint32_t>(table.columns));
  for (size_t c = 0; c < table.columns; ++c) {
    for (size_t r = 0; r < rows; ++r) {
      AppendU32(&payload, static_cast<uint32_t>(
                              table.cells[r * table.columns + c].size()));
    }
    for (size_t r = 0; r < rows; ++r) {
      payload.append(table.cells[r * table.columns + c]);
    }
  }
  return payload;
}

bool DecodeAnswerFrame(std::string_view payload, AnswerTable* table,
                       std::string* error) {
  auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (payload.size() < 12 || payload.compare(0, 4, "VDF2") != 0) {
    return fail("answer frame: bad magic or truncated header");
  }
  size_t offset = 4;
  uint32_t rows = 0;
  uint32_t cols = 0;
  ReadU32(payload, &offset, &rows);
  ReadU32(payload, &offset, &cols);
  // Every cell costs at least its 4-byte length entry, so a well-formed
  // frame has rows*cols*4 + 12 <= size; rejecting anything bigger bounds
  // the allocation below by the payload size (and kills overflow-crafted
  // headers before they allocate anything).
  if (cols != 0 && rows > (payload.size() / 4) / cols) {
    return fail("answer frame: implausible dimensions");
  }
  table->columns = cols;
  table->row_count = rows;
  table->cells.assign(static_cast<size_t>(rows) * cols, std::string());
  // Sized zero when there are no columns: a 0-column frame carries no
  // length tables, so `rows` alone must not drive an allocation.
  std::vector<uint32_t> lengths(cols == 0 ? 0 : rows);
  for (uint32_t c = 0; c < cols; ++c) {
    for (uint32_t r = 0; r < rows; ++r) {
      if (!ReadU32(payload, &offset, &lengths[r])) {
        return fail("answer frame: truncated length table");
      }
    }
    for (uint32_t r = 0; r < rows; ++r) {
      if (payload.size() - offset < lengths[r]) {
        return fail("answer frame: truncated cell data");
      }
      table->cells[static_cast<size_t>(r) * cols + c].assign(
          payload.data() + offset, lengths[r]);
      offset += lengths[r];
    }
  }
  if (offset != payload.size()) {
    return fail("answer frame: trailing bytes");
  }
  return true;
}

std::string EncodeResponse(const Response& response, Encoding encoding) {
  if (encoding == Encoding::kJson || !response.answers.has_value()) {
    return response.ToJson().Dump() + "\n";
  }
  std::string frame = EncodeAnswerFrame(*response.answers);
  JsonValue head = response.body;
  JsonValue descriptor = JsonValue::Object();
  descriptor.Set("rows", JsonValue::Number(
                             static_cast<uint64_t>(response.answers->rows())));
  descriptor.Set("cols", JsonValue::Number(static_cast<uint64_t>(
                             response.answers->columns)));
  descriptor.Set("bytes",
                 JsonValue::Number(static_cast<uint64_t>(frame.size())));
  head.Set("answers_frame", std::move(descriptor));
  std::string wire = head.Dump();
  wire.push_back('\n');
  wire.append(frame);
  return wire;
}

}  // namespace protocol
}  // namespace vadalog
