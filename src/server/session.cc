#include "server/session.h"

#include <chrono>
#include <utility>

#include "analysis/lint.h"

namespace vadalog {

using protocol::Error;
using protocol::ErrorResponse;
using protocol::OkResponse;
using protocol::Request;

namespace {

EngineChoice EngineFromName(const std::string& name) {
  if (name == "chase") return EngineChoice::kChase;
  if (name == "linear") return EngineChoice::kLinearProof;
  if (name == "alternating") return EngineChoice::kAlternatingProof;
  return EngineChoice::kAuto;
}

protocol::AnswerTable RenderAnswers(
    const Reasoner& reasoner,
    const std::vector<std::vector<Term>>& answers) {
  protocol::AnswerTable table;
  table.row_count = answers.size();
  table.columns = answers.empty() ? 0 : answers.front().size();
  table.cells.reserve(table.row_count * table.columns);
  const SymbolTable& symbols = reasoner.program().symbols();
  for (const std::vector<Term>& tuple : answers) {
    for (Term t : tuple) {
      table.cells.push_back(symbols.TermToString(t));
    }
  }
  return table;
}

}  // namespace

Session::Session(std::string name, std::unique_ptr<Reasoner> reasoner,
                 std::string program_text, const SessionOptions& options)
    : name_(std::move(name)),
      program_text_(std::move(program_text)),
      options_(options),
      reasoner_(std::move(reasoner)) {
  cache_ = std::make_unique<ProofSearchCache>(reasoner_->program(),
                                              reasoner_->database());
  cache_bytes_.store(cache_->ApproximateBytes(), std::memory_order_relaxed);
}

ReasonerOptions Session::BuildOptions(const Request& request) const {
  ReasonerOptions options;
  options.engine = EngineFromName(request.engine);
  options.proof.max_states = request.max_states;
  options.proof.max_millis = request.max_millis;
  options.proof.num_threads =
      request.threads != 0 ? request.threads : options_.search_threads;
  options.proof.pool = options_.pool;
  return options;
}

void Session::FinishCacheUse() {
  size_t bytes;
  {
    std::shared_lock<std::shared_mutex> cache_lock(cache_mutex_);
    bytes = cache_->ApproximateBytes();
  }
  if (bytes > options_.cache_byte_limit) {
    // Generational eviction: drop the whole generation, start warm
    // again from empty (entries cannot be evicted individually).
    // Replacing the cache_ pointer needs the exclusive lock; re-check
    // under it — a concurrent query may have evicted first, and
    // evicting twice would throw away the second fresh generation's
    // warmth for nothing.
    std::unique_lock<std::shared_mutex> cache_lock(cache_mutex_);
    bytes = cache_->ApproximateBytes();
    if (bytes > options_.cache_byte_limit) {
      cache_ = std::make_unique<ProofSearchCache>(reasoner_->program(),
                                                  reasoner_->database());
      cache_evictions_.fetch_add(1, std::memory_order_relaxed);
      bytes = cache_->ApproximateBytes();
    }
  }
  cache_bytes_.store(bytes, std::memory_order_relaxed);
}

bool Session::ResolveQuery(const Request& request, ConjunctiveQuery* query,
                           JsonValue* response) {
  if (!request.query_text.empty()) {
    // Inline query text interns symbols: writer lock, briefly.
    std::unique_lock<std::shared_mutex> lock(data_mutex_);
    std::string error;
    std::optional<ConjunctiveQuery> parsed =
        reasoner_->ParseQuery(request.query_text, &error);
    if (!parsed.has_value()) {
      *response = ErrorResponse(Error{"EPARSE", error}, request.id);
      return false;
    }
    *query = std::move(*parsed);
    return true;
  }
  std::shared_lock<std::shared_mutex> lock(data_mutex_);
  const auto& queries = reasoner_->program().queries();
  if (request.query_index < 0 ||
      static_cast<size_t>(request.query_index) >= queries.size()) {
    *response = ErrorResponse(
        Error{"EBADREQ", "query_index out of range (program has " +
                             std::to_string(queries.size()) + " queries)"},
        request.id);
    return false;
  }
  *query = queries[static_cast<size_t>(request.query_index)];
  return true;
}

protocol::Response Session::Query(const Request& request) {
  ConjunctiveQuery query;
  JsonValue response;
  if (!ResolveQuery(request, &query, &response)) {
    return protocol::Response(std::move(response));
  }
  ReasonerOptions options = BuildOptions(request);

  // Only the explicitly-selected proof-search engines read or write the
  // session cache; chase enumeration (auto/chase) and the stratified
  // Datalog evaluator never touch it, so those queries skip the cache
  // lock entirely and run fully concurrently.
  bool uses_proof_cache =
      request.engine == "linear" || request.engine == "alternating";

  auto start = std::chrono::steady_clock::now();
  CertainAnswerSet set;
  protocol::AnswerTable table;
  bool waited = false;
  {
    std::shared_lock<std::shared_mutex> data(data_mutex_);
    // Proof-search queries share the cache: the session lock is taken
    // SHARED (it only pins the cache_ pointer against a concurrent
    // generational eviction or delta migration), and the cache's own
    // reader-writer lock arbitrates entry access — so same-session
    // queries probe and record concurrently instead of serializing.
    // A failed try_lock means a writer (eviction/ADD_FACTS) is active;
    // count the wait for observability. Lock order data -> cache
    // everywhere, so this cannot deadlock with AddFacts.
    std::shared_lock<std::shared_mutex> cache_lock(cache_mutex_,
                                                   std::defer_lock);
    if (uses_proof_cache) {
      if (!cache_lock.try_lock()) {
        waited = true;
        cache_lock.lock();
      }
      options.proof.cache = cache_.get();
    }
    set = reasoner_->AnswerChecked(query, options);
    if (set.error.empty()) {
      table = RenderAnswers(*reasoner_, set.answers);
    }
    if (cache_lock.owns_lock()) {
      cache_lock.unlock();  // FinishCacheUse re-locks, exclusive if needed
      FinishCacheUse();
    }
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (waited) queries_waited_.fetch_add(1, std::memory_order_relaxed);
  if (!set.error.empty()) {
    return protocol::Response(
        ErrorResponse(Error{"EUNSUPPORTED", set.error}, request.id));
  }
  uint64_t millis = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  response = OkResponse(request.id);
  response.Set("session", JsonValue::String(name_));
  response.Set("complete", JsonValue::Bool(set.complete));
  response.Set("budget_exhausted_candidates",
               JsonValue::Number(set.budget_exhausted_candidates));
  response.Set("engine", JsonValue::String(request.engine));
  response.Set("cache",
               JsonValue::String(!uses_proof_cache ? "unused"
                                 : waited          ? "shared-waited"
                                                   : "shared"));
  response.Set("millis", JsonValue::Number(millis));
  protocol::Response result(std::move(response));
  result.answers = std::move(table);
  return result;
}

JsonValue Session::Explain(const Request& request) {
  if (reasoner_->classification().uses_negation) {
    // The linear proof search behind EXPLAIN ignores negative bodies;
    // refuse rather than produce a proof the evaluator contradicts.
    return ErrorResponse(
        Error{"EUNSUPPORTED",
              "EXPLAIN runs the linear proof search, which does not "
              "support programs with negation"},
        request.id);
  }
  ConjunctiveQuery query;
  JsonValue response;
  if (!ResolveQuery(request, &query, &response)) return response;
  if (request.answer.size() != query.output.size()) {
    return ErrorResponse(
        Error{"EBADREQ",
              "answer arity " + std::to_string(request.answer.size()) +
                  " does not match query output arity " +
                  std::to_string(query.output.size())},
        request.id);
  }
  std::vector<Term> answer;
  {
    std::unique_lock<std::shared_mutex> lock(data_mutex_);  // interning
    SymbolTable::Generation generation = reasoner_->MarkSymbolGeneration();
    answer.reserve(request.answer.size());
    for (const std::string& name : request.answer) {
      answer.push_back(reasoner_->InternConstant(name));
    }
    // An answer naming a constant this session has never seen cannot be
    // certain when the query is safe (every output variable occurs in
    // the body): chase(D, Σ) only contains constants of D and Σ, and
    // homomorphisms are the identity on constants. Short-circuit to
    // "not certain" and release the speculative interning generation —
    // nothing (no cache state, no database row) holds the fresh ids, so
    // probing with arbitrary unknown constants does not grow the table.
    bool interned_fresh =
        reasoner_->MarkSymbolGeneration().constants > generation.constants;
    bool query_is_safe = true;
    for (Term t : query.output) {
      if (!t.is_variable()) continue;
      bool in_body = false;
      for (const Atom& atom : query.atoms) {
        for (Term arg : atom.args) {
          if (arg == t) {
            in_body = true;
            break;
          }
        }
        if (in_body) break;
      }
      if (!in_body) {
        query_is_safe = false;
        break;
      }
    }
    if (interned_fresh && query_is_safe) {
      reasoner_->RollbackSymbolGeneration(generation);
      response = OkResponse(request.id);
      response.Set("session", JsonValue::String(name_));
      response.Set("certain", JsonValue::Bool(false));
      response.Set("proof", JsonValue::String(""));
      return response;
    }
  }
  ReasonerOptions options = BuildOptions(request);
  std::string proof;
  {
    std::shared_lock<std::shared_mutex> data(data_mutex_);
    {
      // Shared, like Query: the proof search records through the
      // cache's internal lock; only the pointer needs pinning here.
      std::shared_lock<std::shared_mutex> cache_lock(cache_mutex_);
      options.proof.cache = cache_.get();
      proof = reasoner_->Explain(query, answer, options);
    }
    FinishCacheUse();
  }
  response = OkResponse(request.id);
  response.Set("session", JsonValue::String(name_));
  response.Set("certain", JsonValue::Bool(!proof.empty()));
  response.Set("proof", JsonValue::String(std::move(proof)));
  return response;
}

JsonValue Session::Analyze(const Request& request) {
  if (program_text_.empty()) {
    return ErrorResponse(
        Error{"EUNSUPPORTED",
              "session was built without program text; nothing to analyze"},
        request.id);
  }
  // program_text_ is immutable after LOAD_PROGRAM and the lint driver
  // re-parses it into a private Program, so no session lock is needed:
  // ANALYZE runs fully concurrently with queries and ADD_FACTS.
  LintResult lint = LintSource(program_text_, name_);
  JsonValue response = OkResponse(request.id);
  response.Set("session", JsonValue::String(name_));
  JsonValue diagnostics = JsonValue::Array();
  for (const Diagnostic& d : lint.file.diagnostics) {
    JsonValue item = JsonValue::Object();
    item.Set("id", JsonValue::String(d.id));
    item.Set("severity",
             JsonValue::String(std::string(SeverityName(d.severity))));
    item.Set("line", JsonValue::Number(static_cast<uint64_t>(d.loc.line)));
    item.Set("column",
             JsonValue::Number(static_cast<uint64_t>(d.loc.column)));
    item.Set("message", JsonValue::String(d.message));
    JsonValue witness = JsonValue::Object();
    for (const auto& [key, value] : d.witness) {
      witness.Set(key, JsonValue::String(value));
    }
    item.Set("witness", std::move(witness));
    diagnostics.Append(std::move(item));
  }
  response.Set("diagnostics", std::move(diagnostics));
  response.Set("errors",
               JsonValue::Number(static_cast<uint64_t>(
                   lint.file.CountSeverity(Severity::kError))));
  response.Set("warnings",
               JsonValue::Number(static_cast<uint64_t>(
                   lint.file.CountSeverity(Severity::kWarning))));
  response.Set("notes",
               JsonValue::Number(static_cast<uint64_t>(
                   lint.file.CountSeverity(Severity::kNote))));
  if (lint.classification.has_value()) {
    const ProgramClassification& c = *lint.classification;
    JsonValue classification = JsonValue::Object();
    classification.Set("warded", JsonValue::Bool(c.warded));
    classification.Set("piecewise_linear",
                       JsonValue::Bool(c.piecewise_linear));
    classification.Set("datalog", JsonValue::Bool(c.datalog));
    classification.Set("uses_negation", JsonValue::Bool(c.uses_negation));
    classification.Set("recursion_bucket",
                       JsonValue::String(c.RecursionBucket()));
    response.Set("classification", std::move(classification));
  }
  return response;
}

JsonValue Session::AddFacts(const Request& request) {
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  size_t before = reasoner_->database().size();
  std::vector<PredicateId> delta;
  std::string error = reasoner_->AddFactsText(request.facts, &delta);
  if (!error.empty()) {
    // All-or-nothing: AddFactsText rolled back the parsed clauses, the
    // database, and the batch's symbol-table generation — the session is
    // bitwise back where it was, warm cache included.
    return ErrorResponse(Error{"EPARSE", error}, request.id);
  }
  size_t added = reasoner_->database().size() - before;
  facts_added_.fetch_add(added, std::memory_order_relaxed);
  ProofSearchCache::DeltaInvalidation invalidation;
  if (!delta.empty()) {
    // No query can hold the cache here (queries hold the data lock
    // shared while they do), but the exclusive cache lock is still the
    // contract for migrating it. Delta maintenance instead of a rebuild:
    // only refuted entries whose supported-predicate cone intersects the
    // inserted predicates are dropped; everything else stays warm. An
    // all-duplicate batch has an empty delta and skips even this.
    std::unique_lock<std::shared_mutex> cache_lock(cache_mutex_);
    invalidation = cache_->InvalidateForDelta(reasoner_->program(),
                                              reasoner_->database(), delta);
    cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
    cache_invalidated_entries_.fetch_add(
        invalidation.exact_dropped + invalidation.subsumers_dropped,
        std::memory_order_relaxed);
    cache_bytes_.store(cache_->ApproximateBytes(), std::memory_order_relaxed);
  }
  JsonValue response = OkResponse(request.id);
  response.Set("session", JsonValue::String(name_));
  response.Set("added", JsonValue::Number(static_cast<uint64_t>(added)));
  response.Set("facts",
               JsonValue::Number(
                   static_cast<uint64_t>(reasoner_->database().size())));
  response.Set("affected_predicates",
               JsonValue::Number(static_cast<uint64_t>(
                   invalidation.affected_predicates)));
  response.Set("cache_entries_invalidated",
               JsonValue::Number(static_cast<uint64_t>(
                   invalidation.exact_dropped +
                   invalidation.subsumers_dropped)));
  return response;
}

JsonValue Session::StatsObject() {
  JsonValue object = JsonValue::Object();
  object.Set("name", JsonValue::String(name_));
  {
    std::shared_lock<std::shared_mutex> lock(data_mutex_);
    object.Set("rules", JsonValue::Number(static_cast<uint64_t>(
                            reasoner_->program().tgds().size())));
    object.Set("facts",
               JsonValue::Number(
                   static_cast<uint64_t>(reasoner_->database().size())));
    object.Set("queries_loaded",
               JsonValue::Number(static_cast<uint64_t>(
                   reasoner_->program().queries().size())));
    // Successful inline query texts intern symbols permanently (rolling
    // them back would dangle ids held by the cache); failed parses,
    // failed ADD_FACTS batches, and unknown EXPLAIN constants release
    // their generation, so only genuinely retained names grow this.
    object.Set("symbols",
               JsonValue::Number(static_cast<uint64_t>(
                   reasoner_->program().symbols().num_constants() +
                   reasoner_->program().symbols().num_predicates())));
    // Refresh the byte figure opportunistically so STATS reflects growth
    // since the last request finished; when a writer (eviction or delta
    // migration) holds the cache, the last stored value (at most one
    // request stale) is reported instead of blocking the stats path.
    std::shared_lock<std::shared_mutex> cache_lock(cache_mutex_,
                                                   std::try_to_lock);
    if (cache_lock.owns_lock()) {
      cache_bytes_.store(cache_->ApproximateBytes(),
                         std::memory_order_relaxed);
    }
  }
  object.Set("queries_served",
             JsonValue::Number(queries_.load(std::memory_order_relaxed)));
  object.Set("queries_waited",
             JsonValue::Number(
                 queries_waited_.load(std::memory_order_relaxed)));
  object.Set("cache_bytes",
             JsonValue::Number(static_cast<uint64_t>(
                 cache_bytes_.load(std::memory_order_relaxed))));
  object.Set("cache_evictions",
             JsonValue::Number(
                 cache_evictions_.load(std::memory_order_relaxed)));
  object.Set("cache_invalidations",
             JsonValue::Number(
                 cache_invalidations_.load(std::memory_order_relaxed)));
  object.Set("cache_invalidated_entries",
             JsonValue::Number(cache_invalidated_entries_.load(
                 std::memory_order_relaxed)));
  object.Set("facts_added",
             JsonValue::Number(facts_added_.load(std::memory_order_relaxed)));
  return object;
}

JsonValue Session::DescribeLoaded(const JsonValue& id) {
  JsonValue response = OkResponse(id);
  std::shared_lock<std::shared_mutex> lock(data_mutex_);
  const ProgramClassification& c = reasoner_->classification();
  response.Set("session", JsonValue::String(name_));
  response.Set("rules", JsonValue::Number(static_cast<uint64_t>(
                            reasoner_->program().tgds().size())));
  response.Set("facts",
               JsonValue::Number(
                   static_cast<uint64_t>(reasoner_->database().size())));
  response.Set("queries", JsonValue::Number(static_cast<uint64_t>(
                              reasoner_->program().queries().size())));
  JsonValue classification = JsonValue::Object();
  classification.Set("warded", JsonValue::Bool(c.warded));
  classification.Set("piecewise_linear", JsonValue::Bool(c.piecewise_linear));
  classification.Set("datalog", JsonValue::Bool(c.datalog));
  classification.Set("uses_negation", JsonValue::Bool(c.uses_negation));
  response.Set("classification", std::move(classification));
  return response;
}

SessionRegistry::SessionRegistry(const SessionOptions& defaults)
    : defaults_(defaults) {}

size_t SessionRegistry::session_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::shared_ptr<Session> SessionRegistry::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

JsonValue SessionRegistry::LoadProgram(const Request& request) {
  std::string error;
  std::unique_ptr<Reasoner> reasoner =
      Reasoner::FromText(request.program, &error);
  if (reasoner == nullptr) {
    return ErrorResponse(Error{"EPARSE", error}, request.id);
  }
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(request.session);
    if (it != sessions_.end() && !request.replace) {
      return ErrorResponse(
          Error{"EEXISTS", "session \"" + request.session +
                               "\" already loaded (set replace:true)"},
          request.id);
    }
    session = std::make_shared<Session>(request.session, std::move(reasoner),
                                        request.program, defaults_);
    sessions_[request.session] = session;
  }
  return session->DescribeLoaded(request.id);
}

JsonValue SessionRegistry::Unload(const Request& request) {
  std::shared_ptr<Session> removed;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(request.session);
    if (it == sessions_.end()) {
      return ErrorResponse(
          Error{"ENOSESSION", "no session \"" + request.session + "\""},
          request.id);
    }
    removed = std::move(it->second);
    sessions_.erase(it);
  }
  JsonValue response = OkResponse(request.id);
  response.Set("session", JsonValue::String(request.session));
  return response;
}

JsonValue SessionRegistry::Stats(const Request& request) {
  if (!request.session.empty()) {
    std::shared_ptr<Session> session = Find(request.session);
    if (session == nullptr) {
      return ErrorResponse(
          Error{"ENOSESSION", "no session \"" + request.session + "\""},
          request.id);
    }
    JsonValue response = OkResponse(request.id);
    response.Set("session", session->StatsObject());
    return response;
  }
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, session] : sessions_) sessions.push_back(session);
  }
  JsonValue response = OkResponse(request.id);
  JsonValue server = JsonValue::Object();
  server.Set("protocol_version", JsonValue::Number(protocol::kVersion));
  server.Set("protocol_max_version", JsonValue::Number(protocol::kMaxVersion));
  server.Set("sessions",
             JsonValue::Number(static_cast<uint64_t>(sessions.size())));
  server.Set("requests",
             JsonValue::Number(requests_.load(std::memory_order_relaxed)));
  server.Set("errors",
             JsonValue::Number(errors_.load(std::memory_order_relaxed)));
  response.Set("server", std::move(server));
  JsonValue list = JsonValue::Array();
  for (const std::shared_ptr<Session>& session : sessions) {
    list.Append(session->StatsObject());
  }
  response.Set("sessions", std::move(list));
  return response;
}

protocol::Response SessionRegistry::Handle(const Request& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  protocol::Response response;
  switch (request.cmd) {
    case protocol::Command::kHello: {
      // In-process callers have no connection, hence no per-connection
      // wire state to mutate — negotiate against a scratch state with
      // the default allowlist so HELLO still answers coherently (the
      // socket server intercepts HELLO before this dispatcher and
      // negotiates the real connection state).
      protocol::WireState scratch;
      response = protocol::NegotiateHello(
          request,
          {protocol::Encoding::kJson, protocol::Encoding::kBinary},
          &scratch);
      break;
    }
    case protocol::Command::kPing: {
      JsonValue pong = OkResponse(request.id);
      pong.Set("pong", JsonValue::Bool(true));
      pong.Set("v", JsonValue::Number(protocol::kVersion));
      response = std::move(pong);
      break;
    }
    case protocol::Command::kLoadProgram:
      response = LoadProgram(request);
      break;
    case protocol::Command::kUnload:
      response = Unload(request);
      break;
    case protocol::Command::kStats:
      response = Stats(request);
      break;
    case protocol::Command::kAnalyze:
    case protocol::Command::kAddFacts:
    case protocol::Command::kQuery:
    case protocol::Command::kExplain: {
      std::shared_ptr<Session> session = Find(request.session);
      if (session == nullptr) {
        response = ErrorResponse(
            Error{"ENOSESSION", "no session \"" + request.session + "\""},
            request.id);
        break;
      }
      if (request.cmd == protocol::Command::kAnalyze) {
        response = session->Analyze(request);
      } else if (request.cmd == protocol::Command::kAddFacts) {
        response = session->AddFacts(request);
      } else if (request.cmd == protocol::Command::kQuery) {
        response = session->Query(request);
      } else {
        response = session->Explain(request);
      }
      break;
    }
  }
  const JsonValue* ok = response.body.Find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->AsBool()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

JsonValue SessionRegistry::HandleLine(std::string_view line) {
  protocol::Error error;
  JsonValue id;
  std::optional<Request> request = protocol::ParseRequest(line, &error, &id);
  if (!request.has_value()) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(error, id);
  }
  return Handle(*request).ToJson();
}

}  // namespace vadalog
