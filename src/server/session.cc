#include "server/session.h"

#include <chrono>
#include <utility>

#include "analysis/lint.h"

namespace vadalog {

using protocol::Error;
using protocol::ErrorResponse;
using protocol::OkResponse;
using protocol::Request;

namespace {

EngineChoice EngineFromName(const std::string& name) {
  if (name == "chase") return EngineChoice::kChase;
  if (name == "linear") return EngineChoice::kLinearProof;
  if (name == "alternating") return EngineChoice::kAlternatingProof;
  return EngineChoice::kAuto;
}

protocol::AnswerTable RenderAnswers(
    const Reasoner& reasoner,
    const std::vector<std::vector<Term>>& answers) {
  protocol::AnswerTable table;
  table.row_count = answers.size();
  table.columns = answers.empty() ? 0 : answers.front().size();
  table.cells.reserve(table.row_count * table.columns);
  const SymbolTable& symbols = reasoner.program().symbols();
  for (const std::vector<Term>& tuple : answers) {
    for (Term t : tuple) {
      table.cells.push_back(symbols.TermToString(t));
    }
  }
  return table;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

Session::Session(std::string name, std::unique_ptr<Reasoner> reasoner,
                 std::string program_text, const SessionOptions& options)
    : name_(std::move(name)),
      program_text_(std::move(program_text)),
      options_(options),
      reasoner_(std::move(reasoner)) {
  cache_ = std::make_unique<ProofSearchCache>(reasoner_->program(),
                                              reasoner_->database());
  // Register the session's instrument handles once; every serving path
  // after this is lock-free Adds on them. The SessionRegistry guarantees
  // a non-null registry (it owns a fallback when the caller passed none).
  obs::MetricsRegistry* registry = options_.metrics;
  const obs::LabelSet labels = {{"session", name_}};
  metrics_.queries = registry->GetCounter(
      "vadalog_session_queries_total", labels, "QUERY requests served");
  metrics_.queries_waited = registry->GetCounter(
      "vadalog_session_queries_waited_total", labels,
      "queries that blocked behind a cache writer before starting");
  metrics_.cache_evictions = registry->GetCounter(
      "vadalog_session_cache_evictions_total", labels,
      "byte-cap generational evictions (whole cache dropped)");
  metrics_.cache_invalidations = registry->GetCounter(
      "vadalog_session_cache_invalidations_total", labels,
      "ADD_FACTS delta invalidation passes");
  metrics_.cache_invalidated_entries = registry->GetCounter(
      "vadalog_session_cache_invalidated_entries_total", labels,
      "cache entries dropped by delta invalidation");
  metrics_.facts_added = registry->GetCounter(
      "vadalog_session_facts_added_total", labels,
      "facts inserted by successful ADD_FACTS batches");
  metrics_.slow_queries = registry->GetCounter(
      "vadalog_session_slow_queries_total", labels,
      "requests recorded in the slow-query log");
  metrics_.cache_bytes = registry->GetGauge(
      "vadalog_session_cache_bytes", labels,
      "approximate bytes held by the session's proof cache");
  metrics_.cache_lookups = registry->GetGauge(
      "vadalog_session_cache_lookups", labels,
      "proof-cache probes in the current cache generation");
  metrics_.cache_probe_hits = registry->GetGauge(
      "vadalog_session_cache_probe_hits", labels,
      "proof-cache probe hits in the current cache generation");
  metrics_.query_us = registry->GetHistogram(
      "vadalog_query_us", labels,
      "end-to-end QUERY serving time in microseconds");
  metrics_.linear = obs::MakeEngineCounters(
      registry, {{"session", name_}, {"engine", "linear"}});
  metrics_.alternating = obs::MakeEngineCounters(
      registry, {{"session", name_}, {"engine", "alternating"}});
  metrics_.cache_bytes->Set(
      static_cast<int64_t>(cache_->ApproximateBytes()));
}

ReasonerOptions Session::BuildOptions(const Request& request) const {
  ReasonerOptions options;
  options.engine = EngineFromName(request.engine);
  options.proof.max_states = request.max_states;
  options.proof.max_millis = request.max_millis;
  options.proof.num_threads =
      request.threads != 0 ? request.threads : options_.search_threads;
  options.proof.pool = options_.pool;
  // Wire the matching per-(session, engine) counter family; the search
  // flushes its result totals there once at completion. EXPLAIN always
  // runs the linear search regardless of request.engine.
  if (request.cmd == protocol::Command::kExplain ||
      request.engine == "linear") {
    options.proof.metrics = &metrics_.linear;
  } else if (request.engine == "alternating") {
    options.proof.metrics = &metrics_.alternating;
  }
  return options;
}

void Session::FinishCacheUse() {
  size_t bytes;
  {
    base::ReaderLock cache_lock(&cache_mutex_);
    bytes = cache_->ApproximateBytes();
    // Generation-scoped probe figures (reset when the cache is evicted
    // or migrated, hence gauges): refreshed whenever a request finishes
    // with the cache, so METRICS tracks hit rates as they develop.
    const ProofSearchCache::Stats& stats = cache_->stats();
    metrics_.cache_lookups->Set(static_cast<int64_t>(
        stats.lookups.load(std::memory_order_relaxed)));
    metrics_.cache_probe_hits->Set(static_cast<int64_t>(
        stats.hits.load(std::memory_order_relaxed)));
  }
  if (bytes > options_.cache_byte_limit) {
    // Generational eviction: drop the whole generation, start warm
    // again from empty (entries cannot be evicted individually).
    // Replacing the cache_ pointer needs the exclusive lock; re-check
    // under it — a concurrent query may have evicted first, and
    // evicting twice would throw away the second fresh generation's
    // warmth for nothing.
    base::WriterLock cache_lock(&cache_mutex_);
    bytes = cache_->ApproximateBytes();
    if (bytes > options_.cache_byte_limit) {
      cache_ = std::make_unique<ProofSearchCache>(reasoner_->program(),
                                                  reasoner_->database());
      metrics_.cache_evictions->Add(1);
      bytes = cache_->ApproximateBytes();
    }
  }
  metrics_.cache_bytes->Set(static_cast<int64_t>(bytes));
}

void Session::RunSearch(const ConjunctiveQuery& query,
                        const ReasonerOptions& options, CertainAnswerSet* set,
                        protocol::AnswerTable* table, obs::TraceSpans* spans) {
  auto search_start = std::chrono::steady_clock::now();
  *set = reasoner_->AnswerChecked(query, options);
  spans->search_us = ElapsedUs(search_start);
  if (set->error.empty()) {
    auto encode_start = std::chrono::steady_clock::now();
    *table = RenderAnswers(*reasoner_, set->answers);
    spans->encode_us = ElapsedUs(encode_start);
  }
}

bool Session::ResolveQuery(const Request& request, ConjunctiveQuery* query,
                           JsonValue* response) {
  if (!request.query_text.empty()) {
    // Inline query text interns symbols: writer lock, briefly.
    base::WriterLock lock(&data_mutex_);
    std::string error;
    std::optional<ConjunctiveQuery> parsed =
        reasoner_->ParseQuery(request.query_text, &error);
    if (!parsed.has_value()) {
      *response = ErrorResponse(Error{"EPARSE", error}, request.id);
      return false;
    }
    *query = std::move(*parsed);
    return true;
  }
  base::ReaderLock lock(&data_mutex_);
  const auto& queries = reasoner_->program().queries();
  if (request.query_index < 0 ||
      static_cast<size_t>(request.query_index) >= queries.size()) {
    *response = ErrorResponse(
        Error{"EBADREQ", "query_index out of range (program has " +
                             std::to_string(queries.size()) + " queries)"},
        request.id);
    return false;
  }
  *query = queries[static_cast<size_t>(request.query_index)];
  return true;
}

protocol::Response Session::Query(const Request& request) {
  // Span collection is unconditional — a handful of steady_clock reads
  // per request — so the slow-query log always has the breakdown even
  // for clients that never asked for a trace.
  auto start = std::chrono::steady_clock::now();
  obs::TraceSpans spans;
  spans.queue_wait_us = request.queue_wait_us;

  ConjunctiveQuery query;
  JsonValue response;
  if (!ResolveQuery(request, &query, &response)) {
    return protocol::Response(std::move(response));
  }
  spans.parse_us = ElapsedUs(start);
  ReasonerOptions options = BuildOptions(request);

  // Only the explicitly-selected proof-search engines read or write the
  // session cache; chase enumeration (auto/chase) and the stratified
  // Datalog evaluator never touch it, so those queries skip the cache
  // lock entirely and run fully concurrently.
  bool uses_proof_cache =
      request.engine == "linear" || request.engine == "alternating";

  CertainAnswerSet set;
  protocol::AnswerTable table;
  bool waited = false;
  {
    base::ReaderLock data(&data_mutex_);
    if (uses_proof_cache) {
      // Proof-search queries share the cache: the session lock is taken
      // SHARED (it only pins the cache_ pointer against a concurrent
      // generational eviction or delta migration), and the cache's own
      // reader-writer lock arbitrates entry access — so same-session
      // queries probe and record concurrently instead of serializing.
      // A failed try means a writer (eviction/ADD_FACTS) is active;
      // count (and time) the wait for observability. The acquisition
      // order (data before cache, so this cannot deadlock with
      // AddFacts) is compiler-checked: see ACQUIRED_BEFORE in session.h.
      if (!cache_mutex_.TryLockShared()) {
        waited = true;
        auto lock_start = std::chrono::steady_clock::now();
        cache_mutex_.LockShared();
        spans.lock_wait_us = ElapsedUs(lock_start);
      }
      options.proof.cache = cache_.get();
      RunSearch(query, options, &set, &table, &spans);
      cache_mutex_.UnlockShared();  // FinishCacheUse re-locks as needed
      FinishCacheUse();
    } else {
      RunSearch(query, options, &set, &table, &spans);
    }
  }
  metrics_.queries->Add(1);
  if (waited) metrics_.queries_waited->Add(1);
  if (!set.error.empty()) {
    return protocol::Response(
        ErrorResponse(Error{"EUNSUPPORTED", set.error}, request.id));
  }
  spans.total_us = ElapsedUs(start);
  metrics_.query_us->Observe(spans.total_us);

  response = OkResponse(request.id);
  response.Set("session", JsonValue::String(name_));
  response.Set("complete", JsonValue::Bool(set.complete));
  response.Set("budget_exhausted_candidates",
               JsonValue::Number(set.budget_exhausted_candidates));
  response.Set("engine", JsonValue::String(request.engine));
  response.Set("cache",
               JsonValue::String(!uses_proof_cache ? "unused"
                                 : waited          ? "shared-waited"
                                                   : "shared"));
  response.Set("millis", JsonValue::Number(spans.total_us / 1000));
  if (request.trace) {
    // The trace rides in the response BODY, which is the head line under
    // every encoding — so v1 JSON and v2 binary carry identical spans.
    response.Set("trace", RenderTraceSpans(spans));
  }
  MaybeLogSlowQuery(request, spans);
  protocol::Response result(std::move(response));
  result.answers = std::move(table);
  return result;
}

void Session::MaybeLogSlowQuery(const Request& request,
                                const obs::TraceSpans& spans) {
  if (options_.slow_log == nullptr || options_.slow_query_micros == 0 ||
      spans.total_us < options_.slow_query_micros) {
    return;
  }
  metrics_.slow_queries->Add(1);
  JsonValue record = JsonValue::Object();
  record.Set("ts", JsonValue::String(obs::FormatTimestampUtc()));
  record.Set("session", JsonValue::String(name_));
  record.Set("cmd",
             JsonValue::String(protocol::CommandName(request.cmd)));
  record.Set("engine", JsonValue::String(request.engine));
  record.Set("spans", RenderTraceSpans(spans));
  options_.slow_log->Write(record.Dump());
}

JsonValue Session::Explain(const Request& request) {
  auto start = std::chrono::steady_clock::now();
  obs::TraceSpans spans;
  spans.queue_wait_us = request.queue_wait_us;
  {
    // Under the shared data lock like every reasoner_ read — this
    // pre-check used to run unlocked, which the thread-safety
    // annotations flagged (benign only because the classification is
    // immutable after construction, a guarantee nothing enforced).
    base::ReaderLock data(&data_mutex_);
    if (reasoner_->classification().uses_negation) {
      // The linear proof search behind EXPLAIN ignores negative bodies;
      // refuse rather than produce a proof the evaluator contradicts.
      return ErrorResponse(
          Error{"EUNSUPPORTED",
                "EXPLAIN runs the linear proof search, which does not "
                "support programs with negation"},
          request.id);
    }
  }
  ConjunctiveQuery query;
  JsonValue response;
  if (!ResolveQuery(request, &query, &response)) return response;
  spans.parse_us = ElapsedUs(start);
  if (request.answer.size() != query.output.size()) {
    return ErrorResponse(
        Error{"EBADREQ",
              "answer arity " + std::to_string(request.answer.size()) +
                  " does not match query output arity " +
                  std::to_string(query.output.size())},
        request.id);
  }
  std::vector<Term> answer;
  {
    base::WriterLock lock(&data_mutex_);  // interning
    SymbolTable::Generation generation = reasoner_->MarkSymbolGeneration();
    answer.reserve(request.answer.size());
    for (const std::string& name : request.answer) {
      answer.push_back(reasoner_->InternConstant(name));
    }
    // An answer naming a constant this session has never seen cannot be
    // certain when the query is safe (every output variable occurs in
    // the body): chase(D, Σ) only contains constants of D and Σ, and
    // homomorphisms are the identity on constants. Short-circuit to
    // "not certain" and release the speculative interning generation —
    // nothing (no cache state, no database row) holds the fresh ids, so
    // probing with arbitrary unknown constants does not grow the table.
    bool interned_fresh =
        reasoner_->MarkSymbolGeneration().constants > generation.constants;
    bool query_is_safe = true;
    for (Term t : query.output) {
      if (!t.is_variable()) continue;
      bool in_body = false;
      for (const Atom& atom : query.atoms) {
        for (Term arg : atom.args) {
          if (arg == t) {
            in_body = true;
            break;
          }
        }
        if (in_body) break;
      }
      if (!in_body) {
        query_is_safe = false;
        break;
      }
    }
    if (interned_fresh && query_is_safe) {
      reasoner_->RollbackSymbolGeneration(generation);
      response = OkResponse(request.id);
      response.Set("session", JsonValue::String(name_));
      response.Set("certain", JsonValue::Bool(false));
      response.Set("proof", JsonValue::String(""));
      return response;
    }
  }
  ReasonerOptions options = BuildOptions(request);
  std::string proof;
  {
    base::ReaderLock data(&data_mutex_);
    {
      // Shared, like Query: the proof search records through the
      // cache's internal lock; only the pointer needs pinning here.
      base::ReaderLock cache_lock(&cache_mutex_);
      options.proof.cache = cache_.get();
      auto search_start = std::chrono::steady_clock::now();
      proof = reasoner_->Explain(query, answer, options);
      spans.search_us = ElapsedUs(search_start);
    }
    FinishCacheUse();
  }
  response = OkResponse(request.id);
  response.Set("session", JsonValue::String(name_));
  response.Set("certain", JsonValue::Bool(!proof.empty()));
  response.Set("proof", JsonValue::String(std::move(proof)));
  spans.total_us = ElapsedUs(start);
  if (request.trace) response.Set("trace", RenderTraceSpans(spans));
  MaybeLogSlowQuery(request, spans);
  return response;
}

JsonValue Session::Analyze(const Request& request) {
  if (program_text_.empty()) {
    return ErrorResponse(
        Error{"EUNSUPPORTED",
              "session was built without program text; nothing to analyze"},
        request.id);
  }
  // program_text_ is immutable after LOAD_PROGRAM and the lint driver
  // re-parses it into a private Program, so no session lock is needed:
  // ANALYZE runs fully concurrently with queries and ADD_FACTS.
  LintResult lint = LintSource(program_text_, name_);
  JsonValue response = OkResponse(request.id);
  response.Set("session", JsonValue::String(name_));
  JsonValue diagnostics = JsonValue::Array();
  for (const Diagnostic& d : lint.file.diagnostics) {
    JsonValue item = JsonValue::Object();
    item.Set("id", JsonValue::String(d.id));
    item.Set("severity",
             JsonValue::String(std::string(SeverityName(d.severity))));
    item.Set("line", JsonValue::Number(static_cast<uint64_t>(d.loc.line)));
    item.Set("column",
             JsonValue::Number(static_cast<uint64_t>(d.loc.column)));
    item.Set("message", JsonValue::String(d.message));
    JsonValue witness = JsonValue::Object();
    for (const auto& [key, value] : d.witness) {
      witness.Set(key, JsonValue::String(value));
    }
    item.Set("witness", std::move(witness));
    diagnostics.Append(std::move(item));
  }
  response.Set("diagnostics", std::move(diagnostics));
  response.Set("errors",
               JsonValue::Number(static_cast<uint64_t>(
                   lint.file.CountSeverity(Severity::kError))));
  response.Set("warnings",
               JsonValue::Number(static_cast<uint64_t>(
                   lint.file.CountSeverity(Severity::kWarning))));
  response.Set("notes",
               JsonValue::Number(static_cast<uint64_t>(
                   lint.file.CountSeverity(Severity::kNote))));
  if (lint.classification.has_value()) {
    const ProgramClassification& c = *lint.classification;
    JsonValue classification = JsonValue::Object();
    classification.Set("warded", JsonValue::Bool(c.warded));
    classification.Set("piecewise_linear",
                       JsonValue::Bool(c.piecewise_linear));
    classification.Set("datalog", JsonValue::Bool(c.datalog));
    classification.Set("uses_negation", JsonValue::Bool(c.uses_negation));
    classification.Set("recursion_bucket",
                       JsonValue::String(c.RecursionBucket()));
    response.Set("classification", std::move(classification));
  }
  return response;
}

JsonValue Session::AddFacts(const Request& request) {
  base::WriterLock lock(&data_mutex_);
  size_t before = reasoner_->database().size();
  std::vector<PredicateId> delta;
  std::string error = reasoner_->AddFactsText(request.facts, &delta);
  if (!error.empty()) {
    // All-or-nothing: AddFactsText rolled back the parsed clauses, the
    // database, and the batch's symbol-table generation — the session is
    // bitwise back where it was, warm cache included.
    return ErrorResponse(Error{"EPARSE", error}, request.id);
  }
  size_t added = reasoner_->database().size() - before;
  metrics_.facts_added->Add(added);
  ProofSearchCache::DeltaInvalidation invalidation;
  if (!delta.empty()) {
    // No query can hold the cache here (queries hold the data lock
    // shared while they do), but the exclusive cache lock is still the
    // contract for migrating it. Delta maintenance instead of a rebuild:
    // only refuted entries whose supported-predicate cone intersects the
    // inserted predicates are dropped; everything else stays warm. An
    // all-duplicate batch has an empty delta and skips even this.
    base::WriterLock cache_lock(&cache_mutex_);
    invalidation = cache_->InvalidateForDelta(reasoner_->program(),
                                              reasoner_->database(), delta);
    metrics_.cache_invalidations->Add(1);
    metrics_.cache_invalidated_entries->Add(invalidation.exact_dropped +
                                            invalidation.subsumers_dropped);
    metrics_.cache_bytes->Set(
        static_cast<int64_t>(cache_->ApproximateBytes()));
  }
  JsonValue response = OkResponse(request.id);
  response.Set("session", JsonValue::String(name_));
  response.Set("added", JsonValue::Number(static_cast<uint64_t>(added)));
  response.Set("facts",
               JsonValue::Number(
                   static_cast<uint64_t>(reasoner_->database().size())));
  response.Set("affected_predicates",
               JsonValue::Number(static_cast<uint64_t>(
                   invalidation.affected_predicates)));
  response.Set("cache_entries_invalidated",
               JsonValue::Number(static_cast<uint64_t>(
                   invalidation.exact_dropped +
                   invalidation.subsumers_dropped)));
  return response;
}

JsonValue Session::StatsObject() {
  JsonValue object = JsonValue::Object();
  object.Set("name", JsonValue::String(name_));
  {
    base::ReaderLock lock(&data_mutex_);
    object.Set("rules", JsonValue::Number(static_cast<uint64_t>(
                            reasoner_->program().tgds().size())));
    object.Set("facts",
               JsonValue::Number(
                   static_cast<uint64_t>(reasoner_->database().size())));
    object.Set("queries_loaded",
               JsonValue::Number(static_cast<uint64_t>(
                   reasoner_->program().queries().size())));
    // Successful inline query texts intern symbols permanently (rolling
    // them back would dangle ids held by the cache); failed parses,
    // failed ADD_FACTS batches, and unknown EXPLAIN constants release
    // their generation, so only genuinely retained names grow this.
    object.Set("symbols",
               JsonValue::Number(static_cast<uint64_t>(
                   reasoner_->program().symbols().num_constants() +
                   reasoner_->program().symbols().num_predicates())));
    // Refresh the byte figure opportunistically so STATS reflects growth
    // since the last request finished; when a writer (eviction or delta
    // migration) holds the cache, the last stored value (at most one
    // request stale) is reported instead of blocking the stats path.
    if (cache_mutex_.TryLockShared()) {
      metrics_.cache_bytes->Set(
          static_cast<int64_t>(cache_->ApproximateBytes()));
      cache_mutex_.UnlockShared();
    }
  }
  // STATS reads the same registry handles METRICS snapshots — one source
  // of truth, no parallel atomics to drift.
  object.Set("queries_served", JsonValue::Number(metrics_.queries->Value()));
  object.Set("queries_waited",
             JsonValue::Number(metrics_.queries_waited->Value()));
  object.Set("cache_bytes",
             JsonValue::Number(
                 static_cast<uint64_t>(metrics_.cache_bytes->Value())));
  object.Set("cache_evictions",
             JsonValue::Number(metrics_.cache_evictions->Value()));
  object.Set("cache_invalidations",
             JsonValue::Number(metrics_.cache_invalidations->Value()));
  object.Set("cache_invalidated_entries",
             JsonValue::Number(metrics_.cache_invalidated_entries->Value()));
  object.Set("facts_added",
             JsonValue::Number(metrics_.facts_added->Value()));
  return object;
}

JsonValue Session::DescribeLoaded(const JsonValue& id) {
  JsonValue response = OkResponse(id);
  base::ReaderLock lock(&data_mutex_);
  const ProgramClassification& c = reasoner_->classification();
  response.Set("session", JsonValue::String(name_));
  response.Set("rules", JsonValue::Number(static_cast<uint64_t>(
                            reasoner_->program().tgds().size())));
  response.Set("facts",
               JsonValue::Number(
                   static_cast<uint64_t>(reasoner_->database().size())));
  response.Set("queries", JsonValue::Number(static_cast<uint64_t>(
                              reasoner_->program().queries().size())));
  JsonValue classification = JsonValue::Object();
  classification.Set("warded", JsonValue::Bool(c.warded));
  classification.Set("piecewise_linear", JsonValue::Bool(c.piecewise_linear));
  classification.Set("datalog", JsonValue::Bool(c.datalog));
  classification.Set("uses_negation", JsonValue::Bool(c.uses_negation));
  response.Set("classification", std::move(classification));
  return response;
}

SessionRegistry::SessionRegistry(const SessionOptions& defaults)
    : defaults_(defaults) {
  if (defaults_.metrics == nullptr) {
    // No registry supplied (in-process tests, bare registries): own one
    // so sessions and the dispatcher can count unconditionally.
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    defaults_.metrics = owned_registry_.get();
  }
  metrics_ = defaults_.metrics;
  requests_ = metrics_->GetCounter("vadalog_requests_total", {},
                                   "requests dispatched (all commands)");
  errors_ = metrics_->GetCounter("vadalog_request_errors_total", {},
                                 "requests answered with ok:false");
  negotiated_json_ = metrics_->GetCounter(
      "vadalogd_encoding_negotiated_total", {{"encoding", "json"}},
      "HELLO negotiations that settled on this response encoding");
  negotiated_binary_ = metrics_->GetCounter(
      "vadalogd_encoding_negotiated_total", {{"encoding", "binary"}},
      "HELLO negotiations that settled on this response encoding");
}

void SessionRegistry::CountNegotiatedEncoding(protocol::Encoding encoding) {
  (encoding == protocol::Encoding::kBinary ? negotiated_binary_
                                           : negotiated_json_)
      ->Add(1);
}

size_t SessionRegistry::session_count() {
  base::MutexLock lock(&mutex_);
  return sessions_.size();
}

std::shared_ptr<Session> SessionRegistry::Find(const std::string& name) {
  base::MutexLock lock(&mutex_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

JsonValue SessionRegistry::LoadProgram(const Request& request) {
  std::string error;
  std::unique_ptr<Reasoner> reasoner =
      Reasoner::FromText(request.program, &error);
  if (reasoner == nullptr) {
    return ErrorResponse(Error{"EPARSE", error}, request.id);
  }
  std::shared_ptr<Session> session;
  {
    base::MutexLock lock(&mutex_);
    auto it = sessions_.find(request.session);
    if (it != sessions_.end() && !request.replace) {
      return ErrorResponse(
          Error{"EEXISTS", "session \"" + request.session +
                               "\" already loaded (set replace:true)"},
          request.id);
    }
    session = std::make_shared<Session>(request.session, std::move(reasoner),
                                        request.program, defaults_);
    sessions_[request.session] = session;
  }
  return session->DescribeLoaded(request.id);
}

JsonValue SessionRegistry::Unload(const Request& request) {
  std::shared_ptr<Session> removed;  // destroyed outside the lock
  {
    base::MutexLock lock(&mutex_);
    auto it = sessions_.find(request.session);
    if (it == sessions_.end()) {
      return ErrorResponse(
          Error{"ENOSESSION", "no session \"" + request.session + "\""},
          request.id);
    }
    removed = std::move(it->second);
    sessions_.erase(it);
  }
  JsonValue response = OkResponse(request.id);
  response.Set("session", JsonValue::String(request.session));
  return response;
}

JsonValue SessionRegistry::Stats(const Request& request) {
  if (!request.session.empty()) {
    std::shared_ptr<Session> session = Find(request.session);
    if (session == nullptr) {
      return ErrorResponse(
          Error{"ENOSESSION", "no session \"" + request.session + "\""},
          request.id);
    }
    JsonValue response = OkResponse(request.id);
    response.Set("session", session->StatsObject());
    return response;
  }
  std::vector<std::shared_ptr<Session>> sessions;
  {
    base::MutexLock lock(&mutex_);
    for (const auto& [name, session] : sessions_) sessions.push_back(session);
  }
  JsonValue response = OkResponse(request.id);
  JsonValue server = JsonValue::Object();
  server.Set("protocol_version", JsonValue::Number(protocol::kVersion));
  server.Set("protocol_max_version", JsonValue::Number(protocol::kMaxVersion));
  server.Set("sessions",
             JsonValue::Number(static_cast<uint64_t>(sessions.size())));
  server.Set("requests", JsonValue::Number(requests_->Value()));
  server.Set("errors", JsonValue::Number(errors_->Value()));
  server.Set("uptime_ms",
             JsonValue::Number(static_cast<uint64_t>(
                 std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count())));
  JsonValue negotiated = JsonValue::Object();
  negotiated.Set("json", JsonValue::Number(negotiated_json_->Value()));
  negotiated.Set("binary", JsonValue::Number(negotiated_binary_->Value()));
  server.Set("encoding_negotiated", std::move(negotiated));
  response.Set("server", std::move(server));
  JsonValue list = JsonValue::Array();
  for (const std::shared_ptr<Session>& session : sessions) {
    list.Append(session->StatsObject());
  }
  response.Set("sessions", std::move(list));
  return response;
}

protocol::Response SessionRegistry::Handle(const Request& request) {
  requests_->Add(1);
  protocol::Response response;
  switch (request.cmd) {
    case protocol::Command::kHello: {
      // In-process callers have no connection, hence no per-connection
      // wire state to mutate — negotiate against a scratch state with
      // the default allowlist so HELLO still answers coherently (the
      // socket server intercepts HELLO before this dispatcher and
      // negotiates the real connection state, counting the outcome
      // itself via CountNegotiatedEncoding).
      protocol::WireState scratch;
      response = protocol::NegotiateHello(
          request,
          {protocol::Encoding::kJson, protocol::Encoding::kBinary},
          &scratch);
      if (response.body.GetBool("ok")) {
        CountNegotiatedEncoding(scratch.encoding);
      }
      break;
    }
    case protocol::Command::kMetrics: {
      JsonValue body = OkResponse(request.id);
      body.Set("metrics", RenderMetricsSnapshot(*metrics_));
      response = std::move(body);
      break;
    }
    case protocol::Command::kPing: {
      JsonValue pong = OkResponse(request.id);
      pong.Set("pong", JsonValue::Bool(true));
      pong.Set("v", JsonValue::Number(protocol::kVersion));
      response = std::move(pong);
      break;
    }
    case protocol::Command::kLoadProgram:
      response = LoadProgram(request);
      break;
    case protocol::Command::kUnload:
      response = Unload(request);
      break;
    case protocol::Command::kStats:
      response = Stats(request);
      break;
    case protocol::Command::kAnalyze:
    case protocol::Command::kAddFacts:
    case protocol::Command::kQuery:
    case protocol::Command::kExplain: {
      std::shared_ptr<Session> session = Find(request.session);
      if (session == nullptr) {
        response = ErrorResponse(
            Error{"ENOSESSION", "no session \"" + request.session + "\""},
            request.id);
        break;
      }
      if (request.cmd == protocol::Command::kAnalyze) {
        response = session->Analyze(request);
      } else if (request.cmd == protocol::Command::kAddFacts) {
        response = session->AddFacts(request);
      } else if (request.cmd == protocol::Command::kQuery) {
        response = session->Query(request);
      } else {
        response = session->Explain(request);
      }
      break;
    }
  }
  const JsonValue* ok = response.body.Find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->AsBool()) {
    errors_->Add(1);
  }
  return response;
}

JsonValue SessionRegistry::HandleLine(std::string_view line) {
  protocol::Error error;
  JsonValue id;
  std::optional<Request> request = protocol::ParseRequest(line, &error, &id);
  if (!request.has_value()) {
    requests_->Add(1);
    errors_->Add(1);
    return ErrorResponse(error, id);
  }
  return Handle(*request).ToJson();
}

JsonValue RenderTraceSpans(const obs::TraceSpans& spans) {
  JsonValue object = JsonValue::Object();
  for (const obs::SpanView& span : obs::SpanList(spans)) {
    object.Set(std::string(span.name) + "_us", JsonValue::Number(span.us));
  }
  object.Set("total_us", JsonValue::Number(spans.total_us));
  return object;
}

JsonValue RenderMetricsSnapshot(const obs::MetricsRegistry& registry) {
  JsonValue list = JsonValue::Array();
  for (const obs::Sample& sample : registry.Snapshot()) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(sample.name));
    item.Set("type",
             JsonValue::String(obs::MetricTypeName(sample.type)));
    JsonValue labels = JsonValue::Object();
    for (const auto& [key, value] : sample.labels) {
      labels.Set(key, JsonValue::String(value));
    }
    item.Set("labels", std::move(labels));
    if (!sample.help.empty()) {
      item.Set("help", JsonValue::String(sample.help));
    }
    if (sample.type == obs::MetricType::kHistogram) {
      // Cumulative counts; buckets[i] covers observations <= bounds[i],
      // the final count (no finite bound) is the +inf bucket == "count".
      JsonValue bounds = JsonValue::Array();
      JsonValue buckets = JsonValue::Array();
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        if (i + 1 < sample.buckets.size()) {
          bounds.Append(JsonValue::Number(obs::Histogram::BucketBound(i)));
        }
        buckets.Append(JsonValue::Number(sample.buckets[i]));
      }
      item.Set("bounds", std::move(bounds));
      item.Set("buckets", std::move(buckets));
      item.Set("sum", JsonValue::Number(sample.sum));
      item.Set("count", JsonValue::Number(sample.count));
    } else {
      // Counter totals are unsigned; gauges may legitimately be negative.
      if (sample.value < 0) {
        item.Set("value",
                 JsonValue::Number(static_cast<double>(sample.value)));
      } else {
        item.Set("value",
                 JsonValue::Number(static_cast<uint64_t>(sample.value)));
      }
    }
    list.Append(std::move(item));
  }
  return list;
}

}  // namespace vadalog
